// Rack-aware replication: never lose both copies to one rack failure.
//
// HierarchicalRedundantShare places the k copies of every block on k
// *different racks* -- fair across racks by aggregate capacity and fair
// across devices inside each rack -- so a whole-rack outage (power, switch)
// can never take out all replicas of any block.
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>

#include "src/core/hierarchical.hpp"
#include "src/sim/block_map.hpp"

int main() {
  using namespace rds;

  // Three racks of different generations and sizes.
  const std::vector<FailureDomain> racks{
      {"rack-1 (new)", {{1, 8000, "r1d1"}, {2, 8000, "r1d2"}}},
      {"rack-2", {{3, 4000, "r2d1"}, {4, 4000, "r2d2"}, {5, 4000, "r2d3"}}},
      {"rack-3 (old)", {{6, 2000, "r3d1"}, {7, 2000, "r3d2"},
                        {8, 2000, "r3d3"}, {9, 2000, "r3d4"}}},
  };
  const HierarchicalRedundantShare strategy(racks, /*k=*/2);

  constexpr std::uint64_t kBlocks = 200'000;
  const BlockMap map(strategy, kBlocks);

  // 1. No block ever has both copies in one rack.
  std::uint64_t colocated = 0;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    const auto copies = map.copies(b);
    if (strategy.domain_of(copies[0]) == strategy.domain_of(copies[1])) {
      ++colocated;
    }
  }
  std::cout << "blocks with both copies in one rack: " << colocated
            << " / " << kBlocks << "  (must be 0)\n\n";

  // 2. Per-device load tracks capacity, across rack boundaries.
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "device load vs fair share:\n";
  double total_capacity = 0.0;
  for (const FailureDomain& rack : racks) {
    total_capacity += static_cast<double>(rack.total_capacity());
  }
  for (const FailureDomain& rack : racks) {
    for (const Device& d : rack.devices) {
      const double load = 100.0 * static_cast<double>(map.count_on(d.uid)) /
                          static_cast<double>(map.total_copies());
      const double fair =
          100.0 * static_cast<double>(d.capacity) / total_capacity;
      std::cout << "  " << d.name << " (" << rack.name << "): " << load
                << "%  (fair " << fair << "%)\n";
    }
  }

  // 3. Survive a whole-rack outage: every block keeps one live copy.
  std::cout << "\nsimulating loss of rack-1 (largest)...\n";
  std::uint64_t survivors = 0;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    for (const DeviceId d : map.copies(b)) {
      if (strategy.domain_of(d) != 0) {
        ++survivors;
        break;
      }
    }
  }
  std::cout << "blocks still readable: " << survivors << " / " << kBlocks
            << '\n';
  return 0;
}
