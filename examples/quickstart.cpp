// Quickstart: place replicated blocks over a heterogeneous device pool.
//
//   1. Describe the devices (stable uid + capacity in blocks).
//   2. Build a RedundantShare strategy for the replication degree you need.
//   3. place(address) returns the k pairwise-distinct devices of the block's
//      copies -- a pure function, so every client computes the same answer
//      with no coordination and no placement tables.
#include <array>
#include <cstdint>
#include <iostream>

#include "src/cluster/cluster_config.hpp"
#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"

int main() {
  using namespace rds;

  // A small pool: one modern 4 TB disk, two 2 TB disks, one older 1 TB disk
  // (capacities in blocks; the unit does not matter, only the ratios do).
  const ClusterConfig pool({
      {/*uid=*/1, /*capacity=*/4000, "big-4T"},
      {2, 2000, "mid-2T-a"},
      {3, 2000, "mid-2T-b"},
      {4, 1000, "old-1T"},
  });

  // Two copies of every block (the paper's LinMirror).
  const RedundantShare strategy(pool, /*k=*/2);

  std::cout << "placement of the first few blocks:\n";
  std::array<DeviceId, 2> copies{};  // span overload: no per-call allocation
  for (std::uint64_t block = 0; block < 8; ++block) {
    strategy.place(block, copies);
    std::cout << "  block " << block << " -> primary on device " << copies[0]
              << ", mirror on device " << copies[1] << '\n';
  }

  // Fairness: a device with x% of the capacity holds x% of the copies.
  const std::uint64_t balls = 100'000;
  const BlockMap map(strategy, balls);
  std::cout << "\ncopies per device after " << balls << " blocks:\n";
  for (const Device& d : pool.devices()) {
    const double percent = 100.0 * static_cast<double>(map.count_on(d.uid)) /
                           static_cast<double>(map.total_copies());
    const double fair = 100.0 * static_cast<double>(d.capacity) /
                        static_cast<double>(pool.total_capacity());
    std::cout << "  " << d.name << ": " << percent << "% (fair share "
              << fair << "%)\n";
  }

  // The exact law (no sampling): expected copies per ball on each device.
  std::cout << "\nexact expected copies per ball (should equal k * share):\n";
  const std::vector<double> exact = strategy.exact_expected_copies();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    std::cout << "  " << pool[i].name << ": " << exact[i] << '\n';
  }
  return 0;
}
