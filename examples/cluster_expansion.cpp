// Growing and shrinking a storage cluster.
//
// The operational story the paper's introduction motivates: a pool built
// from whatever disks were cheap at the time, expanded twice, then the
// oldest disks retired.  At every step the placement stays fair and only
// the necessary fraction of the data moves -- compare with RAID-style
// striping, which would reshuffle nearly everything.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "src/placement/strategy_factory.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"

namespace {

using namespace rds;

constexpr unsigned kK = 2;
constexpr std::uint64_t kBalls = 200'000;

MovementReport transition(PlacementKind kind, const ClusterConfig& before,
                          const ClusterConfig& after) {
  const auto sb = make_replication_strategy(kind, before, kK);
  const auto sa = make_replication_strategy(kind, after, kK);
  return diff_placements(BlockMap(*sb, kBalls), BlockMap(*sa, kBalls));
}

void report_step(const std::string& what, const ClusterConfig& before,
                 const ClusterConfig& after) {
  const MovementReport rs =
      transition(PlacementKind::kRedundantShare, before, after);
  const MovementReport pre =
      transition(PlacementKind::kPrecomputed, before, after);
  const MovementReport stripe =
      transition(PlacementKind::kRoundRobin, before, after);

  std::cout << std::fixed << std::setprecision(1);
  std::cout << what << ":\n"
            << "  redundant-share moved " << 100.0 * rs.moved_set_fraction()
            << "% of all copies (minimum possible: "
            << 100.0 * static_cast<double>(rs.optimal_moves) /
                   static_cast<double>(rs.total_copies)
            << "%)\n"
            << "  precomputed     moved " << 100.0 * pre.moved_set_fraction()
            << "% (same law, O(k) lookups; coupling costs adaptivity)\n"
            << "  raid-striping   moved " << 100.0 * stripe.moved_set_fraction()
            << "%\n";
}

}  // namespace

int main() {
  using namespace rds;

  // Year one: four 1 TB disks.
  ClusterConfig pool({{1, 1000, "y1-a"},
                      {2, 1000, "y1-b"},
                      {3, 1000, "y1-c"},
                      {4, 1000, "y1-d"}});

  // Year two: two 2 TB disks join.
  ClusterConfig expanded = pool;
  expanded.add_device({5, 2000, "y2-a"});
  expanded.add_device({6, 2000, "y2-b"});
  report_step("add two 2T disks", pool, expanded);

  // Year three: a 4 TB disk joins.
  ClusterConfig bigger = expanded;
  bigger.add_device({7, 4000, "y3-a"});
  report_step("add one 4T disk", expanded, bigger);

  // Year four: retire the four original 1 TB disks.
  ClusterConfig retired = bigger;
  for (const DeviceId uid : {1, 2, 3, 4}) retired.remove_device(uid);
  report_step("retire the four 1T disks", bigger, retired);

  // Final fairness check.
  const auto final_strategy =
      make_replication_strategy(PlacementKind::kRedundantShare, retired, kK);
  const BlockMap map(*final_strategy, kBalls);
  std::cout << "\nfinal pool utilization (copies per 1000 capacity):\n";
  for (const Device& d : retired.devices()) {
    std::cout << "  " << d.name << ": "
              << 1000.0 * static_cast<double>(map.count_on(d.uid)) /
                     static_cast<double>(d.capacity)
              << '\n';
  }
  std::cout << "\n(equal numbers = fair: every disk fills at the same rate)\n";
  return 0;
}
