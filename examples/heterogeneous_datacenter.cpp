// Request-load fairness on a mixed-generation datacenter pool.
//
// Storage fairness is only half the story: the paper's fairness notion also
// covers *requests* ("every storage device with x% of the capacity gets x%
// of the data and the requests").  This example stores a dataset across
// three device generations and replays a skewed (Zipf) read workload,
// showing that per-device request load tracks capacity share -- including
// for the hottest blocks, because placement is hash-random rather than
// correlated with block popularity.  Replica locations come from
// VirtualDisk::copy_locations (one epoch-consistent read per block) and the
// serving copy is picked by a ReplicaSelector from the factory, the same
// read path rds_cli loadsim exercises.
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "src/sim/block_map.hpp"
#include "src/sim/replica_selector.hpp"
#include "src/sim/workload.hpp"
#include "src/storage/redundancy_scheme.hpp"
#include "src/storage/virtual_disk.hpp"

namespace {

/// The example replays against a bare placement (no queueing), so the
/// selector sees idle devices of equal speed.
class IdleQueues final : public rds::QueueView {
 public:
  explicit IdleQueues(std::size_t devices) : devices_(devices) {}
  [[nodiscard]] double backlog_us(std::size_t) const override { return 0.0; }
  [[nodiscard]] double mean_service_us(std::size_t) const override {
    return 1.0;
  }
  [[nodiscard]] std::size_t device_count() const override { return devices_; }

 private:
  std::size_t devices_;
};

}  // namespace

int main() {
  using namespace rds;

  // Three generations: 2 x 8T, 4 x 4T, 6 x 2T.
  std::vector<Device> devices;
  DeviceId uid = 1;
  for (int i = 0; i < 2; ++i) devices.push_back({uid++, 8000, "gen3"});
  for (int i = 0; i < 4; ++i) devices.push_back({uid++, 4000, "gen2"});
  for (int i = 0; i < 6; ++i) devices.push_back({uid++, 2000, "gen1"});
  const ClusterConfig pool(std::move(devices));

  constexpr unsigned kK = 3;
  VirtualDisk disk(pool, std::make_shared<MirroringScheme>(kK));
  const auto epoch = disk.placement_snapshot();

  // Storage share: materialize the same placement the disk serves from.
  constexpr std::uint64_t kBlocks = 100'000;
  const BlockMap map(*epoch->strategy, kBlocks);

  std::map<DeviceId, std::size_t> index_of;
  for (std::size_t i = 0; i < pool.size(); ++i) index_of[pool[i].uid] = i;

  // Zipf-skewed reads: block 0 is the hottest.  Each read resolves its k
  // copy locations through the disk's lock-free epoch API and a round-robin
  // selector spreads the hits over them.
  constexpr std::uint64_t kRequests = 2'000'000;
  const auto workload = make_workload("zipf:0.99", kBlocks);
  const auto selector = make_replica_selector("round-robin");
  const IdleQueues queues(pool.size());
  Xoshiro256 rng(2026);
  std::vector<DeviceId> copies(kK);
  std::vector<std::size_t> replicas(kK);
  std::map<DeviceId, std::uint64_t> request_load;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    const std::uint64_t block = workload->sample(rng, /*now_us=*/0.0);
    disk.try_copy_locations(block, copies).value_or_throw();
    for (unsigned c = 0; c < kK; ++c) replicas[c] = index_of.at(copies[c]);
    const std::size_t chosen = selector->select(replicas, queues, rng);
    request_load[copies[chosen]] += 1;
  }

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "requests: " << kRequests << " (zipf 0.99 over " << kBlocks
            << " blocks), replicas " << kK << "\n\n";
  std::cout << "  device   gen    capacity   storage%    requests%   fair%\n";
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Device& d = pool[i];
    const double storage = 100.0 *
                           static_cast<double>(map.count_on(d.uid)) /
                           static_cast<double>(map.total_copies());
    const double requests = 100.0 *
                            static_cast<double>(request_load[d.uid]) /
                            static_cast<double>(kRequests);
    const double fair = 100.0 * pool.relative_capacity(i);
    std::cout << "  " << std::setw(6) << d.uid << "   " << d.name
              << std::setw(10) << d.capacity << std::setw(11) << storage
              << std::setw(12) << requests << std::setw(9) << fair << '\n';
  }
  std::cout << "\n(storage% and requests% both track fair% -- heterogeneous"
            << " devices,\n fair data AND request distribution, as Section 1"
            << " promises)\n";
  return 0;
}
