// Request-load fairness on a mixed-generation datacenter pool.
//
// Storage fairness is only half the story: the paper's fairness notion also
// covers *requests* ("every storage device with x% of the capacity gets x%
// of the data and the requests").  This example stores a dataset across
// three device generations and replays a skewed (Zipf) read workload,
// showing that per-device request load tracks capacity share -- including
// for the hottest blocks, because placement is hash-random rather than
// correlated with block popularity.
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/workload.hpp"

int main() {
  using namespace rds;

  // Three generations: 2 x 8T, 4 x 4T, 6 x 2T.
  std::vector<Device> devices;
  DeviceId uid = 1;
  for (int i = 0; i < 2; ++i) devices.push_back({uid++, 8000, "gen3"});
  for (int i = 0; i < 4; ++i) devices.push_back({uid++, 4000, "gen2"});
  for (int i = 0; i < 6; ++i) devices.push_back({uid++, 2000, "gen1"});
  const ClusterConfig pool(std::move(devices));

  constexpr unsigned kK = 3;
  const RedundantShare strategy(pool, kK);

  constexpr std::uint64_t kBlocks = 100'000;
  const BlockMap map(strategy, kBlocks);

  // Zipf-skewed reads: block 0 is the hottest.  A read hits one replica,
  // chosen round-robin over the k copies (load spreading).
  constexpr std::uint64_t kRequests = 2'000'000;
  const ZipfGenerator zipf(kBlocks, 0.99);
  Xoshiro256 rng(2026);
  std::map<DeviceId, std::uint64_t> request_load;
  for (std::uint64_t r = 0; r < kRequests; ++r) {
    const std::uint64_t block = zipf.sample(rng);
    const auto copies = map.copies(block);
    request_load[copies[r % kK]] += 1;
  }

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "requests: " << kRequests << " (zipf 0.99 over " << kBlocks
            << " blocks), replicas " << kK << "\n\n";
  std::cout << "  device   gen    capacity   storage%    requests%   fair%\n";
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Device& d = pool[i];
    const double storage = 100.0 *
                           static_cast<double>(map.count_on(d.uid)) /
                           static_cast<double>(map.total_copies());
    const double requests = 100.0 *
                            static_cast<double>(request_load[d.uid]) /
                            static_cast<double>(kRequests);
    const double fair = 100.0 * pool.relative_capacity(i);
    std::cout << "  " << std::setw(6) << d.uid << "   " << d.name
              << std::setw(10) << d.capacity << std::setw(11) << storage
              << std::setw(12) << requests << std::setw(9) << fair << '\n';
  }
  std::cout << "\n(storage% and requests% both track fair% -- heterogeneous"
            << " devices,\n fair data AND request distribution, as Section 1"
            << " promises)\n";
  return 0;
}
