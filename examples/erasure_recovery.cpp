// Surviving device failures with an erasure-coded virtual disk.
//
// A VirtualDisk splits every block into RS(4+2) fragments -- 1.5x storage
// overhead instead of mirroring's 2x-3x -- and lets Redundant Share place
// the six fragments on six distinct devices of a heterogeneous pool.
// Because the placement identifies WHICH fragment lives where (the paper's
// copy-identification property), the disk knows exactly what to recompute
// when a device dies.
#include <cstdint>
#include <iostream>
#include <string>

#include "src/storage/virtual_disk.hpp"

namespace {

rds::Bytes text_block(const std::string& text) {
  return rds::Bytes(text.begin(), text.end());
}

std::string as_text(const rds::Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace

int main() {
  using namespace rds;

  const ClusterConfig pool({{1, 5000, "rack1-disk1"},
                            {2, 5000, "rack1-disk2"},
                            {3, 4000, "rack2-disk1"},
                            {4, 4000, "rack2-disk2"},
                            {5, 3000, "rack3-disk1"},
                            {6, 3000, "rack3-disk2"},
                            {7, 2000, "rack4-disk1"},
                            {8, 2000, "rack4-disk2"}});

  VirtualDisk disk(pool, std::make_shared<ReedSolomonScheme>(4, 2));

  std::cout << "writing 1000 blocks with " << disk.scheme().name() << "...\n";
  for (std::uint64_t b = 0; b < 1000; ++b) {
    disk.write(b, text_block("block #" + std::to_string(b) +
                             " -- some payload that must survive"));
  }
  std::cout << "scrub: " << (disk.scrub().clean() ? "clean" : "DIRTY") << '\n';

  std::cout << "\ndisk 3 and disk 7 crash...\n";
  disk.fail_device(3);
  disk.fail_device(7);

  // Still fully readable: any 4 of the 6 fragments reconstruct a block.
  std::cout << "degraded read of block 42: '"
            << as_text(disk.read(42)).substr(0, 9) << "...'\n";

  std::cout << "\nrebuilding onto the remaining devices...\n";
  const std::uint64_t rebuilt = disk.rebuild();
  std::cout << "  fragments rebuilt: " << rebuilt << '\n'
            << "  bytes moved:       " << disk.stats().bytes_moved << '\n'
            << "  degraded reads:    " << disk.stats().degraded_reads << '\n';

  // Verify everything.
  std::uint64_t ok = 0;
  for (std::uint64_t b = 0; b < 1000; ++b) {
    if (as_text(disk.read(b)).starts_with("block #" + std::to_string(b))) {
      ++ok;
    }
  }
  std::cout << "  blocks verified:   " << ok << " / 1000\n"
            << "  scrub:             "
            << (disk.scrub().clean() ? "clean" : "DIRTY") << '\n';

  std::cout << "\nreplacement capacity arrives; pool grows again...\n";
  disk.add_device({9, 6000, "rack5-disk1"});
  std::cout << "  fragments migrated to the new disk: "
            << disk.used_on(9) << '\n'
            << "  scrub: " << (disk.scrub().clean() ? "clean" : "DIRTY")
            << '\n';
  return 0;
}
