// One device pool, many volumes: different redundancy per dataset.
//
// A StoragePool shares physical devices between volumes.  Here a scratch
// volume (cheap 2-way mirror), a database volume (3-way mirror for read
// fan-out) and an archive volume (RS 4+2, 1.5x overhead) coexist; a device
// failure degrades all three, and one pool-wide rebuild heals them.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "src/storage/storage_pool.hpp"
#include "src/util/random.hpp"

namespace {

rds::Bytes payload(std::uint64_t block, std::uint64_t tenant) {
  rds::Bytes b(128);
  rds::Xoshiro256 rng(block * 7919 + tenant);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

}  // namespace

int main() {
  using namespace rds;

  StoragePool pool(ClusterConfig({{1, 40'000, "nvme-a"},
                                  {2, 40'000, "nvme-b"},
                                  {3, 20'000, "ssd-a"},
                                  {4, 20'000, "ssd-b"},
                                  {5, 20'000, "ssd-c"},
                                  {6, 10'000, "hdd-a"},
                                  {7, 10'000, "hdd-b"},
                                  {8, 10'000, "hdd-c"}}));

  VirtualDisk& scratch =
      pool.create_volume("scratch", std::make_shared<MirroringScheme>(2));
  VirtualDisk& database =
      pool.create_volume("database", std::make_shared<MirroringScheme>(3));
  VirtualDisk& archive =
      pool.create_volume("archive", std::make_shared<ReedSolomonScheme>(4, 2));

  std::cout << "writing 3 tenants' data into one pool...\n";
  for (std::uint64_t b = 0; b < 2000; ++b) scratch.write(b, payload(b, 1));
  for (std::uint64_t b = 0; b < 1500; ++b) database.write(b, payload(b, 2));
  for (std::uint64_t b = 0; b < 2500; ++b) archive.write(b, payload(b, 3));

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "\nper-device usage (fragments, all volumes combined):\n";
  for (const auto& u : pool.usage()) {
    std::cout << "  " << u.device.name << ": " << u.used << " / "
              << u.device.capacity << "  ("
              << 100.0 * static_cast<double>(u.used) /
                     static_cast<double>(u.device.capacity)
              << "% -- equal across devices = fair)\n";
  }

  std::cout << "\nnvme-a dies; every volume reads degraded...\n";
  pool.fail_device(1);
  std::cout << "  scratch block 7 ok:  "
            << (scratch.read(7) == payload(7, 1)) << '\n'
            << "  database block 7 ok: "
            << (database.read(7) == payload(7, 2)) << '\n'
            << "  archive block 7 ok:  "
            << (archive.read(7) == payload(7, 3)) << '\n';

  const std::uint64_t rebuilt = pool.rebuild();
  std::cout << "\npool-wide rebuild restored " << rebuilt
            << " fragments across " << pool.volume_count() << " volumes\n";
  std::cout << "  scrubs clean: scratch=" << scratch.scrub().clean()
            << " database=" << database.scrub().clean()
            << " archive=" << archive.scrub().clean() << '\n';

  std::cout << "\nretiring the scratch volume frees shared capacity...\n";
  std::uint64_t before = 0;
  for (const auto& u : pool.usage()) before += u.used;
  pool.drop_volume("scratch");
  std::uint64_t after = 0;
  for (const auto& u : pool.usage()) after += u.used;
  std::cout << "  fragments in pool: " << before << " -> " << after << '\n';
  return 0;
}
