#include "src/storage/virtual_disk.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/util/random.hpp"

namespace rds {
namespace {

ClusterConfig small_cluster() {
  return ClusterConfig({{1, 2000, "a"},
                        {2, 1500, "b"},
                        {3, 1000, "c"},
                        {4, 1000, "d"},
                        {5, 500, "e"}});
}

Bytes block_payload(std::uint64_t block, std::size_t size = 64) {
  Bytes b(size);
  Xoshiro256 rng(block * 2654435761u + 1);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(VirtualDisk, WriteReadRoundTrip) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 200; ++b) {
    disk.write(b, block_payload(b));
  }
  EXPECT_EQ(disk.block_count(), 200u);
  for (std::uint64_t b = 0; b < 200; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b)) << "block " << b;
  }
  EXPECT_TRUE(disk.scrub().clean());
  EXPECT_EQ(disk.stats().fragments_written, 400u);
}

TEST(VirtualDisk, ReadUnknownBlockThrows) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  EXPECT_THROW((void)disk.read(7), std::out_of_range);
  EXPECT_FALSE(disk.contains(7));
}

TEST(VirtualDisk, OverwriteBlock) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  disk.write(1, block_payload(1));
  disk.write(1, block_payload(99, 32));
  EXPECT_EQ(disk.read(1), block_payload(99, 32));
  EXPECT_EQ(disk.block_count(), 1u);
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(VirtualDisk, AddDeviceMigratesAndStaysReadable) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 300; ++b) disk.write(b, block_payload(b));

  disk.add_device({6, 2500, "new-big"});
  EXPECT_GT(disk.stats().fragments_moved, 0u);
  EXPECT_GT(disk.used_on(6), 0u);
  for (std::uint64_t b = 0; b < 300; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b));
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(VirtualDisk, RemoveDeviceDrainsIt) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 300; ++b) disk.write(b, block_payload(b));
  const std::uint64_t before_moves = disk.stats().fragments_moved;
  disk.remove_device(5);
  EXPECT_GT(disk.stats().fragments_moved, before_moves);
  EXPECT_FALSE(disk.config().contains(5));
  for (std::uint64_t b = 0; b < 300; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b));
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(VirtualDisk, FailureDegradedReadsThenRebuild) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 300; ++b) disk.write(b, block_payload(b));

  disk.fail_device(1);  // biggest device
  // Degraded but fully readable through the surviving copies.
  for (std::uint64_t b = 0; b < 300; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b));
  }
  EXPECT_GT(disk.stats().degraded_reads, 0u);
  EXPECT_FALSE(disk.scrub().clean());

  const std::uint64_t rebuilt = disk.rebuild();
  EXPECT_GT(rebuilt, 0u);
  EXPECT_FALSE(disk.config().contains(1));
  for (std::uint64_t b = 0; b < 300; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b));
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(VirtualDisk, ErasureCodedFailureAndRebuild) {
  // RS(3+2) over 7 devices: tolerate two losses, rebuild onto the rest.
  ClusterConfig config = small_cluster();
  config.add_device({6, 1200, "f"});
  config.add_device({7, 800, "g"});
  VirtualDisk disk(config, std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 200; ++b) disk.write(b, block_payload(b, 96));

  disk.fail_device(3);
  disk.fail_device(5);
  for (std::uint64_t b = 0; b < 200; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b, 96));
  }
  const std::uint64_t rebuilt = disk.rebuild();
  EXPECT_GT(rebuilt, 0u);
  EXPECT_EQ(disk.config().size(), 5u);
  for (std::uint64_t b = 0; b < 200; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b, 96));
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(VirtualDisk, RebuildImpossibleWhenTooFewDevicesRemain) {
  // RS(3+2) needs 5 distinct devices; losing 2 of 5 leaves too few.  The
  // rebuild must fail atomically (no partial migration).
  VirtualDisk disk(small_cluster(), std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 50; ++b) disk.write(b, block_payload(b, 96));
  disk.fail_device(3);
  disk.fail_device(5);
  EXPECT_THROW(disk.rebuild(), std::invalid_argument);
  // Data remains readable in degraded mode.
  for (std::uint64_t b = 0; b < 50; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b, 96));
  }
}

TEST(VirtualDisk, ErasureUnrecoverableWhenTooManyFail) {
  VirtualDisk disk(small_cluster(), std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 50; ++b) disk.write(b, block_payload(b, 96));
  disk.fail_device(1);
  disk.fail_device(2);
  disk.fail_device(3);
  // Some block surely had fragments on all three failed devices' complement
  // < 3 survivors; at least one read must fail.
  bool any_failure = false;
  for (std::uint64_t b = 0; b < 50; ++b) {
    try {
      (void)disk.read(b);
    } catch (const std::runtime_error&) {
      any_failure = true;
    }
  }
  EXPECT_TRUE(any_failure);
}

TEST(VirtualDisk, RemoveFailedDeviceRejected) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2));
  disk.write(1, block_payload(1));
  disk.fail_device(2);
  EXPECT_THROW(disk.remove_device(2), std::invalid_argument);
  EXPECT_THROW(disk.add_device({9, 100, ""}), std::runtime_error);
}

TEST(VirtualDisk, FastStrategyBackend) {
  VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(3),
                   PlacementKind::kFastRedundantShare);
  for (std::uint64_t b = 0; b < 150; ++b) disk.write(b, block_payload(b));
  disk.add_device({7, 1200, ""});
  for (std::uint64_t b = 0; b < 150; ++b) {
    EXPECT_EQ(disk.read(b), block_payload(b));
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(VirtualDisk, MigrationMovesLessThanStriping) {
  // The adaptivity claim end-to-end: Redundant Share migrations move far
  // less data than the static striping baseline for the same edit.
  auto run = [](PlacementKind kind) {
    VirtualDisk disk(small_cluster(), std::make_shared<MirroringScheme>(2),
                     kind);
    for (std::uint64_t b = 0; b < 400; ++b) disk.write(b, block_payload(b, 16));
    disk.add_device({6, 1500, ""});
    return disk.stats().fragments_moved;
  };
  const std::uint64_t rs_moves = run(PlacementKind::kRedundantShare);
  const std::uint64_t stripe_moves = run(PlacementKind::kRoundRobin);
  EXPECT_LT(rs_moves * 2, stripe_moves);
}

TEST(VirtualDisk, NullSchemeRejected) {
  EXPECT_THROW(VirtualDisk(small_cluster(), nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace rds
