// Incremental reshaping: the pool migrates toward a new topology in small
// steps while staying fully readable and writable.
#include <gtest/gtest.h>

#include "src/storage/virtual_disk.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

ClusterConfig pool() {
  return ClusterConfig({{1, 3000, ""},
                        {2, 2500, ""},
                        {3, 2000, ""},
                        {4, 1500, ""},
                        {5, 1000, ""}});
}

Bytes payload(std::uint64_t block) {
  Bytes b(48);
  Xoshiro256 rng(block * 97 + 3);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(Reshape, StepwiseDrainCommitsNewTopology) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 500; ++b) disk.write(b, payload(b));

  ClusterConfig next = disk.config();
  next.add_device({9, 4000, "new"});
  const std::size_t planned = disk.begin_reshape(next);
  EXPECT_EQ(planned, 500u);
  EXPECT_TRUE(disk.reshaping());

  std::size_t total = 0;
  while (disk.reshaping()) {
    const std::size_t done = disk.step_reshape(64);
    total += done;
    if (done == 0) break;
  }
  EXPECT_EQ(total, 500u);
  EXPECT_FALSE(disk.reshaping());
  EXPECT_TRUE(disk.config().contains(9));
  EXPECT_GT(disk.used_on(9), 0u);
  for (std::uint64_t b = 0; b < 500; ++b) {
    EXPECT_EQ(disk.read(b), payload(b));
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(Reshape, ReadableAndWritableMidFlight) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 400; ++b) disk.write(b, payload(b));

  ClusterConfig next = disk.config();
  next.add_device({9, 5000, "new"});
  next.remove_device(5);
  disk.begin_reshape(next);
  disk.step_reshape(100);  // partially drained

  // Every block readable, whether migrated or not.
  for (std::uint64_t b = 0; b < 400; ++b) {
    ASSERT_EQ(disk.read(b), payload(b)) << "mid-reshape read of " << b;
  }
  // New writes land on the new topology; overwrites of pending blocks work.
  disk.write(1000, payload(1000));
  disk.write(3, payload(9999));
  EXPECT_EQ(disk.read(1000), payload(1000));
  EXPECT_EQ(disk.read(3), payload(9999));

  while (disk.step_reshape(100) > 0) {
  }
  EXPECT_FALSE(disk.reshaping());
  EXPECT_EQ(disk.read(3), payload(9999));
  EXPECT_EQ(disk.read(1000), payload(1000));
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(Reshape, ScrubStaysCleanMidFlight) {
  VirtualDisk disk(pool(), std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 200; ++b) disk.write(b, payload(b));
  ClusterConfig next = disk.config();
  next.add_device({9, 2500, ""});
  disk.begin_reshape(next);
  disk.step_reshape(50);
  EXPECT_TRUE(disk.scrub().clean());
  while (disk.step_reshape(50) > 0) {
  }
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(Reshape, TrimMidFlight) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 100; ++b) disk.write(b, payload(b));
  ClusterConfig next = disk.config();
  next.add_device({9, 2500, ""});
  disk.begin_reshape(next);
  disk.step_reshape(10);
  EXPECT_TRUE(disk.trim(50));   // likely still pending
  EXPECT_TRUE(disk.trim(0));
  while (disk.step_reshape(50) > 0) {
  }
  EXPECT_FALSE(disk.contains(50));
  EXPECT_TRUE(disk.scrub().clean());
}

TEST(Reshape, ConcurrentTopologyChangesRejected) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  disk.write(1, payload(1));
  ClusterConfig next = disk.config();
  next.add_device({9, 2500, ""});
  disk.begin_reshape(next);
  EXPECT_THROW(disk.begin_reshape(next), std::runtime_error);
  EXPECT_THROW(disk.add_device({10, 100, ""}), std::runtime_error);
  EXPECT_THROW(disk.remove_device(5), std::runtime_error);
  while (disk.step_reshape(50) > 0) {
  }
  // After draining, topology operations work again.
  disk.add_device({10, 100, ""});
  EXPECT_TRUE(disk.config().contains(10));
}

TEST(Reshape, EmptyPoolCommitsImmediately) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  ClusterConfig next = disk.config();
  next.add_device({9, 2500, ""});
  EXPECT_EQ(disk.begin_reshape(next), 0u);
  EXPECT_EQ(disk.step_reshape(1), 0u);
  EXPECT_FALSE(disk.reshaping());
  EXPECT_TRUE(disk.config().contains(9));
}

TEST(Reshape, StepOnIdleDiskIsNoop) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  EXPECT_EQ(disk.step_reshape(100), 0u);
  EXPECT_FALSE(disk.reshaping());
}

}  // namespace
}  // namespace rds
