#include "src/core/precomputed_redundant_share.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/sim/block_map.hpp"
#include "src/sim/scenario.hpp"
#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], ""});
  }
  return ClusterConfig(std::move(devices));
}

TEST(PrecomputedRS, DeterministicAndDistinct) {
  const PrecomputedRedundantShare s(cluster_from({9, 7, 5, 3, 2, 1}), 3);
  std::vector<DeviceId> out(3), again(3);
  for (std::uint64_t a = 0; a < 5000; ++a) {
    s.place(a, out);
    s.place(a, again);
    EXPECT_EQ(out, again);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(std::ranges::adjacent_find(sorted), sorted.end());
  }
}

TEST(PrecomputedRS, FairnessOnPaperLadder) {
  const ClusterConfig config = paper_heterogeneous_base();
  const PrecomputedRedundantShare s(config, 2);
  constexpr std::uint64_t kBalls = 120'000;
  const BlockMap map(s, kBalls);
  const auto counts = map.device_counts();
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  const double total = static_cast<double>(config.total_capacity());
  for (std::size_t i = 0; i < config.size(); ++i) {
    observed.push_back(counts.at(config[i].uid));
    expected.push_back(2.0 * kBalls *
                       static_cast<double>(config[i].capacity) / total);
  }
  EXPECT_LT(chi_square(observed, expected),
            chi_square_critical_999(config.size() - 1));
}

TEST(PrecomputedRS, FairnessOnInhomogeneousConfigs) {
  for (const auto& caps : std::vector<std::vector<std::uint64_t>>{
           {3, 3, 1, 1}, {4, 4, 4, 1, 1}, {3, 2, 2, 2, 1}, {10, 1, 1}}) {
    const unsigned k = caps.size() > 4 ? 3 : 2;
    const ClusterConfig config = cluster_from(caps);
    const PrecomputedRedundantShare s(config, k);
    constexpr std::uint64_t kBalls = 120'000;
    const BlockMap map(s, kBalls);
    const auto counts = map.device_counts();
    const std::span<const double> adjusted = s.tables().caps;
    double total = 0.0;
    for (const double c : adjusted) total += c;
    std::vector<std::uint64_t> observed;
    std::vector<double> expected;
    for (std::size_t i = 0; i < config.size(); ++i) {
      const auto it = counts.find(s.tables().uids[i]);
      observed.push_back(it == counts.end() ? 0 : it->second);
      expected.push_back(static_cast<double>(k) * kBalls * adjusted[i] /
                         total);
    }
    EXPECT_LT(chi_square(observed, expected),
              chi_square_critical_999(config.size() - 1))
        << "caps[0]=" << caps[0];
  }
}

TEST(PrecomputedRS, TableMemoryIsBounded) {
  const ClusterConfig config = paper_heterogeneous_base();
  const PrecomputedRedundantShare s(config, 4);
  // k * n^2 upper bound on entries.
  EXPECT_LE(s.table_entries(), 4u * 8u * 8u);
  EXPECT_GT(s.table_entries(), 0u);
}

TEST(PrecomputedRS, MatchesChainLawStatistically) {
  // Same Markov kernel as RedundantShare: the marginal distribution of each
  // copy index must agree between the implementations.
  const ClusterConfig config = cluster_from({7, 5, 4, 2, 1, 1});
  const RedundantShare slow(config, 3);
  const PrecomputedRedundantShare pre(config, 3);
  constexpr std::uint64_t kBalls = 150'000;
  for (unsigned copy = 0; copy < 3; ++copy) {
    std::vector<std::uint64_t> cs(config.size(), 0), cp(config.size(), 0);
    std::vector<DeviceId> out(3);
    for (std::uint64_t a = 0; a < kBalls; ++a) {
      slow.place(a, out);
      ++cs[config.index_of(out[copy]).value()];
      pre.place(a, out);
      ++cp[config.index_of(out[copy]).value()];
    }
    std::vector<double> expected;
    for (const std::uint64_t c : cs) {
      expected.push_back(std::max(1.0, static_cast<double>(c)));
    }
    EXPECT_LT(chi_square(cp, expected),
              2.0 * chi_square_critical_999(config.size() - 1))
        << "copy " << copy;
  }
}

TEST(PrecomputedRS, PlaceManyMatchesSequentialPlace) {
  // The branch-light batch kernel (used by BatchPlacer chunks) must be
  // bit-identical to the per-address path, including across the 4k chunk
  // boundary.
  const ClusterConfig config = cluster_from({9, 7, 5, 3, 2, 1});
  const PrecomputedRedundantShare s(config, 3);
  constexpr std::size_t kBatch = 4097;
  std::vector<std::uint64_t> addresses(kBatch);
  std::iota(addresses.begin(), addresses.end(), std::uint64_t{0});
  for (auto& a : addresses) a = a * 2654435761u + 17;
  std::vector<DeviceId> batch(kBatch * 3);
  s.place_many(addresses, batch);
  std::vector<DeviceId> one(3);
  for (std::size_t i = 0; i < kBatch; ++i) {
    s.place(addresses[i], one);
    const std::vector<DeviceId> row(batch.begin() + i * 3,
                                    batch.begin() + (i + 1) * 3);
    ASSERT_EQ(row, one) << "address index " << i;
  }
}

TEST(PrecomputedRS, PlaceManyRejectsMismatchedSpan) {
  const PrecomputedRedundantShare s(cluster_from({9, 7, 5, 3}), 2);
  const std::vector<std::uint64_t> addresses(8);
  std::vector<DeviceId> wrong(8 * 2 - 1);
  EXPECT_THROW(s.place_many(addresses, wrong), std::invalid_argument);
}

TEST(PrecomputedRS, Validation) {
  EXPECT_THROW(PrecomputedRedundantShare(cluster_from({1, 1}), 3),
               std::invalid_argument);
  EXPECT_THROW(PrecomputedRedundantShare(cluster_from({1, 1}), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
