#include "src/placement/crush.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace rds {
namespace {

std::vector<FailureDomain> three_racks() {
  return {
      {"rack-a", {{1, 400, ""}, {2, 400, ""}}},
      {"rack-b", {{3, 300, ""}, {4, 300, ""}, {5, 200, ""}}},
      {"rack-c", {{6, 500, ""}, {7, 300, ""}}},
  };
}

TEST(Crush, DeterministicAndDistinctDomains) {
  const CrushPlacement s(three_racks(), 2);
  std::vector<DeviceId> out(2), again(2);
  for (std::uint64_t a = 0; a < 3000; ++a) {
    s.place(a, out);
    s.place(a, again);
    EXPECT_EQ(out, again);
    EXPECT_NE(s.domain_of(out[0]), s.domain_of(out[1]))
        << "two copies in one failure domain for ball " << a;
  }
}

TEST(Crush, DeviceAndDomainCounts) {
  const CrushPlacement s(three_racks(), 2);
  EXPECT_EQ(s.device_count(), 7u);
  EXPECT_EQ(s.domain_count(), 3u);
  EXPECT_EQ(s.domain_of(1), 0u);
  EXPECT_EQ(s.domain_of(6), 2u);
  EXPECT_EQ(s.domain_of(99), 3u);  // unknown
}

TEST(Crush, WithinDomainFairness) {
  // Inside rack-b the 300:300:200 devices split the rack's copies 3:3:2.
  const CrushPlacement s(three_racks(), 2);
  std::uint64_t counts[3] = {0, 0, 0};  // devices 3, 4, 5
  std::vector<DeviceId> out(2);
  constexpr std::uint64_t kBalls = 100'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    for (const DeviceId d : out) {
      if (d >= 3 && d <= 5) ++counts[d - 3];
    }
  }
  const double rack_total =
      static_cast<double>(counts[0] + counts[1] + counts[2]);
  EXPECT_NEAR(counts[0] / rack_total, 3.0 / 8.0, 0.01);
  EXPECT_NEAR(counts[2] / rack_total, 2.0 / 8.0, 0.01);
}

TEST(Crush, KEqualsDomainCountUsesEveryDomain) {
  const CrushPlacement s(three_racks(), 3);
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < 1000; ++a) {
    s.place(a, out);
    std::unordered_set<std::size_t> domains;
    for (const DeviceId d : out) domains.insert(s.domain_of(d));
    EXPECT_EQ(domains.size(), 3u);
  }
}

TEST(Crush, SuffersTrivialDomainLoss) {
  // One dominant domain (half the capacity) with k = 2: CRUSH's straw
  // top-k under-serves it (Lemma 2.4 at domain granularity).  This is the
  // documented defect HierarchicalRedundantShare removes.
  const std::vector<FailureDomain> domains{
      {"big", {{1, 500, ""}, {2, 500, ""}}},
      {"s1", {{3, 250, ""}, {4, 250, ""}}},
      {"s2", {{5, 250, ""}, {6, 250, ""}}},
  };
  const CrushPlacement s(domains, 2);
  std::uint64_t big = 0;
  std::vector<DeviceId> out(2);
  constexpr std::uint64_t kBalls = 120'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    for (const DeviceId d : out) {
      if (d <= 2) ++big;
    }
  }
  const double big_load = static_cast<double>(big) / kBalls;
  // Fair: the big domain must hold one copy of EVERY ball (share = 1.0);
  // the trivial draw misses it with probability 1/2 * 1/3 = 1/6.
  EXPECT_NEAR(big_load, 5.0 / 6.0, 0.01);
}

TEST(Crush, Validation) {
  EXPECT_THROW(CrushPlacement({}, 1), std::invalid_argument);
  EXPECT_THROW(CrushPlacement(three_racks(), 0), std::invalid_argument);
  EXPECT_THROW(CrushPlacement(three_racks(), 4), std::invalid_argument);
  EXPECT_THROW(CrushPlacement({{"empty", {}}}, 1), std::invalid_argument);
  EXPECT_THROW(CrushPlacement({{"dup", {{1, 10, ""}, {1, 10, ""}}}}, 1),
               std::invalid_argument);
  EXPECT_THROW(CrushPlacement({{"zero", {{1, 0, ""}}}}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
