#include "src/sim/disk_sim.hpp"

#include <gtest/gtest.h>

#include "src/core/redundant_share.hpp"
#include "src/placement/static_placement.hpp"

namespace rds {
namespace {

ClusterConfig make_pool() {
  return ClusterConfig(
      {{1, 4000, ""}, {2, 2000, ""}, {3, 2000, ""}, {4, 1000, ""}});
}

TEST(DiskSim, TraceGeneration) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 1000);
  Xoshiro256 rng(5);
  const auto trace = make_trace(map, 5000, /*rate=*/0.01, /*skew=*/0.9, rng);
  ASSERT_EQ(trace.size(), 5000u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_us, trace[i - 1].arrival_us);
    EXPECT_LT(trace[i].ball, 1000u);
  }
  // Mean interarrival ~ 1/rate.
  EXPECT_NEAR(trace.back().arrival_us / 5000.0, 100.0, 10.0);
}

TEST(DiskSim, SingleRequestLatencyIsServiceTime) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const std::vector<Request> trace{{0.0, 3}};
  const DiskPerf perf{100.0, 10.0};
  const SimulationResult r = simulate_requests(
      pool, map, trace, std::span<const DiskPerf>(&perf, 1),
      ReplicaPolicy::kPrimaryOnly);
  EXPECT_DOUBLE_EQ(r.mean_response_us, 110.0);
  EXPECT_DOUBLE_EQ(r.makespan_us, 110.0);
}

TEST(DiskSim, QueueingDelaysShowUp) {
  // Two simultaneous requests to the same ball via primary-only: the second
  // waits for the first.
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const std::vector<Request> trace{{0.0, 3}, {0.0, 3}};
  const DiskPerf perf{50.0, 0.0};
  const SimulationResult r = simulate_requests(
      pool, map, trace, std::span<const DiskPerf>(&perf, 1),
      ReplicaPolicy::kPrimaryOnly);
  EXPECT_DOUBLE_EQ(r.max_response_us, 100.0);
  EXPECT_DOUBLE_EQ(r.mean_response_us, 75.0);
}

TEST(DiskSim, LeastLoadedSpreadsReplicas) {
  // Same two simultaneous requests, but least-loaded picks distinct
  // replicas: both finish in one service time.
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const std::vector<Request> trace{{0.0, 3}, {0.0, 3}};
  const DiskPerf perf{50.0, 0.0};
  const SimulationResult r = simulate_requests(
      pool, map, trace, std::span<const DiskPerf>(&perf, 1),
      ReplicaPolicy::kLeastLoaded);
  EXPECT_DOUBLE_EQ(r.max_response_us, 50.0);
}

TEST(DiskSim, UtilizationTracksCapacityUnderFairPlacement) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 20'000);
  Xoshiro256 rng(9);
  const auto trace = make_trace(map, 100'000, /*rate=*/0.005, /*skew=*/0.0,
                                rng);
  const DiskPerf perf{20.0, 5.0};
  const SimulationResult r = simulate_requests(
      pool, map, trace, std::span<const DiskPerf>(&perf, 1),
      ReplicaPolicy::kRoundRobin);
  // Requests per device proportional to capacity: 4000:2000:2000:1000.
  const double total_requests = 100'000.0;
  EXPECT_NEAR(static_cast<double>(r.devices[0].requests) / total_requests,
              4.0 / 9.0, 0.02);
  EXPECT_NEAR(static_cast<double>(r.devices[3].requests) / total_requests,
              1.0 / 9.0, 0.02);
}

TEST(DiskSim, Validation) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  Xoshiro256 rng(1);
  EXPECT_THROW((void)make_trace(map, 10, 0.0, 0.9, rng),
               std::invalid_argument);

  const std::vector<Request> unsorted{{5.0, 1}, {1.0, 2}};
  const DiskPerf perf{};
  EXPECT_THROW((void)simulate_requests(pool, map, unsorted,
                                       std::span<const DiskPerf>(&perf, 1),
                                       ReplicaPolicy::kPrimaryOnly),
               std::invalid_argument);
  const std::vector<Request> ok{{0.0, 1}};
  EXPECT_THROW((void)simulate_requests(pool, map, ok, {},
                                       ReplicaPolicy::kPrimaryOnly),
               std::invalid_argument);
  const std::vector<DiskPerf> two(2);
  EXPECT_THROW((void)simulate_requests(pool, map, ok, two,
                                       ReplicaPolicy::kPrimaryOnly),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
