#include "src/util/histogram.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace rds {
namespace {

TEST(LogHistogram, EmptyState) {
  const LogHistogram h(1.0, 1000.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, MeanMinMaxAreExact) {
  LogHistogram h(1.0, 1000.0);
  h.add(10.0);
  h.add(20.0);
  h.add(60.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 60.0);
}

TEST(LogHistogram, QuantilesWithinRelativeError) {
  LogHistogram h(1.0, 100'000.0, 1.05);
  Xoshiro256 rng(5);
  // Uniform on [100, 200]: median 150, p99 ~ 199.
  for (int i = 0; i < 200'000; ++i) {
    h.add(100.0 + 100.0 * rng.next_unit());
  }
  EXPECT_NEAR(h.quantile(0.5), 150.0, 150.0 * 0.06);
  EXPECT_NEAR(h.quantile(0.99), 199.0, 199.0 * 0.06);
  EXPECT_NEAR(h.quantile(0.0), 100.0, 100.0 * 0.06);
  EXPECT_NEAR(h.quantile(1.0), 200.0, 200.0 * 0.06);
}

TEST(LogHistogram, OutOfRangeValuesClampToEdges) {
  LogHistogram h(10.0, 100.0);
  h.add(0.001);
  h.add(1e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(0.0), 10.0);
  EXPECT_GE(h.quantile(1.0), 100.0);
}

TEST(LogHistogram, Validation) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace rds
