#include "src/util/alias_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/util/alias_table.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

TEST(AliasArena, SamplesBitIdenticallyToAliasTable) {
  // The arena advertises the same Vose construction as AliasTable; the two
  // must agree sample-for-sample for the same weights and uniforms, so the
  // distributional guarantees proven for AliasTable transfer wholesale.
  const std::vector<std::vector<double>> tables = {
      {1.0},
      {1.0, 1.0, 1.0, 1.0},
      {9.0, 7.0, 5.0, 3.0, 2.0, 1.0},
      {0.0, 1.0, 0.0, 2.0},
      {1e-9, 1.0, 1e9},
  };
  AliasArena arena;
  std::vector<AliasTable> singles;
  std::vector<AliasArena::TableId> ids;
  for (const auto& weights : tables) {
    ids.push_back(arena.add(weights));
    singles.emplace_back(weights);
  }
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 20000; ++trial) {
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // uniform in [0,1)
    const std::size_t t = rng.next_below(tables.size());
    EXPECT_EQ(arena.sample(ids[t], u), singles[t].sample(u))
        << "table " << t << " u=" << u;
  }
}

TEST(AliasArena, TablesAreIndependent) {
  AliasArena arena;
  const auto a = arena.add(std::vector<double>{1.0, 0.0});
  const auto b = arena.add(std::vector<double>{0.0, 1.0, 0.0});
  EXPECT_EQ(arena.table_size(a), 2u);
  EXPECT_EQ(arena.table_size(b), 3u);
  EXPECT_EQ(arena.table_count(), 2u);
  EXPECT_EQ(arena.slot_count(), 5u);
  for (double u = 0.0; u < 1.0; u += 0.0625) {
    EXPECT_EQ(arena.sample(a, u), 0u);
    EXPECT_EQ(arena.sample(b, u), 1u);
  }
}

TEST(AliasArena, GuardsDegenerateEdgeUniform) {
  // u arbitrarily close to 1 must not index past the last slot.
  AliasArena arena;
  const auto id = arena.add(std::vector<double>{3.0, 2.0, 1.0});
  const std::size_t s = arena.sample(id, 0x1.fffffffffffffp-1);
  EXPECT_LT(s, 3u);
}

TEST(AliasArena, RejectsInvalidWeights) {
  AliasArena arena;
  EXPECT_THROW(arena.add(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(arena.add(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(arena.add(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
  // Failed adds must not leak a partial table into the arena.
  EXPECT_EQ(arena.table_count(), 0u);
  EXPECT_EQ(arena.slot_count(), 0u);
}

TEST(AliasArena, PreservesDistribution) {
  AliasArena arena;
  const std::vector<double> weights = {5.0, 3.0, 2.0};
  const auto id = arena.add(weights);
  std::vector<std::uint64_t> counts(weights.size(), 0);
  Xoshiro256 rng(7);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    ++counts[arena.sample(id, u)];
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = kTrials * weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, 5.0 * 0.05 * expected)
        << "bin " << i;
  }
}

}  // namespace
}  // namespace rds
