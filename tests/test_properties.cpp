// Property-based sweeps over randomized cluster configurations.
//
// These parameterized suites are the heavy artillery behind the paper's
// claims: for *arbitrary* heterogeneous capacity vectors, Redundant Share is
// exactly fair (checked against the enumerated decision tree, not sampling),
// keeps the redundancy invariant, and stays within the adaptivity bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/core/fast_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/trivial_replication.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

struct PropertyCase {
  unsigned k;
  std::uint64_t seed;
  bool heavy_skew;  ///< include bins orders of magnitude apart
};

std::vector<std::uint64_t> random_capacities(Xoshiro256& rng, std::size_t n,
                                             bool heavy_skew) {
  std::vector<std::uint64_t> caps;
  for (std::size_t i = 0; i < n; ++i) {
    if (heavy_skew && rng.next_below(4) == 0) {
      caps.push_back(1 + rng.next_below(100'000));
    } else {
      caps.push_back(1 + rng.next_below(100));
    }
  }
  std::ranges::sort(caps, std::greater<>());
  return caps;
}

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps,
                           std::uint64_t uid_base = 0) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({uid_base + i, caps[i], ""});
  }
  return ClusterConfig(std::move(devices));
}

class RedundantShareProperty : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(RedundantShareProperty, ExactFairnessOnRandomConfigurations) {
  const PropertyCase c = GetParam();
  Xoshiro256 rng(c.seed);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n =
        c.k + 1 + static_cast<std::size_t>(rng.next_below(9));
    const std::vector<std::uint64_t> caps =
        random_capacities(rng, n, c.heavy_skew);
    const RedundantShare s(cluster_from(caps), c.k);

    const std::vector<double> expected = s.exact_expected_copies();
    const std::span<const double> adjusted = s.adjusted_capacities();
    const double total =
        std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double target = static_cast<double>(c.k) * adjusted[i] / total;
      ASSERT_NEAR(expected[i], target, 1e-9)
          << "k=" << c.k << " trial=" << trial << " bin=" << i
          << " caps[0]=" << caps[0];
    }
  }
}

TEST_P(RedundantShareProperty, RedundancyInvariantHolds) {
  const PropertyCase c = GetParam();
  Xoshiro256 rng(c.seed ^ 0xABCD);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n =
        c.k + static_cast<std::size_t>(rng.next_below(12));
    const std::vector<std::uint64_t> caps =
        random_capacities(rng, n, c.heavy_skew);
    const ClusterConfig config = cluster_from(caps);
    const RedundantShare slow(config, c.k);
    const FastRedundantShare fast(config, c.k);
    const BlockMap ms(slow, 2'000);
    const BlockMap mf(fast, 2'000);
    ASSERT_TRUE(ms.redundancy_holds());
    ASSERT_TRUE(mf.redundancy_holds());
  }
}

TEST_P(RedundantShareProperty, AdaptivityWithinKSquaredBound) {
  // Lemma 3.5: k^2-competitive in expectation for single insert/delete.
  const PropertyCase c = GetParam();
  Xoshiro256 rng(c.seed ^ 0x5EED);
  constexpr std::uint64_t kBalls = 8'000;
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n =
        c.k + 2 + static_cast<std::size_t>(rng.next_below(8));
    const std::vector<std::uint64_t> caps =
        random_capacities(rng, n, false);
    const ClusterConfig before = cluster_from(caps);
    ClusterConfig after = before;
    if (rng.next_below(2) == 0) {
      after.add_device({1000, 1 + rng.next_below(150), ""});
    } else {
      after.remove_device(after[after.size() - 1].uid);
    }
    const RedundantShare sb(before, c.k);
    const RedundantShare sa(after, c.k);
    const MovementReport report =
        diff_placements(BlockMap(sb, kBalls), BlockMap(sa, kBalls));
    ASSERT_GT(report.optimal_moves, 0u);
    // Expected-case bound with sampling headroom.  For k == 1 the paper's
    // k^2 bound does not apply (it concerns the replication chain); the
    // single-copy chain behaves like LinMirror's first copy, whose measured
    // ratio stays below the Lemma 3.2 constant of 4.
    const double bound = c.k == 1 ? 5.0 : static_cast<double>(c.k) * c.k + 1.0;
    ASSERT_LT(report.competitive_set(), bound)
        << "k=" << c.k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedundantShareProperty,
    ::testing::Values(PropertyCase{1, 101, false}, PropertyCase{1, 102, true},
                      PropertyCase{2, 201, false}, PropertyCase{2, 202, true},
                      PropertyCase{2, 203, false}, PropertyCase{3, 301, false},
                      PropertyCase{3, 302, true}, PropertyCase{4, 401, false},
                      PropertyCase{4, 402, true}, PropertyCase{5, 501, false}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "k" + std::to_string(info.param.k) + "_seed" +
             std::to_string(info.param.seed) +
             (info.param.heavy_skew ? "_skewed" : "_mild");
    });

// ---------------------------------------------------------------------------
// Capacity lemma properties: Algorithm 1's bound is achieved by the greedy
// packer and never exceeded, on random integer configurations.
class CapacityProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CapacityProperty, AdjustedBoundIsTight) {
  const unsigned k = GetParam();
  Xoshiro256 rng(k * 7919);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = k + static_cast<std::size_t>(rng.next_below(8));
    std::vector<std::uint64_t> caps;
    for (std::size_t i = 0; i < n; ++i) caps.push_back(1 + rng.next_below(60));
    std::ranges::sort(caps, std::greater<>());
    const std::vector<double> capsd(caps.begin(), caps.end());
    const auto bound = static_cast<std::uint64_t>(
        std::floor(max_balls(capsd, k) + 1e-9));
    ASSERT_TRUE(greedy_pack(caps, k, bound).has_value())
        << "k=" << k << " bound=" << bound;
    ASSERT_FALSE(greedy_pack(caps, k, bound + 1).has_value())
        << "k=" << k << " bound=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, CapacityProperty,
                         ::testing::Values(2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// The trivial strategy under-serves the biggest bin on skewed systems for
// every k (Lemma 2.4), while Redundant Share does not.
class TrivialLossProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(TrivialLossProperty, BiggestBinUnderServed) {
  const unsigned k = GetParam();
  // One big bin of 200 + 2k small bins of 100: fair share of the big bin is
  // k/(k+1) copies per ball -- feasible (k * 200 <= total), yet double the
  // share of any other bin, so Lemma 2.4 applies.
  std::vector<std::uint64_t> caps{200};
  for (unsigned i = 0; i < 2 * k; ++i) caps.push_back(100);
  const ClusterConfig config = cluster_from(caps);
  const DeviceId big = config[0].uid;

  constexpr std::uint64_t kBalls = 60'000;
  const TrivialReplication trivial(config, k);
  const RedundantShare rs(config, k);
  const double trivial_load =
      static_cast<double>(BlockMap(trivial, kBalls).count_on(big)) / kBalls;
  const double rs_load =
      static_cast<double>(BlockMap(rs, kBalls).count_on(big)) / kBalls;

  const double fair =
      static_cast<double>(k) * 200.0 / (200.0 + 100.0 * 2 * k);
  EXPECT_LT(trivial_load, fair - 0.01)
      << "trivial strategy failed to show the capacity loss, k=" << k;
  EXPECT_NEAR(rs_load, fair, 0.02) << "redundant share not fair, k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, TrivialLossProperty,
                         ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace rds
