#include "src/storage/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/erasure/rdp.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

ClusterConfig pool_config() {
  return ClusterConfig({{1, 3000, "a"},
                        {2, 2500, "b"},
                        {3, 2000, "c"},
                        {4, 1500, "d"},
                        {5, 1000, "e"},
                        {6, 1000, "f"}});
}

Bytes payload(std::uint64_t block, std::uint64_t salt) {
  Bytes b(80);
  Xoshiro256 rng(block * 17 + salt);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(SchemeFactory, RoundTripsEveryScheme) {
  for (const auto& name :
       {std::string("mirror(k=3)"), std::string("reed-solomon(4+2)"),
        std::string("evenodd(p=5)"), std::string("rdp(p=7)")}) {
    const auto scheme = make_scheme_from_name(name);
    EXPECT_EQ(scheme->name(), name);
  }
  EXPECT_THROW((void)make_scheme_from_name("raid0"), std::invalid_argument);
  EXPECT_THROW((void)make_scheme_from_name("mirror(k=x)"),
               std::invalid_argument);
}

TEST(Snapshot, DiskRoundTrip) {
  VirtualDisk disk(pool_config(), std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 200; ++b) disk.write(b, payload(b, 1));

  std::stringstream stream;
  Snapshot::save_disk(disk, stream);
  VirtualDisk restored = Snapshot::load_disk(stream);

  EXPECT_EQ(restored.block_count(), 200u);
  EXPECT_EQ(restored.scheme().name(), "reed-solomon(3+2)");
  EXPECT_TRUE(restored.config() == disk.config());
  for (std::uint64_t b = 0; b < 200; ++b) {
    EXPECT_EQ(restored.read(b), payload(b, 1));
  }
  EXPECT_TRUE(restored.scrub().clean());
  // The restored disk is fully operational: reshape and rebuild work.
  restored.add_device({9, 4000, "post-restore"});
  EXPECT_EQ(restored.read(7), payload(7, 1));
}

TEST(Snapshot, DegradedStateSurvivesRoundTrip) {
  VirtualDisk disk(pool_config(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 100; ++b) disk.write(b, payload(b, 2));
  disk.fail_device(2);

  std::stringstream stream;
  Snapshot::save_disk(disk, stream);
  VirtualDisk restored = Snapshot::load_disk(stream);

  // Still degraded after restore; rebuild heals it.
  EXPECT_FALSE(restored.scrub().clean());
  EXPECT_GT(restored.rebuild(), 0u);
  for (std::uint64_t b = 0; b < 100; ++b) {
    EXPECT_EQ(restored.read(b), payload(b, 2));
  }
  EXPECT_TRUE(restored.scrub().clean());
}

TEST(Snapshot, ChecksumsSurviveRoundTrip) {
  VirtualDisk disk(pool_config(), std::make_shared<MirroringScheme>(3));
  disk.write(5, payload(5, 3));
  std::stringstream stream;
  Snapshot::save_disk(disk, stream);
  VirtualDisk restored = Snapshot::load_disk(stream);
  // Corrupt one restored fragment: the restored checksums must catch it.
  ASSERT_TRUE(restored.corrupt_fragment(5, 0));
  EXPECT_EQ(restored.read(5), payload(5, 3));
  EXPECT_EQ(restored.stats().checksum_failures, 1u);
}

TEST(Snapshot, PoolRoundTrip) {
  StoragePool pool(pool_config());
  pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  pool.create_volume("b", std::make_shared<EvenOddScheme>(3));
  for (std::uint64_t blk = 0; blk < 120; ++blk) {
    pool.volume("a").write(blk, payload(blk, 10));
    pool.volume("b").write(blk, payload(blk, 20));
  }

  std::stringstream stream;
  Snapshot::save_pool(pool, stream);
  StoragePool restored = Snapshot::load_pool(stream);

  EXPECT_EQ(restored.volume_count(), 2u);
  for (std::uint64_t blk = 0; blk < 120; ++blk) {
    EXPECT_EQ(restored.volume("a").read(blk), payload(blk, 10));
    EXPECT_EQ(restored.volume("b").read(blk), payload(blk, 20));
  }
  EXPECT_TRUE(restored.volume("a").scrub().clean());
  EXPECT_TRUE(restored.volume("b").scrub().clean());

  // Volumes still share stores: pool-wide failure degrades both.
  restored.fail_device(1);
  EXPECT_GT(restored.rebuild(), 0u);
  EXPECT_EQ(restored.volume("a").read(3), payload(3, 10));
  // New volumes get fresh ids (the counter was persisted).
  VirtualDisk& c =
      restored.create_volume("c", std::make_shared<MirroringScheme>(2));
  EXPECT_NE(c.volume_id(), restored.volume("a").volume_id());
  EXPECT_NE(c.volume_id(), restored.volume("b").volume_id());
}

TEST(Snapshot, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW((void)Snapshot::load_disk(empty), std::runtime_error);
  std::stringstream wrong("POOLRDS1xxxxxxxxxxxxxxxx");
  EXPECT_THROW((void)Snapshot::load_disk(wrong), std::runtime_error);

  // Truncated stream: valid header, missing body.
  VirtualDisk disk(pool_config(), std::make_shared<MirroringScheme>(2));
  disk.write(1, payload(1, 1));
  std::stringstream stream;
  Snapshot::save_disk(disk, stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)Snapshot::load_disk(truncated), std::runtime_error);
}

TEST(Snapshot, SaveDuringReshapeRejected) {
  VirtualDisk disk(pool_config(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 50; ++b) disk.write(b, payload(b, 1));
  ClusterConfig next = disk.config();
  next.add_device({9, 2500, ""});
  disk.begin_reshape(next);
  std::stringstream stream;
  EXPECT_THROW(Snapshot::save_disk(disk, stream), std::runtime_error);
}

}  // namespace
}  // namespace rds
