#include "src/cluster/cluster_config.hpp"

#include <gtest/gtest.h>

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig({{1, 100, "a"}, {2, 300, "b"}, {3, 200, "c"}});
}

TEST(ClusterConfig, CanonicalOrderIsCapacityDescending) {
  const ClusterConfig c = make_cluster();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].uid, 2u);
  EXPECT_EQ(c[1].uid, 3u);
  EXPECT_EQ(c[2].uid, 1u);
}

TEST(ClusterConfig, TiesBrokenByUid) {
  const ClusterConfig c({{5, 100, ""}, {2, 100, ""}, {9, 100, ""}});
  EXPECT_EQ(c[0].uid, 2u);
  EXPECT_EQ(c[1].uid, 5u);
  EXPECT_EQ(c[2].uid, 9u);
}

TEST(ClusterConfig, SuffixSums) {
  const ClusterConfig c = make_cluster();
  EXPECT_EQ(c.total_capacity(), 600u);
  EXPECT_EQ(c.suffix_capacity(0), 600u);
  EXPECT_EQ(c.suffix_capacity(1), 300u);
  EXPECT_EQ(c.suffix_capacity(2), 100u);
  EXPECT_EQ(c.suffix_capacity(3), 0u);
}

TEST(ClusterConfig, RelativeCapacity) {
  const ClusterConfig c = make_cluster();
  EXPECT_DOUBLE_EQ(c.relative_capacity(0), 0.5);
  EXPECT_DOUBLE_EQ(c.relative_capacity(2), 100.0 / 600.0);
}

TEST(ClusterConfig, IndexOf) {
  const ClusterConfig c = make_cluster();
  EXPECT_EQ(c.index_of(2).value(), 0u);
  EXPECT_EQ(c.index_of(1).value(), 2u);
  EXPECT_FALSE(c.index_of(99).has_value());
  EXPECT_TRUE(c.contains(3));
  EXPECT_FALSE(c.contains(4));
}

TEST(ClusterConfig, RejectsDuplicateUid) {
  EXPECT_THROW(ClusterConfig({{1, 10, ""}, {1, 20, ""}}),
               std::invalid_argument);
}

TEST(ClusterConfig, RejectsZeroCapacity) {
  EXPECT_THROW(ClusterConfig({{1, 0, ""}}), std::invalid_argument);
}

TEST(ClusterConfig, RejectsReservedUid) {
  EXPECT_THROW(ClusterConfig({{kNoDevice, 10, ""}}), std::invalid_argument);
}

TEST(ClusterConfig, AddDevice) {
  ClusterConfig c = make_cluster();
  const std::uint64_t v0 = c.version();
  c.add_device({4, 400, "d"});
  EXPECT_GT(c.version(), v0);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].uid, 4u);  // re-sorted
  EXPECT_EQ(c.total_capacity(), 1000u);
  EXPECT_THROW(c.add_device({4, 1, ""}), std::invalid_argument);
}

TEST(ClusterConfig, RemoveDevice) {
  ClusterConfig c = make_cluster();
  c.remove_device(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.total_capacity(), 300u);
  EXPECT_THROW(c.remove_device(2), std::out_of_range);
}

TEST(ClusterConfig, ResizeDevice) {
  ClusterConfig c = make_cluster();
  c.resize_device(1, 1000);
  EXPECT_EQ(c[0].uid, 1u);  // now biggest
  EXPECT_EQ(c.total_capacity(), 1500u);
  EXPECT_THROW(c.resize_device(1, 0), std::invalid_argument);
  EXPECT_THROW(c.resize_device(77, 10), std::out_of_range);
}

TEST(ClusterConfig, CapacitiesVector) {
  const ClusterConfig c = make_cluster();
  const std::vector<double> caps = c.capacities();
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_EQ(caps[0], 300.0);
  EXPECT_EQ(caps[1], 200.0);
  EXPECT_EQ(caps[2], 100.0);
}

TEST(ClusterConfig, EqualityIgnoresHistory) {
  ClusterConfig a = make_cluster();
  ClusterConfig b = make_cluster();
  a.add_device({9, 50, ""});
  a.remove_device(9);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace rds
