// rds_analyze contract tests: every flow rule fires on its tripping
// fixture and stays quiet on its passing twin, suppressions carry over
// from rds_lint, the reporting back ends round-trip, and the committed
// baseline reproduces byte-for-byte over the tree
// (docs/static_analysis.md).
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/rds_analyze/analyze.hpp"
#include "tools/rds_analyze/report.hpp"

namespace {

using rds::analyze::Analyzer;
using rds::analyze::Finding;
using rds::analyze::Options;

std::string fixture_path(const std::string& name) {
  return std::string(RDS_LINT_FIXTURE_DIR) + "/flow/" + name;
}

std::vector<Finding> analyze_fixture(const std::string& name,
                                     const Options& opts = {}) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.add_file(fixture_path(name)));
  EXPECT_TRUE(analyzer.io_errors().empty());
  return analyzer.run(opts);
}

std::set<std::string> rules_of(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

std::vector<int> lines_of(const std::vector<Finding>& findings) {
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  return lines;
}

TEST(RdsAnalyze, RuleListIsComplete) {
  const std::vector<std::string> expected = {
      "lock-order", "journal-protocol", "metric-balance", "result-flow",
      "capacity-arith"};
  EXPECT_EQ(rds::analyze::rule_ids(), expected);
}

TEST(RdsAnalyze, LockOrderTrips) {
  const auto findings = analyze_fixture("lock_order_bad.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"lock-order"});
  // One cycle finding, one pool/volume inversion finding.
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(findings[1].message.find("inverts"), std::string::npos);
}

TEST(RdsAnalyze, LockOrderPasses) {
  EXPECT_TRUE(analyze_fixture("lock_order_good.cpp").empty());
}

TEST(RdsAnalyze, JournalProtocolTrips) {
  const auto findings = analyze_fixture("journal_bad.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"journal-protocol"});
  EXPECT_NE(findings[0].message.find("ignored"), std::string::npos);
  EXPECT_NE(findings[1].message.find("mutation"), std::string::npos);
}

TEST(RdsAnalyze, JournalProtocolPasses) {
  EXPECT_TRUE(analyze_fixture("journal_good.cpp").empty());
}

TEST(RdsAnalyze, MetricBalanceTripsOnHistoricalBatchPlacerShape) {
  const auto findings = analyze_fixture("gauge_leak_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-balance");
  // The finding points at the add(), not at the leaky call after it.
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find("inflight_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("GaugeGuard"), std::string::npos);
}

TEST(RdsAnalyze, MetricBalancePassesGuardAndManualBalance) {
  EXPECT_TRUE(analyze_fixture("gauge_leak_good.cpp").empty());
}

TEST(RdsAnalyze, MetricBalanceTripsOnLoadSimInflightShape) {
  // The read-path simulator's per-request in-flight gauge: a throwing
  // selector call between add() and sub() leaks on the exception edge.
  const auto findings = analyze_fixture("loadsim_gauge_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-balance");
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find("inflight_"), std::string::npos);
}

TEST(RdsAnalyze, MetricBalancePassesLoadSimGuardShape) {
  // The guard shape src/sim/load_sim.cpp uses, plus the manual balance.
  EXPECT_TRUE(analyze_fixture("loadsim_gauge_good.cpp").empty());
}

TEST(RdsAnalyze, ResultFlowTrips) {
  const auto findings = analyze_fixture("result_flow_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "result-flow");
  EXPECT_NE(findings[0].message.find("'fetched'"), std::string::npos);
}

TEST(RdsAnalyze, ResultFlowPasses) {
  EXPECT_TRUE(analyze_fixture("result_flow_good.cpp").empty());
}

TEST(RdsAnalyze, CapacityArithTrips) {
  const auto findings = analyze_fixture("capacity_math_bad.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"capacity-arith"});
  EXPECT_EQ(lines_of(findings), (std::vector<int>{14, 20, 25}));
}

TEST(RdsAnalyze, CapacityArithPassesCheckedAndDoubleMath) {
  EXPECT_TRUE(analyze_fixture("capacity_math_good.cpp").empty());
}

TEST(RdsAnalyze, SuppressionsCarryOverFromRdsLint) {
  EXPECT_TRUE(analyze_fixture("suppressed_capacity.cpp").empty());
}

TEST(RdsAnalyze, OnlyRulesFilterApplies) {
  Options opts;
  opts.only_rules = {"result-flow"};
  // A fixture that trips capacity-arith yields nothing under the filter.
  EXPECT_TRUE(analyze_fixture("capacity_math_bad.cpp", opts).empty());
}

TEST(RdsAnalyze, SarifContainsEveryFinding) {
  const auto findings = analyze_fixture("capacity_math_bad.cpp");
  const std::string sarif =
      rds::analyze::to_sarif(findings, RDS_LINT_FIXTURE_DIR);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"capacity-arith\""), std::string::npos);
  EXPECT_NE(sarif.find("flow/capacity_math_bad.cpp"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 14"), std::string::npos);
}

TEST(RdsAnalyze, BaselineRoundTripsAndRatchets) {
  const auto findings = analyze_fixture("capacity_math_bad.cpp");
  ASSERT_EQ(findings.size(), 3u);
  const std::string root = RDS_LINT_FIXTURE_DIR;
  const std::string text = rds::analyze::format_baseline(findings, root);
  const auto keys = rds::analyze::parse_baseline(text);
  EXPECT_EQ(keys.size(), 3u);
  // Everything baselined: nothing new.
  EXPECT_TRUE(rds::analyze::new_findings(findings, keys, root).empty());
  // Drop one key: exactly that finding comes back.
  const auto partial =
      std::vector<std::string>(keys.begin(), keys.begin() + 2);
  EXPECT_EQ(rds::analyze::new_findings(findings, partial, root).size(), 1u);
}

// The committed baseline must reproduce byte-for-byte from the tree the
// analyzer ships with -- the analyze_tree ctest enforces "no new
// findings", this enforces "no stale baseline" too.
TEST(RdsAnalyze, CommittedBaselineReproduces) {
  const std::string root = RDS_LINT_SOURCE_DIR;
  const std::vector<std::string> sources = rds::analyze::collect_sources(
      {root + "/src", root + "/tools", root + "/bench"});
  ASSERT_FALSE(sources.empty());
  Analyzer analyzer;
  for (const std::string& s : sources) analyzer.add_file(s);
  ASSERT_TRUE(analyzer.io_errors().empty());
  const std::string regenerated =
      rds::analyze::format_baseline(analyzer.run(), root);

  std::ifstream in(root + "/tools/rds_analyze/baseline.txt",
                   std::ios::binary);
  ASSERT_TRUE(in) << "missing tools/rds_analyze/baseline.txt";
  std::ostringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(regenerated, committed.str())
      << "stale baseline: regenerate with rds_analyze --emit-baseline";
}

}  // namespace
