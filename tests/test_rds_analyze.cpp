// rds_analyze contract tests: every flow rule fires on its tripping
// fixture and stays quiet on its passing twin, suppressions carry over
// from rds_lint, the reporting back ends round-trip, and the committed
// baseline reproduces byte-for-byte over the tree
// (docs/static_analysis.md).
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/rds_analyze/analyze.hpp"
#include "tools/rds_analyze/report.hpp"

namespace {

using rds::analyze::Analyzer;
using rds::analyze::Finding;
using rds::analyze::Options;

std::string fixture_path(const std::string& name) {
  return std::string(RDS_LINT_FIXTURE_DIR) + "/flow/" + name;
}

std::vector<Finding> analyze_fixture(const std::string& name,
                                     const Options& opts = {}) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.add_file(fixture_path(name)));
  EXPECT_TRUE(analyzer.io_errors().empty());
  return analyzer.run(opts);
}

std::set<std::string> rules_of(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

std::vector<int> lines_of(const std::vector<Finding>& findings) {
  std::vector<int> lines;
  for (const Finding& f : findings) lines.push_back(f.line);
  return lines;
}

TEST(RdsAnalyze, RuleListIsComplete) {
  const std::vector<std::string> expected = {
      "lock-order",     "journal-protocol",      "metric-balance",
      "result-flow",    "capacity-arith",        "rcu-escape",
      "lock-held-across-call", "stale-suppression"};
  EXPECT_EQ(rds::analyze::rule_ids(), expected);
}

TEST(RdsAnalyze, LockOrderTrips) {
  const auto findings = analyze_fixture("lock_order_bad.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"lock-order"});
  // One cycle finding, one pool/volume inversion finding.
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(findings[1].message.find("inverts"), std::string::npos);
}

TEST(RdsAnalyze, LockOrderPasses) {
  EXPECT_TRUE(analyze_fixture("lock_order_good.cpp").empty());
}

TEST(RdsAnalyze, JournalProtocolTrips) {
  const auto findings = analyze_fixture("journal_bad.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"journal-protocol"});
  EXPECT_NE(findings[0].message.find("ignored"), std::string::npos);
  EXPECT_NE(findings[1].message.find("mutation"), std::string::npos);
}

TEST(RdsAnalyze, JournalProtocolPasses) {
  EXPECT_TRUE(analyze_fixture("journal_good.cpp").empty());
}

TEST(RdsAnalyze, MetricBalanceTripsOnHistoricalBatchPlacerShape) {
  const auto findings = analyze_fixture("gauge_leak_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-balance");
  // The finding points at the add(), not at the leaky call after it.
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find("inflight_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("GaugeGuard"), std::string::npos);
}

TEST(RdsAnalyze, MetricBalancePassesGuardAndManualBalance) {
  EXPECT_TRUE(analyze_fixture("gauge_leak_good.cpp").empty());
}

TEST(RdsAnalyze, MetricBalanceTripsOnLoadSimInflightShape) {
  // The read-path simulator's per-request in-flight gauge: a throwing
  // selector call between add() and sub() leaks on the exception edge.
  const auto findings = analyze_fixture("loadsim_gauge_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-balance");
  EXPECT_EQ(findings[0].line, 15);
  EXPECT_NE(findings[0].message.find("inflight_"), std::string::npos);
}

TEST(RdsAnalyze, MetricBalancePassesLoadSimGuardShape) {
  // The guard shape src/sim/load_sim.cpp uses, plus the manual balance.
  EXPECT_TRUE(analyze_fixture("loadsim_gauge_good.cpp").empty());
}

TEST(RdsAnalyze, ResultFlowTrips) {
  const auto findings = analyze_fixture("result_flow_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "result-flow");
  EXPECT_NE(findings[0].message.find("'fetched'"), std::string::npos);
}

TEST(RdsAnalyze, ResultFlowPasses) {
  EXPECT_TRUE(analyze_fixture("result_flow_good.cpp").empty());
}

TEST(RdsAnalyze, CapacityArithTrips) {
  const auto findings = analyze_fixture("capacity_math_bad.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"capacity-arith"});
  EXPECT_EQ(lines_of(findings), (std::vector<int>{14, 20, 25}));
}

TEST(RdsAnalyze, CapacityArithPassesCheckedAndDoubleMath) {
  EXPECT_TRUE(analyze_fixture("capacity_math_good.cpp").empty());
}

TEST(RdsAnalyze, RcuEscapeMemberStoreTrips) {
  const auto findings = analyze_fixture("rcu_escape_member_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rcu-escape");
  EXPECT_EQ(findings[0].line, 11);
  EXPECT_NE(findings[0].message.find("'last_'"), std::string::npos);
}

TEST(RdsAnalyze, RcuEscapeMemberStorePasses) {
  // Copied data into members and the publishing store() are both fine.
  EXPECT_TRUE(analyze_fixture("rcu_escape_member_good.cpp").empty());
}

TEST(RdsAnalyze, RcuEscapeLambdaCaptureTrips) {
  const auto findings = analyze_fixture("rcu_escape_lambda_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rcu-escape");
  EXPECT_NE(findings[0].message.find("'submit'"), std::string::npos);
}

TEST(RdsAnalyze, RcuEscapeLambdaCapturePasses) {
  EXPECT_TRUE(analyze_fixture("rcu_escape_lambda_good.cpp").empty());
}

TEST(RdsAnalyze, RcuEscapeRawReturnTrips) {
  const auto findings = analyze_fixture("rcu_escape_return_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rcu-escape");
  EXPECT_NE(findings[0].message.find("raw view"), std::string::npos);
}

TEST(RdsAnalyze, RcuEscapeRawReturnPasses) {
  // Returning the shared handle or a plain copy is the supported shape.
  EXPECT_TRUE(analyze_fixture("rcu_escape_return_good.cpp").empty());
}

TEST(RdsAnalyze, LockHeldAcrossCallTripsDirectOps) {
  const auto findings = analyze_fixture("lock_across_call_bad.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings),
            std::set<std::string>{"lock-held-across-call"});
  EXPECT_EQ(lines_of(findings), (std::vector<int>{12, 17}));
  EXPECT_NE(findings[0].message.find("fsync"), std::string::npos);
  EXPECT_NE(findings[1].message.find("sleep"), std::string::npos);
}

TEST(RdsAnalyze, LockHeldAcrossCallPassesOutsideGuard) {
  EXPECT_TRUE(analyze_fixture("lock_across_call_good.cpp").empty());
}

TEST(RdsAnalyze, LockHeldAcrossHelperTripsInterprocedurally) {
  // The callee blocks unguarded; the pairing is created at the call site.
  const auto findings = analyze_fixture("lock_across_helper_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-held-across-call");
  EXPECT_EQ(findings[0].line, 13);
  EXPECT_NE(findings[0].message.find("Pool::flush_data"), std::string::npos);
}

TEST(RdsAnalyze, LockHeldAcrossHelperPasses) {
  EXPECT_TRUE(analyze_fixture("lock_across_helper_good.cpp").empty());
}

TEST(RdsAnalyze, RecursiveSccSummaryConverges) {
  // pump <-> drain form an SCC; drain's fsync must propagate to pump's
  // summary through the cycle before commit's held call can be flagged.
  const auto findings = analyze_fixture("scc_convergence_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-held-across-call");
  EXPECT_NE(findings[0].message.find("Drainer::pump"), std::string::npos);
  EXPECT_NE(findings[0].message.find("fsync"), std::string::npos);
}

TEST(RdsAnalyze, RecursiveSccPassesOutsideGuard) {
  EXPECT_TRUE(analyze_fixture("scc_convergence_good.cpp").empty());
}

TEST(RdsAnalyze, InterproceduralGaugeLeakTrips) {
  // finish() subs on all of ITS paths, but the throwing call before it
  // leaks the add on the exception edge.
  const auto findings = analyze_fixture("interproc_gauge_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-balance");
  EXPECT_EQ(findings[0].line, 11);
}

TEST(RdsAnalyze, InterproceduralGaugeBalancePasses) {
  // The callee's subs-on-all-paths summary balances the add at its call
  // site when nothing throwing sits in between.
  EXPECT_TRUE(analyze_fixture("interproc_gauge_good.cpp").empty());
}

TEST(RdsAnalyze, ResultIgnoredByCalleeTrips) {
  const auto findings = analyze_fixture("result_callee_bad.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"result-flow"});
  // One at the drop in the caller, one at the callee's ignored parameter.
  EXPECT_EQ(lines_of(findings), (std::vector<int>{13, 18}));
}

TEST(RdsAnalyze, ResultConsumedInCalleePasses) {
  // Passing the Result to a helper that inspects it IS consumption.
  EXPECT_TRUE(analyze_fixture("result_callee_good.cpp").empty());
}

TEST(RdsAnalyze, FactoryTypedCallResolutionTrips) {
  const auto findings = analyze_fixture("factory_resolution_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-held-across-call");
  EXPECT_NE(findings[0].message.find("Selector::pick"), std::string::npos);
}

TEST(RdsAnalyze, FactoryTypedCallResolutionPasses) {
  EXPECT_TRUE(analyze_fixture("factory_resolution_good.cpp").empty());
}

TEST(RdsAnalyze, WrapperPairResolutionTrips) {
  // refresh() is declared-only; the blocking summary comes from the
  // try_refresh twin through the wrapper edge.
  const auto findings = analyze_fixture("wrapper_pair_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-held-across-call");
  EXPECT_NE(findings[0].message.find("Index::try_refresh"),
            std::string::npos);
}

TEST(RdsAnalyze, WrapperPairResolutionPasses) {
  EXPECT_TRUE(analyze_fixture("wrapper_pair_good.cpp").empty());
}

// ---- call-graph construction and summary propagation ------------------------

TEST(RdsAnalyze, CallGraphBuildsWrapperEdges) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("wrapper_pair_bad.cpp")));
  (void)analyzer.run();
  bool wrapper_edge = false;
  for (const auto& [from, outs] : analyzer.callgraph().edges()) {
    for (const rds::analyze::CallEdge& e : outs) {
      if (e.to == rds::analyze::MethodKey{"Index", "try_refresh"} &&
          e.kind == rds::analyze::EdgeKind::kWrapper) {
        wrapper_edge = true;
      }
    }
  }
  EXPECT_TRUE(wrapper_edge);
}

TEST(RdsAnalyze, CallGraphBuildsFactoryEdges) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("factory_resolution_bad.cpp")));
  (void)analyzer.run();
  bool factory_edge = false;
  const auto& edges = analyzer.callgraph().edges();
  const auto it =
      edges.find(rds::analyze::MethodKey{"Balancer", "rebalance"});
  ASSERT_NE(it, edges.end());
  for (const rds::analyze::CallEdge& e : it->second) {
    if (e.to == rds::analyze::MethodKey{"Selector", "pick"} &&
        e.kind == rds::analyze::EdgeKind::kFactory) {
      factory_edge = true;
    }
  }
  EXPECT_TRUE(factory_edge);
}

TEST(RdsAnalyze, SccCondensationIsCalleeFirst) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("scc_convergence_bad.cpp")));
  (void)analyzer.run();
  const auto& sccs = analyzer.callgraph().sccs();
  int pump_scc = -1;
  int commit_scc = -1;
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    for (const rds::analyze::MethodKey& k : sccs[i]) {
      if (k == rds::analyze::MethodKey{"Drainer", "pump"}) {
        pump_scc = static_cast<int>(i);
        // The mutual recursion collapses into one component.
        EXPECT_NE(std::find(sccs[i].begin(), sccs[i].end(),
                            (rds::analyze::MethodKey{"Drainer", "drain"})),
                  sccs[i].end());
      }
      if (k == rds::analyze::MethodKey{"Drainer", "commit"}) {
        commit_scc = static_cast<int>(i);
      }
    }
  }
  ASSERT_GE(pump_scc, 0);
  ASSERT_GE(commit_scc, 0);
  EXPECT_LT(pump_scc, commit_scc);  // callees before callers
}

TEST(RdsAnalyze, SummariesPropagateBlockingThroughRecursion) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("scc_convergence_bad.cpp")));
  (void)analyzer.run();
  const rds::analyze::FnSummary& pump =
      analyzer.summaries().of({"Drainer", "pump"});
  EXPECT_TRUE(pump.blocking_unguarded);
  EXPECT_TRUE(pump.required.empty());
}

TEST(RdsAnalyze, SummariesPropagateTransitiveLocks) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("lock_order_bad.cpp")));
  (void)analyzer.run();
  // B::pong locks its own mutex and calls A::poke, which locks A's.
  const rds::analyze::FnSummary& pong =
      analyzer.summaries().of({"B", "pong"});
  EXPECT_TRUE(pong.locks.contains("B::mu_"));
  EXPECT_TRUE(pong.locks.contains("A::mu_"));
}

TEST(RdsAnalyze, SummariesRecordGaugeAndResultFacts) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("interproc_gauge_bad.cpp")));
  ASSERT_TRUE(analyzer.add_file(fixture_path("result_callee_bad.cpp")));
  ASSERT_TRUE(analyzer.add_file(fixture_path("rcu_escape_return_good.cpp")));
  (void)analyzer.run();
  const rds::analyze::Summaries& sums = analyzer.summaries();
  EXPECT_TRUE(
      sums.of({"Placer", "finish"}).subs_on_all_paths.contains("inflight_"));
  EXPECT_TRUE(sums.of({"Pool", "log_only"}).has_result_params);
  EXPECT_FALSE(sums.of({"Pool", "log_only"}).consumes_result_params);
  EXPECT_TRUE(sums.of({"Reader", "borrow"}).returns_epoch);
}

TEST(RdsAnalyze, CallgraphDumpsContainMethodsEdgesAndSccs) {
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.add_file(fixture_path("wrapper_pair_bad.cpp")));
  (void)analyzer.run();
  const std::string dot = rds::analyze::callgraph_to_dot(
      analyzer.callgraph(), analyzer.summaries());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Index::try_refresh"), std::string::npos);
  EXPECT_NE(dot.find("wrapper"), std::string::npos);
  const std::string json = rds::analyze::callgraph_to_json(
      analyzer.callgraph(), analyzer.summaries());
  EXPECT_NE(json.find("\"kind\": \"wrapper\""), std::string::npos);
  EXPECT_NE(json.find("\"sccs\""), std::string::npos);
  EXPECT_NE(json.find("\"blocking_unguarded\": true"), std::string::npos);
}

TEST(RdsAnalyze, SuppressionsCarryOverFromRdsLint) {
  EXPECT_TRUE(analyze_fixture("suppressed_capacity.cpp").empty());
}

TEST(RdsAnalyze, OnlyRulesFilterApplies) {
  Options opts;
  opts.only_rules = {"result-flow"};
  // A fixture that trips capacity-arith yields nothing under the filter.
  EXPECT_TRUE(analyze_fixture("capacity_math_bad.cpp", opts).empty());
}

TEST(RdsAnalyze, SarifContainsEveryFinding) {
  const auto findings = analyze_fixture("capacity_math_bad.cpp");
  const std::string sarif =
      rds::analyze::to_sarif(findings, RDS_LINT_FIXTURE_DIR);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"capacity-arith\""), std::string::npos);
  EXPECT_NE(sarif.find("flow/capacity_math_bad.cpp"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 14"), std::string::npos);
}

TEST(RdsAnalyze, BaselineRoundTripsAndRatchets) {
  const auto findings = analyze_fixture("capacity_math_bad.cpp");
  ASSERT_EQ(findings.size(), 3u);
  const std::string root = RDS_LINT_FIXTURE_DIR;
  const std::string text = rds::analyze::format_baseline(findings, root);
  const auto keys = rds::analyze::parse_baseline(text);
  EXPECT_EQ(keys.size(), 3u);
  // Everything baselined: nothing new.
  EXPECT_TRUE(rds::analyze::new_findings(findings, keys, root).empty());
  // Drop one key: exactly that finding comes back.
  const auto partial =
      std::vector<std::string>(keys.begin(), keys.begin() + 2);
  EXPECT_EQ(rds::analyze::new_findings(findings, partial, root).size(), 1u);
}

// The committed baseline's keys must reproduce exactly from the tree the
// analyzer ships with -- the analyze_tree ctest enforces "no new
// findings", this enforces "no stale baseline" too.  Keys, not bytes:
// the committed file carries '#' justification comments the regenerated
// header does not.
TEST(RdsAnalyze, CommittedBaselineReproduces) {
  const std::string root = RDS_LINT_SOURCE_DIR;
  const std::vector<std::string> sources = rds::analyze::collect_sources(
      {root + "/src", root + "/tools", root + "/bench"});
  ASSERT_FALSE(sources.empty());
  Analyzer analyzer;
  for (const std::string& s : sources) analyzer.add_file(s);
  ASSERT_TRUE(analyzer.io_errors().empty());
  const std::string regenerated =
      rds::analyze::format_baseline(analyzer.run(), root);

  std::ifstream in(root + "/tools/rds_analyze/baseline.txt",
                   std::ios::binary);
  ASSERT_TRUE(in) << "missing tools/rds_analyze/baseline.txt";
  std::ostringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(rds::analyze::parse_baseline(regenerated),
            rds::analyze::parse_baseline(committed.str()))
      << "stale baseline: regenerate with rds_analyze --emit-baseline";
}

}  // namespace
