// Unit tests for the perf-ratchet core: JSON round trip, benchmark-run
// extraction, tolerance comparison, speedup rules, and the build-type
// stamp.  The CLI-level pass/fail contracts run as ctest commands on the
// committed fixtures (tools/CMakeLists.txt, label `ratchet`).
#include "tools/perf_ratchet/ratchet.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rds::ratchet {
namespace {

constexpr char kRun[] = R"({
  "context": {
    "library_build_type": "debug",
    "rds_build_type": "release"
  },
  "benchmarks": [
    {"name": "a", "run_type": "iteration", "items_per_second": 100.0},
    {"name": "a_mean", "run_type": "aggregate", "items_per_second": 1.0},
    {"name": "b", "real_time": 500.0, "time_unit": "ns"}
  ]
})";

TEST(PerfRatchetJson, ParsesAndFindsMembers) {
  const Json doc = parse_json(kRun);
  ASSERT_EQ(doc.kind, Json::Kind::kObject);
  const Json* context = doc.find("context");
  ASSERT_NE(context, nullptr);
  const Json* rds = context->find("rds_build_type");
  ASSERT_NE(rds, nullptr);
  EXPECT_EQ(rds->string, "release");
  EXPECT_EQ(context->find("nope"), nullptr);
}

TEST(PerfRatchetJson, RoundTripsThroughSerializer) {
  const Json doc = parse_json(kRun);
  const std::string text = to_json(doc);
  const Json again = parse_json(text);
  EXPECT_EQ(to_json(again), text);
  // Key order survives, so stamped files diff minimally.
  EXPECT_LT(text.find("library_build_type"), text.find("rds_build_type"));
}

TEST(PerfRatchetJson, HandlesEscapesAndNumbers) {
  const Json doc = parse_json(
      R"({"s": "a\"b\\c\ndA", "i": 42, "f": -2.5e-1, "t": true, "z": null})");
  EXPECT_EQ(doc.find("s")->string, "a\"b\\c\ndA");
  EXPECT_EQ(doc.find("i")->number, 42.0);
  EXPECT_DOUBLE_EQ(doc.find("f")->number, -0.25);
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_EQ(doc.find("z")->kind, Json::Kind::kNull);
  const std::string text = to_json(doc);
  EXPECT_NE(text.find("\"i\": 42"), std::string::npos);
}

TEST(PerfRatchetJson, RejectsMalformedInputWithOffset) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
                          "{\"a\": 1} trailing", "nonsense"}) {
    try {
      parse_json(bad);
      FAIL() << "accepted: " << bad;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("json error at offset"),
                std::string::npos)
          << bad;
    }
  }
}

TEST(PerfRatchetExtract, ReadsContextAndRows) {
  const BenchRun run = extract_run(parse_json(kRun));
  EXPECT_EQ(run.rds_build_type, "release");
  EXPECT_EQ(run.library_build_type, "debug");
  // The aggregate row is skipped; `b` falls back to 1e9 / real_time(ns).
  ASSERT_EQ(run.rows.size(), 2u);
  EXPECT_EQ(run.rows[0].name, "a");
  EXPECT_DOUBLE_EQ(run.rows[0].rate, 100.0);
  ASSERT_NE(run.find("b"), nullptr);
  EXPECT_DOUBLE_EQ(run.find("b")->rate, 2e6);
  EXPECT_EQ(run.find("a_mean"), nullptr);
}

TEST(PerfRatchetExtract, RejectsNonBenchmarkJson) {
  EXPECT_THROW(extract_run(parse_json("{}")), std::runtime_error);
  EXPECT_THROW(extract_run(parse_json(R"({"benchmarks": [{"x": 1}]})")),
               std::runtime_error);
}

BenchRun run_with(std::initializer_list<BenchRow> rows,
                  std::string build = "release") {
  BenchRun run;
  run.rds_build_type = std::move(build);
  run.rows = rows;
  return run;
}

TEST(PerfRatchetCompare, PassesWithinTolerance) {
  Report report;
  compare_runs(run_with({{"a", 100.0, {}}, {"b", 1000.0, {}}}),
               run_with({{"a", 70.0, {}}, {"b", 1300.0, {}}}), {.tolerance = 0.40},
               report);
  EXPECT_TRUE(report.ok()) << report.failures.front();
}

TEST(PerfRatchetCompare, FailsBeyondTolerance) {
  Report report;
  compare_runs(run_with({{"a", 100.0, {}}}), run_with({{"a", 59.0, {}}}),
               {.tolerance = 0.40}, report);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("regression"), std::string::npos);
  EXPECT_NE(report.failures[0].find("`a`"), std::string::npos);
}

TEST(PerfRatchetCompare, FailsOnMissingBaselineRow) {
  Report report;
  compare_runs(run_with({{"a", 100.0, {}}, {"gone", 5.0, {}}}),
               run_with({{"a", 100.0, {}}, {"fresh", 1.0, {}}}), {}, report);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("`gone`"), std::string::npos);
  // The row the baseline lacks is a note (candidate for ratcheting in).
  ASSERT_FALSE(report.notes.empty());
}

TEST(PerfRatchetCompare, NotesLargeImprovements) {
  Report report;
  compare_runs(run_with({{"a", 100.0, {}}}), run_with({{"a", 250.0, {}}}),
               {.tolerance = 0.40}, report);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("improved"), std::string::npos);
}

TEST(PerfRatchetBuildType, PrefersRdsStampOverLibraryKey) {
  Report report;
  BenchRun run = run_with({});
  run.library_build_type = "debug";  // Debian libbenchmark always says this
  check_build_type(run, report);
  EXPECT_TRUE(report.ok());
}

TEST(PerfRatchetBuildType, FailsDebugAndUnstampedRuns) {
  {
    Report report;
    check_build_type(run_with({}, "debug"), report);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures[0].find("rds_build_type"), std::string::npos);
  }
  {
    Report report;
    BenchRun run;  // neither key: e.g. a hand-made file
    check_build_type(run, report);
    EXPECT_FALSE(report.ok());
  }
}

TEST(PerfRatchetSpeedup, ParsesRuleSpecs) {
  const auto rule = parse_speedup_rule("fast/1000/4:slow/1000/4:10");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->fast, "fast/1000/4");
  EXPECT_EQ(rule->slow, "slow/1000/4");
  EXPECT_DOUBLE_EQ(rule->min_ratio, 10.0);
  EXPECT_FALSE(parse_speedup_rule("no-colons").has_value());
  EXPECT_FALSE(parse_speedup_rule("a:b:").has_value());
  EXPECT_FALSE(parse_speedup_rule("a:b:zero").has_value());
  EXPECT_FALSE(parse_speedup_rule("a:b:-2").has_value());
}

TEST(PerfRatchetSpeedup, EnforcesMinimumRatio) {
  const BenchRun run = run_with({{"fast", 500.0, {}}, {"slow", 100.0, {}}});
  {
    Report report;
    check_speedup(run, {"fast", "slow", 4.0}, report);
    EXPECT_TRUE(report.ok());
    ASSERT_EQ(report.notes.size(), 1u);
  }
  {
    Report report;
    check_speedup(run, {"fast", "slow", 10.0}, report);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures[0].find("speedup"), std::string::npos);
  }
  {
    Report report;
    check_speedup(run, {"fast", "absent", 2.0}, report);
    EXPECT_FALSE(report.ok());
  }
}

TEST(PerfRatchetLatency, ExtractsP99Counter) {
  const BenchRun run = extract_run(parse_json(R"({
    "context": {"rds_build_type": "release"},
    "benchmarks": [
      {"name": "slo", "run_type": "iteration", "items_per_second": 5.0,
       "p99_us": 340.5},
      {"name": "plain", "run_type": "iteration", "items_per_second": 5.0}
    ]
  })"));
  ASSERT_NE(run.find("slo"), nullptr);
  ASSERT_TRUE(run.find("slo")->p99_us.has_value());
  EXPECT_DOUBLE_EQ(*run.find("slo")->p99_us, 340.5);
  EXPECT_FALSE(run.find("plain")->p99_us.has_value());
}

TEST(PerfRatchetLatency, ParsesRuleSpecs) {
  const auto rule = parse_latency_rule("bm/zipf09/p2c:bm/zipf09/random:1.0");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->fast, "bm/zipf09/p2c");
  EXPECT_EQ(rule->slow, "bm/zipf09/random");
  EXPECT_DOUBLE_EQ(rule->max_ratio, 1.0);
  EXPECT_FALSE(parse_latency_rule("no-colons").has_value());
  EXPECT_FALSE(parse_latency_rule("a:b:-1").has_value());
}

BenchRow slo_row(std::string name, double p99) {
  BenchRow row;
  row.name = std::move(name);
  row.rate = 100.0;
  row.p99_us = p99;
  return row;
}

TEST(PerfRatchetLatency, EnforcesStrictOrdering) {
  const BenchRun run =
      run_with({slo_row("p2c", 340.0), slo_row("random", 980.0)});
  {
    Report report;
    check_latency(run, {"p2c", "random", 1.0}, report);
    EXPECT_TRUE(report.ok()) << report.failures.front();
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes[0].find("latency ok"), std::string::npos);
  }
  {
    // Inverted direction: random is NOT below p2c.
    Report report;
    check_latency(run, {"random", "p2c", 1.0}, report);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures[0].find("latency"), std::string::npos);
  }
  {
    // A tie fails too -- the SLO counters are deterministic, so the
    // comparison is strict.
    Report report;
    const BenchRun tied =
        run_with({slo_row("p2c", 500.0), slo_row("random", 500.0)});
    check_latency(tied, {"p2c", "random", 1.0}, report);
    EXPECT_FALSE(report.ok());
  }
  {
    // A looser ratio relaxes the bound: 340 < 980 * 0.5.
    Report report;
    check_latency(run, {"p2c", "random", 0.5}, report);
    EXPECT_TRUE(report.ok());
  }
}

TEST(PerfRatchetLatency, FailsOnMissingRowsOrCounters) {
  {
    Report report;
    check_latency(run_with({slo_row("p2c", 340.0)}),
                  {"p2c", "absent", 1.0}, report);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures[0].find("`absent`"), std::string::npos);
  }
  {
    // Row exists but carries no p99_us counter (not an SLO benchmark).
    Report report;
    check_latency(run_with({slo_row("p2c", 340.0), {"plain", 5.0, {}}}),
                  {"p2c", "plain", 1.0}, report);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures[0].find("p99_us"), std::string::npos);
  }
}

TEST(PerfRatchetStamp, RewritesLibraryBuildType) {
  Json doc = parse_json(kRun);
  stamp_build_type(doc);
  const Json* context = doc.find("context");
  EXPECT_EQ(context->find("library_build_type")->string, "release");
  EXPECT_EQ(context->find("benchmark_library_assertions")->string, "enabled");
  // Idempotent: a second stamp sees library "release" but must keep the
  // assertions record from the first pass truthful.
  stamp_build_type(doc);
  EXPECT_EQ(context->find("benchmark_library_assertions")->string,
            "enabled");
}

TEST(PerfRatchetStamp, RefusesNonReleaseRuns) {
  Json debug_doc = parse_json(
      R"({"context": {"rds_build_type": "debug"}, "benchmarks": []})");
  EXPECT_THROW(stamp_build_type(debug_doc), std::runtime_error);
  Json unstamped = parse_json(R"({"context": {}, "benchmarks": []})");
  EXPECT_THROW(stamp_build_type(unstamped), std::runtime_error);
  Json no_context = parse_json(R"({"benchmarks": []})");
  EXPECT_THROW(stamp_build_type(no_context), std::runtime_error);
}

}  // namespace
}  // namespace rds::ratchet
