// BatchPlacer must be a drop-in parallel version of a sequential
// place_many(): identical output for every batch size and thread count,
// reusable across batches and strategies.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/placement/batch_placer.hpp"
#include "src/placement/strategy_factory.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  std::vector<Device> devices;
  for (DeviceId uid = 0; uid < 12; ++uid) {
    devices.push_back({uid, 500 + 150 * uid, "d" + std::to_string(uid)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<std::uint64_t> addresses(std::size_t count) {
  std::vector<std::uint64_t> a(count);
  std::iota(a.begin(), a.end(), std::uint64_t{1000});
  return a;
}

TEST(BatchPlacer, MatchesSequentialPlaceMany) {
  const ClusterConfig config = make_cluster();
  const FastRedundantShare strategy(config, 3);
  // Sizes straddling the chunking threshold (256 addresses per chunk).
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{255}, std::size_t{256},
                                  std::size_t{5000}}) {
    const std::vector<std::uint64_t> addrs = addresses(count);
    std::vector<DeviceId> expected(count * 3);
    strategy.place_many(addrs, expected);
    for (const unsigned threads : {1u, 2u, 4u}) {
      BatchPlacer placer(threads);
      std::vector<DeviceId> got(count * 3, kNoDevice);
      placer.place(strategy, addrs, got);
      EXPECT_EQ(got, expected)
          << count << " addresses on " << threads << " threads";
    }
  }
}

TEST(BatchPlacer, ReusableAcrossBatchesAndStrategies) {
  const ClusterConfig config = make_cluster();
  BatchPlacer placer(3);
  for (const PlacementKind kind :
       {PlacementKind::kRedundantShare, PlacementKind::kFastRedundantShare,
        PlacementKind::kRoundRobin}) {
    const auto strategy = make_replication_strategy(kind, config, 2);
    const std::vector<std::uint64_t> addrs = addresses(1000);
    std::vector<DeviceId> expected(2000);
    strategy->place_many(addrs, expected);
    for (int round = 0; round < 3; ++round) {
      std::vector<DeviceId> got(2000, kNoDevice);
      placer.place(*strategy, addrs, got);
      EXPECT_EQ(got, expected) << to_string(kind) << " round " << round;
    }
  }
}

TEST(BatchPlacer, RejectsMismatchedOutputSpan) {
  const FastRedundantShare strategy(make_cluster(), 2);
  BatchPlacer placer(2);
  const std::vector<std::uint64_t> addrs = addresses(10);
  std::vector<DeviceId> wrong(10 * 2 + 1);
  EXPECT_THROW(placer.place(strategy, addrs, wrong), std::invalid_argument);
}

TEST(BatchPlacer, ThreadCountIncludesCaller) {
  EXPECT_EQ(BatchPlacer(1).thread_count(), 1u);
  EXPECT_EQ(BatchPlacer(4).thread_count(), 4u);
  EXPECT_GE(BatchPlacer(0).thread_count(), 1u);  // hardware_concurrency
}

TEST(BatchPlacer, PlaceManyDefaultValidates) {
  const FastRedundantShare strategy(make_cluster(), 2);
  const std::vector<std::uint64_t> addrs = addresses(4);
  std::vector<DeviceId> wrong(7);
  EXPECT_THROW(strategy.place_many(addrs, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace rds
