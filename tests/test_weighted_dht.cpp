#include "src/placement/weighted_dht.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig({{1, 100, ""}, {2, 200, ""}, {3, 300, ""}, {4, 400, ""}});
}

TEST(WeightedDht, Deterministic) {
  const WeightedDht lin(make_cluster(), DhtDistance::kLinear);
  const WeightedDht log(make_cluster(), DhtDistance::kLogarithmic);
  for (std::uint64_t a = 0; a < 200; ++a) {
    EXPECT_EQ(lin.place(a), lin.place(a));
    EXPECT_EQ(log.place(a), log.place(a));
  }
}

TEST(WeightedDht, LogarithmicApproximateFairness) {
  // With several points per device the concentration is tight enough for a
  // 25% relative-deviation bound at 4x weight skew (the fluctuation for a
  // fixed ring layout is ~1/sqrt(points), like consistent hashing).
  const ClusterConfig config = make_cluster();
  const WeightedDht s(config, DhtDistance::kLogarithmic,
                      /*points_per_device=*/256);
  constexpr std::uint64_t kBalls = 80'000;
  std::vector<std::uint64_t> counts(config.size(), 0);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    ++counts[config.index_of(s.place(a)).value()];
  }
  std::vector<double> expected;
  for (std::size_t i = 0; i < config.size(); ++i) {
    expected.push_back(static_cast<double>(kBalls) *
                       config.relative_capacity(i));
  }
  EXPECT_LT(max_relative_deviation(counts, expected), 0.25);
}

TEST(WeightedDht, LinearMethodIsBiasedLogarithmicIsNot) {
  // With a single point per device the linear method systematically
  // OVER-serves the heaviest bin (for w=1000 vs eight bins of 100 its
  // expected share is ~0.68 instead of the fair 0.556); the logarithmic
  // transform makes the race exponential and the expected share exact.
  // Averaged over many ring layouts (salts) to measure the expectation.
  std::vector<Device> devices{{1, 1000, ""}};
  for (DeviceId u = 2; u <= 9; ++u) devices.push_back({u, 100, ""});
  const ClusterConfig config(std::move(devices));

  std::uint64_t lin_big = 0, log_big = 0, total = 0;
  for (std::uint64_t salt = 0; salt < 150; ++salt) {
    const WeightedDht lin(config, DhtDistance::kLinear, 1, salt);
    const WeightedDht log(config, DhtDistance::kLogarithmic, 1, salt);
    for (std::uint64_t a = 0; a < 600; ++a) {
      if (lin.place(a) == 1) ++lin_big;
      if (log.place(a) == 1) ++log_big;
      ++total;
    }
  }
  const double fair = 1000.0 / 1800.0;
  const double lin_share = static_cast<double>(lin_big) / total;
  const double log_share = static_cast<double>(log_big) / total;
  EXPECT_NEAR(log_share, fair, 0.04);
  EXPECT_GT(lin_share, fair + 0.05);  // the documented bias (~0.68)
}

TEST(WeightedDht, LimitedDisruptionOnAdd) {
  ClusterConfig before = make_cluster();
  ClusterConfig after = before;
  after.add_device({5, 250, ""});
  const WeightedDht sb(before, DhtDistance::kLogarithmic, 16, /*salt=*/3);
  const WeightedDht sa(after, DhtDistance::kLogarithmic, 16, /*salt=*/3);
  std::uint64_t moved = 0;
  constexpr std::uint64_t kBalls = 20'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    const DeviceId db = sb.place(a);
    const DeviceId da = sa.place(a);
    if (db != da) {
      ++moved;
      EXPECT_EQ(da, 5u) << "ball moved between two old devices";
    }
  }
  // New share = 250/1250 = 20%.
  EXPECT_NEAR(static_cast<double>(moved), 0.2 * kBalls, 0.08 * kBalls);
}

TEST(WeightedDht, Validation) {
  EXPECT_THROW(WeightedDht(ClusterConfig{}), std::invalid_argument);
  EXPECT_THROW(WeightedDht(make_cluster(), DhtDistance::kLinear, 0),
               std::invalid_argument);
}

TEST(WeightedDht, Names) {
  EXPECT_EQ(WeightedDht(make_cluster(), DhtDistance::kLinear).name(),
            "weighted-dht(linear)");
  EXPECT_EQ(WeightedDht(make_cluster(), DhtDistance::kLogarithmic).name(),
            "weighted-dht(logarithmic)");
}

}  // namespace
}  // namespace rds
