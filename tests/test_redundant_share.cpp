#include "src/core/redundant_share.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"
#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], "d" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

/// Asserts the exact expected copies equal the fair share k*b'_i / sum b'.
void expect_perfectly_fair(const std::vector<std::uint64_t>& caps, unsigned k,
                           double tol = 1e-9) {
  const RedundantShare s(cluster_from(caps), k);
  const std::vector<double> expected = s.exact_expected_copies();
  const std::span<const double> adjusted = s.adjusted_capacities();
  const double total =
      std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double target = static_cast<double>(k) * adjusted[i] / total;
    EXPECT_NEAR(expected[i], target, tol)
        << "bin " << i << " of caps n=" << caps.size() << " k=" << k;
    sum += expected[i];
  }
  EXPECT_NEAR(sum, static_cast<double>(k), tol);
}

TEST(RedundantShare, ExactFairnessSimpleMirror) {
  // The paper's motivating example (Figure 1): bin 0 must hold a copy of
  // EVERY ball; LinMirror achieves it (the trivial strategy cannot).
  expect_perfectly_fair({2, 1, 1}, 2);
  const RedundantShare s(cluster_from({2, 1, 1}), 2);
  const std::vector<double> e = s.exact_expected_copies();
  EXPECT_NEAR(e[0], 1.0, 1e-12);
}

TEST(RedundantShare, ExactFairnessNoInhomogeneity) {
  expect_perfectly_fair({3, 2, 1}, 2);
  expect_perfectly_fair({2, 2, 1, 1}, 2);
  expect_perfectly_fair({5, 4, 3, 2, 1}, 2);
  expect_perfectly_fair({7, 7, 7, 7}, 2);
}

TEST(RedundantShare, ExactFairnessWithInhomogeneity) {
  // c-hat exceeds 1 in the middle of the bin list: the b-tilde adjustment
  // must kick in (worked examples from DESIGN.md).
  expect_perfectly_fair({3, 3, 1, 1}, 2);
  expect_perfectly_fair({4, 4, 4, 1, 1}, 2);
  expect_perfectly_fair({5, 4, 4, 1, 1}, 2);
  expect_perfectly_fair({9, 9, 9, 2, 1, 1}, 2);
}

TEST(RedundantShare, ExactFairnessHigherK) {
  expect_perfectly_fair({3, 2, 2, 2, 1}, 3);
  expect_perfectly_fair({5, 4, 3, 2, 1, 1}, 3);
  expect_perfectly_fair({4, 4, 4, 4}, 3);
  expect_perfectly_fair({6, 5, 4, 3, 2, 1, 1}, 4);
  expect_perfectly_fair({2, 2, 2, 2, 2, 2}, 5);
  expect_perfectly_fair({9, 8, 7, 6, 5, 4, 3}, 5);
}

TEST(RedundantShare, ExactFairnessAfterCapacityAdjustment) {
  // Infeasible raw capacities: fairness holds relative to the ADJUSTED
  // capacities of Algorithm 1.
  expect_perfectly_fair({10, 1, 1}, 2);
  expect_perfectly_fair({10, 10, 1, 1}, 3);
  expect_perfectly_fair({100, 7, 3, 2, 1}, 2);
}

TEST(RedundantShare, ExactFairnessKEqualsOne) {
  expect_perfectly_fair({5, 3, 2}, 1);
}

TEST(RedundantShare, ExactFairnessKEqualsN) {
  // Every bin stores every ball.
  const RedundantShare s(cluster_from({5, 3, 2}), 3);
  for (const double e : s.exact_expected_copies()) {
    EXPECT_NEAR(e, 1.0, 1e-12);
  }
}

TEST(RedundantShare, AblationWithoutAdjustmentIsUnfair) {
  // Turning the b-tilde adjustment off must break perfect fairness exactly
  // on the inhomogeneous configurations -- this is why the paper needs
  // equations (2)-(5).
  RedundantShare::Options opt;
  opt.apply_adjustment = false;
  const RedundantShare s(cluster_from({3, 3, 1, 1}), 2, opt);
  const std::vector<double> e = s.exact_expected_copies();
  // Fair share of bin 1 is 2*3/8 = 0.75; without the adjustment it gets
  // 3/4*3/5 + 1/4 = 0.70 (worked in DESIGN.md).
  EXPECT_NEAR(e[1], 0.70, 1e-9);
  EXPECT_GT(std::abs(e[1] - 0.75), 0.01);
}

TEST(RedundantShare, AdjustmentDoesNotFireOnHomogeneousSystems) {
  RedundantShare::Options opt;
  opt.apply_adjustment = false;
  const std::vector<std::uint64_t> caps{5, 4, 3, 2, 1};
  const RedundantShare with(cluster_from(caps), 2);
  const RedundantShare without(cluster_from(caps), 2, opt);
  const std::vector<double> a = with.exact_expected_copies();
  const std::vector<double> b = without.exact_expected_copies();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(RedundantShare, PlacementsAreDeterministicAndDistinct) {
  const RedundantShare s(cluster_from({9, 7, 5, 3, 2, 1}), 3);
  std::vector<DeviceId> out(3), again(3);
  for (std::uint64_t a = 0; a < 5000; ++a) {
    s.place(a, out);
    s.place(a, again);
    EXPECT_EQ(out, again);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(std::ranges::adjacent_find(sorted), sorted.end())
        << "duplicate device for ball " << a;
  }
}

TEST(RedundantShare, MonteCarloFairnessPaperLadder) {
  // The Figure 2 bin ladder, k = 2: sampled copies per bin within
  // chi-square bounds of the fair shares.
  const ClusterConfig config = paper_heterogeneous_base();
  const RedundantShare s(config, 2);
  constexpr std::uint64_t kBalls = 150'000;
  const BlockMap map(s, kBalls);
  const auto counts = map.device_counts();

  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  const double total = static_cast<double>(config.total_capacity());
  for (std::size_t i = 0; i < config.size(); ++i) {
    observed.push_back(counts.at(config[i].uid));
    expected.push_back(2.0 * kBalls *
                       static_cast<double>(config[i].capacity) / total);
  }
  EXPECT_LT(chi_square(observed, expected),
            chi_square_critical_999(config.size() - 1));
}

TEST(RedundantShare, MonteCarloFairnessK4) {
  const ClusterConfig config = paper_heterogeneous_base();
  const RedundantShare s(config, 4);
  constexpr std::uint64_t kBalls = 80'000;
  const BlockMap map(s, kBalls);
  const auto counts = map.device_counts();
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  const double total = static_cast<double>(config.total_capacity());
  for (std::size_t i = 0; i < config.size(); ++i) {
    observed.push_back(counts.at(config[i].uid));
    expected.push_back(4.0 * kBalls *
                       static_cast<double>(config[i].capacity) / total);
  }
  EXPECT_LT(chi_square(observed, expected),
            chi_square_critical_999(config.size() - 1));
}

TEST(RedundantShare, InsertBiggestMovesOnlyTowardNewDevice) {
  // Lemma 3.2's best case: inserting the biggest bin leaves all c-hat_i of
  // existing bins untouched, so primaries only move TO the new device.
  const ClusterConfig before = paper_heterogeneous_base();
  const EditResult edit =
      apply_edit(before, EditKind::kAddBiggest, 100, 100'000);

  const RedundantShare sb(before, 2);
  const RedundantShare sa(edit.config, 2);
  constexpr std::uint64_t kBalls = 30'000;
  const BlockMap mb(sb, kBalls);
  const BlockMap ma(sa, kBalls);

  for (std::uint64_t ball = 0; ball < kBalls; ++ball) {
    const auto cb = mb.copies(ball);
    const auto ca = ma.copies(ball);
    // Primary either stays or goes to the new device.
    if (ca[0] != cb[0]) {
      EXPECT_EQ(ca[0], edit.affected) << "primary reshuffled between old "
                                         "devices on biggest-insert";
    }
  }
}

TEST(RedundantShare, CompetitiveRatioWithinLemmaBounds) {
  // Lemma 3.2: LinMirror is 4-competitive in expectation; the measured
  // ratios in the paper are ~1.5 (big end) and ~2.5 (small end).
  const ClusterConfig before = paper_heterogeneous_base();
  const RedundantShare sb(before, 2);
  constexpr std::uint64_t kBalls = 40'000;
  const BlockMap mb(sb, kBalls);

  for (const EditKind kind :
       {EditKind::kAddBiggest, EditKind::kAddSmallest,
        EditKind::kRemoveBiggest, EditKind::kRemoveSmallest}) {
    const EditResult edit = apply_edit(before, kind, 100, 100'000);
    const RedundantShare sa(edit.config, 2);
    const BlockMap ma(sa, kBalls);
    const MovementReport report = diff_placements(mb, ma);
    EXPECT_GT(report.moved_set, 0u);
    EXPECT_LT(report.competitive_set(), 4.0)
        << "edit " << to_string(kind) << " exceeded the Lemma 3.2 bound";
  }
}

TEST(RedundantShare, ResizeAdaptivityBounded) {
  // The paper's adaptivity criterion covers capacity changes too: growing
  // one disk by 25% must move roughly its gained share, not reshuffle.
  ClusterConfig before = paper_heterogeneous_base();
  ClusterConfig after = before;
  after.resize_device(4, 1'125'000);  // 900k -> 1.125M
  const RedundantShare sb(before, 2);
  const RedundantShare sa(after, 2);
  constexpr std::uint64_t kBalls = 40'000;
  const MovementReport report =
      diff_placements(BlockMap(sb, kBalls), BlockMap(sa, kBalls));
  EXPECT_GT(report.moved_set, 0u);
  // A resize acts like a deletion plus an insertion (the device also moves
  // in the capacity order), so the single-edit Lemma 3.2 bound of 4 does
  // not apply; the composition stays within twice that.
  EXPECT_LT(report.competitive_set(), 8.0);
  // Total churn stays a small fraction of the data.
  EXPECT_LT(report.moved_set_fraction(), 0.25);
}

TEST(RedundantShare, ShrinkDeviceAdaptivityBounded) {
  ClusterConfig before = paper_heterogeneous_base();
  ClusterConfig after = before;
  after.resize_device(7, 600'000);  // 1.2M -> 600k: halve the biggest
  const RedundantShare sb(before, 2);
  const RedundantShare sa(after, 2);
  constexpr std::uint64_t kBalls = 40'000;
  const MovementReport report =
      diff_placements(BlockMap(sb, kBalls), BlockMap(sa, kBalls));
  EXPECT_GT(report.moved_set, 0u);
  EXPECT_LT(report.competitive_set(), 4.0);
}

TEST(RedundantShare, UnrelatedEditKeepsMostData) {
  // Removing one small disk from 8 must keep the overwhelming majority of
  // copies in place (that is the whole point versus striping).
  const ClusterConfig before = paper_heterogeneous_base();
  const EditResult edit =
      apply_edit(before, EditKind::kRemoveSmallest, 100, 100'000);
  const RedundantShare sb(before, 2);
  const RedundantShare sa(edit.config, 2);
  constexpr std::uint64_t kBalls = 30'000;
  const MovementReport report =
      diff_placements(BlockMap(sb, kBalls), BlockMap(sa, kBalls));
  // The removed disk held ~500k/6.8M ~ 7.3% of copies; even with the
  // competitive overhead under 25% of copies may move.
  EXPECT_LT(report.moved_set_fraction(), 0.25);
}

TEST(RedundantShare, CopyIndexLawIsConsistent) {
  const RedundantShare s(cluster_from({9, 7, 5, 3, 2, 1}), 3);
  const std::vector<std::vector<double>> law = s.exact_copy_index_law();
  ASSERT_EQ(law.size(), 3u);

  // Each copy index is a probability distribution over the bins.
  for (const auto& row : law) {
    double total = 0.0;
    for (const double p : row) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
  // Rows sum (per bin) to the expected-copies law.
  const std::vector<double> expected = s.exact_expected_copies();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    double col = 0.0;
    for (const auto& row : law) col += row[i];
    EXPECT_NEAR(col, expected[i], 1e-12);
  }
  // The primary favors the big bins, the last copy the small ones: the
  // primary's mass on bin 0 exceeds the last copy's, and vice versa on the
  // last bin -- what erasure-coded deployments must know (parity fragments
  // gravitate to small devices).
  EXPECT_GT(law[0][0], law[2][0]);
  EXPECT_LT(law[0][5], law[2][5]);
}

TEST(RedundantShare, CopyIndexLawMatchesSampling) {
  const ClusterConfig config = cluster_from({5, 4, 3, 2, 1});
  const RedundantShare s(config, 2);
  const std::vector<std::vector<double>> law = s.exact_copy_index_law();
  constexpr std::uint64_t kBalls = 120'000;
  std::vector<std::vector<std::uint64_t>> counts(
      2, std::vector<std::uint64_t>(config.size(), 0));
  std::vector<DeviceId> out(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    for (unsigned r = 0; r < 2; ++r) {
      ++counts[r][config.index_of(out[r]).value()];
    }
  }
  for (unsigned r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < config.size(); ++i) {
      EXPECT_NEAR(static_cast<double>(counts[r][i]) / kBalls, law[r][i],
                  0.01)
          << "copy " << r << " bin " << i;
    }
  }
}

TEST(RedundantShare, NameAndAccessors) {
  const RedundantShare lin(cluster_from({3, 2, 1}), 2);
  EXPECT_EQ(lin.name(), "redundant-share(LinMirror)");
  EXPECT_EQ(lin.replication(), 2u);
  EXPECT_EQ(lin.device_count(), 3u);
  const RedundantShare k3(cluster_from({3, 2, 1}), 3);
  EXPECT_EQ(k3.name(), "redundant-share");
  EXPECT_EQ(k3.canonical_uids().size(), 3u);
}

TEST(RedundantShare, Validation) {
  EXPECT_THROW(RedundantShare(cluster_from({3, 2, 1}), 0),
               std::invalid_argument);
  EXPECT_THROW(RedundantShare(cluster_from({3, 2, 1}), 4),
               std::invalid_argument);
  const RedundantShare s(cluster_from({3, 2, 1}), 2);
  std::vector<DeviceId> wrong(3);
  EXPECT_THROW(s.place(0, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace rds
