#include "src/sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace rds {
namespace {

TEST(Workload, SequentialAddresses) {
  const auto addrs = sequential_addresses(5, 100);
  EXPECT_EQ(addrs, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
  EXPECT_TRUE(sequential_addresses(0).empty());
}

TEST(Workload, RandomAddressesAreDistinct) {
  Xoshiro256 rng(5);
  const auto addrs = random_addresses(10'000, rng);
  EXPECT_EQ(addrs.size(), 10'000u);
  const std::unordered_set<std::uint64_t> set(addrs.begin(), addrs.end());
  EXPECT_EQ(set.size(), addrs.size());
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, -0.1), std::invalid_argument);
}

TEST(Zipf, SamplesInRange) {
  const ZipfGenerator z(100, 0.99);
  Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_LT(z.sample(rng), 100u);
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfGenerator z(10, 0.0);
  Xoshiro256 rng(3);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / 10, 5 * std::sqrt(kN / 10.0));
  }
}

TEST(Zipf, FrequenciesFollowPowerLaw) {
  const double s = 1.0;
  const ZipfGenerator z(1000, s);
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> counts(1000, 0);
  constexpr int kN = 400'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];

  // Harmonic normalization: P(item r) = (1/(r+1)^s) / H_n.
  double h = 0.0;
  for (int r = 1; r <= 1000; ++r) h += 1.0 / std::pow(r, s);
  for (const int r : {1, 2, 5, 10, 50}) {
    const double expected = kN / (std::pow(r, s) * h);
    EXPECT_NEAR(static_cast<double>(counts[r - 1]), expected,
                0.1 * expected + 5 * std::sqrt(expected))
        << "rank " << r;
  }
  // Monotone head: item 0 is sampled most.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
}

TEST(Zipf, SkewCloseToOneIsStable) {
  // s = 1 is the harmonic singularity of the naive formula; the
  // rejection-inversion implementation must stay finite and correct.
  const ZipfGenerator z(100, 1.0);
  Xoshiro256 rng(23);
  std::uint64_t head = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (z.sample(rng) == 0) ++head;
  }
  double h = 0.0;
  for (int r = 1; r <= 100; ++r) h += 1.0 / r;
  EXPECT_NEAR(static_cast<double>(head) / kN, 1.0 / h, 0.02);
}

}  // namespace
}  // namespace rds
