#include "src/sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

/// Chi-square goodness-of-fit of `generator` (sampled at fixed `now_us`)
/// against a Zipf(s) law over `n` items whose rank-0 item sits at ball
/// `offset` (rank r -> ball (r + offset) mod n).  Significance 0.001, the
/// test_cross_consistency idiom.
void expect_matches_zipf_law(const WorkloadGenerator& generator,
                             double now_us, std::uint64_t n, double s,
                             std::uint64_t offset, std::uint64_t seed) {
  std::vector<double> expected(n, 0.0);
  double h = 0.0;
  for (std::uint64_t r = 1; r <= n; ++r) h += 1.0 / std::pow(r, s);
  constexpr int kN = 250'000;
  for (std::uint64_t r = 1; r <= n; ++r) {
    expected[r - 1] = kN / (std::pow(static_cast<double>(r), s) * h);
  }

  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> observed(n, 0);
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t ball = generator.sample(rng, now_us);
    ASSERT_LT(ball, n);
    ++observed[(ball + n - offset) % n];
  }
  const double stat = chi_square(observed, expected);
  EXPECT_LT(stat, chi_square_critical_999(n - 1))
      << generator.name() << " at t=" << now_us;
}

TEST(Workload, SequentialAddresses) {
  const auto addrs = sequential_addresses(5, 100);
  EXPECT_EQ(addrs, (std::vector<std::uint64_t>{100, 101, 102, 103, 104}));
  EXPECT_TRUE(sequential_addresses(0).empty());
}

TEST(Workload, RandomAddressesAreDistinct) {
  Xoshiro256 rng(5);
  const auto addrs = random_addresses(10'000, rng);
  EXPECT_EQ(addrs.size(), 10'000u);
  const std::unordered_set<std::uint64_t> set(addrs.begin(), addrs.end());
  EXPECT_EQ(set.size(), addrs.size());
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, -0.1), std::invalid_argument);
}

TEST(Zipf, SamplesInRange) {
  const ZipfGenerator z(100, 0.99);
  Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_LT(z.sample(rng), 100u);
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfGenerator z(10, 0.0);
  Xoshiro256 rng(3);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / 10, 5 * std::sqrt(kN / 10.0));
  }
}

TEST(Zipf, FrequenciesFollowPowerLaw) {
  const double s = 1.0;
  const ZipfGenerator z(1000, s);
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> counts(1000, 0);
  constexpr int kN = 400'000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];

  // Harmonic normalization: P(item r) = (1/(r+1)^s) / H_n.
  double h = 0.0;
  for (int r = 1; r <= 1000; ++r) h += 1.0 / std::pow(r, s);
  for (const int r : {1, 2, 5, 10, 50}) {
    const double expected = kN / (std::pow(r, s) * h);
    EXPECT_NEAR(static_cast<double>(counts[r - 1]), expected,
                0.1 * expected + 5 * std::sqrt(expected))
        << "rank " << r;
  }
  // Monotone head: item 0 is sampled most.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
}

TEST(Zipf, SkewCloseToOneIsStable) {
  // s = 1 is the harmonic singularity of the naive formula; the
  // rejection-inversion implementation must stay finite and correct.
  const ZipfGenerator z(100, 1.0);
  Xoshiro256 rng(23);
  std::uint64_t head = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (z.sample(rng) == 0) ++head;
  }
  double h = 0.0;
  for (int r = 1; r <= 100; ++r) h += 1.0 / r;
  EXPECT_NEAR(static_cast<double>(head) / kN, 1.0 / h, 0.02);
}

TEST(Zipf, TryMakeValidatesInputs) {
  EXPECT_EQ(ZipfGenerator::try_make(0, 1.0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ZipfGenerator::try_make(10, -0.1).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ZipfGenerator::try_make(10, std::nan("")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(
      ZipfGenerator::try_make(10, std::numeric_limits<double>::infinity())
          .code(),
      ErrorCode::kInvalidArgument);
  const Result<ZipfGenerator> ok = ZipfGenerator::try_make(10, 0.9);
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  EXPECT_EQ(ok.value().universe(), 10u);
  EXPECT_DOUBLE_EQ(ok.value().skew(), 0.9);
}

TEST(WorkloadFactory, EveryKindConstructsWithMatchingName) {
  for (const WorkloadKind kind : all_workload_kinds()) {
    const std::string spec =
        kind == WorkloadKind::kUniform
            ? std::string(to_string(kind))
            : std::string(to_string(kind)) + ":0.9";
    const auto generator = make_workload(spec, 1000);
    ASSERT_NE(generator, nullptr) << spec;
    EXPECT_EQ(generator->name(), to_string(kind));
    EXPECT_EQ(generator->universe(), 1000u);
    EXPECT_GE(generator->max_rate_factor(), 1.0);
    // Samples stay in range for time-varying and static kinds alike.
    Xoshiro256 rng(3);
    for (const double now : {0.0, 1e5, 7e5, 3e6, 9e6}) {
      EXPECT_LT(generator->sample(rng, now), 1000u);
    }
  }
}

TEST(WorkloadFactory, AliasesAndDefaultsResolve) {
  EXPECT_EQ(make_workload("flash:0.8", 100)->name(), "flash-crowd");
  EXPECT_EQ(make_workload("hotspot:0.8", 100)->name(), "hotspot-shift");
  // Bare "zipf" takes the documented default skew 0.9.
  const auto zipf = make_workload("zipf", 100);
  const auto* typed = dynamic_cast<const ZipfGenerator*>(zipf.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_DOUBLE_EQ(typed->skew(), 0.9);
}

TEST(WorkloadFactory, UnknownNameEnumeratesAllSpellings) {
  const Result<std::unique_ptr<WorkloadGenerator>> r =
      try_make_workload("pareto:1.5", 100);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
  const std::string& message = r.error().message;
  EXPECT_NE(message.find("pareto"), std::string::npos);
  for (const WorkloadKind kind : all_workload_kinds()) {
    EXPECT_NE(message.find(std::string(to_string(kind))), std::string::npos)
        << "missing " << to_string(kind);
  }
  EXPECT_NE(message.find("flash"), std::string::npos);  // aliases listed
  EXPECT_THROW((void)make_workload("pareto:1.5", 100),
               std::invalid_argument);
}

TEST(WorkloadFactory, RejectsMalformedSpecs) {
  const std::string_view bad[] = {
      "zipf:abc",            // unparsable parameter
      "zipf:",               // empty parameter
      "zipf:0.9,1.0",        // too many parameters
      "zipf:nan",            // non-finite skew
      "zipf:-1",             // negative skew
      "uniform:0.5",         // uniform takes no parameters
      "flash-crowd:0.9,2.0", // fraction outside [0, 1]
      "flash-crowd:0.9,0.5,-1",  // non-positive period
      "diurnal:0.9,1.5",     // amplitude outside [0, 1)
      "hotspot-shift:0.9,0", // non-positive period
  };
  for (const std::string_view spec : bad) {
    const Result<std::unique_ptr<WorkloadGenerator>> r =
        try_make_workload(spec, 100);
    EXPECT_FALSE(r.ok()) << spec;
    EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument) << spec;
  }
  EXPECT_EQ(try_make_workload("zipf:0.9", 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST(Uniform, MatchesUniformLaw) {
  const UniformGenerator uniform(20);
  // Zipf with s = 0 IS uniform, so the shared chi-square harness applies.
  expect_matches_zipf_law(uniform, 0.0, 20, 0.0, 0, 19);
}

TEST(FlashCrowd, OutsideTheCrowdIsPlainZipf) {
  const FlashCrowdGenerator flash(50, 0.9, /*crowd_fraction=*/0.5,
                                  /*period_us=*/2e6, /*duty=*/0.25,
                                  /*surge=*/2.0);
  ASSERT_FALSE(flash.in_crowd(1.5e6));
  expect_matches_zipf_law(flash, 1.5e6, 50, 0.9, 0, 23);
}

TEST(FlashCrowd, InsideTheCrowdConcentratesOnTheCrowdBall) {
  const FlashCrowdGenerator flash(100'000, 0.9, /*crowd_fraction=*/0.5,
                                  /*period_us=*/2e6, /*duty=*/0.25,
                                  /*surge=*/2.0);
  ASSERT_TRUE(flash.in_crowd(1e5));
  const std::uint64_t hot = flash.crowd_ball(1e5);
  Xoshiro256 rng(31);
  int hits = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (flash.sample(rng, 1e5) == hot) ++hits;
  }
  // crowd_fraction of the traffic goes to one ball (plus a sliver of
  // organic Zipf mass on it).
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.5, 0.02);
  // Rate surges only inside the crowd window.
  EXPECT_DOUBLE_EQ(flash.rate_factor(1e5), 2.0);
  EXPECT_DOUBLE_EQ(flash.rate_factor(1.5e6), 1.0);
  EXPECT_DOUBLE_EQ(flash.max_rate_factor(), 2.0);
}

TEST(FlashCrowd, CrowdBallMovesBetweenWindows) {
  const FlashCrowdGenerator flash(1'000'000, 0.9);
  const std::uint64_t w0 = flash.crowd_ball(0.0);
  const std::uint64_t w1 = flash.crowd_ball(2e6);
  const std::uint64_t w2 = flash.crowd_ball(4e6);
  EXPECT_NE(w0, w1);
  EXPECT_NE(w1, w2);
  // Stable within one window.
  EXPECT_EQ(flash.crowd_ball(0.0), flash.crowd_ball(4.9e5));
}

TEST(Diurnal, RateFactorStaysInBand) {
  const DiurnalGenerator diurnal(100, 0.9, /*amplitude=*/0.8,
                                 /*period_us=*/1e6);
  double low = 10.0;
  double high = -10.0;
  for (int i = 0; i <= 100; ++i) {
    const double f = diurnal.rate_factor(1e4 * i);
    EXPECT_GE(f, 1.0 - 0.8 - 1e-9);
    EXPECT_LE(f, 1.0 + 0.8 + 1e-9);
    low = std::min(low, f);
    high = std::max(high, f);
  }
  // The sweep actually reaches both extremes of the band.
  EXPECT_NEAR(low, 0.2, 0.01);
  EXPECT_NEAR(high, 1.8, 0.01);
  EXPECT_DOUBLE_EQ(diurnal.max_rate_factor(), 1.8);
  // Popularity itself does not move with the clock.
  expect_matches_zipf_law(diurnal, 7.7e5, 100, 0.9, 0, 37);
}

TEST(HotspotShift, RotatedZipfWithinAnEpoch) {
  const HotspotShiftGenerator hotspot(50, 0.9, /*period_us=*/1e6);
  const double now = 3.5e5;  // mid-epoch 0
  expect_matches_zipf_law(hotspot, now, 50, 0.9, hotspot.offset_at(now),
                          41);
}

TEST(HotspotShift, HotSetMovesBetweenEpochs) {
  const HotspotShiftGenerator hotspot(1'000'000, 0.9, /*period_us=*/1e6);
  const std::uint64_t e0 = hotspot.offset_at(5e5);
  const std::uint64_t e1 = hotspot.offset_at(1.5e6);
  const std::uint64_t e2 = hotspot.offset_at(2.5e6);
  EXPECT_NE(e0, e1);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(hotspot.offset_at(0.0), hotspot.offset_at(9.9e5));
  EXPECT_LT(e0, 1'000'000u);
}

}  // namespace
}  // namespace rds
