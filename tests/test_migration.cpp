#include "src/storage/migration.hpp"

#include <gtest/gtest.h>

#include "src/core/redundant_share.hpp"
#include "src/sim/scenario.hpp"
#include "src/sim/workload.hpp"

namespace rds {
namespace {

TEST(Migration, NoChangeNoMoves) {
  const ClusterConfig config = paper_heterogeneous_base();
  const RedundantShare s(config, 2);
  const auto blocks = sequential_addresses(1000);
  const MigrationPlan plan = plan_migration(s, s, blocks);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.unchanged_fragments, 2000u);
  EXPECT_EQ(plan.total_fragments, 2000u);
  EXPECT_EQ(plan.moved_fraction(), 0.0);
}

TEST(Migration, MovesAreConsistentWithStrategies) {
  const ClusterConfig before = paper_heterogeneous_base();
  const EditResult edit =
      apply_edit(before, EditKind::kAddBiggest, 50, 100'000);
  const RedundantShare sb(before, 2);
  const RedundantShare sa(edit.config, 2);
  const auto blocks = sequential_addresses(5000);
  const MigrationPlan plan = plan_migration(sb, sa, blocks);

  EXPECT_FALSE(plan.moves.empty());
  EXPECT_EQ(plan.unchanged_fragments + plan.moves.size(),
            plan.total_fragments);
  for (const FragmentMove& m : plan.moves) {
    EXPECT_NE(m.from, m.to);
    // Each move's endpoints must match the two placements.
    EXPECT_EQ(sb.place(m.block)[m.fragment], m.from);
    EXPECT_EQ(sa.place(m.block)[m.fragment], m.to);
  }
}

TEST(Migration, AddBiggestMovesBoundedFraction) {
  // Adding one 1.3M disk to a 6.8M cluster should migrate roughly its fair
  // share (1.3/8.1 ~ 16%) and certainly not the whole dataset.
  const ClusterConfig before = paper_heterogeneous_base();
  const EditResult edit =
      apply_edit(before, EditKind::kAddBiggest, 50, 100'000);
  const RedundantShare sb(before, 2);
  const RedundantShare sa(edit.config, 2);
  const auto blocks = sequential_addresses(20'000);
  const MigrationPlan plan = plan_migration(sb, sa, blocks);
  EXPECT_GT(plan.moved_fraction(), 0.10);
  EXPECT_LT(plan.moved_fraction(), 0.45);
}

TEST(Migration, RejectsReplicationMismatch) {
  const ClusterConfig config = paper_heterogeneous_base();
  const RedundantShare s2(config, 2);
  const RedundantShare s3(config, 3);
  const auto blocks = sequential_addresses(10);
  EXPECT_THROW((void)plan_migration(s2, s3, blocks), std::invalid_argument);
}

}  // namespace
}  // namespace rds
