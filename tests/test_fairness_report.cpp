#include "src/sim/fairness_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/redundant_share.hpp"
#include "src/sim/scenario.hpp"

namespace rds {
namespace {

TEST(FairnessReport, FieldsForFairPlacement) {
  const ClusterConfig config = paper_heterogeneous_base();
  const RedundantShare s(config, 2);
  const BlockMap map(s, 50'000);
  const FairnessReport report =
      fairness_report(config, s.adjusted_capacities(), map);

  ASSERT_EQ(report.devices.size(), config.size());
  double copies = 0.0;
  for (const DeviceUsage& u : report.devices) {
    copies += static_cast<double>(u.copies);
    EXPECT_GT(u.fair_copies, 0.0);
  }
  EXPECT_DOUBLE_EQ(copies, static_cast<double>(map.total_copies()));
  // A fair strategy stays within a few percent at this sample size.
  EXPECT_LT(report.max_abs_deviation, 0.05);
  EXPECT_LE(report.rms_deviation, report.max_abs_deviation);
}

TEST(FairnessReport, DetectsUnfairness) {
  // Score a placement against deliberately wrong targets: all the weight on
  // one device.  Deviations must explode.
  const ClusterConfig config({{1, 100, ""}, {2, 100, ""}});
  const RedundantShare s(config, 1);
  const BlockMap map(s, 10'000);
  const std::vector<double> skewed{1000.0, 1.0};
  const FairnessReport report = fairness_report(config, skewed, map);
  EXPECT_GT(report.max_abs_deviation, 1.0);
}

TEST(FairnessReport, FillPercentUsesRawCapacity) {
  const ClusterConfig config({{1, 100, ""}, {2, 100, ""}});
  const RedundantShare s(config, 2);
  const BlockMap map(s, 50);  // 100 copies over 200 capacity
  const FairnessReport report =
      fairness_report(config, s.adjusted_capacities(), map);
  EXPECT_NEAR(report.devices[0].fill_percent, 50.0, 1e-9);
  EXPECT_NEAR(report.devices[1].fill_percent, 50.0, 1e-9);
}

TEST(FairnessReport, Validation) {
  const ClusterConfig config({{1, 100, ""}, {2, 100, ""}});
  const RedundantShare s(config, 2);
  const BlockMap map(s, 10);
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW((void)fairness_report(config, wrong_size, map),
               std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)fairness_report(config, zeros, map),
               std::invalid_argument);
}

TEST(FairnessReport, PrintProducesTable) {
  const ClusterConfig config({{1, 100, ""}, {2, 100, ""}});
  const RedundantShare s(config, 2);
  const BlockMap map(s, 50);
  const FairnessReport report =
      fairness_report(config, s.adjusted_capacities(), map);
  std::ostringstream os;
  report.print(os, "phase X");
  const std::string text = os.str();
  EXPECT_NE(text.find("phase X"), std::string::npos);
  EXPECT_NE(text.find("fill%"), std::string::npos);
  EXPECT_NE(text.find("max |deviation|"), std::string::npos);
}

}  // namespace
}  // namespace rds
