#include "src/placement/trivial_replication.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rds {
namespace {

/// The Figure 1 system: one bin with twice the capacity of the other two.
ClusterConfig figure1_cluster() {
  return ClusterConfig({{0, 200, "big"}, {1, 100, ""}, {2, 100, ""}});
}

TEST(TrivialReplication, CopiesDistinctAndDeterministic) {
  for (const TrivialBackend backend :
       {TrivialBackend::kExactRace, TrivialBackend::kRingWalk}) {
    const TrivialReplication s(figure1_cluster(), 2, backend);
    std::vector<DeviceId> out(2), again(2);
    for (std::uint64_t a = 0; a < 2000; ++a) {
      s.place(a, out);
      EXPECT_NE(out[0], out[1]);
      s.place(a, again);
      EXPECT_EQ(out, again);
    }
  }
}

TEST(TrivialReplication, Figure1BigBinMissProbability) {
  // Lemma 2.4 / Figure 1: P(big bin receives NO copy) = 1/2 * 1/3 = 1/6,
  // so the big bin's expected load is 5/6 instead of the required 1 --
  // the trivial strategy wastes 1/6 of the biggest bin.
  const TrivialReplication s(figure1_cluster(), 2, TrivialBackend::kExactRace);
  constexpr std::uint64_t kBalls = 300'000;
  std::uint64_t missed = 0;
  std::vector<DeviceId> out(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    if (out[0] != 0 && out[1] != 0) ++missed;
  }
  const double p_miss = static_cast<double>(missed) / kBalls;
  EXPECT_NEAR(p_miss, 1.0 / 6.0, 0.005);
}

TEST(TrivialReplication, FirstDrawIsFair) {
  // Draw 1 is proportional to raw weights: P(first = big) = 1/2.
  const TrivialReplication s(figure1_cluster(), 2, TrivialBackend::kExactRace);
  constexpr std::uint64_t kBalls = 100'000;
  std::uint64_t first_big = 0;
  std::vector<DeviceId> out(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    if (out[0] == 0) ++first_big;
  }
  EXPECT_NEAR(static_cast<double>(first_big) / kBalls, 0.5, 0.01);
}

TEST(TrivialReplication, RingWalkShowsSameCapacityLoss) {
  // The practical ring implementation exhibits the same qualitative miss
  // probability (approximately, through the vnode discretization).
  const TrivialReplication s(figure1_cluster(), 2, TrivialBackend::kRingWalk);
  constexpr std::uint64_t kBalls = 100'000;
  std::uint64_t missed = 0;
  std::vector<DeviceId> out(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    if (out[0] != 0 && out[1] != 0) ++missed;
  }
  EXPECT_NEAR(static_cast<double>(missed) / kBalls, 1.0 / 6.0, 0.03);
}

TEST(TrivialReplication, KEqualsNUsesEveryDevice) {
  const TrivialReplication s(figure1_cluster(), 3);
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < 500; ++a) {
    s.place(a, out);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(sorted, (std::vector<DeviceId>{0, 1, 2}));
  }
}

TEST(TrivialReplication, Validation) {
  EXPECT_THROW(TrivialReplication(figure1_cluster(), 0),
               std::invalid_argument);
  EXPECT_THROW(TrivialReplication(figure1_cluster(), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
