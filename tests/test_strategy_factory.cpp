// The factory is the only place a strategy is built from a kind tag; these
// tests pin the contract every consumer (VirtualDisk, rds_cli, benches)
// relies on: every kind constructs, parameters are validated, names round
// trip, and the factory product is placement-identical to direct
// construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/strategy_factory.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig(
      {{1, 500, "a"}, {2, 700, "b"}, {3, 900, "c"}, {4, 1100, "d"}});
}

constexpr PlacementKind kAllKinds[] = {
    PlacementKind::kRedundantShare,
    PlacementKind::kFastRedundantShare,
    PlacementKind::kTrivial,
    PlacementKind::kRoundRobin,
    PlacementKind::kPrecomputed,
};

TEST(StrategyFactory, ConstructsEveryKind) {
  const ClusterConfig config = make_cluster();
  for (const PlacementKind kind : kAllKinds) {
    const auto strategy = make_replication_strategy(kind, config, 2);
    ASSERT_NE(strategy, nullptr) << to_string(kind);
    EXPECT_EQ(strategy->replication(), 2u) << to_string(kind);
    EXPECT_EQ(strategy->device_count(), config.size()) << to_string(kind);
    const std::vector<DeviceId> copies = strategy->place(42);
    ASSERT_EQ(copies.size(), 2u);
    EXPECT_NE(copies[0], copies[1]) << to_string(kind);
  }
}

TEST(StrategyFactory, ProductMatchesDirectConstruction) {
  const ClusterConfig config = make_cluster();
  const RedundantShare direct(config, 3);
  const auto made = make_replication_strategy(PlacementKind::kRedundantShare,
                                              config, 3);
  for (std::uint64_t address = 0; address < 1000; ++address) {
    EXPECT_EQ(made->place(address), direct.place(address)) << address;
  }
}

TEST(StrategyFactory, RejectsBadParameters) {
  const ClusterConfig config = make_cluster();
  for (const PlacementKind kind : kAllKinds) {
    EXPECT_THROW(make_replication_strategy(kind, config, 0),
                 std::invalid_argument)
        << to_string(kind);
    EXPECT_THROW(make_replication_strategy(kind, config, 5),
                 std::invalid_argument)
        << to_string(kind);
  }
}

TEST(StrategyFactory, PrecomputedProductMatchesDirectConstruction) {
  const ClusterConfig config = make_cluster();
  const PrecomputedRedundantShare direct(config, 3);
  const auto made =
      make_replication_strategy(PlacementKind::kPrecomputed, config, 3);
  for (std::uint64_t address = 0; address < 1000; ++address) {
    EXPECT_EQ(made->place(address), direct.place(address)) << address;
  }
}

TEST(StrategyFactory, RejectsOutOfRangeKind) {
  EXPECT_THROW(make_replication_strategy(static_cast<PlacementKind>(99),
                                         make_cluster(), 2),
               std::logic_error);
}

TEST(StrategyFactory, UnknownKindErrorEnumeratesValidNames) {
  // Operators hit this through rds_cli --strategy; the message must list
  // every kind so a typo is self-diagnosing.
  try {
    make_replication_strategy(static_cast<PlacementKind>(99), make_cluster(),
                              2);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string message = e.what();
    for (const PlacementKind kind : kAllKinds) {
      EXPECT_NE(message.find(to_string(kind)), std::string::npos)
          << "missing `" << to_string(kind) << "` in: " << message;
    }
  }
}

TEST(StrategyFactory, AllPlacementKindsCoversEveryKind) {
  const auto kinds = all_placement_kinds();
  EXPECT_EQ(kinds.size(), std::size(kAllKinds));
  for (const PlacementKind kind : kAllKinds) {
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind), kinds.end())
        << to_string(kind);
  }
}

TEST(StrategyFactory, PlacementKindNamesListsEveryCanonicalName) {
  const std::string names = placement_kind_names();
  for (const PlacementKind kind : kAllKinds) {
    EXPECT_NE(names.find(to_string(kind)), std::string::npos)
        << "missing `" << to_string(kind) << "` in: " << names;
  }
}

TEST(StrategyFactory, NamesRoundTrip) {
  for (const PlacementKind kind : kAllKinds) {
    const auto parsed = parse_placement_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(StrategyFactory, ParsesShortAliases) {
  EXPECT_EQ(parse_placement_kind("rs"), PlacementKind::kRedundantShare);
  EXPECT_EQ(parse_placement_kind("fast"),
            PlacementKind::kFastRedundantShare);
  EXPECT_EQ(parse_placement_kind("rr"), PlacementKind::kRoundRobin);
  EXPECT_EQ(parse_placement_kind("trivial"), PlacementKind::kTrivial);
  EXPECT_EQ(parse_placement_kind("pre"), PlacementKind::kPrecomputed);
  EXPECT_EQ(parse_placement_kind("precomputed"),
            PlacementKind::kPrecomputed);
  EXPECT_FALSE(parse_placement_kind("bogus").has_value());
  EXPECT_FALSE(parse_placement_kind("").has_value());
}

}  // namespace
}  // namespace rds
