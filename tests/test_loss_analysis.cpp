#include "src/core/loss_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/block_map.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], ""});
  }
  return ClusterConfig(std::move(devices));
}

TEST(LossAnalysis, DistributionSumsToOne) {
  const RedundantShare s(cluster_from({5, 4, 3, 2, 1}), 3);
  const std::vector<DeviceId> failed{0, 2};
  const std::vector<double> dist = copies_in_set_distribution(s, failed);
  ASSERT_EQ(dist.size(), 4u);
  double total = 0.0;
  for (const double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LossAnalysis, EmptySetMeansNoLoss) {
  const RedundantShare s(cluster_from({5, 4, 3, 2, 1}), 2);
  const std::vector<double> dist = copies_in_set_distribution(s, {});
  EXPECT_NEAR(dist[0], 1.0, 1e-12);
  EXPECT_NEAR(exact_loss_probability(s, {}), 0.0, 1e-12);
}

TEST(LossAnalysis, AllDevicesMeansTotalLoss) {
  const RedundantShare s(cluster_from({5, 4, 3}), 2);
  const std::vector<DeviceId> all{0, 1, 2};
  EXPECT_NEAR(exact_loss_probability(s, all), 1.0, 1e-12);
}

TEST(LossAnalysis, SingleFailureNeverLosesMirroredData) {
  const RedundantShare s(cluster_from({5, 4, 3, 2}), 2);
  for (DeviceId uid = 0; uid < 4; ++uid) {
    const std::vector<DeviceId> failed{uid};
    EXPECT_NEAR(exact_loss_probability(s, failed), 0.0, 1e-12);
    // But the device does hold copies: P(1 copy in set) > 0.
    const std::vector<double> dist = copies_in_set_distribution(s, failed);
    EXPECT_GT(dist[1], 0.0);
  }
}

TEST(LossAnalysis, ExpectedCopiesInSetMatchesFairShares) {
  // E[copies in F] = sum over F of per-device expected copies.
  const RedundantShare s(cluster_from({6, 5, 4, 3, 2}), 3);
  const std::vector<DeviceId> failed{1, 3};
  const std::vector<double> dist = copies_in_set_distribution(s, failed);
  double expected_in_set = 0.0;
  for (std::size_t c = 0; c < dist.size(); ++c) {
    expected_in_set += static_cast<double>(c) * dist[c];
  }
  const std::vector<double> per_bin = s.exact_expected_copies();
  double direct = 0.0;
  for (std::size_t i = 0; i < s.canonical_uids().size(); ++i) {
    const DeviceId uid = s.canonical_uids()[i];
    if (uid == 1 || uid == 3) direct += per_bin[i];
  }
  EXPECT_NEAR(expected_in_set, direct, 1e-12);
}

TEST(LossAnalysis, MatchesMonteCarlo) {
  const ClusterConfig config = cluster_from({9, 7, 5, 3, 2, 1});
  const RedundantShare s(config, 2);
  const std::vector<DeviceId> failed{0, 1};  // the two biggest devices

  const double exact = exact_loss_probability(s, failed);
  constexpr std::uint64_t kBalls = 200'000;
  const BlockMap map(s, kBalls);
  std::uint64_t lost = 0;
  for (std::uint64_t b = 0; b < kBalls; ++b) {
    const auto copies = map.copies(b);
    bool all_in = true;
    for (const DeviceId d : copies) {
      if (d != 0 && d != 1) all_in = false;
    }
    if (all_in) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kBalls, exact,
              4.0 * std::sqrt(exact / kBalls) + 1e-3);
  EXPECT_GT(exact, 0.0);
}

TEST(LossAnalysis, ErasureThresholdSemantics) {
  // RS(2+2)-style: k = 4 fragments, any 2 reconstruct.  Losing two devices
  // loses a ball only if 3+ fragments were inside.
  const RedundantShare s(cluster_from({5, 4, 3, 2, 1, 1}), 4);
  const std::vector<DeviceId> failed{0, 1};
  const double mirror_loss = exact_loss_probability(s, failed, 1);
  const double rs_loss = exact_loss_probability(s, failed, 2);
  // Needing only 1 surviving fragment (mirror) is safer than needing 2.
  EXPECT_LE(mirror_loss, rs_loss);
  // With 2 failed devices, at most 2 of 4 fragments are inside: mirror-loss
  // (all 4 inside) is impossible and rs_loss (3+ inside) as well.
  EXPECT_NEAR(mirror_loss, 0.0, 1e-12);
  EXPECT_NEAR(rs_loss, 0.0, 1e-12);
  // Needing 3 survivors (tolerates only 1 loss) does lose data.
  EXPECT_GT(exact_loss_probability(s, failed, 3), 0.0);
}

TEST(LossAnalysis, Validation) {
  const RedundantShare s(cluster_from({3, 2, 1}), 2);
  EXPECT_THROW((void)exact_loss_probability(s, {}, 0), std::invalid_argument);
  EXPECT_THROW((void)exact_loss_probability(s, {}, 3), std::invalid_argument);
  // Unknown uids are ignored.
  const std::vector<DeviceId> unknown{42};
  EXPECT_NEAR(exact_loss_probability(s, unknown), 0.0, 1e-12);
}

}  // namespace
}  // namespace rds
