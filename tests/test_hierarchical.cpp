#include "src/core/hierarchical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

std::vector<FailureDomain> three_racks() {
  return {
      {"rack-a", {{1, 400, ""}, {2, 400, ""}}},
      {"rack-b", {{3, 300, ""}, {4, 300, ""}, {5, 200, ""}}},
      {"rack-c", {{6, 500, ""}, {7, 300, ""}}},
  };
}

TEST(HierarchicalRS, DeterministicDistinctDomains) {
  const HierarchicalRedundantShare s(three_racks(), 2);
  std::vector<DeviceId> out(2), again(2);
  for (std::uint64_t a = 0; a < 3000; ++a) {
    s.place(a, out);
    s.place(a, again);
    EXPECT_EQ(out, again);
    EXPECT_NE(s.domain_of(out[0]), s.domain_of(out[1]));
  }
}

TEST(HierarchicalRS, GlobalDeviceFairness) {
  // Exact global fairness: device share = k * capacity / total, across
  // domain boundaries.
  const HierarchicalRedundantShare s(three_racks(), 2);
  constexpr std::uint64_t kBalls = 200'000;
  std::map<DeviceId, std::uint64_t> counts;
  std::vector<DeviceId> out(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    for (const DeviceId d : out) ++counts[d];
  }
  const std::map<DeviceId, double> caps{{1, 400}, {2, 400}, {3, 300},
                                        {4, 300}, {5, 200}, {6, 500},
                                        {7, 300}};
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  for (const auto& [uid, cap] : caps) {
    observed.push_back(counts[uid]);
    expected.push_back(2.0 * kBalls * cap / 2400.0);
  }
  EXPECT_LT(chi_square(observed, expected),
            chi_square_critical_999(observed.size() - 1));
}

TEST(HierarchicalRS, DominantDomainGetsFullShare) {
  // The configuration where CRUSH's straw selection loses capacity: the
  // big domain (half the total) must hold one copy of every ball.
  const std::vector<FailureDomain> domains{
      {"big", {{1, 500, ""}, {2, 500, ""}}},
      {"s1", {{3, 250, ""}, {4, 250, ""}}},
      {"s2", {{5, 250, ""}, {6, 250, ""}}},
  };
  const HierarchicalRedundantShare s(domains, 2);
  std::vector<DeviceId> out(2);
  constexpr std::uint64_t kBalls = 50'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    EXPECT_TRUE(out[0] <= 2 || out[1] <= 2)
        << "ball " << a << " has no copy in the dominant domain";
  }
}

TEST(HierarchicalRS, OuterLawIsExactlyFair) {
  // The outer RedundantShare over the pseudo-devices is exactly fair w.r.t.
  // the domains' adjusted aggregate capacities.
  const HierarchicalRedundantShare s(three_racks(), 2);
  const std::vector<double> expected = s.outer().exact_expected_copies();
  const std::span<const double> adjusted = s.outer().adjusted_capacities();
  double total = 0.0;
  for (const double c : adjusted) total += c;
  for (std::size_t d = 0; d < expected.size(); ++d) {
    EXPECT_NEAR(expected[d], 2.0 * adjusted[d] / total, 1e-9);
  }
}

TEST(HierarchicalRS, AdaptivityInsideDomain) {
  // Adding a device to one rack moves data only (a) into the new device or
  // (b) between domains whose outer weights shifted -- never within an
  // untouched rack.
  std::vector<FailureDomain> before = three_racks();
  std::vector<FailureDomain> after = before;
  after[1].devices.push_back({9, 400, "new"});

  const HierarchicalRedundantShare sb(before, 2);
  const HierarchicalRedundantShare sa(after, 2);
  constexpr std::uint64_t kBalls = 40'000;
  std::uint64_t moved = 0;  // set semantics: devices newly holding a copy
  std::vector<DeviceId> ob(2), oa(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    sb.place(a, ob);
    sa.place(a, oa);
    std::ranges::sort(ob);
    std::ranges::sort(oa);
    for (const DeviceId d : oa) {
      if (std::ranges::find(ob, d) == ob.end()) {
        ++moved;
        // A copy that stays within its rack may only move onto the new
        // device (the inner rendezvous races are 1-competitive); any other
        // new location must come from a domain-set change.
        if (d != 9 && ob[0] != d && ob[1] != d) {
          const std::size_t new_domain = sa.domain_of(d);
          EXPECT_TRUE(sb.domain_of(ob[0]) != new_domain &&
                      sb.domain_of(ob[1]) != new_domain)
              << "ball " << a << " reshuffled inside an untouched rack";
        }
      }
    }
  }
  // Rack-b's weight went from 800/2400 to 1200/2800 (~+9.5% of all copies
  // land there): a bounded reshuffle, not a full one.
  EXPECT_LT(moved, 2 * kBalls / 2);  // under half the copies
  EXPECT_GT(moved, 0u);
}

TEST(HierarchicalRS, Validation) {
  EXPECT_THROW(HierarchicalRedundantShare({}, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalRedundantShare(three_racks(), 0),
               std::invalid_argument);
  EXPECT_THROW(HierarchicalRedundantShare(three_racks(), 4),
               std::invalid_argument);
  EXPECT_THROW(
      HierarchicalRedundantShare({{"dup", {{1, 1, ""}, {1, 1, ""}}}}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace rds
