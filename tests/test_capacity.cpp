#include "src/core/capacity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/cluster/cluster_config.hpp"
#include "src/util/checked_math.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

TEST(CapacityEfficient, Lemma21Condition) {
  // k * b_max <= B  iff capacity efficient.
  EXPECT_TRUE(capacity_efficient(std::vector<double>{2, 1, 1}, 2));   // 4 >= 4
  EXPECT_FALSE(capacity_efficient(std::vector<double>{3, 1, 1}, 2));  // 6 > 5
  EXPECT_TRUE(capacity_efficient(std::vector<double>{1, 1, 1}, 3));
  EXPECT_FALSE(capacity_efficient(std::vector<double>{2, 1, 1}, 3));
  EXPECT_FALSE(capacity_efficient(std::vector<double>{1, 1}, 3));  // n < k
}

TEST(OptimalWeights, NoClampWhenFeasible) {
  const std::vector<double> caps{2, 1, 1};
  const std::vector<double> adj = optimal_weights(caps, 2);
  EXPECT_EQ(adj, caps);
}

TEST(OptimalWeights, ClampsOversizedBin) {
  // {10, 1, 1}, k=2: bin 0 can mirror with at most 2 blocks of partners.
  const std::vector<double> adj =
      optimal_weights(std::vector<double>{10, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(adj[0], 2.0);
  EXPECT_DOUBLE_EQ(adj[1], 1.0);
  EXPECT_DOUBLE_EQ(adj[2], 1.0);
}

TEST(OptimalWeights, RecursiveClampK3) {
  // {10, 10, 1, 1}, k=3: inner level clamps bin 1 to 2, outer clamps bin 0.
  const std::vector<double> adj =
      optimal_weights(std::vector<double>{10, 10, 1, 1}, 3);
  EXPECT_DOUBLE_EQ(adj[0], 2.0);
  EXPECT_DOUBLE_EQ(adj[1], 2.0);
  EXPECT_DOUBLE_EQ(adj[2], 1.0);
  EXPECT_DOUBLE_EQ(adj[3], 1.0);
}

TEST(OptimalWeights, AllEqualForKEqualsN) {
  // k == n: every bin stores every ball -> usable is n * min capacity.
  const std::vector<double> adj =
      optimal_weights(std::vector<double>{9, 7, 5, 2}, 4);
  for (const double a : adj) EXPECT_DOUBLE_EQ(a, 2.0);
}

TEST(OptimalWeights, ResultSatisfiesLemma21) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.next_below(10);
    const unsigned k =
        2 + static_cast<unsigned>(rng.next_below(std::min<std::uint64_t>(4, n - 1)));
    std::vector<double> caps;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(1.0 + static_cast<double>(rng.next_below(1000)));
    }
    std::ranges::sort(caps, std::greater<>());
    const std::vector<double> adj = optimal_weights(caps, k);
    // Adjusted never exceeds raw, order preserved, Lemma 2.1 holds.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(adj[i], caps[i] + 1e-9);
      if (i > 0) EXPECT_LE(adj[i], adj[i - 1] + 1e-9);
      total += adj[i];
    }
    EXPECT_LE(k * adj[0], total + 1e-6 * total);
  }
}

TEST(OptimalWeights, Validation) {
  EXPECT_THROW((void)optimal_weights(std::vector<double>{1, 2}, 2),
               std::invalid_argument);  // not descending
  EXPECT_THROW((void)optimal_weights(std::vector<double>{1}, 2),
               std::invalid_argument);  // n < k
  EXPECT_THROW((void)optimal_weights(std::vector<double>{1, 0}, 2),
               std::invalid_argument);  // zero capacity
  EXPECT_THROW((void)optimal_weights(std::vector<double>{1, 1}, 0),
               std::invalid_argument);  // k == 0
}

TEST(MaxBalls, MatchesHandComputedExamples) {
  EXPECT_DOUBLE_EQ(max_balls(std::vector<double>{2, 1, 1}, 2), 2.0);
  EXPECT_DOUBLE_EQ(max_balls(std::vector<double>{10, 1, 1}, 2), 2.0);
  EXPECT_DOUBLE_EQ(max_balls(std::vector<double>{10, 10, 1}, 2), 10.5);
  EXPECT_DOUBLE_EQ(max_balls(std::vector<double>{10, 10, 1, 1}, 3), 2.0);
  EXPECT_DOUBLE_EQ(max_balls(std::vector<double>{7, 1, 1, 1}, 3), 1.5);
}

TEST(GreedyPack, AchievesTheLemmaBound) {
  // The constructive proof: greedy always packs floor(B_max) balls.
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 3 + rng.next_below(8);
    const unsigned k = 2 + static_cast<unsigned>(rng.next_below(2));
    if (n < k) continue;
    std::vector<std::uint64_t> caps;
    for (std::size_t i = 0; i < n; ++i) caps.push_back(1 + rng.next_below(40));
    std::ranges::sort(caps, std::greater<>());
    std::vector<double> capsd(caps.begin(), caps.end());

    const auto bound =
        static_cast<std::uint64_t>(std::floor(max_balls(capsd, k) + 1e-9));
    const auto packed = greedy_pack(caps, k, bound);
    ASSERT_TRUE(packed.has_value())
        << "greedy failed to pack " << bound << " balls";
    // No bin above capacity, total copies == k * bound.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE((*packed)[i], caps[i]);
      total += (*packed)[i];
    }
    EXPECT_EQ(total, k * bound);
  }
}

TEST(GreedyPack, FailsBeyondTheBound) {
  // One ball more than B_max must be impossible (Lemma 2.2 is tight).
  const std::vector<std::uint64_t> caps{10, 1, 1};
  EXPECT_TRUE(greedy_pack(caps, 2, 2).has_value());
  EXPECT_FALSE(greedy_pack(caps, 2, 3).has_value());

  const std::vector<std::uint64_t> caps2{10, 10, 1, 1};
  EXPECT_TRUE(greedy_pack(caps2, 3, 2).has_value());
  EXPECT_FALSE(greedy_pack(caps2, 3, 3).has_value());
}

TEST(GreedyPack, TightnessOnRandomInstances) {
  // floor(B_max) packs, floor(B_max) + 1 does not (when capacities are
  // integers and B_max is integral the +1 case must fail; when fractional
  // the floor+1 case must also fail).
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + rng.next_below(6);
    const unsigned k = 2;
    std::vector<std::uint64_t> caps;
    for (std::size_t i = 0; i < n; ++i) caps.push_back(1 + rng.next_below(25));
    std::ranges::sort(caps, std::greater<>());
    std::vector<double> capsd(caps.begin(), caps.end());
    const double exact = max_balls(capsd, k);
    const auto bound = static_cast<std::uint64_t>(std::floor(exact + 1e-9));
    EXPECT_TRUE(greedy_pack(caps, k, bound).has_value());
    EXPECT_FALSE(greedy_pack(caps, k, bound + 1).has_value());
  }
}

TEST(AnalyzeCapacity, ReportsAllFields) {
  const CapacityAnalysis a =
      analyze_capacity(std::vector<double>{10, 1, 1}, 2);
  EXPECT_FALSE(a.feasible_unadjusted);
  EXPECT_DOUBLE_EQ(a.raw_capacity, 12.0);
  EXPECT_DOUBLE_EQ(a.usable_capacity, 4.0);
  EXPECT_DOUBLE_EQ(a.max_balls, 2.0);

  const CapacityAnalysis b = analyze_capacity(std::vector<double>{2, 1, 1}, 2);
  EXPECT_TRUE(b.feasible_unadjusted);
  EXPECT_DOUBLE_EQ(b.usable_capacity, b.raw_capacity);
}

TEST(CheckedMath, AddMulSumDetectOverflow) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(checked_add(1, 2).value_or_throw(), 3u);
  EXPECT_EQ(checked_add(kMax, 0).value_or_throw(), kMax);
  EXPECT_EQ(checked_add(kMax, 1).code(), ErrorCode::kInvalidArgument);

  EXPECT_EQ(checked_mul(3, 7).value_or_throw(), 21u);
  EXPECT_EQ(checked_mul(kMax, 1).value_or_throw(), kMax);
  EXPECT_EQ(checked_mul(kMax / 2 + 1, 2).code(),
            ErrorCode::kInvalidArgument);

  const std::vector<std::uint64_t> fits{1, 2, 3};
  EXPECT_EQ(checked_sum(fits).value_or_throw(), 6u);
  const std::vector<std::uint64_t> wraps{kMax, 1};
  EXPECT_EQ(checked_sum(wraps).code(), ErrorCode::kInvalidArgument);
}

TEST(CheckedMath, TryCapacityEfficientMatchesLemma21Exactly) {
  // Same instances as Lemma21Condition, on exact byte counts.
  EXPECT_TRUE(ClusterConfig({{1, 2, "a"}, {2, 1, "b"}, {3, 1, "c"}})
                  .try_capacity_efficient(2)
                  .value_or_throw());
  EXPECT_FALSE(ClusterConfig({{1, 3, "a"}, {2, 1, "b"}, {3, 1, "c"}})
                   .try_capacity_efficient(2)
                   .value_or_throw());
  EXPECT_EQ(ClusterConfig({{1, 2, "a"}}).try_capacity_efficient(0).code(),
            ErrorCode::kInvalidArgument);

  // An overflowing demand k * b_max is a diagnosis, not a verdict.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(ClusterConfig({{1, kMax / 2 + 1, "a"}, {2, 1, "b"}})
                .try_capacity_efficient(3)
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(CheckedMath, CanonicalizeRejectsOverflowingTotal) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_THROW(ClusterConfig({{1, kMax, "a"}, {2, kMax, "b"}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
