// End-to-end checks that the placement/storage/migration stack reports into
// the global metrics registry.  Each TEST runs in its own process under
// gtest_discover_tests, so resetting the global registry at the top of a
// test cannot race another test.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/metrics/registry.hpp"
#include "src/storage/migration.hpp"
#include "src/storage/storage_pool.hpp"
#include "src/storage/virtual_disk.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], "d" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  std::iota(data.begin(), data.end(), std::uint8_t{1});
  return data;
}

std::uint64_t counter_value(const metrics::Snapshot& snap,
                            std::string_view name,
                            const metrics::Labels& labels = {}) {
  const metrics::Sample* s = snap.find(name, labels);
  return s == nullptr ? 0 : s->counter_value;
}

TEST(MetricsIntegration, RedundantSharePlacementCounters) {
  metrics::Registry::global().reset();
  const ClusterConfig config = cluster_from({500, 600, 700});
  const RedundantShare strategy(config, 2);
  constexpr std::uint64_t kBalls = 1'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) (void)strategy.place(a);

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  const metrics::Labels labels = {{"strategy", "redundant-share"}};
  EXPECT_EQ(counter_value(snap, "rds_placements_total", labels), kBalls);
  // Every placement walks at least one column and considers at least one
  // last-copy candidate.
  EXPECT_GE(counter_value(snap, "rds_placement_chain_columns_total", labels),
            kBalls);
  EXPECT_GE(
      counter_value(snap, "rds_placement_last_copy_candidates_total", labels),
      kBalls);
}

TEST(MetricsIntegration, FastRedundantShareUsesOwnLabel) {
  metrics::Registry::global().reset();
  const ClusterConfig config = cluster_from({500, 600, 700, 800});
  const FastRedundantShare strategy(config, 3);
  for (std::uint64_t a = 0; a < 100; ++a) (void)strategy.place(a);

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "rds_placements_total",
                          {{"strategy", "fast-redundant-share"}}),
            100u);
  EXPECT_EQ(counter_value(snap, "rds_placements_total",
                          {{"strategy", "redundant-share"}}),
            0u);
}

TEST(MetricsIntegration, VirtualDiskReadWriteCounters) {
  metrics::Registry::global().reset();
  VirtualDisk disk(cluster_from({1000, 1000, 1000}),
                   std::make_shared<MirroringScheme>(2));
  const auto data = payload(64);
  for (std::uint64_t b = 0; b < 10; ++b) disk.write(b, data);
  for (std::uint64_t b = 0; b < 10; ++b) (void)disk.read(b);

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "rds_storage_writes_total"), 10u);
  EXPECT_EQ(counter_value(snap, "rds_storage_reads_total"), 10u);
  EXPECT_EQ(counter_value(snap, "rds_storage_written_bytes_total"), 640u);
  EXPECT_EQ(counter_value(snap, "rds_storage_read_bytes_total"), 640u);
  EXPECT_EQ(counter_value(snap, "rds_storage_degraded_reads_total"), 0u);

  const metrics::Sample* lat = snap.find("rds_placement_latency_ns");
  ASSERT_NE(lat, nullptr);
  // One placement timing per write and per read.
  EXPECT_EQ(lat->histogram.count, 20u);
  EXPECT_GT(lat->histogram.sum, 0u);
}

TEST(MetricsIntegration, DegradedReadsAreCounted) {
  metrics::Registry::global().reset();
  VirtualDisk disk(cluster_from({1000, 1000, 1000}),
                   std::make_shared<MirroringScheme>(2));
  const auto data = payload(32);
  for (std::uint64_t b = 0; b < 50; ++b) disk.write(b, data);
  disk.fail_device(0);
  for (std::uint64_t b = 0; b < 50; ++b) (void)disk.read(b);

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_GT(counter_value(snap, "rds_storage_degraded_reads_total"), 0u);
  EXPECT_EQ(counter_value(snap, "rds_storage_degraded_reads_total"),
            disk.stats().degraded_reads);
}

TEST(MetricsIntegration, DeviceGaugesTrackFragmentCounts) {
  metrics::Registry::global().reset();
  VirtualDisk disk(cluster_from({1000, 1000, 1000}),
                   std::make_shared<MirroringScheme>(2));
  const auto data = payload(16);
  for (std::uint64_t b = 0; b < 100; ++b) disk.write(b, data);
  disk.publish_device_gauges();

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  std::int64_t total = 0;
  for (const DeviceId uid : {0u, 1u, 2u}) {
    const metrics::Sample* g = snap.find(
        "rds_device_fragments", {{"device", std::to_string(uid)}});
    ASSERT_NE(g, nullptr) << "device " << uid;
    EXPECT_EQ(g->gauge_value,
              static_cast<std::int64_t>(disk.used_on(uid)));
    total += g->gauge_value;
  }
  EXPECT_EQ(total, 200);  // 100 blocks, 2 fragments each

  // Trims must pull the gauges back down.
  for (std::uint64_t b = 0; b < 100; ++b) disk.trim(b);
  const metrics::Snapshot after = metrics::Registry::global().snapshot();
  for (const DeviceId uid : {0u, 1u, 2u}) {
    const metrics::Sample* g = after.find(
        "rds_device_fragments", {{"device", std::to_string(uid)}});
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->gauge_value, 0);
  }
}

TEST(MetricsIntegration, MigrationMovesAreCounted) {
  metrics::Registry::global().reset();
  VirtualDisk disk(cluster_from({1000, 1000, 1000}),
                   std::make_shared<MirroringScheme>(2));
  const auto data = payload(128);
  for (std::uint64_t b = 0; b < 200; ++b) disk.write(b, data);
  disk.add_device({9, 5000, "grown"});

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "rds_topology_events_total"), 1u);
  EXPECT_EQ(counter_value(snap, "rds_migration_fragments_moved_total"),
            disk.stats().fragments_moved);
  EXPECT_EQ(counter_value(snap, "rds_migration_bytes_moved_total"),
            disk.stats().bytes_moved);
  EXPECT_GT(disk.stats().fragments_moved, 0u);

  const metrics::Sample* lat = snap.find("rds_migration_step_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->histogram.count, 0u);
}

TEST(MetricsIntegration, RebuildCountsFragments) {
  metrics::Registry::global().reset();
  VirtualDisk disk(cluster_from({1000, 1000, 1000, 1000}),
                   std::make_shared<MirroringScheme>(2));
  const auto data = payload(64);
  for (std::uint64_t b = 0; b < 100; ++b) disk.write(b, data);
  disk.fail_device(2);
  const std::uint64_t rebuilt = disk.rebuild();
  EXPECT_GT(rebuilt, 0u);

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "rds_migration_fragments_rebuilt_total"),
            rebuilt);
}

TEST(MetricsIntegration, MigrationPlannerCounters) {
  metrics::Registry::global().reset();
  const ClusterConfig before = cluster_from({500, 600, 700});
  const ClusterConfig after = cluster_from({500, 600, 700, 800});
  const RedundantShare sb(before, 2);
  const RedundantShare sa(after, 2);
  std::vector<std::uint64_t> blocks(1'000);
  std::iota(blocks.begin(), blocks.end(), 0u);
  const MigrationPlan plan = plan_migration(sb, sa, blocks);

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "rds_migration_plans_total"), 1u);
  EXPECT_EQ(counter_value(snap, "rds_migration_planned_moves_total"),
            plan.moves.size());
  EXPECT_EQ(counter_value(snap, "rds_migration_planned_fragments_total"),
            plan.total_fragments);
}

TEST(MetricsIntegration, PoolPublishesVolumeAndDeviceGauges) {
  metrics::Registry::global().reset();
  StoragePool pool(cluster_from({2000, 2000, 2000}));
  VirtualDisk& a = pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  (void)pool.create_volume("b", std::make_shared<MirroringScheme>(3));
  const auto data = payload(64);
  for (std::uint64_t b = 0; b < 20; ++b) a.write(b, data);
  pool.publish_metrics();

  const metrics::Snapshot snap = metrics::Registry::global().snapshot();
  EXPECT_EQ(counter_value(snap, "rds_pool_volumes_created_total"), 2u);
  const metrics::Sample* volumes = snap.find("rds_pool_volumes");
  ASSERT_NE(volumes, nullptr);
  EXPECT_EQ(volumes->gauge_value, 2);
  const metrics::Sample* devices = snap.find("rds_pool_devices");
  ASSERT_NE(devices, nullptr);
  EXPECT_EQ(devices->gauge_value, 3);
}

}  // namespace
}  // namespace rds
