#include "src/util/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace rds {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, NextUnitInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256 rng(11);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1'000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowZeroBound) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBound = 10;
  std::array<int, kBound> counts{};
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBound, 4 * std::sqrt(kN / kBound));
  }
}

}  // namespace
}  // namespace rds
