#include "src/placement/jump_hash.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

TEST(JumpHash, CoreFunctionBasics) {
  EXPECT_EQ(jump_consistent_hash(123, 1), 0u);
  EXPECT_THROW((void)jump_consistent_hash(1, 0), std::invalid_argument);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_LT(jump_consistent_hash(key, 7), 7u);
  }
}

TEST(JumpHash, UniformDistribution) {
  constexpr std::uint32_t kBuckets = 10;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  constexpr std::uint64_t kKeys = 200'000;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[jump_consistent_hash(key * 0x9e3779b97f4a7c15ULL, kBuckets)];
  }
  const std::vector<double> expected(kBuckets,
                                     static_cast<double>(kKeys) / kBuckets);
  EXPECT_LT(chi_square(counts, expected), chi_square_critical_999(kBuckets - 1));
}

TEST(JumpHash, OptimalMovementOnGrowth) {
  // Growing n -> n+1 moves exactly the keys that land on the new bucket:
  // a 1/(n+1) fraction, and nothing reshuffles among old buckets.
  constexpr std::uint64_t kKeys = 100'000;
  std::uint64_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::uint32_t before = jump_consistent_hash(key, 9);
    const std::uint32_t after = jump_consistent_hash(key, 10);
    if (before != after) {
      ++moved;
      EXPECT_EQ(after, 9u) << "key moved between old buckets";
    }
  }
  EXPECT_NEAR(static_cast<double>(moved), kKeys / 10.0, 0.01 * kKeys);
}

TEST(JumpHash, StrategyAdapterIgnoresWeights) {
  // Documented: uniform across devices regardless of capacity.
  const ClusterConfig config({{1, 1000, ""}, {2, 10, ""}, {3, 10, ""}});
  const JumpHash s(config);
  std::uint64_t counts[4] = {};
  constexpr std::uint64_t kBalls = 60'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) ++counts[s.place(a)];
  for (DeviceId uid = 1; uid <= 3; ++uid) {
    EXPECT_NEAR(static_cast<double>(counts[uid]) / kBalls, 1.0 / 3.0, 0.01);
  }
}

TEST(JumpHash, AppendOnlyGrowthIsCheap) {
  ClusterConfig before({{1, 100, ""}, {2, 100, ""}, {3, 100, ""}});
  ClusterConfig after = before;
  after.add_device({4, 100, ""});  // uid 4 > all: appended at the end
  const JumpHash sb(before), sa(after);
  std::uint64_t moved = 0;
  constexpr std::uint64_t kBalls = 40'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    if (sb.place(a) != sa.place(a)) ++moved;
  }
  EXPECT_NEAR(static_cast<double>(moved), kBalls / 4.0, 0.01 * kBalls);
}

TEST(JumpHash, MidRangeRemovalIsExpensive) {
  // The documented restriction: removing a device that is NOT the last
  // renumbers the tail and reshuffles far more than its fair share.
  ClusterConfig before(
      {{1, 100, ""}, {2, 100, ""}, {3, 100, ""}, {4, 100, ""}});
  ClusterConfig after = before;
  after.remove_device(1);  // first bucket disappears, all others shift
  const JumpHash sb(before), sa(after);
  std::uint64_t moved = 0;
  constexpr std::uint64_t kBalls = 40'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    if (sb.place(a) != sa.place(a)) ++moved;
  }
  // Far more than the fair 25%.
  EXPECT_GT(moved, kBalls / 2);
}

TEST(JumpHash, Validation) {
  EXPECT_THROW(JumpHash(ClusterConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace rds
