#include "src/storage/erasure/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/util/random.hpp"

namespace rds {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes make_block(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes block(size);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng());
  return block;
}

std::vector<std::optional<Bytes>> as_optionals(
    const std::vector<Bytes>& shards) {
  return {shards.begin(), shards.end()};
}

TEST(ReedSolomon, RoundTripAllPresent) {
  const ReedSolomon rs(4, 2);
  const Bytes block = make_block(4096, 1);
  const auto shards = rs.encode(block);
  ASSERT_EQ(shards.size(), 6u);
  EXPECT_EQ(rs.decode(as_optionals(shards), block.size()), block);
}

TEST(ReedSolomon, SystematicDataPassThrough) {
  const ReedSolomon rs(3, 2);
  Bytes block(300);
  std::iota(block.begin(), block.end(), 0);
  const auto shards = rs.encode(block);
  // Shard 0 is the first 100 bytes verbatim.
  EXPECT_TRUE(std::equal(shards[0].begin(), shards[0].end(), block.begin()));
}

TEST(ReedSolomon, ToleratesAnyPLosses) {
  const ReedSolomon rs(4, 2);
  const Bytes block = make_block(1024, 2);
  const auto shards = rs.encode(block);
  // Every pair of losses must be recoverable.
  for (unsigned i = 0; i < 6; ++i) {
    for (unsigned j = i + 1; j < 6; ++j) {
      auto damaged = as_optionals(shards);
      damaged[i].reset();
      damaged[j].reset();
      EXPECT_EQ(rs.decode(damaged, block.size()), block)
          << "lost shards " << i << " and " << j;
    }
  }
}

TEST(ReedSolomon, FailsBeyondP) {
  const ReedSolomon rs(4, 2);
  const Bytes block = make_block(256, 3);
  auto damaged = as_optionals(rs.encode(block));
  damaged[0].reset();
  damaged[1].reset();
  damaged[2].reset();
  EXPECT_THROW((void)rs.decode(damaged, block.size()), std::invalid_argument);
}

TEST(ReedSolomon, ReconstructSingleShard) {
  const ReedSolomon rs(5, 3);
  const Bytes block = make_block(2000, 4);
  const auto shards = rs.encode(block);
  for (unsigned lost = 0; lost < 8; ++lost) {
    auto damaged = as_optionals(shards);
    damaged[lost].reset();
    EXPECT_EQ(rs.reconstruct_shard(damaged, lost), shards[lost])
        << "shard " << lost;
  }
}

TEST(ReedSolomon, OddBlockSizesArePadded) {
  const ReedSolomon rs(4, 1);
  for (const std::size_t size : {1u, 3u, 5u, 7u, 1001u}) {
    const Bytes block = make_block(size, size);
    const auto shards = rs.encode(block);
    const std::size_t expected_shard = (size + 3) / 4;
    for (const auto& s : shards) EXPECT_EQ(s.size(), expected_shard);
    EXPECT_EQ(rs.decode(as_optionals(shards), size), block);
  }
}

TEST(ReedSolomon, EmptyBlock) {
  const ReedSolomon rs(2, 1);
  const Bytes block;
  const auto shards = rs.encode(block);
  EXPECT_EQ(rs.decode(as_optionals(shards), 0).size(), 0u);
}

TEST(ReedSolomon, ParityOnlyConfiguration) {
  // p == 0: pure striping, still round-trips.
  const ReedSolomon rs(4, 0);
  const Bytes block = make_block(128, 9);
  const auto shards = rs.encode(block);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(rs.decode(as_optionals(shards), block.size()), block);
}

TEST(ReedSolomon, WideConfiguration) {
  // Stress the Cauchy construction with many shards.
  const ReedSolomon rs(20, 12);
  const Bytes block = make_block(4000, 10);
  auto damaged = as_optionals(rs.encode(block));
  // Lose 12 scattered shards.
  for (unsigned i = 0; i < 32; i += 3) damaged[i].reset();
  EXPECT_EQ(rs.decode(damaged, block.size()), block);
}

TEST(ReedSolomon, RandomizedLossPatterns) {
  Xoshiro256 rng(77);
  const ReedSolomon rs(6, 3);
  const Bytes block = make_block(600, 11);
  const auto shards = rs.encode(block);
  for (int trial = 0; trial < 50; ++trial) {
    auto damaged = as_optionals(shards);
    unsigned losses = 0;
    while (losses < 3) {
      const auto i = static_cast<unsigned>(rng.next_below(9));
      if (damaged[i]) {
        damaged[i].reset();
        ++losses;
      }
    }
    EXPECT_EQ(rs.decode(damaged, block.size()), block);
  }
}

TEST(ReedSolomon, Validation) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  const ReedSolomon rs(2, 1);
  const std::vector<std::optional<Bytes>> wrong_count(2);
  EXPECT_THROW((void)rs.decode(wrong_count, 10), std::invalid_argument);
  std::vector<std::optional<Bytes>> mismatched(3);
  mismatched[0] = Bytes(4);
  mismatched[1] = Bytes(5);
  EXPECT_THROW((void)rs.decode(mismatched, 8), std::invalid_argument);
  std::vector<std::optional<Bytes>> ok(3);
  ok[0] = Bytes(4);
  ok[1] = Bytes(4);
  EXPECT_THROW((void)rs.reconstruct_shard(ok, 9), std::invalid_argument);
}

}  // namespace
}  // namespace rds
