#include "src/core/fast_redundant_share.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/block_map.hpp"
#include "src/sim/scenario.hpp"
#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], "d" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

/// Monte-Carlo fairness against the adjusted-capacity shares.
void expect_fair_sampled(const std::vector<std::uint64_t>& caps, unsigned k,
                         std::uint64_t balls = 120'000) {
  const ClusterConfig config = cluster_from(caps);
  const FastRedundantShare s(config, k);
  const BlockMap map(s, balls);
  const auto counts = map.device_counts();

  const std::span<const double> adjusted = s.tables().caps;
  double total = 0.0;
  for (const double a : adjusted) total += a;

  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  for (std::size_t i = 0; i < config.size(); ++i) {
    const auto it = counts.find(s.tables().uids[i]);
    observed.push_back(it == counts.end() ? 0 : it->second);
    expected.push_back(static_cast<double>(k) * balls * adjusted[i] / total);
  }
  EXPECT_LT(chi_square(observed, expected),
            chi_square_critical_999(config.size() - 1))
      << "n=" << caps.size() << " k=" << k;
}

TEST(FastRedundantShare, DeterministicAndDistinct) {
  const FastRedundantShare s(cluster_from({9, 7, 5, 3, 2, 1}), 3);
  std::vector<DeviceId> out(3), again(3);
  for (std::uint64_t a = 0; a < 5000; ++a) {
    s.place(a, out);
    s.place(a, again);
    EXPECT_EQ(out, again);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(std::ranges::adjacent_find(sorted), sorted.end());
  }
}

TEST(FastRedundantShare, FairnessMirrorsSlowVariant) {
  expect_fair_sampled({2, 1, 1}, 2);
  expect_fair_sampled({3, 3, 1, 1}, 2);       // inhomogeneous
  expect_fair_sampled({4, 4, 4, 1, 1}, 2);    // inhomogeneous, L = 2
  expect_fair_sampled({5, 4, 3, 2, 1, 1}, 3);
  expect_fair_sampled({3, 2, 2, 2, 1}, 3);    // nested adjustment case
  expect_fair_sampled({6, 5, 4, 3, 2, 1, 1}, 4, 60'000);
}

TEST(FastRedundantShare, FairnessAfterCapacityAdjustment) {
  expect_fair_sampled({10, 1, 1}, 2);
  expect_fair_sampled({10, 10, 1, 1}, 3);
}

TEST(FastRedundantShare, PaperLadderFairness) {
  const ClusterConfig config = paper_heterogeneous_base();
  const FastRedundantShare s(config, 2);
  constexpr std::uint64_t kBalls = 100'000;
  const BlockMap map(s, kBalls);
  const auto counts = map.device_counts();
  std::vector<std::uint64_t> observed;
  std::vector<double> expected;
  const double total = static_cast<double>(config.total_capacity());
  for (std::size_t i = 0; i < config.size(); ++i) {
    observed.push_back(counts.at(config[i].uid));
    expected.push_back(2.0 * kBalls *
                       static_cast<double>(config[i].capacity) / total);
  }
  EXPECT_LT(chi_square(observed, expected),
            chi_square_critical_999(config.size() - 1));
}

TEST(FastRedundantShare, KEqualsOne) {
  const FastRedundantShare s(cluster_from({6, 3, 1}), 1);
  constexpr std::uint64_t kBalls = 100'000;
  std::vector<std::uint64_t> counts(3, 0);
  std::vector<DeviceId> out(1);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    ++counts[out[0]];
  }
  const std::vector<double> expected{0.6 * kBalls, 0.3 * kBalls,
                                     0.1 * kBalls};
  EXPECT_LT(chi_square(counts, expected), chi_square_critical_999(2));
}

TEST(FastRedundantShare, KEqualsN) {
  const FastRedundantShare s(cluster_from({5, 3, 2}), 3);
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < 300; ++a) {
    s.place(a, out);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(sorted, (std::vector<DeviceId>{0, 1, 2}));
  }
}

TEST(FastRedundantShare, PrimaryDistributionMatchesSlowVariant) {
  // Both variants realize the same Markov chain, so the distribution of the
  // primary (copy 0) must agree between them.
  const ClusterConfig config = cluster_from({7, 5, 4, 2, 1, 1});
  const RedundantShare slow(config, 3);
  const FastRedundantShare fast(config, 3);
  constexpr std::uint64_t kBalls = 150'000;
  std::vector<std::uint64_t> cs(config.size(), 0), cf(config.size(), 0);
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    slow.place(a, out);
    ++cs[config.index_of(out[0]).value()];
    fast.place(a, out);
    ++cf[config.index_of(out[0]).value()];
  }
  // Compare the two empirical distributions against each other via
  // chi-square on the slow counts as "expected".
  std::vector<double> expected;
  for (const std::uint64_t c : cs) {
    expected.push_back(std::max(1.0, static_cast<double>(c)));
  }
  EXPECT_LT(chi_square(cf, expected),
            2.0 * chi_square_critical_999(config.size() - 1));
}

TEST(FastRedundantShare, Validation) {
  EXPECT_THROW(FastRedundantShare(cluster_from({3, 2, 1}), 0),
               std::invalid_argument);
  EXPECT_THROW(FastRedundantShare(cluster_from({3, 2, 1}), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
