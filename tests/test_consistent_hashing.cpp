#include "src/placement/consistent_hashing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig({{1, 100, ""}, {2, 200, ""}, {3, 300, ""}});
}

TEST(ConsistentHashing, Deterministic) {
  const ConsistentHashing s(make_cluster());
  for (std::uint64_t a = 0; a < 200; ++a) EXPECT_EQ(s.place(a), s.place(a));
}

TEST(ConsistentHashing, RingSizeTracksWeights) {
  const ConsistentHashing s(make_cluster(), 100);
  // Average device gets ~100 points; total ~300, weighted 50/100/150.
  EXPECT_NEAR(static_cast<double>(s.ring_size()), 300.0, 3.0);
}

TEST(ConsistentHashing, ApproximateFairness) {
  const ClusterConfig config = make_cluster();
  const ConsistentHashing s(config, 512);
  constexpr std::uint64_t kBalls = 60'000;
  std::vector<std::uint64_t> counts(config.size(), 0);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    ++counts[config.index_of(s.place(a)).value()];
  }
  std::vector<double> expected;
  for (std::size_t i = 0; i < config.size(); ++i) {
    expected.push_back(static_cast<double>(kBalls) *
                       config.relative_capacity(i));
  }
  // Virtual-node approximation: allow 10% relative deviation.
  EXPECT_LT(max_relative_deviation(counts, expected), 0.10);
}

TEST(ConsistentHashing, LimitedDisruptionOnAdd) {
  ClusterConfig before = make_cluster();
  ClusterConfig after = before;
  after.add_device({4, 200, ""});
  const ConsistentHashing sb(before, 256, /*salt=*/5);
  const ConsistentHashing sa(after, 256, /*salt=*/5);
  constexpr std::uint64_t kBalls = 30'000;
  std::uint64_t moved = 0;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    const DeviceId db = sb.place(a);
    const DeviceId da = sa.place(a);
    if (db != da) {
      ++moved;
      // Consistent hashing only ever moves balls TO the new device.
      EXPECT_EQ(da, 4u);
    }
  }
  // New share is 200/800 = 25%.
  EXPECT_NEAR(static_cast<double>(moved), 0.25 * kBalls, 0.05 * kBalls);
}

TEST(ConsistentHashing, PlaceExcluding) {
  const ConsistentHashing s(make_cluster());
  for (std::uint64_t a = 0; a < 500; ++a) {
    const DeviceId first = s.place(a);
    const std::vector<DeviceId> excl{first};
    const DeviceId second = s.place_excluding(a, excl);
    EXPECT_NE(second, first);
    EXPECT_NE(second, kNoDevice);
  }
}

TEST(ConsistentHashing, PlaceExcludingEverything) {
  const ConsistentHashing s(make_cluster());
  const std::vector<DeviceId> excl{1, 2, 3};
  EXPECT_EQ(s.place_excluding(7, excl), kNoDevice);
}

TEST(ConsistentHashing, PlaceExcludingNothingMatchesPlace) {
  const ConsistentHashing s(make_cluster());
  for (std::uint64_t a = 0; a < 500; ++a) {
    EXPECT_EQ(s.place_excluding(a, {}), s.place(a));
  }
}

TEST(ConsistentHashing, Validation) {
  EXPECT_THROW(ConsistentHashing(ClusterConfig{}), std::invalid_argument);
  EXPECT_THROW(ConsistentHashing(make_cluster(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace rds
