// Cross-consistency of RedundantShare, FastRedundantShare, and the
// factory-constructed PrecomputedRedundantShare.
//
// The variants draw from the SAME per-copy law (the fast variant skips
// the rejected columns with one log-survival binary search instead of n
// Bernoulli draws; the precomputed variant samples per-state alias tables)
// but use different random couplings, so placements are not samplewise
// identical.  What must agree is the distribution: for every copy index r,
// the empirical distribution of the device receiving copy r must match the
// closed-form law exact_copy_index_law() -- for ALL variants, on the same
// configurations, including the first k-1 copies where the selection chain
// (not the rendezvous race) governs.  The precomputed strategy goes through
// make_replication_strategy so the path VirtualDisk::apply_config serves is
// the path under test.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], "d" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

/// Per-copy-index device counts over `balls` placements, in the canonical
/// bin order of `uids`.
std::vector<std::vector<std::uint64_t>> copy_index_counts(
    const ReplicationStrategy& strategy, std::span<const DeviceId> uids,
    std::uint64_t balls) {
  const unsigned k = strategy.replication();
  std::unordered_map<DeviceId, std::size_t> canonical;
  for (std::size_t i = 0; i < uids.size(); ++i) canonical.emplace(uids[i], i);
  std::vector<std::vector<std::uint64_t>> counts(
      k, std::vector<std::uint64_t>(uids.size(), 0));
  std::vector<DeviceId> out(k);
  for (std::uint64_t a = 0; a < balls; ++a) {
    strategy.place(a, out);
    for (unsigned r = 0; r < k; ++r) {
      ++counts[r][canonical.at(out[r])];
    }
  }
  return counts;
}

/// Chi-square goodness-of-fit of every copy index's empirical distribution
/// against the exact law, at significance 0.001 per row.
void expect_matches_law(const ReplicationStrategy& strategy,
                        std::span<const DeviceId> uids,
                        const std::vector<std::vector<double>>& law,
                        std::uint64_t balls, const std::string& variant) {
  const auto counts = copy_index_counts(strategy, uids, balls);
  ASSERT_EQ(counts.size(), law.size());
  for (std::size_t r = 0; r < law.size(); ++r) {
    // Bins the law gives (essentially) zero probability would blow up the
    // chi-square denominator; fold them out and assert separately that no
    // placements landed there.
    std::vector<std::uint64_t> observed;
    std::vector<double> expected;
    for (std::size_t i = 0; i < law[r].size(); ++i) {
      const double e = law[r][i] * static_cast<double>(balls);
      if (e < 1e-6) {
        EXPECT_EQ(counts[r][i], 0u)
            << variant << ": copy " << r << " reached zero-probability bin "
            << i;
      } else {
        observed.push_back(counts[r][i]);
        expected.push_back(e);
      }
    }
    ASSERT_GE(observed.size(), 1u);
    if (observed.size() < 2) continue;  // law is degenerate: nothing to test
    const double stat = chi_square(observed, expected);
    const double critical = chi_square_critical_999(observed.size() - 1);
    EXPECT_LT(stat, critical)
        << variant << ": copy index " << r << " diverges from the exact law"
        << " (chi2 = " << stat << ", critical = " << critical << ")";
  }
}

/// Runs both variants on one configuration against the shared closed-form
/// law.  `balls` large enough that per-bin expectations clear ~100.
void cross_check(const std::vector<std::uint64_t>& caps, unsigned k,
                 std::uint64_t balls = 200'000) {
  const ClusterConfig config = cluster_from(caps);
  const RedundantShare slow(config, k);
  const FastRedundantShare fast(config, k);
  const std::vector<std::vector<double>> law = slow.exact_copy_index_law();

  // Row r of the law is a probability distribution.
  for (const std::vector<double>& row : law) {
    double sum = 0.0;
    for (const double p : row) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }

  expect_matches_law(slow, slow.canonical_uids(), law, balls,
                     "redundant-share");
  expect_matches_law(fast, slow.canonical_uids(), law, balls,
                     "fast-redundant-share");

  const auto pre =
      make_replication_strategy(PlacementKind::kPrecomputed, config, k);
  expect_matches_law(*pre, slow.canonical_uids(), law, balls,
                     "precomputed-redundant-share");
}

TEST(CrossConsistency, HomogeneousK2) { cross_check({100, 100, 100, 100}, 2); }

TEST(CrossConsistency, HeterogeneousK2) { cross_check({500, 600, 700}, 2); }

TEST(CrossConsistency, HeterogeneousK3) {
  cross_check({900, 700, 500, 300, 100}, 3);
}

TEST(CrossConsistency, InfeasibleCapacitiesK2) {
  // Algorithm 1 caps the dominant device; both variants must follow the
  // same adjusted law.
  cross_check({10, 1, 1}, 2);
}

TEST(CrossConsistency, CascadedClampK3) {
  // The DESIGN.md worked example: clamp inside a clamp.
  cross_check({3, 2, 2, 2, 1}, 3);
}

TEST(CrossConsistency, ManyDevicesK4) {
  cross_check({16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5}, 4, 300'000);
}

}  // namespace
}  // namespace rds
