// Randomized end-to-end failure injection: a VirtualDisk under a random
// sequence of writes, reads, device additions, graceful removals, crashes
// and rebuilds, checked for integrity after every step.  Parameterized over
// redundancy schemes and placement backends.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/erasure/rdp.hpp"
#include "src/storage/virtual_disk.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

enum class SchemeKind { kMirror3, kRs32, kEvenOdd3, kRdp5 };

struct IntegrationCase {
  SchemeKind scheme;
  PlacementKind placement;
  std::uint64_t seed;
};

std::shared_ptr<RedundancyScheme> make_scheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kMirror3: return std::make_shared<MirroringScheme>(3);
    case SchemeKind::kRs32: return std::make_shared<ReedSolomonScheme>(3, 2);
    case SchemeKind::kEvenOdd3: return std::make_shared<EvenOddScheme>(3);
    case SchemeKind::kRdp5: return std::make_shared<RdpScheme>(5);
  }
  throw std::logic_error("unknown scheme");
}

std::string scheme_tag(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kMirror3: return "mirror3";
    case SchemeKind::kRs32: return "rs3p2";
    case SchemeKind::kEvenOdd3: return "evenodd3";
    case SchemeKind::kRdp5: return "rdp5";
  }
  return "?";
}

class VirtualDiskFuzz : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(VirtualDiskFuzz, RandomOperationSequenceKeepsIntegrity) {
  const IntegrationCase c = GetParam();
  Xoshiro256 rng(c.seed);

  // Start with 8 heterogeneous devices -- comfortably above any scheme's
  // fragment count so removals stay legal.
  std::vector<Device> devices;
  for (DeviceId uid = 0; uid < 8; ++uid) {
    devices.push_back({uid, 2000 + 500 * uid, "d" + std::to_string(uid)});
  }
  VirtualDisk disk(ClusterConfig(std::move(devices)), make_scheme(c.scheme),
                   c.placement);
  const unsigned k = disk.scheme().fragment_count();

  DeviceId next_uid = 100;
  std::map<std::uint64_t, Bytes> oracle;  // what each block must contain
  std::uint64_t next_block = 0;

  const auto verify_all = [&](const std::string& when) {
    for (const auto& [block, content] : oracle) {
      ASSERT_EQ(disk.read(block), content)
          << when << ": block " << block << " corrupted";
    }
  };

  for (int step = 0; step < 120; ++step) {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 55) {
      // Write a new block or overwrite an existing one.
      const bool overwrite = !oracle.empty() && rng.next_below(3) == 0;
      const std::uint64_t block =
          overwrite ? rng.next_below(next_block) : next_block++;
      Bytes content(24 + rng.next_below(200));
      for (auto& b : content) b = static_cast<std::uint8_t>(rng());
      disk.write(block, content);
      oracle[block] = std::move(content);
    } else if (dice < 70) {
      // Spot-check a random block.
      if (!oracle.empty()) {
        const auto it = std::next(
            oracle.begin(),
            static_cast<std::ptrdiff_t>(rng.next_below(oracle.size())));
        ASSERT_EQ(disk.read(it->first), it->second);
      }
    } else if (dice < 80) {
      disk.add_device({next_uid++, 1500 + rng.next_below(4000), "added"});
      verify_all("after add");
    } else if (dice < 90) {
      // Graceful removal (keep enough devices for k distinct fragments,
      // with one to spare so a later crash stays recoverable).
      if (disk.config().size() > k + 1) {
        const std::size_t idx = rng.next_below(disk.config().size());
        disk.remove_device(disk.config()[idx].uid);
        verify_all("after remove");
      }
    } else {
      // Crash + rebuild, if redundancy allows losing one more device.
      if (disk.config().size() > k) {
        const std::size_t idx = rng.next_below(disk.config().size());
        disk.fail_device(disk.config()[idx].uid);
        verify_all("degraded");
        disk.rebuild();
        verify_all("after rebuild");
      }
    }
  }
  verify_all("final");
  const VirtualDisk::ScrubReport scrub = disk.scrub();
  EXPECT_TRUE(scrub.clean()) << "unreadable=" << scrub.unreadable_blocks
                             << " degraded=" << scrub.degraded_blocks
                             << " misplaced=" << scrub.misplaced_fragments;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VirtualDiskFuzz,
    ::testing::Values(
        IntegrationCase{SchemeKind::kMirror3, PlacementKind::kRedundantShare,
                        1},
        IntegrationCase{SchemeKind::kMirror3,
                        PlacementKind::kFastRedundantShare, 2},
        IntegrationCase{SchemeKind::kRs32, PlacementKind::kRedundantShare, 3},
        IntegrationCase{SchemeKind::kRs32, PlacementKind::kFastRedundantShare,
                        4},
        IntegrationCase{SchemeKind::kEvenOdd3,
                        PlacementKind::kRedundantShare, 5},
        IntegrationCase{SchemeKind::kMirror3, PlacementKind::kTrivial, 6},
        IntegrationCase{SchemeKind::kRs32, PlacementKind::kRedundantShare,
                        7},
        IntegrationCase{SchemeKind::kRdp5, PlacementKind::kRedundantShare, 8},
        IntegrationCase{SchemeKind::kRdp5, PlacementKind::kFastRedundantShare,
                        9}),
    [](const ::testing::TestParamInfo<IntegrationCase>& info) {
      const char* placement = "";
      switch (info.param.placement) {
        case PlacementKind::kRedundantShare: placement = "rs"; break;
        case PlacementKind::kFastRedundantShare: placement = "fast"; break;
        case PlacementKind::kTrivial: placement = "trivial"; break;
        case PlacementKind::kRoundRobin: placement = "rr"; break;
      }
      return scheme_tag(info.param.scheme) + "_" + placement + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rds
