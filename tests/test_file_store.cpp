#include "src/storage/file_store.hpp"

#include <gtest/gtest.h>

#include <string>

#include "src/util/random.hpp"

namespace rds {
namespace {

FileStore make_store(unsigned k = 2, std::size_t block_size = 64) {
  const ClusterConfig pool({{1, 4000, ""},
                            {2, 3000, ""},
                            {3, 2000, ""},
                            {4, 2000, ""},
                            {5, 1000, ""}});
  return FileStore(
      VirtualDisk(pool, std::make_shared<MirroringScheme>(k)), block_size);
}

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(FileStore, PutGetRoundTrip) {
  FileStore store = make_store();
  store.put("hello.txt", bytes_of("hello, world"));
  const auto content = store.get("hello.txt");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, bytes_of("hello, world"));
  EXPECT_TRUE(store.contains("hello.txt"));
  EXPECT_FALSE(store.get("absent").has_value());
}

TEST(FileStore, MultiBlockFiles) {
  FileStore store = make_store(2, 16);
  Bytes big(1000);
  Xoshiro256 rng(8);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng());
  store.put("big.bin", big);
  EXPECT_EQ(store.get("big.bin"), big);
  const auto listing = store.list();
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].size, 1000u);
  EXPECT_EQ(listing[0].blocks, (1000u + 15) / 16);
}

TEST(FileStore, EmptyFile) {
  FileStore store = make_store();
  store.put("empty", {});
  const auto content = store.get("empty");
  ASSERT_TRUE(content.has_value());
  EXPECT_TRUE(content->empty());
}

TEST(FileStore, ReplaceReleasesOldBlocks) {
  FileStore store = make_store(2, 16);
  store.put("f", Bytes(1600, 1));  // 100 blocks
  const std::uint64_t blocks_after_first = store.disk().block_count();
  store.put("f", Bytes(160, 2));  // 10 blocks
  EXPECT_EQ(store.disk().block_count(), blocks_after_first - 90);
  EXPECT_EQ(*store.get("f"), Bytes(160, 2));
}

TEST(FileStore, RemoveFreesAndReuses) {
  FileStore store = make_store(2, 16);
  store.put("a", Bytes(320, 3));
  const std::uint64_t used = store.disk().block_count();
  EXPECT_TRUE(store.remove("a"));
  EXPECT_FALSE(store.remove("a"));
  EXPECT_EQ(store.disk().block_count(), used - 20);
  // Freed addresses are reused.
  store.put("b", Bytes(320, 4));
  EXPECT_EQ(store.disk().block_count(), used);
  EXPECT_EQ(*store.get("b"), Bytes(320, 4));
}

TEST(FileStore, SurvivesDeviceFailureAndRebuild) {
  FileStore store = make_store(3, 32);
  Xoshiro256 rng(12);
  for (int f = 0; f < 20; ++f) {
    Bytes data(100 + rng.next_below(400));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    store.put("file-" + std::to_string(f), data);
  }
  store.disk().fail_device(1);  // biggest device
  // Readable degraded.
  EXPECT_TRUE(store.get("file-7").has_value());
  EXPECT_GT(store.disk().rebuild(), 0u);
  for (int f = 0; f < 20; ++f) {
    EXPECT_TRUE(store.get("file-" + std::to_string(f)).has_value());
  }
  EXPECT_TRUE(store.disk().scrub().clean());
}

TEST(FileStore, SurvivesPoolReshape) {
  FileStore store = make_store(2, 32);
  store.put("keep", Bytes(500, 9));
  store.disk().add_device({9, 5000, "new"});
  store.disk().remove_device(5);
  EXPECT_EQ(*store.get("keep"), Bytes(500, 9));
  EXPECT_TRUE(store.disk().scrub().clean());
}

TEST(FileStore, ListIsSorted) {
  FileStore store = make_store();
  store.put("b", bytes_of("2"));
  store.put("a", bytes_of("1"));
  store.put("c", bytes_of("3"));
  const auto listing = store.list();
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].name, "a");
  EXPECT_EQ(listing[2].name, "c");
}

TEST(FileStore, TryGetReturnsNulloptForAbsentFiles) {
  FileStore store = make_store();
  store.put("present", bytes_of("x"));
  auto hit = store.try_get("present");
  ASSERT_TRUE(hit.ok()) << hit.error().message;
  ASSERT_TRUE(hit.value().has_value());
  EXPECT_EQ(*hit.value(), bytes_of("x"));

  auto miss = store.try_get("absent");
  ASSERT_TRUE(miss.ok()) << miss.error().message;  // absence is not an error
  EXPECT_FALSE(miss.value().has_value());
}

TEST(FileStore, TryGetSurfacesUnreadableBlocksAsTypedErrors) {
  // mirror(k=2): losing every device makes the file unreadable; try_get
  // must say which block failed, not throw.
  FileStore store = make_store(2, 32);
  store.put("doomed", Bytes(96, 5));
  for (DeviceId uid = 1; uid <= 5; ++uid) store.disk().fail_device(uid);
  auto result = store.try_get("doomed");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnrecoverable);
  EXPECT_NE(result.error().message.find("'doomed'"), std::string::npos);
  EXPECT_NE(result.error().message.find("block"), std::string::npos);
  // The throwing wrapper maps the same failure per the canonical taxonomy.
  EXPECT_THROW((void)store.get("doomed"), std::runtime_error);
}

TEST(FileStore, Validation) {
  const ClusterConfig pool({{1, 100, ""}, {2, 100, ""}});
  EXPECT_THROW(
      FileStore(VirtualDisk(pool, std::make_shared<MirroringScheme>(2)), 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace rds
