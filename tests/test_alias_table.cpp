#include "src/util/alias_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/random.hpp"
#include "src/util/stats.hpp"

namespace rds {
namespace {

TEST(AliasTable, SingleEntry) {
  const AliasTable t(std::vector<double>{5.0});
  for (double u = 0.0; u < 1.0; u += 0.13) EXPECT_EQ(t.sample(u), 0u);
}

TEST(AliasTable, UniformWeights) {
  const AliasTable t(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  // Slot selection is the integer part of u * n.
  EXPECT_EQ(t.sample(0.10), 0u);
  EXPECT_EQ(t.sample(0.30), 1u);
  EXPECT_EQ(t.sample(0.60), 2u);
  EXPECT_EQ(t.sample(0.90), 3u);
}

TEST(AliasTable, MatchesWeightsStatistically) {
  const std::vector<double> weights{10.0, 1.0, 5.0, 30.0, 4.0};
  const AliasTable t(weights);
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> counts(weights.size(), 0);
  constexpr int kN = 500'000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng.next_unit())];
  double total = 0.0;
  for (const double w : weights) total += w;
  std::vector<double> expected;
  for (const double w : weights) expected.push_back(kN * w / total);
  EXPECT_LT(chi_square(counts, expected),
            chi_square_critical_999(weights.size() - 1));
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  const AliasTable t(weights);
  Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_NE(t.sample(rng.next_unit()), 1u);
  }
}

TEST(AliasTable, ExtremeUniformValues) {
  const AliasTable t(std::vector<double>{1.0, 2.0});
  EXPECT_LT(t.sample(0.0), 2u);
  EXPECT_LT(t.sample(0.9999999999999999), 2u);
}

TEST(AliasTable, Validation) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
