// Golden placement pinning.
//
// A placement function IS the data layout: if a code change silently alters
// where existing blocks map, a deployed system loses every block that moved
// (it would look for data where it no longer is).  These tests pin a digest
// of the placements for fixed configurations; they must only ever change
// together with an explicit, documented migration story.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/rendezvous.hpp"
#include "src/util/hash.hpp"

namespace rds {
namespace {

ClusterConfig golden_cluster() {
  return ClusterConfig({{10, 1200, ""},
                        {11, 1000, ""},
                        {12, 800, ""},
                        {13, 600, ""},
                        {14, 400, ""},
                        {15, 200, ""}});
}

std::uint64_t digest_replicated(const ReplicationStrategy& s) {
  std::uint64_t digest = 0;
  std::vector<DeviceId> out(s.replication());
  for (std::uint64_t a = 0; a < 4096; ++a) {
    s.place(a, out);
    for (const DeviceId d : out) digest = hash_combine(digest, d);
  }
  return digest;
}

std::uint64_t digest_single(const SingleStrategy& s) {
  std::uint64_t digest = 0;
  for (std::uint64_t a = 0; a < 4096; ++a) {
    digest = hash_combine(digest, s.place(a));
  }
  return digest;
}

TEST(Golden, RedundantShareK2) {
  const RedundantShare s(golden_cluster(), 2);
  EXPECT_EQ(digest_replicated(s), 0xeb696348939232c9ULL);
}

TEST(Golden, RedundantShareK4) {
  const RedundantShare s(golden_cluster(), 4);
  EXPECT_EQ(digest_replicated(s), 0xc2ee54db6bd8eb2eULL);
}

TEST(Golden, FastRedundantShareK3) {
  const FastRedundantShare s(golden_cluster(), 3);
  EXPECT_EQ(digest_replicated(s), 0x51fc5148ce203a97ULL);
}

TEST(Golden, PrecomputedRedundantShareK3) {
  const PrecomputedRedundantShare s(golden_cluster(), 3);
  EXPECT_EQ(digest_replicated(s), 0x1c92b05f4c649248ULL);
}

TEST(Golden, WeightedRendezvous) {
  const WeightedRendezvous s(golden_cluster());
  EXPECT_EQ(digest_single(s), 0x27f774813f9fd500ULL);
}

}  // namespace
}  // namespace rds
