#include "src/sim/op_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rds {
namespace {

TraceRunner make_runner(unsigned k = 2) {
  const ClusterConfig pool({{1, 3000, ""},
                            {2, 2500, ""},
                            {3, 2000, ""},
                            {4, 1500, ""},
                            {5, 1000, ""}});
  return TraceRunner(
      VirtualDisk(pool, std::make_shared<MirroringScheme>(k)));
}

TEST(OpTrace, BasicWriteReadScrub) {
  TraceRunner runner = make_runner();
  std::istringstream script(R"(
# basic smoke
write 0 100 64
read 0 100
scrub
)");
  const TraceStats stats = runner.run(script);
  EXPECT_EQ(stats.blocks_written, 100u);
  EXPECT_EQ(stats.blocks_verified, 100u);
  EXPECT_EQ(stats.commands, 3u);
}

TEST(OpTrace, FullLifecycleScenario) {
  TraceRunner runner = make_runner();
  std::istringstream script(R"(
write 0 200 128
add 9 4000 fresh-disk
read 0 200
fail 1
read 0 200        # degraded reads still verify
rebuild
read 0 200
scrub
remove 5
read 0 200
trim 0 50
scrub
)");
  const TraceStats stats = runner.run(script);
  EXPECT_EQ(stats.blocks_written, 200u);
  EXPECT_EQ(stats.blocks_verified, 800u);
  EXPECT_EQ(stats.blocks_trimmed, 50u);
  EXPECT_EQ(stats.topology_changes, 3u);
  EXPECT_GT(stats.fragments_rebuilt, 0u);
  EXPECT_FALSE(runner.disk().config().contains(1));
  EXPECT_FALSE(runner.disk().config().contains(5));
}

TEST(OpTrace, CorruptionAndRepair) {
  TraceRunner runner = make_runner(3);
  std::istringstream script(R"(
write 0 50
corrupt 7 1
scrub-dirty
repair
scrub
read 0 50
)");
  const TraceStats stats = runner.run(script);
  EXPECT_EQ(stats.fragments_repaired, 1u);
}

TEST(OpTrace, VerificationFailureIsReportedWithLine) {
  TraceRunner runner = make_runner();
  std::istringstream script(R"(
write 0 5
corrupt 1 0
corrupt 1 1
read 0 5
)");
  // Both copies corrupt: mirroring cannot reconstruct, the read throws.
  try {
    runner.run(script);
    FAIL() << "expected failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unrecoverable"),
              std::string::npos);
  }
}

TEST(OpTrace, ParseErrorsCarryLineNumbers) {
  TraceRunner runner = make_runner();
  std::istringstream script("\nwrite 0\n");
  try {
    runner.run(script);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).find("line 2:"), 0u);
  }
}

TEST(OpTrace, UnknownCommandRejected) {
  TraceRunner runner = make_runner();
  std::istringstream script("explode 1 2\n");
  EXPECT_THROW((void)runner.run(script), std::runtime_error);
}

TEST(OpTrace, DeterministicPayloadIsStable) {
  const Bytes a = TraceRunner::deterministic_payload(42, 64);
  const Bytes b = TraceRunner::deterministic_payload(42, 64);
  const Bytes c = TraceRunner::deterministic_payload(43, 64);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 64u);
}

}  // namespace
}  // namespace rds
