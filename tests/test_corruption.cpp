// Bit-rot detection and repair: corrupt fragments are detected by checksum
// on the read path (treated as missing, reconstructed from peers) and
// restored in place by repair().
#include <gtest/gtest.h>

#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/virtual_disk.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

ClusterConfig pool() {
  return ClusterConfig({{1, 2000, ""},
                        {2, 2000, ""},
                        {3, 2000, ""},
                        {4, 2000, ""},
                        {5, 2000, ""},
                        {6, 2000, ""}});
}

Bytes payload(std::uint64_t block) {
  Bytes b(96);
  Xoshiro256 rng(block * 31 + 7);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(Corruption, MirrorReadsAroundCorruptCopy) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  disk.write(5, payload(5));
  ASSERT_TRUE(disk.corrupt_fragment(5, 0));
  EXPECT_EQ(disk.read(5), payload(5));  // the healthy mirror serves
  EXPECT_EQ(disk.stats().checksum_failures, 1u);
  EXPECT_EQ(disk.stats().degraded_reads, 1u);
}

TEST(Corruption, ErasureReadsAroundCorruptFragment) {
  VirtualDisk disk(pool(), std::make_shared<ReedSolomonScheme>(4, 2));
  for (std::uint64_t b = 0; b < 50; ++b) disk.write(b, payload(b));
  ASSERT_TRUE(disk.corrupt_fragment(7, 2));
  ASSERT_TRUE(disk.corrupt_fragment(7, 5));
  EXPECT_EQ(disk.read(7), payload(7));
  EXPECT_EQ(disk.stats().checksum_failures, 2u);
}

TEST(Corruption, TooManyCorruptFragmentsIsUnrecoverable) {
  VirtualDisk disk(pool(), std::make_shared<ReedSolomonScheme>(4, 2));
  disk.write(1, payload(1));
  for (unsigned j = 0; j < 3; ++j) {
    ASSERT_TRUE(disk.corrupt_fragment(1, j));
  }
  EXPECT_THROW((void)disk.read(1), std::runtime_error);
}

TEST(Corruption, ScrubDetectsBitRot) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(3));
  for (std::uint64_t b = 0; b < 20; ++b) disk.write(b, payload(b));
  EXPECT_TRUE(disk.scrub().clean());
  disk.corrupt_fragment(3, 1);
  const VirtualDisk::ScrubReport report = disk.scrub();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.degraded_blocks, 1u);
  EXPECT_EQ(report.unreadable_blocks, 0u);
}

TEST(Corruption, RepairRestoresFragmentsInPlace) {
  VirtualDisk disk(pool(), std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 30; ++b) disk.write(b, payload(b));
  disk.corrupt_fragment(4, 0);
  disk.corrupt_fragment(9, 3);
  disk.corrupt_fragment(9, 4);
  EXPECT_FALSE(disk.scrub().clean());

  const std::uint64_t repaired = disk.repair();
  EXPECT_EQ(repaired, 3u);
  EXPECT_TRUE(disk.scrub().clean());
  for (std::uint64_t b = 0; b < 30; ++b) {
    EXPECT_EQ(disk.read(b), payload(b));
  }
  // Reads after repair are no longer degraded.
  const std::uint64_t degraded = disk.stats().degraded_reads;
  (void)disk.read(4);
  EXPECT_EQ(disk.stats().degraded_reads, degraded);
}

TEST(Corruption, RepairWithEvenOdd) {
  VirtualDisk disk(pool(), std::make_shared<EvenOddScheme>(3));  // 5 frags
  for (std::uint64_t b = 0; b < 20; ++b) disk.write(b, payload(b));
  disk.corrupt_fragment(2, 4);  // the diagonal parity column
  disk.corrupt_fragment(2, 1);
  EXPECT_EQ(disk.repair(), 2u);
  EXPECT_TRUE(disk.scrub().clean());
  EXPECT_EQ(disk.read(2), payload(2));
}

TEST(Corruption, CorruptUnknownTargetsReturnFalse) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  EXPECT_FALSE(disk.corrupt_fragment(99, 0));  // never written
  disk.write(1, payload(1));
  EXPECT_FALSE(disk.corrupt_fragment(1, 5));  // fragment index out of range
}

TEST(Corruption, OverwriteClearsCorruption) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(2));
  disk.write(1, payload(1));
  disk.corrupt_fragment(1, 0);
  disk.write(1, payload(2));  // fresh content, fresh checksums
  EXPECT_EQ(disk.read(1), payload(2));
  EXPECT_TRUE(disk.scrub().clean());
}

}  // namespace
}  // namespace rds
