// rds_lint contract tests: every rule fires on its tripping fixture and
// stays quiet on its passing twin, and the suppression syntax behaves as
// documented (docs/static_analysis.md).
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/rds_lint/lint.hpp"

namespace {

using rds::lint::Finding;
using rds::lint::Options;

std::string fixture_path(const std::string& name) {
  return std::string(RDS_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const Options& opts = {}) {
  std::vector<Finding> out;
  std::string error;
  EXPECT_TRUE(rds::lint::lint_file(fixture_path(name), out, error, opts))
      << error;
  return out;
}

std::set<std::string> rules_of(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

TEST(RdsLint, RuleListIsComplete) {
  const std::vector<std::string> expected = {
      "atomic-memory-order",   "result-path-throw", "placement-determinism",
      "header-hygiene",        "metrics-naming",    "nodiscard-result",
      "stale-suppression"};
  EXPECT_EQ(rds::lint::rule_ids(), expected);
}

TEST(RdsLint, AtomicMemoryOrderTrips) {
  const auto findings = lint_fixture("atomic_order_bad.cpp");
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_EQ(rules_of(findings),
            std::set<std::string>{"atomic-memory-order"});
}

TEST(RdsLint, AtomicMemoryOrderPasses) {
  EXPECT_TRUE(lint_fixture("atomic_order_good.cpp").empty());
}

TEST(RdsLint, ResultPathThrowTrips) {
  const auto findings = lint_fixture("result_throw_bad.cpp");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"result-path-throw"});
}

TEST(RdsLint, ResultPathThrowPasses) {
  EXPECT_TRUE(lint_fixture("result_throw_good.cpp").empty());
}

TEST(RdsLint, PlacementDeterminismTrips) {
  const auto findings = lint_fixture("placement/determinism_bad.cpp");
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_EQ(rules_of(findings),
            std::set<std::string>{"placement-determinism"});
}

TEST(RdsLint, PlacementDeterminismPasses) {
  EXPECT_TRUE(lint_fixture("placement/determinism_good.cpp").empty());
}

TEST(RdsLint, PlacementRuleIsPathScoped) {
  // The same entropy calls outside a placement/ directory are legal.
  std::vector<Finding> out;
  std::string error;
  ASSERT_TRUE(rds::lint::lint_file(fixture_path("placement/determinism_bad.cpp"),
                                   out, error,
                                   Options{{"placement-determinism"}}));
  EXPECT_FALSE(out.empty());
  const auto elsewhere = rds::lint::lint_text(
      "src/sim/workload.cpp", "int f() { return rand(); }", {});
  EXPECT_TRUE(elsewhere.empty());
}

TEST(RdsLint, HeaderHygieneTrips) {
  const auto findings = lint_fixture("header_bad.hpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"header-hygiene"});
  EXPECT_EQ(findings.front().line, 1);  // missing #pragma once reports line 1
}

TEST(RdsLint, HeaderHygienePasses) {
  EXPECT_TRUE(lint_fixture("header_good.hpp").empty());
}

TEST(RdsLint, MetricsNamingTrips) {
  const auto findings = lint_fixture("metrics_bad.cpp");
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"metrics-naming"});
}

TEST(RdsLint, MetricsNamingPasses) {
  EXPECT_TRUE(lint_fixture("metrics_good.cpp").empty());
}

TEST(RdsLint, NodiscardResultTrips) {
  const auto findings = lint_fixture("nodiscard_bad.hpp");
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"nodiscard-result"});
}

TEST(RdsLint, NodiscardResultPasses) {
  EXPECT_TRUE(lint_fixture("nodiscard_good.hpp").empty());
}

TEST(RdsLint, JournalMetricsNamingTrips) {
  const auto findings = lint_fixture("journal/metrics_bad.cpp");
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"metrics-naming"});
}

TEST(RdsLint, JournalMetricsNamingPasses) {
  // Every metric family the journal subsystem actually registers.
  EXPECT_TRUE(lint_fixture("journal/metrics_good.cpp").empty());
}

TEST(RdsLint, JournalHeaderHygieneTrips) {
  const auto findings = lint_fixture("journal/header_bad.hpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_of(findings), std::set<std::string>{"header-hygiene"});
}

TEST(RdsLint, JournalHeaderHygienePasses) {
  EXPECT_TRUE(lint_fixture("journal/header_good.hpp").empty());
}

TEST(RdsLint, JournalSourcesLintClean) {
  // The shipped journal subsystem itself obeys every rule (the recovery
  // path is the one most tempted to throw inside Result-returning code).
  for (const std::string file :
       {"/src/journal/journal.cpp", "/src/journal/record.cpp",
        "/src/journal/recovery.cpp", "/src/journal/journal.hpp",
        "/src/journal/record.hpp", "/src/journal/recovery.hpp",
        "/src/journal/torn_write.hpp"}) {
    std::vector<Finding> out;
    std::string error;
    ASSERT_TRUE(rds::lint::lint_file(std::string(RDS_LINT_SOURCE_DIR) + file,
                                     out, error, {}))
        << error;
    EXPECT_TRUE(out.empty())
        << file << ":" << out.front().line << " [" << out.front().rule
        << "] " << out.front().message;
  }
}

TEST(RdsLint, SuppressionsWithReasonsAreHonored) {
  EXPECT_TRUE(lint_fixture("suppression_good.cpp").empty());
}

TEST(RdsLint, BadSuppressionsKeepTheFinding) {
  // Bare allow(), wrong rule id, and a comment separated from the finding
  // by another code line must all leave the finding standing -- and the
  // two reasoned-but-useless comments are additionally flagged as stale
  // (the bare one was never a suppression, so it cannot be stale).
  const auto findings = lint_fixture("suppression_bad.cpp");
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_EQ(rules_of(findings),
            (std::set<std::string>{"atomic-memory-order",
                                   "stale-suppression"}));
  std::size_t stale = 0;
  for (const Finding& f : findings) {
    if (f.rule == "stale-suppression") ++stale;
  }
  EXPECT_EQ(stale, 2u);
}

TEST(RdsLint, StaleSuppressionTrips) {
  const auto findings = lint_fixture("suppression_stale_bad.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().rule, "stale-suppression");
  EXPECT_EQ(findings.front().line, 11);  // the comment line, not the code
}

TEST(RdsLint, StaleSuppressionPasses) {
  // A used suppression and a foreign (rds_analyze) rule id are both fine.
  EXPECT_TRUE(lint_fixture("suppression_stale_good.cpp").empty());
}

TEST(RdsLint, StaleSuppressionNeedsAllRules) {
  // With a --rule filter the other rules never ran, so "matches nothing"
  // would be meaningless; the stale pass must stay off.
  const auto findings = lint_fixture("suppression_stale_bad.cpp",
                                     Options{{"atomic-memory-order"}});
  EXPECT_TRUE(findings.empty());
}

TEST(RdsLint, OnlyRulesFilters) {
  const auto findings =
      lint_fixture("header_bad.hpp", Options{{"metrics-naming"}});
  EXPECT_TRUE(findings.empty());
}

TEST(RdsLint, UnreadableFileReportsError) {
  std::vector<Finding> out;
  std::string error;
  EXPECT_FALSE(rds::lint::lint_file(fixture_path("does_not_exist.cpp"), out,
                                    error, {}));
  EXPECT_FALSE(error.empty());
}

TEST(RdsLint, TokenizerSurvivesRawStringsAndOddLiterals) {
  // Raw strings containing quotes/comment markers must not desync the
  // lexer; the atomic op after it must still be seen.
  const std::string text = R"src(
#include <atomic>
const char* kDoc = R"doc(not a "comment" // nor /* one */)doc";
std::atomic<int> v;
int f() { return v.load(); }
)src";
  const auto findings = rds::lint::lint_text("odd.cpp", text, {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().rule, "atomic-memory-order");
  EXPECT_EQ(findings.front().line, 5);
}

TEST(RdsLint, LintTreeIsClean) {
  // Mirrors the lint_tree ctest: the shipped sources must stay clean.  Kept
  // here too so a plain `ctest -R RdsLint` exercises it.
  std::vector<Finding> out;
  std::string error;
  ASSERT_TRUE(rds::lint::lint_file(
      std::string(RDS_LINT_SOURCE_DIR) + "/src/storage/virtual_disk.cpp", out,
      error, {}))
      << error;
  EXPECT_TRUE(out.empty()) << out.front().file << ":" << out.front().line
                           << " [" << out.front().rule << "] "
                           << out.front().message;
}

}  // namespace
