// Floating-point hardening of the Redundant Share tables: selection
// probabilities stay inside [0, 1] after the moment-matching compensation,
// zero capacity suffixes are rejected instead of producing NaN, and the
// fairness residual diagnostic behaves as documented.
#include "src/core/redundant_share.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/core/fast_redundant_share.hpp"

namespace rds {
namespace {

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], "d" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

void expect_probabilities_valid(const detail::RsTables& t) {
  for (std::size_t m = 0; m < t.select_prob.size(); ++m) {
    for (std::size_t j = 0; j < t.select_prob[m].size(); ++j) {
      const double f = t.select_prob[m][j];
      EXPECT_TRUE(std::isfinite(f)) << "f(" << m + 1 << ", " << j << ")";
      EXPECT_GE(f, 0.0) << "f(" << m + 1 << ", " << j << ")";
      EXPECT_LE(f, 1.0) << "f(" << m + 1 << ", " << j << ")";
    }
    // The last column must be a certain pick: whoever reaches it with
    // copies still to place takes it.
    EXPECT_DOUBLE_EQ(t.select_prob[m].back(), 1.0);
  }
}

TEST(RsHardening, ProbabilitiesClampedOnNearDegenerateCapacities) {
  // One device holds essentially all capacity: the compensation wants to
  // push f far above 1 and must be clamped.
  const std::vector<std::vector<std::uint64_t>> configs = {
      {1'000'000'000'000'000'000ULL, 1, 1},
      {1'000'000'000'000'000'000ULL, 1'000'000'000ULL, 1, 1},
      {std::numeric_limits<std::uint64_t>::max() / 2, 3, 2, 1},
  };
  for (const auto& caps : configs) {
    for (unsigned k = 2; k <= 3; ++k) {
      const RedundantShare s(cluster_from(caps), k);
      expect_probabilities_valid(s.tables());
      // The placement itself must still produce k distinct devices.
      const std::vector<DeviceId> copies = s.place(12345);
      ASSERT_EQ(copies.size(), k);
      for (unsigned a = 0; a < k; ++a) {
        for (unsigned b = a + 1; b < k; ++b) {
          EXPECT_NE(copies[a], copies[b]);
        }
      }
    }
  }
}

TEST(RsHardening, ProbabilitiesClampedWithoutOptimalWeights) {
  // Skipping Algorithm 1 leaves infeasible capacities in place, which is
  // where the clamp and the compensation interact the hardest.
  RedundantShare::Options opt;
  opt.apply_optimal_weights = false;
  for (const auto& caps : std::vector<std::vector<std::uint64_t>>{
           {10, 1, 1}, {3, 2, 2, 2, 1}, {100, 50, 1, 1, 1}}) {
    for (unsigned k = 2; k < caps.size(); ++k) {
      const RedundantShare s(cluster_from(caps), k, opt);
      expect_probabilities_valid(s.tables());
    }
  }
}

TEST(RsHardening, BuildFromWeightsRejectsZeroSuffix) {
  // A zero-capacity tail makes B_j = 0: f(m, j) = m * b_j / B_j would be
  // NaN.  ClusterConfig never produces such weights; build_from_weights is
  // the hardened entry point for callers with their own weight pipeline.
  EXPECT_THROW(detail::RsTables::build_from_weights({0, 1, 2}, {5.0, 0.0, 0.0},
                                                    2, true),
               std::invalid_argument);
  EXPECT_THROW(
      detail::RsTables::build_from_weights({0, 1}, {0.0, 0.0}, 1, true),
      std::invalid_argument);
  try {
    (void)detail::RsTables::build_from_weights({0, 1, 2}, {5.0, 1.0, 0.0}, 2,
                                               true);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("suffix"), std::string::npos);
  }
}

TEST(RsHardening, BuildFromWeightsRejectsNonFiniteAndNegative) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(
      detail::RsTables::build_from_weights({0, 1}, {inf, 1.0}, 2, true),
      std::invalid_argument);
  EXPECT_THROW(
      detail::RsTables::build_from_weights({0, 1}, {nan, 1.0}, 2, true),
      std::invalid_argument);
  EXPECT_THROW(
      detail::RsTables::build_from_weights({0, 1}, {2.0, -1.0}, 2, true),
      std::invalid_argument);
}

TEST(RsHardening, BuildFromWeightsAcceptsPositiveWeights) {
  const detail::RsTables t =
      detail::RsTables::build_from_weights({7, 3, 5}, {3.0, 2.0, 1.0}, 2,
                                           true);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.k, 2u);
  expect_probabilities_valid(t);
}

TEST(RsHardening, FairnessResidualZeroAfterOptimalWeights) {
  // Algorithm 1 makes every configuration feasible, so the moment-matching
  // pass always places the full column deficit: residual must be exactly 0.
  for (const auto& caps : std::vector<std::vector<std::uint64_t>>{
           {10, 1, 1},
           {3, 2, 2, 2, 1},
           {1'000'000, 1, 1, 1},
           {500, 600, 700},
           {9, 8, 7, 6, 5, 4, 3, 2, 1}}) {
    for (unsigned k = 2; k < caps.size(); ++k) {
      const RedundantShare s(cluster_from(caps), k);
      EXPECT_EQ(s.tables().fairness_residual, 0.0)
          << "caps[0]=" << caps[0] << " n=" << caps.size() << " k=" << k;
    }
  }
}

TEST(RsHardening, CrossConsistencyFastVariantSharesTables) {
  // Both variants are built from the same RsTables: identical adjusted
  // capacities and selection probabilities on any configuration.
  const ClusterConfig config = cluster_from({1'000'000'000'000ULL, 7, 5, 3});
  const RedundantShare slow(config, 3);
  const FastRedundantShare fast(config, 3);
  ASSERT_EQ(slow.tables().size(), fast.tables().size());
  for (std::size_t i = 0; i < slow.tables().size(); ++i) {
    EXPECT_EQ(slow.tables().uids[i], fast.tables().uids[i]);
    EXPECT_DOUBLE_EQ(slow.tables().caps[i], fast.tables().caps[i]);
  }
  expect_probabilities_valid(fast.tables());
}

}  // namespace
}  // namespace rds
