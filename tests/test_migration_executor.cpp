// MigrationExecutor: parallel plan execution with bounded in-flight moves,
// retry-with-backoff under injected faults, and cooperative cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/storage/migration.hpp"
#include "src/storage/migration_executor.hpp"

namespace rds {
namespace {

using Stores = std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>>;

constexpr unsigned kK = 2;

ClusterConfig pool(std::size_t n) {
  std::vector<Device> devices;
  for (DeviceId uid = 0; uid < n; ++uid) {
    devices.push_back({uid, 10'000, "d" + std::to_string(uid)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<std::uint8_t> payload_for(std::uint64_t block,
                                      std::uint32_t fragment) {
  return {static_cast<std::uint8_t>(block), static_cast<std::uint8_t>(
                                                block >> 8),
          static_cast<std::uint8_t>(fragment)};
}

/// Stores for `config` devices, populated per `strategy`'s placement of
/// blocks 0..count-1, plus the plan to move everything to `next`.
struct Fixture {
  Stores stores;
  MigrationPlan plan;
  std::vector<std::uint64_t> blocks;
};

Fixture make_fixture(std::size_t devices_before, std::size_t devices_after,
                     std::uint64_t block_count) {
  Fixture f;
  const ClusterConfig before = pool(devices_before);
  const ClusterConfig after = pool(devices_after);
  for (const Device& d : after.devices()) {
    f.stores.emplace(d.uid, std::make_shared<DeviceStore>(d));
  }
  const FastRedundantShare sb(before, kK);
  const FastRedundantShare sa(after, kK);
  std::vector<DeviceId> copies(kK);
  for (std::uint64_t block = 0; block < block_count; ++block) {
    f.blocks.push_back(block);
    sb.place(block, copies);
    for (std::uint32_t frag = 0; frag < kK; ++frag) {
      f.stores.at(copies[frag])
          ->write({block, frag, 0}, payload_for(block, frag));
    }
  }
  f.plan = plan_migration(sb, sa, f.blocks);
  return f;
}

/// Every fragment of every block sits exactly where `strategy` places it.
void expect_placed_per(const FastRedundantShare& strategy, const Fixture& f) {
  std::vector<DeviceId> copies(kK);
  for (const std::uint64_t block : f.blocks) {
    strategy.place(block, copies);
    for (std::uint32_t frag = 0; frag < kK; ++frag) {
      const FragmentKey key{block, frag, 0};
      EXPECT_EQ(f.stores.at(copies[frag])->read(key),
                payload_for(block, frag))
          << "block " << block << " fragment " << frag;
      for (const auto& [uid, store] : f.stores) {
        if (uid != copies[frag]) {
          EXPECT_FALSE(store->contains(key))
              << "stray copy of block " << block << " on device " << uid;
        }
      }
    }
  }
}

TEST(MigrationExecutor, ExecutesAWholePlanInParallel) {
  Fixture f = make_fixture(4, 6, 400);
  ASSERT_FALSE(f.plan.moves.empty());
  MigrationExecutorOptions opts;
  opts.max_in_flight = 4;
  MigrationExecutor executor(f.stores, 0, opts);
  const Result<MigrationReport> r = executor.execute(f.plan);
  ASSERT_TRUE(r.ok()) << r.error().message;
  const MigrationReport& report = r.value();
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.moves_executed, f.plan.moves.size());
  EXPECT_EQ(report.moves_failed, 0u);
  EXPECT_EQ(report.moves_remaining, 0u);
  EXPECT_FALSE(report.cancelled);
  expect_placed_per(FastRedundantShare(pool(6), kK), f);
}

TEST(MigrationExecutor, SkipsAbsentSourceFragments) {
  Fixture f = make_fixture(4, 6, 100);
  ASSERT_GE(f.plan.moves.size(), 2u);
  // Trim the first two planned fragments out from under the executor.
  for (std::size_t i = 0; i < 2; ++i) {
    const FragmentMove& m = f.plan.moves[i];
    ASSERT_TRUE(f.stores.at(m.from)->erase({m.block, m.fragment, 0}));
  }
  MigrationExecutor executor(f.stores);
  const Result<MigrationReport> r = executor.execute(f.plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().moves_skipped, 2u);
  EXPECT_EQ(r.value().moves_executed, f.plan.moves.size() - 2);
}

/// Fails every move's first `fail_attempts` tries; thread-safe.
class TransientFaults : public FaultInjector {
 public:
  explicit TransientFaults(unsigned fail_attempts)
      : fail_attempts_(fail_attempts) {}
  bool should_fail(const FragmentMove&, unsigned attempt) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return attempt < fail_attempts_;
  }
  [[nodiscard]] std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  unsigned fail_attempts_;
  std::atomic<std::uint64_t> calls_{0};
};

TEST(MigrationExecutor, RetriesThroughTransientFaults) {
  Fixture f = make_fixture(4, 5, 60);
  TransientFaults faults(2);  // attempts 0 and 1 fail, attempt 2 succeeds
  MigrationExecutorOptions opts;
  opts.max_in_flight = 3;
  opts.max_attempts = 4;
  opts.backoff_base = std::chrono::microseconds(1);
  opts.faults = &faults;
  MigrationExecutor executor(f.stores, 0, opts);
  const Result<MigrationReport> r = executor.execute(f.plan);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().complete());
  EXPECT_EQ(r.value().moves_executed, f.plan.moves.size());
  // Exactly two retries per move, every one counted.
  EXPECT_EQ(r.value().retries, 2 * f.plan.moves.size());
  expect_placed_per(FastRedundantShare(pool(5), kK), f);
}

TEST(MigrationExecutor, ReportsMovesThatExhaustTheirAttempts) {
  Fixture f = make_fixture(4, 5, 40);
  TransientFaults faults(1000);  // permanent
  MigrationExecutorOptions opts;
  opts.max_attempts = 3;
  opts.backoff_base = std::chrono::microseconds(1);
  opts.faults = &faults;
  MigrationExecutor executor(f.stores, 0, opts);
  const Result<MigrationReport> r = executor.execute(f.plan);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().complete());
  EXPECT_EQ(r.value().moves_failed, f.plan.moves.size());
  EXPECT_EQ(r.value().moves_executed, 0u);
  EXPECT_EQ(r.value().retries, 2 * f.plan.moves.size());
}

/// Cancels the shared token after the N-th attempt check; thread-safe.
class CancelAfter : public FaultInjector {
 public:
  CancelAfter(CancellationToken token, std::uint64_t after)
      : token_(std::move(token)), after_(after) {}
  bool should_fail(const FragmentMove&, unsigned) override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) + 1 >= after_) {
      token_.cancel();
    }
    return false;
  }

 private:
  CancellationToken token_;
  std::uint64_t after_;
  std::atomic<std::uint64_t> calls_{0};
};

TEST(MigrationExecutor, CancellationStopsWithPartialProgress) {
  Fixture f = make_fixture(4, 6, 300);
  ASSERT_GT(f.plan.moves.size(), 20u);
  CancellationToken token;
  CancelAfter faults(token, 10);
  MigrationExecutorOptions opts;
  opts.max_in_flight = 2;
  opts.faults = &faults;
  MigrationExecutor executor(f.stores, 0, opts);
  const Result<MigrationReport> r = executor.execute(f.plan, token);
  ASSERT_TRUE(r.ok());
  const MigrationReport& report = r.value();
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.complete());
  EXPECT_LT(report.moves_executed, f.plan.moves.size());
  EXPECT_GT(report.moves_remaining, 0u);
  // Conservation: every planned move is accounted for exactly once.
  EXPECT_EQ(report.moves_executed + report.moves_skipped +
                report.moves_failed + report.moves_remaining,
            f.plan.moves.size());
}

TEST(MigrationExecutor, AlreadyCancelledTokenExecutesNothing) {
  Fixture f = make_fixture(4, 6, 50);
  CancellationToken token;
  token.cancel();
  MigrationExecutor executor(f.stores);
  const Result<MigrationReport> r = executor.execute(f.plan, token);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().cancelled);
  EXPECT_EQ(r.value().moves_executed, 0u);
  EXPECT_EQ(r.value().moves_remaining, f.plan.moves.size());
}

TEST(MigrationExecutor, RejectsInvalidOptionsAndForeignDevices) {
  Fixture f = make_fixture(4, 6, 10);
  {
    MigrationExecutorOptions opts;
    opts.max_in_flight = 0;
    MigrationExecutor executor(f.stores, 0, opts);
    EXPECT_EQ(executor.execute(f.plan).code(), ErrorCode::kInvalidArgument);
  }
  {
    MigrationExecutorOptions opts;
    opts.max_attempts = 0;
    MigrationExecutor executor(f.stores, 0, opts);
    EXPECT_EQ(executor.execute(f.plan).code(), ErrorCode::kInvalidArgument);
  }
  {
    MigrationExecutor executor(f.stores);
    MigrationPlan foreign;
    foreign.moves.push_back({0, 0, 0, 999});
    EXPECT_EQ(executor.execute(foreign).code(),
              ErrorCode::kInvalidArgument);
  }
  EXPECT_THROW(MigrationExecutor({{0, nullptr}}), std::invalid_argument);
}

TEST(MigrationExecutor, EmptyPlanIsANoOp) {
  Fixture f = make_fixture(3, 3, 20);
  MigrationExecutor executor(f.stores);
  const Result<MigrationReport> r = executor.execute(MigrationPlan{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().complete());
  EXPECT_EQ(r.value().moves_executed, 0u);
}

}  // namespace
}  // namespace rds
