// Unit tests for the metrics primitives: Counter, Gauge, LatencyHistogram,
// ScopedTimer, Registry and the JSON/text exporters.
#include "src/metrics/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/metrics/scoped_timer.hpp"

namespace rds::metrics {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Gauge, SetMaxIsMonotone) {
  Gauge g;
  g.set_max(5);
  g.set_max(3);  // lower value must not win
  EXPECT_EQ(g.value(), 5);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9);
}

TEST(Gauge, ConcurrentSetMaxKeepsTheMaximum) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, t] {
      for (std::int64_t i = 0; i < 10'000; ++i) {
        g.set_max(t * 10'000 + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(g.value(), (kThreads - 1) * 10'000 + 9'999);
}

TEST(LatencyHistogram, CountSumMinMax) {
  LatencyHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  const HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.sum, 60u);
  EXPECT_EQ(d.min, 10u);
  EXPECT_EQ(d.max, 30u);
  EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(LatencyHistogram, EmptySnapshotIsSane) {
  LatencyHistogram h;
  const HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_TRUE(d.buckets.empty());
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below 32 get their own unit-wide bucket: quantiles are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  const HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, 32u);
  EXPECT_EQ(d.buckets.size(), 32u);
  for (const HistogramBucket& b : d.buckets) EXPECT_EQ(b.count, 1u);
  EXPECT_LE(d.quantile(0.5), 16.0);
}

TEST(LatencyHistogram, RelativeErrorBounded) {
  // With 32 sub-buckets per octave the bucket upper bound overestimates a
  // recorded value by at most 1/32 ~ 3.2%.
  LatencyHistogram h;
  const std::vector<std::uint64_t> values = {100,     1'000,      12'345,
                                             777'777, 10'000'000, 123'456'789};
  for (const std::uint64_t v : values) h.record(v);
  const HistogramData d = h.snapshot();
  ASSERT_EQ(d.count, values.size());
  ASSERT_EQ(d.buckets.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double le = static_cast<double>(d.buckets[i].le);
    const double v = static_cast<double>(values[i]);
    EXPECT_GE(le, v);
    EXPECT_LE(le, v * (1.0 + 1.0 / 32.0) + 1.0)
        << "bucket upper bound too loose for " << values[i];
  }
}

TEST(LatencyHistogram, QuantilesAreOrdered) {
  LatencyHistogram h;
  for (std::uint64_t i = 1; i <= 10'000; ++i) h.record(i);
  const HistogramData d = h.snapshot();
  const double p50 = d.quantile(0.50);
  const double p90 = d.quantile(0.90);
  const double p99 = d.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // 2^-5 relative resolution: p50 of 1..10000 is near 5000.
  EXPECT_NEAR(p50, 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(p99, 9900.0, 9900.0 * 0.05);
}

TEST(LatencyHistogram, ConcurrentRecordsAreLossless) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(t * 1'000 + (i % 997));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const HistogramBucket& b : d.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, d.count);
}

TEST(ScopedTimer, RecordsPositiveDuration) {
  LatencyHistogram h;
  {
    ScopedTimer timer(h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ScopedTimer, CancelSuppressesRecording) {
  LatencyHistogram h;
  {
    ScopedTimer timer(h);
    timer.cancel();
  }
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(ScopedTimer, StopIsIdempotent) {
  LatencyHistogram h;
  {
    ScopedTimer timer(h);
    timer.stop();
    timer.stop();  // second stop must not record again
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Registry, SameNameAndLabelsYieldSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("test_total", {{"x", "1"}});
  Counter& b = reg.counter("test_total", {{"x", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("test_total", {{"x", "2"}});
  EXPECT_NE(&a, &c);
}

TEST(Registry, LabelOrderDoesNotMatter) {
  Registry reg;
  Counter& a = reg.counter("t_total", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("t_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, TypeMismatchThrows) {
  Registry reg;
  (void)reg.counter("thing_total");
  EXPECT_THROW((void)reg.gauge("thing_total"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("thing_total"), std::invalid_argument);
}

TEST(Registry, SnapshotContainsAllInstruments) {
  Registry reg;
  reg.counter("c_total").inc(3);
  reg.gauge("g").set(-7);
  reg.histogram("h_ns").record(100);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);

  const Sample* c = snap.find("c_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->type, MetricType::kCounter);
  EXPECT_EQ(c->counter_value, 3u);

  const Sample* g = snap.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge_value, -7);

  const Sample* h = snap.find("h_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 1u);

  EXPECT_EQ(snap.find("missing"), nullptr);
  EXPECT_EQ(snap.find("c_total", {{"no", "such"}}), nullptr);
}

TEST(Registry, ResetZeroesButKeepsReferencesValid) {
  Registry reg;
  Counter& c = reg.counter("r_total");
  c.inc(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(reg.snapshot().find("r_total")->counter_value, 1u);
}

TEST(Registry, ConcurrentRegistrationAndIncrement) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 1'000; ++i) {
        reg.counter("shared_total").inc();
        reg.counter("labeled_total", {{"i", std::to_string(i % 4)}}).inc();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("shared_total")->counter_value, kThreads * 1'000u);
  std::uint64_t labeled = 0;
  for (const Sample& s : snap.samples) {
    if (s.name == "labeled_total") labeled += s.counter_value;
  }
  EXPECT_EQ(labeled, kThreads * 1'000u);
}

TEST(Registry, GlobalIsASingleton) {
  Registry& a = Registry::global();
  Registry& b = Registry::global();
  EXPECT_EQ(&a, &b);
}

TEST(Export, JsonContainsEveryFamilyAndParses) {
  Registry reg;
  reg.counter("j_total", {{"kind", "x"}}).inc(2);
  reg.gauge("j_gauge").set(9);
  reg.histogram("j_ns").record(1'000);
  const std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("\"version\""), std::string::npos);
  EXPECT_NE(json.find("\"j_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\""), std::string::npos);
  EXPECT_NE(json.find("\"j_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"j_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // Balanced braces/brackets -- cheap structural sanity check.
  std::int64_t braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Export, JsonEscapesSpecialCharacters) {
  Registry reg;
  reg.counter("esc_total", {{"path", "a\"b\\c"}}).inc();
  const std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(Export, TextFormatListsMetricsWithLabels) {
  Registry reg;
  reg.counter("t_total", {{"device", "3"}}).inc(7);
  reg.gauge("t_gauge").set(11);
  reg.histogram("t_ns").record(50);
  const std::string text = to_text(reg.snapshot());
  EXPECT_NE(text.find("t_total{device=\"3\"} 7"), std::string::npos);
  EXPECT_NE(text.find("t_gauge 11"), std::string::npos);
  EXPECT_NE(text.find("t_ns"), std::string::npos);
  EXPECT_NE(text.find("count="), std::string::npos);
}

TEST(Export, WriteJsonFileThrowsOnBadPath) {
  Registry reg;
  EXPECT_THROW(
      write_json_file(reg.snapshot(), "/nonexistent-dir-xyz/metrics.json"),
      std::runtime_error);
}

}  // namespace
}  // namespace rds::metrics
