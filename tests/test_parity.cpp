#include "src/storage/erasure/parity.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rds {
namespace {

using Bytes = std::vector<std::uint8_t>;

TEST(XorParity, ParityOfKnownShards) {
  const std::vector<Bytes> shards{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Bytes parity = xor_parity(shards);
  EXPECT_EQ(parity, (Bytes{1 ^ 4 ^ 7, 2 ^ 5 ^ 8, 3 ^ 6 ^ 9}));
}

TEST(XorParity, SingleShardParityIsCopy) {
  const std::vector<Bytes> shards{{9, 8, 7}};
  EXPECT_EQ(xor_parity(shards), (Bytes{9, 8, 7}));
}

TEST(XorParity, RejectsEmptyAndMismatched) {
  EXPECT_THROW((void)xor_parity(std::vector<Bytes>{}), std::invalid_argument);
  const std::vector<Bytes> bad{{1, 2}, {1}};
  EXPECT_THROW((void)xor_parity(bad), std::invalid_argument);
}

TEST(XorReconstruct, RecoversAnySingleLoss) {
  const std::vector<Bytes> data{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Bytes parity = xor_parity(data);
  std::vector<std::optional<Bytes>> group{data[0], data[1], data[2], parity};
  for (std::size_t lost = 0; lost < group.size(); ++lost) {
    auto damaged = group;
    const Bytes original = *damaged[lost];
    damaged[lost].reset();
    EXPECT_EQ(xor_reconstruct(damaged), original) << "lost " << lost;
  }
}

TEST(XorReconstruct, RejectsWrongMissingCount) {
  const std::vector<std::optional<Bytes>> none_missing{Bytes{1}, Bytes{2}};
  EXPECT_THROW((void)xor_reconstruct(none_missing), std::invalid_argument);
  const std::vector<std::optional<Bytes>> two_missing{std::nullopt,
                                                      std::nullopt, Bytes{1}};
  EXPECT_THROW((void)xor_reconstruct(two_missing), std::invalid_argument);
}

TEST(XorReconstruct, RejectsSizeMismatch) {
  const std::vector<std::optional<Bytes>> bad{Bytes{1, 2}, std::nullopt,
                                              Bytes{1}};
  EXPECT_THROW((void)xor_reconstruct(bad), std::invalid_argument);
}

}  // namespace
}  // namespace rds
