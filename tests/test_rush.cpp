#include "src/placement/rush.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace rds {
namespace {

std::vector<SubCluster> two_clusters() {
  return {
      {{0, 1, 2, 3}, 1.0},  // oldest: 4 disks, weight 1
      {{10, 11}, 2.0},      // newer: 2 disks, weight 2
  };
}

TEST(Rush, CopiesAreDistinctAndDeterministic) {
  const RushPlacement s(two_clusters(), 2);
  std::vector<DeviceId> out(2), again(2);
  for (std::uint64_t a = 0; a < 2000; ++a) {
    s.place(a, out);
    EXPECT_NE(out[0], out[1]);
    s.place(a, again);
    EXPECT_EQ(out, again);
  }
}

TEST(Rush, DeviceCount) {
  const RushPlacement s(two_clusters(), 2);
  EXPECT_EQ(s.device_count(), 6u);
}

TEST(Rush, RoughWeightProportionality) {
  // Cluster weights: old 4*1 = 4, new 2*2 = 4 -> each should hold ~half
  // the copies.
  const RushPlacement s(two_clusters(), 2);
  std::map<DeviceId, std::uint64_t> counts;
  std::vector<DeviceId> out(2);
  constexpr std::uint64_t kBalls = 50'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    for (const DeviceId d : out) ++counts[d];
  }
  std::uint64_t old_cluster = 0, new_cluster = 0;
  for (const auto& [uid, c] : counts) {
    (uid >= 10 ? new_cluster : old_cluster) += c;
  }
  const double frac_new =
      static_cast<double>(new_cluster) / (2.0 * kBalls);
  EXPECT_NEAR(frac_new, 0.5, 0.05);
}

TEST(Rush, AddingSubClusterMovesOnlyTowardIt) {
  std::vector<SubCluster> before = two_clusters();
  std::vector<SubCluster> after = before;
  after.push_back({{20, 21, 22}, 1.0});
  const RushPlacement sb(before, 2);
  const RushPlacement sa(after, 2);
  std::vector<DeviceId> ob(2), oa(2);
  std::uint64_t moved = 0, into_new = 0;
  constexpr std::uint64_t kBalls = 20'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    sb.place(a, ob);
    sa.place(a, oa);
    std::ranges::sort(ob);
    std::ranges::sort(oa);
    std::vector<DeviceId> gained;
    std::ranges::set_difference(oa, ob, std::back_inserter(gained));
    moved += gained.size();
    into_new += static_cast<std::uint64_t>(
        std::ranges::count_if(gained, [](DeviceId d) { return d >= 20; }));
  }
  EXPECT_GT(moved, 0u);
  // RUSH's signature: the overwhelming majority of moved copies land on the
  // new sub-cluster (residual churn between old clusters stays small).
  EXPECT_GT(static_cast<double>(into_new), 0.9 * static_cast<double>(moved));
}

TEST(Rush, ChunkRestrictionEnforced) {
  // First sub-cluster smaller than k is the documented RUSH restriction.
  EXPECT_THROW(RushPlacement({{{0}, 1.0}, {{1, 2, 3}, 1.0}}, 2),
               std::invalid_argument);
  EXPECT_THROW(RushPlacement({}, 2), std::invalid_argument);
  EXPECT_THROW(RushPlacement({{{0, 1}, 0.0}}, 2), std::invalid_argument);
  EXPECT_THROW(RushPlacement({{{}, 1.0}}, 1), std::invalid_argument);
  EXPECT_THROW(RushPlacement({{{0, 1}, 1.0}}, 0), std::invalid_argument);
}

TEST(Rush, SingleClusterDegeneratesToPermutation) {
  const RushPlacement s({{{0, 1, 2, 3, 4}, 1.0}}, 5);
  std::vector<DeviceId> out(5);
  for (std::uint64_t a = 0; a < 200; ++a) {
    s.place(a, out);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(sorted, (std::vector<DeviceId>{0, 1, 2, 3, 4}));
  }
}

}  // namespace
}  // namespace rds
