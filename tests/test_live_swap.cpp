// Live strategy swap: placement lookups run lock-free against an atomically
// published (strategy, config) epoch while apply_config installs new ones.
// The invariant under test: a reader holding one snapshot always sees a
// mutually consistent pair -- k pairwise-distinct devices that all exist in
// THAT snapshot's config -- no matter how many swaps race past it.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/storage/virtual_disk.hpp"

namespace rds {
namespace {

ClusterConfig small_pool() {
  return ClusterConfig(
      {{1, 800, "a"}, {2, 900, "b"}, {3, 1000, "c"}, {4, 1100, "d"}});
}

ClusterConfig big_pool() {
  std::vector<Device> devices;
  for (DeviceId uid = 1; uid <= 9; ++uid) {
    devices.push_back({uid, 700 + 100 * uid, "d" + std::to_string(uid)});
  }
  return ClusterConfig(std::move(devices));
}

VirtualDisk make_disk(ClusterConfig config) {
  return VirtualDisk(std::move(config),
                     std::make_shared<MirroringScheme>(2),
                     PlacementKind::kFastRedundantShare);
}

TEST(LiveSwap, SnapshotIsSelfConsistent) {
  const VirtualDisk disk = make_disk(small_pool());
  const auto snap = disk.placement_snapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_NE(snap->strategy, nullptr);
  EXPECT_EQ(snap->strategy->replication(), 2u);
  EXPECT_EQ(snap->strategy->device_count(), snap->config.size());
  EXPECT_GE(snap->epoch, 1u);
}

TEST(LiveSwap, ApplyConfigPublishesNewEpoch) {
  VirtualDisk disk = make_disk(small_pool());
  const auto before = disk.placement_snapshot();
  const Result<std::size_t> begun = disk.apply_config(big_pool());
  ASSERT_TRUE(begun.ok()) << begun.error().message;
  const auto after = disk.placement_snapshot();
  EXPECT_GT(after->epoch, before->epoch);
  EXPECT_EQ(after->config, big_pool());
  EXPECT_EQ(after->strategy->device_count(), big_pool().size());
  // The old snapshot stays alive and unchanged for whoever still holds it.
  EXPECT_EQ(before->config, small_pool());
  EXPECT_EQ(before->strategy->device_count(), small_pool().size());
}

TEST(LiveSwap, PlaceReturnsTheEpochItUsed) {
  VirtualDisk disk = make_disk(small_pool());
  DeviceId copies[2] = {kNoDevice, kNoDevice};
  const std::uint64_t e1 = disk.place(7, copies);
  EXPECT_EQ(e1, disk.placement_snapshot()->epoch);
  EXPECT_NE(copies[0], copies[1]);
  ASSERT_TRUE(disk.apply_config(big_pool()).ok());
  const std::uint64_t e2 = disk.place(7, copies);
  EXPECT_GT(e2, e1);
}

// The tentpole stress test: N readers place continuously while one thread
// swaps the config back and forth.  Every single read must observe a
// self-consistent k-set; epochs observed by each reader must be monotonic.
TEST(Concurrency, ReadersSeeConsistentSnapshotsDuringSwaps) {
  VirtualDisk disk = make_disk(small_pool());

  constexpr int kReaders = 4;
  constexpr int kSwaps = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);

  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&disk, &stop, &failures, r] {
      std::uint64_t address = static_cast<std::uint64_t>(r) << 32;
      std::uint64_t last_epoch = 0;
      std::vector<DeviceId> copies;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = disk.placement_snapshot();
        const unsigned k = snap->strategy->replication();
        copies.assign(k, kNoDevice);
        snap->strategy->place(address++, copies);
        // Pairwise distinct and all inside the snapshot's own config.
        for (unsigned i = 0; i < k; ++i) {
          if (!snap->config.contains(copies[i])) failures.fetch_add(1);
          for (unsigned j = i + 1; j < k; ++j) {
            if (copies[i] == copies[j]) failures.fetch_add(1);
          }
        }
        if (snap->epoch < last_epoch) failures.fetch_add(1);
        last_epoch = snap->epoch;
      }
    });
  }

  const ClusterConfig configs[2] = {big_pool(), small_pool()};
  for (int s = 0; s < kSwaps; ++s) {
    const Result<std::size_t> r = disk.apply_config(configs[s % 2]);
    ASSERT_TRUE(r.ok()) << r.error().message;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  // kSwaps swaps after the initial publication, each reshape commits once.
  EXPECT_GE(disk.placement_snapshot()->epoch, 1u + kSwaps);
}

// Strategy-kind swap to/from the precomputed O(k) path: the alias tables
// are rebuilt by the constructor inside try_set_strategy and published
// through the same RCU epoch, so readers must stay consistent while the
// heavyweight table build and the swap race past them in both directions.
TEST(Concurrency, ReadersSurviveSwapsToAndFromPrecomputed) {
  VirtualDisk disk = make_disk(big_pool());

  constexpr int kReaders = 3;
  constexpr int kSwaps = 30;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);

  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&disk, &stop, &failures, r] {
      std::uint64_t address = static_cast<std::uint64_t>(r) << 32;
      std::uint64_t last_epoch = 0;
      std::vector<DeviceId> copies;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = disk.placement_snapshot();
        const unsigned k = snap->strategy->replication();
        copies.assign(k, kNoDevice);
        snap->strategy->place(address++, copies);
        for (unsigned i = 0; i < k; ++i) {
          if (!snap->config.contains(copies[i])) failures.fetch_add(1);
          for (unsigned j = i + 1; j < k; ++j) {
            if (copies[i] == copies[j]) failures.fetch_add(1);
          }
        }
        if (snap->epoch < last_epoch) failures.fetch_add(1);
        last_epoch = snap->epoch;
      }
    });
  }

  const PlacementKind kinds[3] = {PlacementKind::kPrecomputed,
                                  PlacementKind::kFastRedundantShare,
                                  PlacementKind::kRedundantShare};
  for (int s = 0; s < kSwaps; ++s) {
    const Result<void> r = disk.try_set_strategy(kinds[s % 3]);
    ASSERT_TRUE(r.ok()) << r.error().message;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(disk.placement_kind(), kinds[(kSwaps - 1) % 3]);
}

TEST(CopyLocations, MatchesPlaceAndReportsEpoch) {
  VirtualDisk disk = make_disk(small_pool());
  for (std::uint64_t block = 0; block < 200; ++block) {
    const VirtualDisk::CopyLocations locs = disk.copy_locations(block);
    ASSERT_EQ(locs.devices.size(), 2u);
    DeviceId copies[2] = {kNoDevice, kNoDevice};
    const std::uint64_t epoch = disk.place(block, copies);
    EXPECT_EQ(locs.epoch, epoch);
    EXPECT_EQ(locs.devices[0], copies[0]);
    EXPECT_EQ(locs.devices[1], copies[1]);
  }
}

TEST(CopyLocations, TryFormFillsSpanAndReturnsEpoch) {
  VirtualDisk disk = make_disk(small_pool());
  std::vector<DeviceId> out(2, kNoDevice);
  const Result<std::uint64_t> epoch = disk.try_copy_locations(42, out);
  ASSERT_TRUE(epoch.ok()) << epoch.error().message;
  EXPECT_EQ(epoch.value(), disk.placement_snapshot()->epoch);
  EXPECT_NE(out[0], out[1]);
  EXPECT_TRUE(disk.config().contains(out[0]));
  EXPECT_TRUE(disk.config().contains(out[1]));
}

TEST(CopyLocations, TryFormRejectsWrongSizeWithoutWriting) {
  VirtualDisk disk = make_disk(small_pool());
  std::vector<DeviceId> wrong(3, kNoDevice);
  const Result<std::uint64_t> r = disk.try_copy_locations(42, wrong);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
  for (const DeviceId uid : wrong) EXPECT_EQ(uid, kNoDevice);
}

// copy_locations under a racing strategy swap: every result must be a
// self-consistent k-set from SOME epoch, and the allocation-free form must
// either agree or fail cleanly with kInvalidArgument (never tear).
TEST(Concurrency, CopyLocationsStaysConsistentDuringSwaps) {
  VirtualDisk disk = make_disk(small_pool());

  constexpr int kReaders = 3;
  constexpr int kSwaps = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);

  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&disk, &stop, &failures, r] {
      std::uint64_t address = static_cast<std::uint64_t>(r) << 32;
      std::uint64_t last_epoch = 0;
      std::vector<DeviceId> buf(2, kNoDevice);
      while (!stop.load(std::memory_order_relaxed)) {
        const VirtualDisk::CopyLocations locs =
            disk.copy_locations(address);
        if (locs.devices.size() != 2) failures.fetch_add(1);
        for (std::size_t i = 0; i < locs.devices.size(); ++i) {
          for (std::size_t j = i + 1; j < locs.devices.size(); ++j) {
            if (locs.devices[i] == locs.devices[j]) failures.fetch_add(1);
          }
        }
        if (locs.epoch < last_epoch) failures.fetch_add(1);
        last_epoch = locs.epoch;

        const Result<std::uint64_t> epoch =
            disk.try_copy_locations(address, buf);
        if (epoch.ok()) {
          if (buf[0] == buf[1]) failures.fetch_add(1);
        } else if (epoch.code() != ErrorCode::kInvalidArgument) {
          failures.fetch_add(1);  // only the size race may fail
        }
        ++address;
      }
    });
  }

  const ClusterConfig configs[2] = {big_pool(), small_pool()};
  for (int s = 0; s < kSwaps; ++s) {
    const Result<std::size_t> r = disk.apply_config(configs[s % 2]);
    ASSERT_TRUE(r.ok()) << r.error().message;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Same race through the convenience API: place() grabs its own snapshot.
TEST(Concurrency, PlaceIsLockFreeAgainstTopologyChanges) {
  VirtualDisk disk = make_disk(small_pool());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread reader([&] {
    DeviceId copies[2];
    std::uint64_t address = 0;
    std::uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t epoch = disk.place(address++, copies);
      if (copies[0] == copies[1]) failures.fetch_add(1);
      if (epoch < last_epoch) failures.fetch_add(1);
      last_epoch = epoch;
    }
  });

  for (DeviceId uid = 10; uid < 20; ++uid) {
    ASSERT_TRUE(disk.try_add_device({uid, 1000, "new"}).ok());
  }
  for (DeviceId uid = 10; uid < 20; ++uid) {
    ASSERT_TRUE(disk.try_remove_device(uid).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rds
