// The FCFS load simulator: trace generation (Poisson thinning), queueing
// arithmetic, policy separation at skew, and the live-disk overload that
// resolves replicas through VirtualDisk::try_copy_locations.
#include "src/sim/load_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/redundant_share.hpp"
#include "src/storage/virtual_disk.hpp"

namespace rds {
namespace {

ClusterConfig make_pool() {
  return ClusterConfig(
      {{1, 4000, ""}, {2, 2000, ""}, {3, 2000, ""}, {4, 1000, ""}});
}

/// Always copy 0 -- what a naive client does; lives here to prove the
/// selector seam accepts out-of-tree policies.
class PrimaryOnlySelector final : public ReplicaSelector {
 public:
  [[nodiscard]] std::size_t select(std::span<const std::size_t> /*replicas*/,
                                   const QueueView& /*queues*/,
                                   Xoshiro256& /*rng*/) override {
    return 0;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "primary-only";
  }
};

ServiceModel fixed(double seek_us, double us_per_block) {
  ServiceModel m;
  m.seek_us = seek_us;
  m.us_per_block = us_per_block;
  m.shape = ServiceModel::Shape::kDeterministic;
  return m;
}

TEST(ServiceModelTest, ShapesPreserveTheMean) {
  Xoshiro256 rng(3);
  for (const ServiceModel::Shape shape :
       {ServiceModel::Shape::kDeterministic,
        ServiceModel::Shape::kExponential,
        ServiceModel::Shape::kLognormal}) {
    ServiceModel m = fixed(100.0, 10.0);
    m.shape = shape;
    double sum = 0.0;
    constexpr int kN = 200'000;
    for (int i = 0; i < kN; ++i) {
      const double s = m.sample_us(rng);
      ASSERT_GT(s, 0.0);
      sum += s;
    }
    EXPECT_NEAR(sum / kN, 110.0, 2.0) << "shape " << static_cast<int>(shape);
  }
}

TEST(LoadSim, TraceGeneration) {
  const ZipfGenerator zipf(1000, 0.9);
  Xoshiro256 rng(5);
  const auto trace = make_trace(zipf, 5000, /*rate=*/0.01, rng);
  ASSERT_EQ(trace.size(), 5000u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_us, trace[i - 1].arrival_us);
    EXPECT_LT(trace[i].ball, 1000u);
  }
  // Mean interarrival ~ 1/rate (rate_factor == 1 for plain Zipf).
  EXPECT_NEAR(trace.back().arrival_us / 5000.0, 100.0, 10.0);
}

TEST(LoadSim, ThinningFollowsTheRateFactor) {
  // Diurnal modulation: rate_factor = 1 + 0.8 sin(2pi t / period), so the
  // first half-period must receive ~(1 + 2*0.8/pi) / (1 - 2*0.8/pi) times
  // the arrivals of the second.
  const DiurnalGenerator diurnal(100, 0.0, /*amplitude=*/0.8,
                                 /*period_us=*/1e6);
  Xoshiro256 rng(29);
  const auto trace = make_trace(diurnal, 40'000, /*rate=*/0.02, rng);
  std::uint64_t first_half = 0;
  std::uint64_t second_half = 0;
  for (const Request& r : trace) {
    const double phase = std::fmod(r.arrival_us, 1e6);
    (phase < 5e5 ? first_half : second_half) += 1;
  }
  const double expected_ratio = (1.0 + 1.6 / 3.141592653589793) /
                                (1.0 - 1.6 / 3.141592653589793);
  EXPECT_NEAR(static_cast<double>(first_half) /
                  static_cast<double>(second_half),
              expected_ratio, 0.25);
}

TEST(LoadSim, SingleRequestLatencyIsServiceTime) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const std::vector<Request> trace{{0.0, 3}};
  const ServiceModel model = fixed(100.0, 10.0);
  PrimaryOnlySelector selector;
  Xoshiro256 rng(1);
  const LoadResult r =
      simulate_load(pool, map, trace,
                    std::span<const ServiceModel>(&model, 1), selector, rng);
  EXPECT_DOUBLE_EQ(r.mean_response_us, 110.0);
  EXPECT_DOUBLE_EQ(r.makespan_us, 110.0);
}

TEST(LoadSim, QueueingDelaysShowUp) {
  // Two simultaneous requests to the same ball via primary-only: the
  // second waits for the first.
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const std::vector<Request> trace{{0.0, 3}, {0.0, 3}};
  const ServiceModel model = fixed(50.0, 0.0);
  PrimaryOnlySelector selector;
  Xoshiro256 rng(1);
  const LoadResult r =
      simulate_load(pool, map, trace,
                    std::span<const ServiceModel>(&model, 1), selector, rng);
  EXPECT_DOUBLE_EQ(r.max_response_us, 100.0);
  EXPECT_DOUBLE_EQ(r.mean_response_us, 75.0);
}

TEST(LoadSim, LeastLoadedSpreadsReplicas) {
  // Same two simultaneous requests, but least-loaded picks distinct
  // replicas: both finish in one service time.
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const std::vector<Request> trace{{0.0, 3}, {0.0, 3}};
  const ServiceModel model = fixed(50.0, 0.0);
  const auto selector = make_replica_selector(SelectorKind::kLeastLoaded);
  Xoshiro256 rng(1);
  const LoadResult r =
      simulate_load(pool, map, trace,
                    std::span<const ServiceModel>(&model, 1), *selector, rng);
  EXPECT_DOUBLE_EQ(r.max_response_us, 50.0);
}

TEST(LoadSim, UtilizationTracksCapacityUnderFairPlacement) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 20'000);
  const UniformGenerator uniform(20'000);
  Xoshiro256 rng(9);
  const auto trace = make_trace(uniform, 100'000, /*rate=*/0.005, rng);
  const ServiceModel model = fixed(20.0, 5.0);
  const auto selector = make_replica_selector(SelectorKind::kRoundRobin);
  const LoadResult r =
      simulate_load(pool, map, trace,
                    std::span<const ServiceModel>(&model, 1), *selector, rng);
  // Requests per device proportional to capacity: 4000:2000:2000:1000.
  const double total_requests = 100'000.0;
  EXPECT_NEAR(static_cast<double>(r.devices[0].requests) / total_requests,
              4.0 / 9.0, 0.02);
  EXPECT_NEAR(static_cast<double>(r.devices[3].requests) / total_requests,
              1.0 / 9.0, 0.02);
  // Quantiles are ordered by construction.
  EXPECT_LE(r.p50_response_us, r.p99_response_us);
  EXPECT_LE(r.p99_response_us, r.p999_response_us);
  EXPECT_LE(r.p999_response_us, r.max_response_us * 1.03);
}

TEST(LoadSim, PowerOfTwoBeatsRandomAtSkew) {
  // The acceptance invariant behind BENCH_latency.json, at test scale:
  // Zipf-0.9 on a heterogeneous pool, identical trace, p2c's p99 strictly
  // below random's.
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 5'000);
  const ZipfGenerator zipf(5'000, 0.9);
  Xoshiro256 trace_rng(42);
  // util ~ 0.7 at fair split: enough queueing for the policies to separate.
  const auto trace = make_trace(zipf, 60'000, /*rate=*/0.126, trace_rng);
  std::vector<ServiceModel> models;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const double scale = 4000.0 / static_cast<double>(pool[i].capacity);
    models.push_back(fixed(10.0 * scale, 2.5 * scale));
  }

  const auto run = [&](SelectorKind kind) {
    Xoshiro256 rng(7);
    const auto selector = make_replica_selector(kind);
    return simulate_load(pool, map, trace, models, *selector, rng);
  };
  const LoadResult random = run(SelectorKind::kRandom);
  const LoadResult p2c = run(SelectorKind::kPowerOfTwo);
  EXPECT_LT(p2c.p99_response_us, random.p99_response_us);
  EXPECT_LE(p2c.max_utilization(), random.max_utilization() + 1e-9);
}

TEST(LoadSim, RunsAreDeterministicGivenSeeds) {
  // The property the machine-independent ratchet rule rests on.
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 1'000);
  const ZipfGenerator zipf(1'000, 0.9);
  std::vector<ServiceModel> models(1);
  models[0].shape = ServiceModel::Shape::kExponential;

  const auto run = [&] {
    Xoshiro256 trace_rng(4242);
    const auto trace = make_trace(zipf, 20'000, /*rate=*/0.05, trace_rng);
    Xoshiro256 rng(7);
    const auto selector = make_replica_selector(SelectorKind::kPowerOfTwo);
    return simulate_load(pool, map, trace, models, *selector, rng);
  };
  const LoadResult a = run();
  const LoadResult b = run();
  EXPECT_DOUBLE_EQ(a.p50_response_us, b.p50_response_us);
  EXPECT_DOUBLE_EQ(a.p99_response_us, b.p99_response_us);
  EXPECT_DOUBLE_EQ(a.p999_response_us, b.p999_response_us);
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
}

TEST(LoadSim, VirtualDiskOverloadMatchesBlockMapRun) {
  // The live-disk path resolves every request through try_copy_locations;
  // against a quiescent disk it must reproduce the materialized-map run
  // exactly.
  VirtualDisk disk(make_pool(), std::make_shared<MirroringScheme>(2));
  const auto epoch = disk.placement_snapshot();
  const BlockMap map(*epoch->strategy, 2'000);

  const ZipfGenerator zipf(2'000, 0.9);
  Xoshiro256 trace_rng(11);
  const auto trace = make_trace(zipf, 30'000, /*rate=*/0.04, trace_rng);
  const ServiceModel model = fixed(20.0, 5.0);

  const auto run = [&](auto&&... target) {
    Xoshiro256 rng(7);
    const auto selector = make_replica_selector(SelectorKind::kLeastLoaded);
    return simulate_load(target..., trace,
                         std::span<const ServiceModel>(&model, 1), *selector,
                         rng);
  };
  const LoadResult via_map = run(epoch->config, map);
  const LoadResult via_disk = run(disk);
  EXPECT_DOUBLE_EQ(via_map.p99_response_us, via_disk.p99_response_us);
  EXPECT_DOUBLE_EQ(via_map.makespan_us, via_disk.makespan_us);
  ASSERT_EQ(via_map.devices.size(), via_disk.devices.size());
  for (std::size_t i = 0; i < via_map.devices.size(); ++i) {
    EXPECT_EQ(via_map.devices[i].requests, via_disk.devices[i].requests);
  }
}

TEST(LoadSim, Validation) {
  const ClusterConfig pool = make_pool();
  const RedundantShare strategy(pool, 2);
  const BlockMap map(strategy, 10);
  const ZipfGenerator zipf(10, 0.9);
  Xoshiro256 rng(1);
  EXPECT_THROW((void)make_trace(zipf, 10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)make_trace(zipf, 10, -1.0, rng),
               std::invalid_argument);

  PrimaryOnlySelector selector;
  const std::vector<Request> unsorted{{5.0, 1}, {1.0, 2}};
  const ServiceModel model;
  EXPECT_THROW(
      (void)simulate_load(pool, map, unsorted,
                          std::span<const ServiceModel>(&model, 1), selector,
                          rng),
      std::invalid_argument);
  const std::vector<Request> ok{{0.0, 1}};
  EXPECT_THROW((void)simulate_load(pool, map, ok, {}, selector, rng),
               std::invalid_argument);
  const std::vector<ServiceModel> two(2);
  EXPECT_THROW((void)simulate_load(pool, map, ok, two, selector, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace rds
