// Negative-path contract of make_scheme_from_name: strict parsing with
// messages that name what was wrong (src/storage/snapshot.hpp).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/storage/snapshot.hpp"

namespace rds {
namespace {

/// Runs the factory, asserting std::invalid_argument whose message contains
/// both `needle` and the offending input (so an operator reading a failed
/// recovery log can see WHAT was rejected and WHY).
void expect_rejected(const std::string& name, const std::string& needle) {
  SCOPED_TRACE("name='" + name + "'");
  try {
    (void)make_scheme_from_name(name);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos)
        << "message lacks '" << needle << "': " << what;
  }
}

TEST(SchemeNameParsing, RejectsEmptyName) {
  expect_rejected("", "unknown scheme kind");
}

TEST(SchemeNameParsing, RejectsUnknownKind) {
  expect_rejected("raid0", "unknown scheme kind");
  expect_rejected("raid0(k=2)", "unknown scheme kind");
  expect_rejected("MIRROR(k=2)", "unknown scheme kind");  // case-sensitive
  expect_rejected("mirror[k=2]", "unknown scheme kind");
}

TEST(SchemeNameParsing, RejectsDegenerateShardCounts) {
  // The scheme constructors' own validation propagates with its message.
  EXPECT_THROW((void)make_scheme_from_name("reed-solomon(0+0)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_scheme_from_name("mirror(k=0)"),
               std::invalid_argument);
}

TEST(SchemeNameParsing, RejectsOverflowDigits) {
  expect_rejected("mirror(k=99999999999999999999)", "number out of range");
  expect_rejected("reed-solomon(4+99999999999999999999)",
                  "number out of range");
}

TEST(SchemeNameParsing, RejectsMalformedNumbers) {
  expect_rejected("mirror(k=x)", "malformed number");
  expect_rejected("mirror(k=)", "malformed number");
  expect_rejected("mirror(k=2x)", "malformed number");
  expect_rejected("mirror(k=-2)", "malformed number");
  expect_rejected("reed-solomon(4+)", "malformed number");
  expect_rejected("reed-solomon(+2)", "malformed number");
}

TEST(SchemeNameParsing, RejectsMissingClose) {
  expect_rejected("mirror(k=2", "missing ')'");
  expect_rejected("rdp(p=5", "missing ')'");
}

TEST(SchemeNameParsing, RejectsTrailingGarbage) {
  expect_rejected("mirror(k=2)x", "trailing characters");
  expect_rejected("mirror(k=2))", "trailing characters");
  expect_rejected("reed-solomon(4+2) ", "trailing characters");
  expect_rejected("evenodd(p=5)!", "trailing characters");
}

TEST(SchemeNameParsing, RejectsMissingPlusInReedSolomon) {
  expect_rejected("reed-solomon(42)", "expected 'D+P'");
}

TEST(SchemeNameParsing, MessagesQuoteTheOffendingInput) {
  expect_rejected("bogus-scheme", "'bogus-scheme'");
  expect_rejected("mirror(k=2)x", "'mirror(k=2)x'");
}

TEST(SchemeNameParsing, AcceptsEveryCanonicalNameItEmits) {
  for (const std::string name :
       {"mirror(k=2)", "mirror(k=3)", "reed-solomon(4+2)",
        "reed-solomon(8+3)", "evenodd(p=5)", "rdp(p=7)"}) {
    SCOPED_TRACE(name);
    EXPECT_EQ(make_scheme_from_name(name)->name(), name);
  }
}

}  // namespace
}  // namespace rds
