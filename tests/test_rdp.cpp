#include "src/storage/erasure/rdp.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/util/random.hpp"

namespace rds {
namespace {

Bytes make_block(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes block(size);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng());
  return block;
}

std::vector<std::optional<Bytes>> as_optionals(
    const std::vector<Bytes>& fragments) {
  return {fragments.begin(), fragments.end()};
}

TEST(Rdp, RejectsNonPrimes) {
  EXPECT_THROW(RdpScheme(0), std::invalid_argument);
  EXPECT_THROW(RdpScheme(2), std::invalid_argument);
  EXPECT_THROW(RdpScheme(4), std::invalid_argument);
  EXPECT_THROW(RdpScheme(15), std::invalid_argument);
  EXPECT_NO_THROW(RdpScheme(3));
  EXPECT_NO_THROW(RdpScheme(13));
}

TEST(Rdp, CountsAndName) {
  const RdpScheme r(5);
  EXPECT_EQ(r.fragment_count(), 6u);  // 4 data + row parity + diag parity
  EXPECT_EQ(r.min_fragments(), 4u);
  EXPECT_EQ(r.prime(), 5u);
  EXPECT_EQ(r.name(), "rdp(p=5)");
}

TEST(Rdp, RoundTripAllPresent) {
  for (const unsigned p : {3u, 5u, 7u}) {
    const RdpScheme r(p);
    const Bytes block = make_block(1000, p);
    const auto fragments = r.encode(block);
    ASSERT_EQ(fragments.size(), p + 1);
    EXPECT_EQ(r.decode(as_optionals(fragments), block.size()), block);
  }
}

TEST(Rdp, DataColumnsAreSystematic) {
  const RdpScheme r(5);
  Bytes block(4 * 4 * 8);  // (p-1) data columns x (p-1) chunks x 8 bytes
  std::iota(block.begin(), block.end(), 0);
  const auto fragments = r.encode(block);
  EXPECT_TRUE(
      std::equal(fragments[0].begin(), fragments[0].end(), block.begin()));
}

TEST(Rdp, RowParityProperty) {
  const unsigned p = 5;
  const RdpScheme r(p);
  const Bytes block = make_block(320, 3);
  const auto fragments = r.encode(block);
  // XOR of data columns equals the row-parity column, bytewise.
  for (std::size_t b = 0; b < fragments[0].size(); ++b) {
    std::uint8_t x = 0;
    for (unsigned j = 0; j < p - 1; ++j) x ^= fragments[j][b];
    EXPECT_EQ(x, fragments[p - 1][b]);
  }
}

TEST(Rdp, ToleratesEverySingleErasure) {
  const RdpScheme r(7);
  const Bytes block = make_block(777, 9);
  const auto fragments = r.encode(block);
  for (unsigned lost = 0; lost < 8; ++lost) {
    auto damaged = as_optionals(fragments);
    damaged[lost].reset();
    EXPECT_EQ(r.decode(damaged, block.size()), block) << "lost " << lost;
    EXPECT_EQ(r.reconstruct_fragment(damaged, lost), fragments[lost]);
  }
}

TEST(Rdp, ToleratesEveryDoubleErasure) {
  for (const unsigned p : {3u, 5u, 7u, 11u}) {
    const RdpScheme r(p);
    const Bytes block = make_block(57 * p, p * 13);
    const auto fragments = r.encode(block);
    for (unsigned i = 0; i < p + 1; ++i) {
      for (unsigned j = i + 1; j < p + 1; ++j) {
        auto damaged = as_optionals(fragments);
        damaged[i].reset();
        damaged[j].reset();
        ASSERT_EQ(r.decode(damaged, block.size()), block)
            << "p=" << p << " lost " << i << "," << j;
        ASSERT_EQ(r.reconstruct_fragment(damaged, i), fragments[i])
            << "p=" << p << " lost " << i << "," << j;
      }
    }
  }
}

TEST(Rdp, TripleErasureRejected) {
  const RdpScheme r(5);
  auto damaged = as_optionals(r.encode(make_block(100, 1)));
  damaged[0].reset();
  damaged[2].reset();
  damaged[5].reset();
  EXPECT_THROW((void)r.decode(damaged, 100), std::invalid_argument);
}

TEST(Rdp, OddBlockSizes) {
  const RdpScheme r(3);
  for (const std::size_t size : {0u, 1u, 3u, 4u, 5u, 97u}) {
    const Bytes block = make_block(size, size + 5);
    auto damaged = as_optionals(r.encode(block));
    if (size > 0) {
      damaged[0].reset();
      damaged[2].reset();  // row parity
    }
    EXPECT_EQ(r.decode(damaged, size), block) << "size " << size;
  }
}

TEST(Rdp, Validation) {
  const RdpScheme r(3);
  const std::vector<std::optional<Bytes>> wrong_count(3);
  EXPECT_THROW((void)r.decode(wrong_count, 4), std::invalid_argument);
  std::vector<std::optional<Bytes>> mismatched(4);
  mismatched[0] = Bytes(4);
  mismatched[1] = Bytes(6);
  EXPECT_THROW((void)r.decode(mismatched, 8), std::invalid_argument);
  const std::vector<std::optional<Bytes>> all_missing(4);
  EXPECT_THROW((void)r.decode(all_missing, 4), std::invalid_argument);
  std::vector<std::optional<Bytes>> ok(4, Bytes(4));
  EXPECT_THROW((void)r.reconstruct_fragment(ok, 7), std::invalid_argument);
}

}  // namespace
}  // namespace rds
