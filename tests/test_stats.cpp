#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rds {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32 / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(ChiSquare, PerfectFitIsZero) {
  const std::vector<std::uint64_t> obs{10, 20, 30};
  const std::vector<double> exp{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_square(obs, exp), 0.0);
}

TEST(ChiSquare, KnownValue) {
  const std::vector<std::uint64_t> obs{12, 8};
  const std::vector<double> exp{10.0, 10.0};
  EXPECT_DOUBLE_EQ(chi_square(obs, exp), 0.4 + 0.4);
}

TEST(ChiSquare, RejectsSizeMismatch) {
  const std::vector<std::uint64_t> obs{1};
  const std::vector<double> exp{1.0, 2.0};
  EXPECT_THROW((void)chi_square(obs, exp), std::invalid_argument);
}

TEST(ChiSquare, RejectsNonPositiveExpected) {
  const std::vector<std::uint64_t> obs{1};
  const std::vector<double> exp{0.0};
  EXPECT_THROW((void)chi_square(obs, exp), std::invalid_argument);
}

TEST(ChiSquare, CriticalValueSanity) {
  // Exact 0.999 quantiles: dof=10 -> 29.59, dof=50 -> 86.66.
  EXPECT_NEAR(chi_square_critical_999(10), 29.59, 0.8);
  EXPECT_NEAR(chi_square_critical_999(50), 86.66, 1.5);
  EXPECT_THROW((void)chi_square_critical_999(0), std::invalid_argument);
}

TEST(Deviation, MaxRelative) {
  const std::vector<std::uint64_t> obs{110, 90};
  const std::vector<double> exp{100.0, 100.0};
  EXPECT_NEAR(max_relative_deviation(obs, exp), 0.1, 1e-12);
}

TEST(Deviation, RmsRelative) {
  const std::vector<std::uint64_t> obs{110, 90};
  const std::vector<double> exp{100.0, 100.0};
  EXPECT_NEAR(rms_relative_deviation(obs, exp), 0.1, 1e-12);
}

TEST(Normalized, SumsToOne) {
  const std::vector<double> w{1.0, 2.0, 3.0};
  const std::vector<double> n = normalized(w);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_NEAR(n[0] + n[1] + n[2], 1.0, 1e-12);
  EXPECT_NEAR(n[2], 0.5, 1e-12);
}

TEST(Normalized, ZeroTotalGivesEmpty) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_TRUE(normalized(w).empty());
}

}  // namespace
}  // namespace rds
