#include "src/storage/erasure/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rds {
namespace {

using gf256::add;
using gf256::div;
using gf256::inv;
using gf256::mul;
using gf256::pow;

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(add(7, 7), 0);
}

TEST(GF256, MultiplicativeIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, 1), x);
    EXPECT_EQ(mul(1, x), x);
    EXPECT_EQ(mul(x, 0), 0);
    EXPECT_EQ(mul(0, x), 0);
  }
}

TEST(GF256, KnownProducts) {
  // In GF(2^8)/0x11d: 0x8E * 2 = 0x11C, reduced by 0x11d -> 0x01.
  EXPECT_EQ(mul(0x8E, 0x02), 0x01);
  // 3 * 3 = (x+1)^2 = x^2 + 1 = 0x05 (no reduction needed).
  EXPECT_EQ(mul(0x03, 0x03), 0x05);
  // 0x80 * 2 = 0x100 -> xor 0x11d = 0x1d.
  EXPECT_EQ(mul(0x80, 0x02), 0x1D);
}

TEST(GF256, MultiplicationCommutesOnSample) {
  for (unsigned a = 1; a < 256; a += 7) {
    for (unsigned b = 1; b < 256; b += 11) {
      EXPECT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GF256, AssociativityOnSample) {
  for (unsigned a = 1; a < 256; a += 31) {
    for (unsigned b = 1; b < 256; b += 37) {
      for (unsigned c = 1; c < 256; c += 41) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(mul(mul(x, y), z), mul(x, mul(y, z)));
      }
    }
  }
}

TEST(GF256, DistributivityOnSample) {
  for (unsigned a = 1; a < 256; a += 13) {
    for (unsigned b = 0; b < 256; b += 17) {
      for (unsigned c = 0; c < 256; c += 19) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(mul(x, add(y, z)), add(mul(x, y), mul(x, z)));
      }
    }
  }
}

TEST(GF256, EveryNonZeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, inv(x)), 1) << "a=" << a;
    EXPECT_EQ(div(x, x), 1);
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned b = 1; b < 256; b += 9) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(div(mul(x, y), y), x);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMultiplication) {
  for (unsigned a = 2; a < 256; a += 61) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(pow(static_cast<std::uint8_t>(a), e), acc);
      acc = mul(acc, static_cast<std::uint8_t>(a));
    }
  }
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(0, 5), 0);
}

TEST(GF256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: 2^255 == 1 and 2^e != 1 earlier.
  EXPECT_EQ(pow(2, 255), 1);
  for (unsigned e = 1; e < 255; ++e) {
    EXPECT_NE(pow(2, e), 1) << "order divides " << e;
  }
}

TEST(GF256, MulAddRowOperation) {
  std::vector<std::uint8_t> dst{1, 2, 3, 0};
  const std::vector<std::uint8_t> src{5, 0, 7, 9};
  gf256::mul_add(dst, src, 3);
  EXPECT_EQ(dst[0], add(1, mul(3, 5)));
  EXPECT_EQ(dst[1], 2);  // src 0 contributes nothing
  EXPECT_EQ(dst[2], add(3, mul(3, 7)));
  EXPECT_EQ(dst[3], mul(3, 9));
}

TEST(GF256, MulAddWithCoefficientOneIsXor) {
  std::vector<std::uint8_t> dst{1, 2, 3};
  const std::vector<std::uint8_t> src{4, 5, 6};
  gf256::mul_add(dst, src, 1);
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{1 ^ 4, 2 ^ 5, 3 ^ 6}));
}

TEST(GF256, ScaleInPlace) {
  std::vector<std::uint8_t> v{1, 2, 0};
  gf256::scale(v, 2);
  EXPECT_EQ(v[0], mul(1, 2));
  EXPECT_EQ(v[1], mul(2, 2));
  EXPECT_EQ(v[2], 0);
}

}  // namespace
}  // namespace rds
