// ReplicaSelector policies and their factory: positional contracts,
// queue-state invariants under adversarial backlogs, and the enumerated
// unknown-name errors (mirrors test_strategy_factory).
#include "src/sim/replica_selector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rds {
namespace {

/// Hand-built queue state: the adversarial inputs the simulator would
/// never produce in such pure form.
class FakeQueues final : public QueueView {
 public:
  explicit FakeQueues(std::vector<double> backlog,
                      std::vector<double> mean_service = {})
      : backlog_(std::move(backlog)), mean_(std::move(mean_service)) {}

  [[nodiscard]] double backlog_us(std::size_t dev) const override {
    return backlog_[dev];
  }
  [[nodiscard]] double mean_service_us(std::size_t dev) const override {
    return mean_.empty() ? 1.0 : mean_[dev];
  }
  [[nodiscard]] std::size_t device_count() const override {
    return backlog_.size();
  }

 private:
  std::vector<double> backlog_;
  std::vector<double> mean_;
};

TEST(SelectorFactory, EveryKindConstructsWithMatchingName) {
  for (const SelectorKind kind : all_selector_kinds()) {
    const auto by_kind = make_replica_selector(kind);
    ASSERT_NE(by_kind, nullptr);
    EXPECT_EQ(by_kind->name(), to_string(kind));
    // The canonical spelling round-trips through the string factory.
    const auto by_name =
        make_replica_selector(std::string_view(to_string(kind)));
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->name(), to_string(kind));
  }
}

TEST(SelectorFactory, AliasesResolve) {
  EXPECT_EQ(make_replica_selector("rr")->name(), "round-robin");
  EXPECT_EQ(make_replica_selector("ll")->name(), "least-loaded");
  EXPECT_EQ(make_replica_selector("p2c")->name(), "power-of-two");
  EXPECT_EQ(make_replica_selector("wf")->name(), "water-filling");
}

TEST(SelectorFactory, UnknownNameEnumeratesAllSpellings) {
  const Result<std::unique_ptr<ReplicaSelector>> r =
      try_make_replica_selector("fastest");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
  const std::string& message = r.error().message;
  EXPECT_NE(message.find("fastest"), std::string::npos);
  for (const SelectorKind kind : all_selector_kinds()) {
    EXPECT_NE(message.find(std::string(to_string(kind))), std::string::npos)
        << "missing " << to_string(kind);
  }
  EXPECT_NE(message.find("p2c"), std::string::npos);  // aliases listed too
  EXPECT_THROW((void)make_replica_selector("fastest"),
               std::invalid_argument);
}

TEST(RoundRobin, CyclesOverPositions) {
  RoundRobinSelector selector;
  const FakeQueues queues({0.0, 0.0, 0.0});
  Xoshiro256 rng(1);
  const std::vector<std::size_t> replicas{2, 0, 1};
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(selector.select(replicas, queues, rng), 0u);
    EXPECT_EQ(selector.select(replicas, queues, rng), 1u);
    EXPECT_EQ(selector.select(replicas, queues, rng), 2u);
  }
}

TEST(Random, CoversAllPositionsRoughlyEvenly) {
  RandomSelector selector;
  const FakeQueues queues({0.0, 0.0, 0.0, 0.0});
  Xoshiro256 rng(7);
  const std::vector<std::size_t> replicas{0, 1, 2, 3};
  std::vector<int> counts(4, 0);
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) {
    const std::size_t pick = selector.select(replicas, queues, rng);
    ASSERT_LT(pick, replicas.size());
    ++counts[pick];
  }
  for (const int c : counts) EXPECT_NEAR(c, kN / 4, 400);
}

TEST(LeastLoaded, PicksArgminBacklog) {
  LeastLoadedSelector selector;
  Xoshiro256 rng(3);
  // Replica positions deliberately unordered vs device indices.
  const std::vector<std::size_t> replicas{3, 0, 2};
  const FakeQueues queues({50.0, 999.0, 10.0, 70.0});
  // Backlogs seen: dev3=70, dev0=50, dev2=10 -> position 2.
  EXPECT_EQ(selector.select(replicas, queues, rng), 2u);
}

TEST(LeastLoaded, TiesBreakTowardLowestCopyIndex) {
  LeastLoadedSelector selector;
  Xoshiro256 rng(3);
  const std::vector<std::size_t> replicas{1, 2, 3};
  const FakeQueues queues({0.0, 5.0, 5.0, 5.0});
  EXPECT_EQ(selector.select(replicas, queues, rng), 0u);
}

TEST(PowerOfTwo, SingleReplicaIsTheOnlyChoice) {
  PowerOfTwoSelector selector;
  Xoshiro256 rng(5);
  const std::vector<std::size_t> replicas{4};
  const FakeQueues queues({0, 0, 0, 0, 9000.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(selector.select(replicas, queues, rng), 0u);
  }
}

TEST(PowerOfTwo, TwoReplicasDegeneratesToLeastLoaded) {
  // With k = 2 the two distinct probes ARE the two replicas, so the pick
  // must be deterministic: always the smaller backlog.
  PowerOfTwoSelector selector;
  Xoshiro256 rng(5);
  const std::vector<std::size_t> replicas{0, 1};
  const FakeQueues queues({5000.0, 1.0});
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(selector.select(replicas, queues, rng), 1u);
  }
}

TEST(PowerOfTwo, NeverPicksTheUniqueWorstReplica) {
  // Both probes are distinct, so the strict maximum can only be returned
  // if it beats the other probe -- impossible.  Adversarial state: one
  // device drowning, the rest idle.
  PowerOfTwoSelector selector;
  Xoshiro256 rng(9);
  const std::vector<std::size_t> replicas{0, 1, 2, 3};
  const FakeQueues queues({0.0, 1e9, 2.0, 1.0});
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(selector.select(replicas, queues, rng), 1u);
  }
}

TEST(WaterFilling, PrefersFasterDeviceAtEqualLevels) {
  WaterFillingSelector selector;
  Xoshiro256 rng(13);
  const std::vector<std::size_t> replicas{0, 1};
  // Backlogs are adversarially inverted: water-filling must IGNORE them
  // (it balances its own assignments, not the observed queues).
  const FakeQueues queues({0.0, 1e9}, {10.0, 2.0});
  EXPECT_EQ(selector.select(replicas, queues, rng), 1u);
  EXPECT_DOUBLE_EQ(selector.assigned_us(1), 2.0);
  EXPECT_DOUBLE_EQ(selector.assigned_us(0), 0.0);
}

TEST(WaterFilling, AssignmentsEqualizeAcrossSpeeds) {
  // Device 0 serves in 1us, device 1 in 3us.  Water-filling keeps the
  // assigned-work levels equal, so request counts settle at ~3:1.
  WaterFillingSelector selector;
  Xoshiro256 rng(13);
  const std::vector<std::size_t> replicas{0, 1};
  const FakeQueues queues({0.0, 0.0}, {1.0, 3.0});
  int fast = 0;
  constexpr int kN = 400;
  for (int i = 0; i < kN; ++i) {
    if (selector.select(replicas, queues, rng) == 0) ++fast;
  }
  EXPECT_NEAR(fast, 300, 4);
  EXPECT_NEAR(selector.assigned_us(0), selector.assigned_us(1), 3.0);
}

}  // namespace
}  // namespace rds
