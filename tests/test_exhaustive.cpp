// Exhaustive verification on small systems: EVERY capacity vector in a
// small grid, EVERY replication degree.  The exact law is O(k*n), so
// checking thousands of configurations is cheap -- this is the closest a
// test can get to a proof of Lemma 3.1/3.4 over the covered range.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/core/capacity.hpp"
#include "src/core/loss_analysis.hpp"
#include "src/core/redundant_share.hpp"

namespace rds {
namespace {

/// Generates all non-increasing capacity vectors of length n over
/// {1, ..., max_cap}.
void for_each_config(std::size_t n, std::uint64_t max_cap,
                     const std::function<void(const std::vector<std::uint64_t>&)>& fn) {
  std::vector<std::uint64_t> caps(n, 1);
  const std::function<void(std::size_t, std::uint64_t)> rec =
      [&](std::size_t pos, std::uint64_t upper) {
        if (pos == n) {
          fn(caps);
          return;
        }
        for (std::uint64_t c = 1; c <= upper; ++c) {
          caps[pos] = c;
          rec(pos + 1, c);
        }
      };
  rec(0, max_cap);
}

ClusterConfig cluster_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], ""});
  }
  return ClusterConfig(std::move(devices));
}

TEST(Exhaustive, ExactFairnessOnEverySmallConfiguration) {
  // n = 4 over caps {1..5}: C(8,4) = 70 sorted vectors; n = 5 over {1..4}:
  // 56; each with k = 1..n.  ~600 (config, k) pairs, each checked exactly.
  std::size_t checked = 0;
  for (const auto& [n, max_cap] :
       std::vector<std::pair<std::size_t, std::uint64_t>>{{3, 6}, {4, 5},
                                                          {5, 4}}) {
    for_each_config(n, max_cap, [&](const std::vector<std::uint64_t>& caps) {
      for (unsigned k = 1; k <= caps.size(); ++k) {
        const RedundantShare s(cluster_from(caps), k);
        const std::vector<double> expected = s.exact_expected_copies();
        const std::span<const double> adjusted = s.adjusted_capacities();
        const double total =
            std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
        for (std::size_t i = 0; i < caps.size(); ++i) {
          const double target = static_cast<double>(k) * adjusted[i] / total;
          ASSERT_NEAR(expected[i], target, 1e-9)
              << "caps={" << caps[0] << "," << caps[1] << ",...} n=" << n
              << " k=" << k << " bin=" << i;
        }
        ASSERT_EQ(s.tables().fairness_residual, 0.0)
            << "moment matching left a residual";
        ++checked;
      }
    });
  }
  EXPECT_GT(checked, 500u);
}

TEST(Exhaustive, CapacityBoundTightOnEverySmallConfiguration) {
  for_each_config(4, 5, [&](const std::vector<std::uint64_t>& caps) {
    for (unsigned k = 2; k <= 4; ++k) {
      const std::vector<double> capsd(caps.begin(), caps.end());
      const auto bound = static_cast<std::uint64_t>(
          std::floor(max_balls(capsd, k) + 1e-9));
      ASSERT_TRUE(greedy_pack(caps, k, bound).has_value())
          << "k=" << k << " caps[0]=" << caps[0];
      ASSERT_FALSE(greedy_pack(caps, k, bound + 1).has_value())
          << "k=" << k << " caps[0]=" << caps[0];
    }
  });
}

TEST(Exhaustive, LossDistributionConsistentOnEverySmallConfiguration) {
  // For every config and every single-device failure set: the distribution
  // sums to 1 and its mean equals the device's expected copies.
  for_each_config(4, 4, [&](const std::vector<std::uint64_t>& caps) {
    const ClusterConfig config = cluster_from(caps);
    const RedundantShare s(config, 2);
    const std::vector<double> expected = s.exact_expected_copies();
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const std::vector<DeviceId> failed{s.canonical_uids()[i]};
      const std::vector<double> dist =
          copies_in_set_distribution(s, failed);
      double total = 0.0, mean = 0.0;
      for (std::size_t c = 0; c < dist.size(); ++c) {
        total += dist[c];
        mean += static_cast<double>(c) * dist[c];
      }
      ASSERT_NEAR(total, 1.0, 1e-12);
      ASSERT_NEAR(mean, expected[i], 1e-12);
      // Single failure never loses mirrored data (k = 2 > 1 failure).
      ASSERT_NEAR(dist[2], 0.0, 1e-12);
    }
  });
}

}  // namespace
}  // namespace rds
