// Checkpoint + journal replay reconstructs disks, pools and file stores
// (src/journal/recovery.hpp).
#include "src/journal/recovery.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "src/journal/journal.hpp"
#include "src/journal/record.hpp"
#include "src/storage/snapshot.hpp"
#include "src/util/random.hpp"

namespace rds::journal {
namespace {

ClusterConfig base_config() {
  return ClusterConfig({{1, 3000, "a"},
                        {2, 2500, "b"},
                        {3, 2000, "c"},
                        {4, 1500, "d"},
                        {5, 1000, "e"},
                        {6, 1000, "f"}});
}

Bytes payload(std::uint64_t block, std::uint64_t salt) {
  Bytes b(80);
  Xoshiro256 rng(block * 17 + salt);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(CheckpointHeader, RoundTrip) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  std::stringstream stream;
  write_checkpoint(disk, 17, stream);
  auto watermark = read_checkpoint_header(stream);
  ASSERT_TRUE(watermark.ok()) << watermark.error().message;
  EXPECT_EQ(watermark.value(), 17u);
  // The rest of the stream is a loadable snapshot.
  EXPECT_TRUE(Snapshot::load_disk(stream).config() == disk.config());
}

TEST(CheckpointHeader, RejectsBadMagicTruncationAndCrc) {
  std::stringstream empty;
  EXPECT_EQ(read_checkpoint_header(empty).error().code,
            ErrorCode::kCorruption);

  std::stringstream wrong("WRONGMAGxxxxxxxxxxxx");
  EXPECT_EQ(read_checkpoint_header(wrong).error().code,
            ErrorCode::kCorruption);

  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  std::stringstream full;
  write_checkpoint(disk, 3, full);
  const std::string bytes = full.str();

  std::stringstream truncated(bytes.substr(0, 12));
  EXPECT_EQ(read_checkpoint_header(truncated).error().code,
            ErrorCode::kCorruption);

  std::string flipped = bytes;
  flipped[10] = static_cast<char>(flipped[10] ^ 0x40);  // inside the watermark
  std::stringstream damaged(flipped);
  auto header = read_checkpoint_header(damaged);
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.error().message.find("checksum mismatch"),
            std::string::npos);
}

TEST(Recovery, DiskAdminOpsReplayToIdenticalState) {
  VirtualDisk disk(base_config(),
                   std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 60; ++b) disk.write(b, payload(b, 1));

  // Checkpoint first (watermark 0: no journaled mutation yet), then attach
  // the journal and run the full admin vocabulary.
  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);
  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  disk.set_journal(writer);

  disk.add_device({9, 4000, "late"});
  disk.resize_device(2, 3500);
  disk.fail_device(5);
  EXPECT_GT(disk.rebuild(), 0u);
  disk.set_strategy(PlacementKind::kRoundRobin);
  disk.set_scheme(std::make_shared<MirroringScheme>(3));
  disk.remove_device(9);
  EXPECT_EQ(writer->last_lsn(), 7u);

  auto recovered = Recovery::recover_disk(ckpt, &wal);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  VirtualDisk& twin = recovered.value().disk;
  const ReplayReport& report = recovered.value().report;
  EXPECT_EQ(report.watermark, 0u);
  EXPECT_EQ(report.records_applied, 7u);
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_EQ(report.last_applied, 7u);
  EXPECT_FALSE(report.tail_corrupt);

  EXPECT_TRUE(twin.config() == disk.config());
  EXPECT_EQ(twin.scheme().name(), disk.scheme().name());
  EXPECT_EQ(twin.placement_kind(), disk.placement_kind());
  EXPECT_EQ(twin.block_count(), disk.block_count());
  for (std::uint64_t b = 0; b < 60; ++b) {
    EXPECT_EQ(twin.read(b), payload(b, 1));
  }
  EXPECT_TRUE(twin.scrub().clean());
}

TEST(Recovery, WatermarkSkipsAlreadyCheckpointedRecords) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 20; ++b) disk.write(b, payload(b, 2));
  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  disk.set_journal(writer);

  disk.add_device({9, 4000, "first"});
  disk.fail_device(5);
  // Checkpoint absorbs LSNs 1-2; the old journal keeps all records.
  std::stringstream ckpt;
  write_checkpoint(disk, writer->last_lsn(), ckpt);
  disk.rebuild();
  disk.resize_device(9, 5000);

  auto recovered = Recovery::recover_disk(ckpt, &wal);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  const ReplayReport& report = recovered.value().report;
  EXPECT_EQ(report.watermark, 2u);
  EXPECT_EQ(report.records_skipped, 2u);
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(report.last_applied, 4u);
  EXPECT_TRUE(recovered.value().disk.config() == disk.config());
  EXPECT_TRUE(recovered.value().disk.scrub().clean());
}

TEST(Recovery, CheckpointRotatesAndFreshJournalContinues) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 20; ++b) disk.write(b, payload(b, 3));
  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  disk.set_journal(writer);
  disk.add_device({9, 4000, "x"});
  disk.fail_device(3);

  std::stringstream ckpt;
  std::stringstream fresh;
  const Lsn watermark = checkpoint(disk, *writer, ckpt, fresh);
  EXPECT_EQ(watermark, 2u);
  disk.rebuild();  // LSN 3 lands in the fresh journal only

  auto recovered = Recovery::recover_disk(ckpt, &fresh);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  EXPECT_EQ(recovered.value().report.records_applied, 1u);
  EXPECT_EQ(recovered.value().report.records_skipped, 0u);
  EXPECT_EQ(recovered.value().report.last_applied, 3u);
  EXPECT_TRUE(recovered.value().disk.config() == disk.config());
  EXPECT_TRUE(recovered.value().disk.scrub().clean());
}

TEST(Recovery, NullJournalRestoresBareSnapshot) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  disk.write(1, payload(1, 4));
  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);
  auto recovered = Recovery::recover_disk(ckpt, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  EXPECT_EQ(recovered.value().disk.read(1), payload(1, 4));
  EXPECT_EQ(recovered.value().report.records_applied, 0u);
}

TEST(Recovery, ReplayRejectsMidReshapeTarget) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 30; ++b) disk.write(b, payload(b, 5));
  ClusterConfig next = disk.config();
  next.add_device({9, 2500, ""});
  disk.begin_reshape(next);
  ASSERT_TRUE(disk.reshaping());

  std::stringstream wal;
  JournalWriter writer(wal);
  ASSERT_TRUE(writer.append(make_rebuild()).ok());
  auto replayed = Recovery::replay(disk, 0, wal);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, ErrorCode::kReshapeInProgress);
}

TEST(Recovery, StrictModeTurnsTornTailIntoError) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);

  std::stringstream wal;
  JournalWriter writer(wal);
  ASSERT_TRUE(writer.append(make_fail_device(5)).ok());
  ASSERT_TRUE(writer.append(make_rebuild()).ok());
  const std::string torn = wal.str().substr(0, wal.str().size() - 3);

  {
    std::stringstream in(torn);
    auto lax = Recovery::recover_disk(ckpt, &in);
    ASSERT_TRUE(lax.ok()) << lax.error().message;
    EXPECT_TRUE(lax.value().report.tail_corrupt);
    EXPECT_EQ(lax.value().report.records_applied, 1u);
    EXPECT_NE(lax.value().report.tail_error.find("lsn=2"),
              std::string::npos);
  }
  {
    ckpt.clear();
    ckpt.seekg(0);
    std::stringstream in(torn);
    auto strict = Recovery::recover_disk(ckpt, &in, {.strict = true});
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.error().code, ErrorCode::kCorruption);
  }
}

TEST(Recovery, ApplyErrorNamesTheRecord) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);
  std::stringstream wal;
  JournalWriter writer(wal);
  ASSERT_TRUE(writer.append(make_remove_device(999)).ok());

  auto recovered = Recovery::recover_disk(ckpt, &wal);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.error().code, ErrorCode::kNotFound);
  EXPECT_NE(recovered.error().message.find("record lsn=1"),
            std::string::npos);
  EXPECT_NE(recovered.error().message.find("remove-device"),
            std::string::npos);
}

TEST(Recovery, PoolRecordAgainstDiskIsTypedError) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);
  std::stringstream wal;
  JournalWriter writer(wal);
  ASSERT_TRUE(
      writer.append(make_create_volume("v", "mirror(k=2)",
                                       PlacementKind::kRedundantShare))
          .ok());
  auto recovered = Recovery::recover_disk(ckpt, &wal);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(recovered.error().message.find("pool record"), std::string::npos);
}

TEST(Recovery, PoolLifecycleReplaysToIdenticalState) {
  StoragePool pool(base_config());
  pool.create_volume("keep", std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 40; ++b) {
    pool.volume("keep").write(b, payload(b, 6));
  }
  std::stringstream ckpt;
  write_checkpoint(pool, 0, ckpt);
  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  pool.set_journal(writer);

  pool.add_device({9, 4000, "late"});
  pool.create_volume("scratch", std::make_shared<ReedSolomonScheme>(3, 2),
                     PlacementKind::kRoundRobin);
  pool.resize_device(9, 5000);
  pool.set_volume_strategy("keep", PlacementKind::kFastRedundantShare);
  pool.set_volume_scheme("keep", std::make_shared<MirroringScheme>(3));
  pool.fail_device(5);
  pool.rebuild();
  pool.drop_volume("scratch");

  auto recovered = Recovery::recover_pool(ckpt, &wal);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  StoragePool& twin = recovered.value().pool;
  EXPECT_EQ(twin.volume_count(), pool.volume_count());
  EXPECT_TRUE(twin.config() == pool.config());
  EXPECT_FALSE(twin.has_volume("scratch"));
  EXPECT_EQ(twin.volume("keep").scheme().name(), "mirror(k=3)");
  EXPECT_EQ(twin.volume("keep").placement_kind(),
            PlacementKind::kFastRedundantShare);
  for (std::uint64_t b = 0; b < 40; ++b) {
    EXPECT_EQ(twin.volume("keep").read(b), payload(b, 6));
  }
  EXPECT_TRUE(twin.volume("keep").scrub().clean());
}

TEST(Recovery, FileStoreMutationsReplayByteIdentical) {
  FileStore store(
      VirtualDisk(base_config(), std::make_shared<MirroringScheme>(2)), 64);
  store.put("seed", payload(1, 7));
  std::stringstream ckpt;
  write_checkpoint(store, 0, ckpt);
  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  store.set_journal(writer);

  // Content mutations interleaved with topology: remove frees blocks the
  // next put re-allocates, so replay must reproduce the allocator walk.
  store.put("a", payload(2, 7));
  store.put("b", payload(3, 7));
  ASSERT_TRUE(store.remove("a"));
  store.put("c", payload(4, 7));
  store.put("b", payload(5, 7));  // replace
  store.disk().add_device({9, 4000, "late"});
  store.disk().fail_device(5);
  store.disk().rebuild();

  auto recovered = Recovery::recover_file_store(ckpt, &wal);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  FileStore& twin = recovered.value().store;
  EXPECT_EQ(twin.file_count(), store.file_count());
  EXPECT_FALSE(twin.contains("a"));
  EXPECT_EQ(twin.get("seed"), store.get("seed"));
  EXPECT_EQ(twin.get("b"), store.get("b"));
  EXPECT_EQ(twin.get("c"), store.get("c"));
  EXPECT_TRUE(twin.disk().config() == store.disk().config());
  EXPECT_TRUE(twin.disk().scrub().clean());
}

TEST(Recovery, FilePutFingerprintMismatchIsCorruption) {
  FileStore store(
      VirtualDisk(base_config(), std::make_shared<MirroringScheme>(2)), 64);
  std::stringstream ckpt;
  write_checkpoint(store, 0, ckpt);

  Record forged = make_file_put("evil", payload(1, 8));
  forged.content_hash ^= 1;  // payload no longer matches its fingerprint
  std::stringstream wal;
  JournalWriter writer(wal);
  ASSERT_TRUE(writer.append(forged).ok());

  auto recovered = Recovery::recover_file_store(ckpt, &wal);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.error().code, ErrorCode::kCorruption);
  EXPECT_NE(recovered.error().message.find("fingerprint mismatch"),
            std::string::npos);
}

TEST(Recovery, CorruptCheckpointBodyIsCorruption) {
  VirtualDisk disk(base_config(), std::make_shared<MirroringScheme>(2));
  disk.write(1, payload(1, 9));
  std::stringstream full;
  write_checkpoint(disk, 0, full);
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  auto recovered = Recovery::recover_disk(truncated, nullptr);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.error().code, ErrorCode::kCorruption);
  EXPECT_NE(recovered.error().message.find("checkpoint"), std::string::npos);
}

}  // namespace
}  // namespace rds::journal
