#include "src/sim/movement.hpp"

#include <gtest/gtest.h>

#include "src/core/redundant_share.hpp"
#include "src/sim/scenario.hpp"

namespace rds {
namespace {

/// Fixed-table strategy for precise movement accounting.
class TableStrategy final : public ReplicationStrategy {
 public:
  TableStrategy(std::vector<std::vector<DeviceId>> table, unsigned k)
      : table_(std::move(table)), k_(k) {}
  void place(std::uint64_t a, std::span<DeviceId> out) const override {
    const auto& row = table_.at(a);
    std::copy(row.begin(), row.end(), out.begin());
  }
  [[nodiscard]] unsigned replication() const override { return k_; }
  [[nodiscard]] std::string name() const override { return "table"; }
  [[nodiscard]] std::size_t device_count() const override { return 0; }

 private:
  std::vector<std::vector<DeviceId>> table_;
  unsigned k_;
};

TEST(Movement, IdenticalMapsMoveNothing) {
  const TableStrategy s({{1, 2}, {2, 3}, {3, 1}}, 2);
  const BlockMap a(s, 3), b(s, 3);
  const MovementReport r = diff_placements(a, b);
  EXPECT_EQ(r.moved_set, 0u);
  EXPECT_EQ(r.moved_indexed, 0u);
  EXPECT_EQ(r.optimal_moves, 0u);
  EXPECT_EQ(r.total_copies, 6u);
  EXPECT_EQ(r.moved_set_fraction(), 0.0);
}

TEST(Movement, SwappedCopiesCountIndexedNotSet) {
  // Ball 0's copies swap devices: no data moves for mirrors (set), but both
  // fragments move for erasure codes (indexed).
  const TableStrategy before({{1, 2}}, 2);
  const TableStrategy after({{2, 1}}, 2);
  const MovementReport r =
      diff_placements(BlockMap(before, 1), BlockMap(after, 1));
  EXPECT_EQ(r.moved_set, 0u);
  EXPECT_EQ(r.moved_indexed, 2u);
  EXPECT_EQ(r.optimal_moves, 0u);
}

TEST(Movement, SimpleMoveCounts) {
  const TableStrategy before({{1, 2}, {1, 3}}, 2);
  const TableStrategy after({{1, 2}, {1, 4}}, 2);
  const MovementReport r =
      diff_placements(BlockMap(before, 2), BlockMap(after, 2));
  EXPECT_EQ(r.moved_set, 1u);      // device 4 newly holds ball 1
  EXPECT_EQ(r.moved_indexed, 1u);  // slot 1 of ball 1 changed
  EXPECT_EQ(r.optimal_moves, 1u);  // device 4 gained one copy
  EXPECT_DOUBLE_EQ(r.competitive_set(), 1.0);
}

TEST(Movement, OptimalMovesIsDistributionDelta) {
  // Two balls trade places between devices: per-device counts unchanged,
  // optimal lower bound 0, but real movement happened.
  const TableStrategy before({{1, 2}, {3, 4}}, 2);
  const TableStrategy after({{3, 2}, {1, 4}}, 2);
  const MovementReport r =
      diff_placements(BlockMap(before, 2), BlockMap(after, 2));
  EXPECT_EQ(r.moved_set, 2u);
  EXPECT_EQ(r.optimal_moves, 0u);
  EXPECT_EQ(r.competitive_set(), 0.0);  // defined as 0 when optimal is 0
}

TEST(Movement, MismatchedMapsRejected) {
  const TableStrategy s2({{1, 2}}, 2);
  const TableStrategy s3({{1, 2, 3}}, 3);
  const BlockMap a(s2, 1);
  const BlockMap b(s3, 1);
  EXPECT_THROW((void)diff_placements(a, b), std::invalid_argument);

  const TableStrategy s8(std::vector<std::vector<DeviceId>>(8, {1, 2}), 2);
  const BlockMap c(s8, 1, /*base=*/0);
  const BlockMap d(s8, 1, /*base=*/7);
  EXPECT_THROW((void)diff_placements(c, d), std::invalid_argument);
}

TEST(Movement, ReplacedPerUsedMatchesPaperMetric) {
  const TableStrategy before({{1, 2}, {1, 3}, {2, 3}}, 2);
  const TableStrategy after({{1, 9}, {1, 9}, {2, 3}}, 2);
  const BlockMap mb(before, 3), ma(after, 3);
  const MovementReport r = diff_placements(mb, ma);
  // Device 9 holds 2 copies after; 2 copies moved -> ratio 1.
  EXPECT_EQ(r.moved_set, 2u);
  EXPECT_DOUBLE_EQ(replaced_per_used(r, mb, ma, 9), 1.0);
  // Device 3 still holds one copy after -> the after-count is used.
  EXPECT_DOUBLE_EQ(replaced_per_used(r, mb, ma, 3), 2.0);
  EXPECT_EQ(replaced_per_used(r, mb, ma, 777), 0.0);
}

TEST(Movement, ReplacedPerUsedForDrainedDevice) {
  // A device fully drained in `after` falls back to its before-count.
  const TableStrategy before({{1, 3}, {2, 3}}, 2);
  const TableStrategy after({{1, 9}, {2, 9}}, 2);
  const BlockMap mb(before, 2), ma(after, 2);
  const MovementReport r = diff_placements(mb, ma);
  EXPECT_EQ(r.moved_set, 2u);
  EXPECT_DOUBLE_EQ(replaced_per_used(r, mb, ma, 3), 1.0);
}

TEST(Movement, EndToEndWithRedundantShare) {
  const ClusterConfig before = paper_heterogeneous_base();
  const EditResult edit =
      apply_edit(before, EditKind::kAddBiggest, 50, 100'000);
  const RedundantShare sb(before, 2);
  const RedundantShare sa(edit.config, 2);
  const BlockMap mb(sb, 20'000), ma(sa, 20'000);
  const MovementReport r = diff_placements(mb, ma);
  EXPECT_GT(r.moved_set, 0u);
  EXPECT_LE(r.moved_set, r.moved_indexed);
  EXPECT_GE(r.moved_set, r.optimal_moves / 2);  // sanity: same order
}

}  // namespace
}  // namespace rds
