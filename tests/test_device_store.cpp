#include "src/storage/device_store.hpp"

#include <gtest/gtest.h>

namespace rds {
namespace {

TEST(DeviceStore, WriteReadEraseCycle) {
  DeviceStore store({1, 4, "d"});
  const FragmentKey key{42, 0};
  EXPECT_FALSE(store.contains(key));
  store.write(key, {1, 2, 3});
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.used(), 1u);
  const auto payload = store.read(key);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(store.erase(key));
  EXPECT_FALSE(store.erase(key));
  EXPECT_EQ(store.used(), 0u);
}

TEST(DeviceStore, OverwriteKeepsUsage) {
  DeviceStore store({1, 2, "d"});
  store.write({1, 0}, {1});
  store.write({1, 0}, {2, 3});
  EXPECT_EQ(store.used(), 1u);
  EXPECT_EQ(store.read({1, 0})->size(), 2u);
}

TEST(DeviceStore, CapacityEnforced) {
  DeviceStore store({1, 2, "d"});
  store.write({1, 0}, {});
  store.write({2, 0}, {});
  EXPECT_THROW(store.write({3, 0}, {}), std::runtime_error);
  // Overwriting an existing key is fine at capacity.
  store.write({1, 0}, {9});
}

TEST(DeviceStore, DistinctFragmentsOfSameBlock) {
  DeviceStore store({1, 4, "d"});
  store.write({7, 0}, {0});
  store.write({7, 1}, {1});
  EXPECT_EQ(store.used(), 2u);
  EXPECT_NE(*store.read({7, 0}), *store.read({7, 1}));
}

TEST(DeviceStore, FailureSemantics) {
  DeviceStore store({1, 4, "d"});
  store.write({1, 0}, {5});
  store.fail();
  EXPECT_TRUE(store.failed());
  EXPECT_FALSE(store.read({1, 0}).has_value());
  EXPECT_FALSE(store.contains({1, 0}));
  EXPECT_THROW(store.write({2, 0}, {}), std::runtime_error);
  store.replace();
  EXPECT_FALSE(store.failed());
  EXPECT_EQ(store.used(), 0u);  // replacement is empty
  store.write({2, 0}, {1});
  EXPECT_TRUE(store.contains({2, 0}));
}

TEST(DeviceStore, DeviceAccessor) {
  const DeviceStore store({9, 100, "name"});
  EXPECT_EQ(store.device().uid, 9u);
  EXPECT_EQ(store.capacity(), 100u);
  EXPECT_EQ(store.device().name, "name");
}

}  // namespace
}  // namespace rds
