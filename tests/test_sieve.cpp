#include "src/placement/sieve.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig(
      {{1, 100, ""}, {2, 200, ""}, {3, 300, ""}, {4, 150, ""}, {5, 250, ""}});
}

TEST(Sieve, Deterministic) {
  const Sieve s(make_cluster());
  for (std::uint64_t a = 0; a < 500; ++a) EXPECT_EQ(s.place(a), s.place(a));
}

TEST(Sieve, ExactFairnessChiSquare) {
  // Rejection sampling accepts in exact proportion to the weights.
  const ClusterConfig config = make_cluster();
  const Sieve s(config);
  constexpr std::uint64_t kBalls = 150'000;
  std::vector<std::uint64_t> counts(config.size(), 0);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    ++counts[config.index_of(s.place(a)).value()];
  }
  std::vector<double> expected;
  for (std::size_t i = 0; i < config.size(); ++i) {
    expected.push_back(static_cast<double>(kBalls) *
                       config.relative_capacity(i));
  }
  EXPECT_LT(chi_square(counts, expected),
            chi_square_critical_999(config.size() - 1));
}

TEST(Sieve, ExpectedTrialsIsModest) {
  const Sieve s(make_cluster());
  // 5 devices in 16 slots (2n rounded up), w_max = 300, total = 1000:
  // expected trials = slots * w_max / total = 4.8.
  EXPECT_NEAR(s.expected_trials(), 4.8, 0.01);
}

TEST(Sieve, LimitedDisruptionOnAdd) {
  // Adding a device within the same power-of-two slot table only steals the
  // balls whose trial sequence hits the new slot.
  ClusterConfig before = make_cluster();
  ClusterConfig after = before;
  after.add_device({6, 200, ""});
  const Sieve sb(before, /*salt=*/1);
  const Sieve sa(after, /*salt=*/1);
  std::uint64_t moved = 0;
  constexpr std::uint64_t kBalls = 30'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    if (sb.place(a) != sa.place(a)) ++moved;
  }
  // New share is 200/1200 ~ 17%; allow overhead for earlier-trial captures,
  // but demand far less than a reshuffle.
  EXPECT_LT(moved, kBalls / 2);
  EXPECT_GT(moved, kBalls / 20);
}

TEST(Sieve, HandlesExtremeSkew) {
  // w_max dominating: everything lands on the heavy device, lookups still
  // terminate (acceptance for the heavy device is 1).
  const ClusterConfig config({{1, 1'000'000, ""}, {2, 1, ""}, {3, 1, ""}});
  const Sieve s(config);
  std::uint64_t big = 0;
  for (std::uint64_t a = 0; a < 5'000; ++a) {
    if (s.place(a) == 1) ++big;
  }
  EXPECT_GT(big, 4'950u);
}

TEST(Sieve, RejectsEmptyCluster) {
  EXPECT_THROW(Sieve(ClusterConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace rds
