#include "src/placement/static_placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig({{1, 100, ""}, {2, 100, ""}, {3, 100, ""}, {4, 100, ""}});
}

TEST(ModuloPlacement, CyclesThroughDevices) {
  const ModuloPlacement s(make_cluster());
  EXPECT_EQ(s.place(0), s.place(4));
  EXPECT_EQ(s.place(1), s.place(5));
  EXPECT_NE(s.place(0), s.place(1));
}

TEST(ModuloPlacement, UniformOverHomogeneousDevices) {
  const ModuloPlacement s(make_cluster());
  std::vector<int> counts(5, 0);
  for (std::uint64_t a = 0; a < 4000; ++a) ++counts[s.place(a)];
  for (int uid = 1; uid <= 4; ++uid) EXPECT_EQ(counts[uid], 1000);
}

TEST(ModuloPlacement, RejectsEmpty) {
  EXPECT_THROW(ModuloPlacement(ClusterConfig{}), std::invalid_argument);
}

TEST(RoundRobinStriping, CopiesAreDistinct) {
  const RoundRobinStriping s(make_cluster(), 3);
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < 1000; ++a) {
    s.place(a, out);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(std::ranges::adjacent_find(sorted), sorted.end());
  }
}

TEST(RoundRobinStriping, RejectsBadArguments) {
  EXPECT_THROW(RoundRobinStriping(make_cluster(), 0), std::invalid_argument);
  EXPECT_THROW(RoundRobinStriping(make_cluster(), 5), std::invalid_argument);
  const RoundRobinStriping s(make_cluster(), 2);
  std::vector<DeviceId> wrong(3);
  EXPECT_THROW(s.place(0, wrong), std::invalid_argument);
}

TEST(RoundRobinStriping, NearlyFullReshuffleOnGrowth) {
  // The motivating pathology: growing the array moves almost everything.
  ClusterConfig before = make_cluster();
  ClusterConfig after = before;
  after.add_device({5, 100, ""});
  const RoundRobinStriping sb(before, 2);
  const RoundRobinStriping sa(after, 2);
  std::uint64_t same = 0;
  constexpr std::uint64_t kBalls = 10'000;
  std::vector<DeviceId> ob(2), oa(2);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    sb.place(a, ob);
    sa.place(a, oa);
    if (ob == oa) ++same;
  }
  // Fewer than half the balls keep their placement (in fact ~1/5).
  EXPECT_LT(same, kBalls / 2);
}

}  // namespace
}  // namespace rds
