#include "src/placement/share.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig(
      {{1, 100, ""}, {2, 200, ""}, {3, 300, ""}, {4, 150, ""}, {5, 250, ""}});
}

TEST(Share, Deterministic) {
  const Share s(make_cluster());
  for (std::uint64_t a = 0; a < 200; ++a) EXPECT_EQ(s.place(a), s.place(a));
}

TEST(Share, AlwaysReturnsADevice) {
  // With the default stretch, every point of the circle is covered.
  const Share s(make_cluster());
  for (std::uint64_t a = 0; a < 20'000; ++a) {
    EXPECT_NE(s.place(a), kNoDevice);
  }
}

TEST(Share, AverageCoverageTracksStretch) {
  const Share s(make_cluster(), 8.0);
  EXPECT_NEAR(s.average_coverage(), 8.0, 0.75);
}

TEST(Share, ApproximateFairness) {
  const ClusterConfig config = make_cluster();
  const Share s(config);
  constexpr std::uint64_t kBalls = 100'000;
  std::vector<std::uint64_t> counts(config.size(), 0);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    ++counts[config.index_of(s.place(a)).value()];
  }
  std::vector<double> expected;
  for (std::size_t i = 0; i < config.size(); ++i) {
    expected.push_back(static_cast<double>(kBalls) *
                       config.relative_capacity(i));
  }
  // Share is (1+eps)-fair; the uniform sub-strategy over covering sets
  // introduces deviation that shrinks with stretch.  Generous bound.
  EXPECT_LT(max_relative_deviation(counts, expected), 0.15);
}

TEST(Share, HandlesDominantDevice) {
  // One device with >1/stretch of the capacity covers the whole circle.
  const ClusterConfig config({{1, 10'000, ""}, {2, 10, ""}, {3, 10, ""}});
  const Share s(config, 4.0);
  std::uint64_t big = 0;
  constexpr std::uint64_t kBalls = 20'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    if (s.place(a) == 1) ++big;
  }
  // The big device owns ~99.8% of capacity; under Share's uniform
  // sub-strategy it must still receive the overwhelming majority.
  EXPECT_GT(big, kBalls / 2);
}

TEST(Share, StretchDefaultGrowsWithN) {
  std::vector<Device> devices;
  for (std::uint64_t i = 0; i < 64; ++i) devices.push_back({i, 100, ""});
  const Share s(ClusterConfig(std::move(devices)));
  EXPECT_GT(s.stretch(), 3.0 * std::log(64.0));
}

TEST(Share, RejectsEmptyCluster) {
  EXPECT_THROW(Share(ClusterConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace rds
