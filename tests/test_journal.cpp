// Journal codec and writer/reader contract (src/journal/).
#include "src/journal/journal.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/journal/record.hpp"
#include "src/util/hash.hpp"

namespace rds::journal {
namespace {

Bytes bytes_of(std::initializer_list<std::uint8_t> xs) { return Bytes(xs); }

std::vector<Record> one_of_each() {
  std::vector<Record> records;
  records.push_back(make_add_device({7, 4000, "disk-7"}));
  records.push_back(make_remove_device(3));
  records.push_back(make_resize_device(4, 9000));
  records.push_back(make_fail_device(5));
  records.push_back(make_rebuild());
  records.push_back(make_set_strategy("scratch", PlacementKind::kRoundRobin));
  records.push_back(make_set_scheme("", "reed-solomon(4+2)"));
  records.push_back(make_create_volume("archive", "mirror(k=3)",
                                       PlacementKind::kFastRedundantShare));
  records.push_back(make_drop_volume("scratch"));
  const Bytes content = bytes_of({1, 2, 3, 4, 5});
  records.push_back(make_file_put("report.txt", content));
  records.push_back(make_file_remove("report.txt"));
  return records;
}

TEST(JournalRecord, EncodeDecodeRoundTripsEveryType) {
  for (Record rec : one_of_each()) {
    rec.lsn = 42;  // the writer normally stamps this
    const Bytes payload = encode_record(rec);
    auto decoded = decode_record(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value(), rec) << to_string(rec.type);
  }
}

TEST(JournalRecord, FilePutCarriesContentFingerprint) {
  const Bytes content = bytes_of({9, 8, 7});
  const Record rec = make_file_put("f", content);
  EXPECT_EQ(rec.content, content);
  EXPECT_EQ(rec.content_hash, hash_bytes(content));
}

TEST(JournalRecord, DecodeRejectsTruncatedPayload) {
  Record rec = make_add_device({1, 100, "a"});
  rec.lsn = 1;
  const Bytes payload = encode_record(rec);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = decode_record(
        std::span<const std::uint8_t>(payload.data(), cut));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.error().code, ErrorCode::kCorruption);
  }
}

TEST(JournalRecord, DecodeRejectsUnknownTypeTag) {
  Record rec = make_rebuild();
  rec.lsn = 1;
  Bytes payload = encode_record(rec);
  payload[8] = 0xEE;  // the type tag follows the 8-byte LSN
  auto decoded = decode_record(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kCorruption);
  EXPECT_NE(decoded.error().message.find("unknown record type"),
            std::string::npos);
}

TEST(JournalRecord, DecodeRejectsTrailingBytes) {
  Record rec = make_remove_device(2);
  rec.lsn = 1;
  Bytes payload = encode_record(rec);
  payload.push_back(0);
  auto decoded = decode_record(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error().message.find("trailing bytes"),
            std::string::npos);
}

TEST(JournalWriter, AppendsAreRoundTrippableAndLsnsContiguous) {
  std::stringstream stream;
  JournalWriter writer(stream);
  const std::vector<Record> records = one_of_each();
  Lsn expect = 1;
  for (const Record& rec : records) {
    auto lsn = writer.append(rec);
    ASSERT_TRUE(lsn.ok()) << lsn.error().message;
    EXPECT_EQ(lsn.value(), expect++);
  }
  EXPECT_EQ(writer.last_lsn(), records.size());
  EXPECT_TRUE(writer.healthy());

  JournalReader reader(stream);
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto next = reader.next();
    ASSERT_TRUE(next.ok()) << next.error().message;
    ASSERT_TRUE(next.value().has_value());
    Record want = records[i];
    want.lsn = static_cast<Lsn>(i + 1);
    EXPECT_EQ(*next.value(), want);
  }
  auto end = reader.next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end.value().has_value());
  EXPECT_EQ(reader.start_lsn(), 1u);
  // Clean EOF is stable, not sticky corruption.
  EXPECT_TRUE(reader.next().ok());
}

TEST(JournalWriter, StartLsnZeroIsPromotedToOne) {
  std::stringstream stream;
  JournalWriter writer(stream, {.start_lsn = 0});
  EXPECT_EQ(writer.last_lsn(), 0u);
  auto lsn = writer.append(make_rebuild());
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 1u);
}

TEST(JournalWriter, SyncHookFiresOncePerAppend) {
  std::stringstream stream;
  int syncs = 0;
  JournalWriter writer(stream, {.sync_hook = [&] { ++syncs; }});
  ASSERT_TRUE(writer.append(make_rebuild()).ok());
  ASSERT_TRUE(writer.append(make_fail_device(1)).ok());
  EXPECT_EQ(syncs, 2);
}

TEST(JournalWriter, StreamFailureIsStickyUntilRotate) {
  std::stringstream stream;
  JournalWriter writer(stream);
  ASSERT_TRUE(writer.append(make_rebuild()).ok());

  stream.setstate(std::ios::badbit);  // the device under the journal dies
  auto failed = writer.append(make_fail_device(1));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kIoError);
  EXPECT_FALSE(writer.healthy());

  // Still refused after the stream "recovers": a half-written frame must
  // not be followed by more frames.
  stream.clear();
  auto refused = writer.append(make_rebuild());
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error().message.find("rotate()"), std::string::npos);

  std::stringstream fresh;
  writer.rotate(fresh);
  EXPECT_TRUE(writer.healthy());
  auto lsn = writer.append(make_rebuild());
  ASSERT_TRUE(lsn.ok());

  // The fresh journal's header continues the LSN sequence.
  JournalReader reader(fresh);
  auto rec = reader.next();
  ASSERT_TRUE(rec.ok()) << rec.error().message;
  ASSERT_TRUE(rec.value().has_value());
  EXPECT_EQ(rec.value()->lsn, lsn.value());
  EXPECT_EQ(reader.start_lsn(), lsn.value());
}

TEST(JournalReader, RejectsBadMagic) {
  std::stringstream stream("NOTAWAL0xxxxxxxxxxxx");
  JournalReader reader(stream);
  auto next = reader.next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, ErrorCode::kCorruption);
  EXPECT_NE(next.error().message.find("bad magic"), std::string::npos);
}

TEST(JournalReader, CorruptionIsSticky) {
  std::stringstream stream;
  JournalWriter writer(stream);
  ASSERT_TRUE(writer.append(make_rebuild()).ok());
  ASSERT_TRUE(writer.append(make_fail_device(9)).ok());

  std::string bytes = stream.str();
  bytes.back() ^= 0x01;  // corrupt the second frame's payload
  std::stringstream damaged(bytes);
  JournalReader reader(damaged);
  ASSERT_TRUE(reader.next().ok());  // frame 1 is intact
  auto second = reader.next();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kCorruption);
  // Every later call repeats the same error.
  auto again = reader.next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().message, second.error().message);
}

TEST(JournalReader, DetectsLsnDiscontinuity) {
  // Two journals, each starting at LSN 1: concatenating frame 1 of one
  // after frame 1+2 of another yields a replayed LSN.
  std::stringstream a;
  JournalWriter wa(a);
  ASSERT_TRUE(wa.append(make_rebuild()).ok());
  std::stringstream b;
  JournalWriter wb(b, {.write_header = false});
  ASSERT_TRUE(wb.append(make_rebuild()).ok());

  std::stringstream spliced(a.str() + b.str());
  JournalReader reader(spliced);
  ASSERT_TRUE(reader.next().ok());
  auto replayed = reader.next();
  ASSERT_FALSE(replayed.ok());
  EXPECT_NE(replayed.error().message.find("LSN discontinuity"),
            std::string::npos);
}

}  // namespace
}  // namespace rds::journal
