#include "src/placement/rendezvous.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/stats.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig({{1, 100, ""}, {2, 200, ""}, {3, 300, ""}, {4, 400, ""}});
}

TEST(Rendezvous, Deterministic) {
  const WeightedRendezvous s(make_cluster());
  for (std::uint64_t a = 0; a < 100; ++a) {
    EXPECT_EQ(s.place(a), s.place(a));
  }
}

TEST(Rendezvous, SaltsAreIndependent) {
  const WeightedRendezvous s0(make_cluster(), 0);
  const WeightedRendezvous s1(make_cluster(), 1);
  int same = 0;
  for (std::uint64_t a = 0; a < 1000; ++a) {
    if (s0.place(a) == s1.place(a)) ++same;
  }
  // P(same) = sum c_i^2 = 0.3 for weights 1:2:3:4.
  EXPECT_NEAR(same, 300, 60);
}

TEST(Rendezvous, ExactFairnessChiSquare) {
  const ClusterConfig config = make_cluster();
  const WeightedRendezvous s(config);
  constexpr std::uint64_t kBalls = 200'000;
  std::vector<std::uint64_t> counts(config.size(), 0);
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    const DeviceId uid = s.place(a);
    ++counts[config.index_of(uid).value()];
  }
  std::vector<double> expected;
  for (std::size_t i = 0; i < config.size(); ++i) {
    expected.push_back(static_cast<double>(kBalls) * config.relative_capacity(i));
  }
  EXPECT_LT(chi_square(counts, expected),
            chi_square_critical_999(config.size() - 1));
}

TEST(Rendezvous, MinimalDisruptionOnAdd) {
  // 1-competitive adaptivity: adding a device moves exactly the balls the
  // new device wins; nothing reshuffles between old devices.
  ClusterConfig before = make_cluster();
  ClusterConfig after = before;
  after.add_device({5, 500, ""});
  const WeightedRendezvous sb(before);
  const WeightedRendezvous sa(after);
  constexpr std::uint64_t kBalls = 20'000;
  std::uint64_t moved = 0, to_new = 0;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    const DeviceId db = sb.place(a);
    const DeviceId da = sa.place(a);
    if (db != da) {
      ++moved;
      EXPECT_EQ(da, 5u) << "ball moved between two old devices";
      ++to_new;
    }
  }
  EXPECT_EQ(moved, to_new);
  // New device share = 500/1500 = 1/3.
  EXPECT_NEAR(static_cast<double>(to_new), kBalls / 3.0, 0.05 * kBalls);
}

TEST(Rendezvous, MinimalDisruptionOnRemove) {
  ClusterConfig before = make_cluster();
  ClusterConfig after = before;
  after.remove_device(4);
  const WeightedRendezvous sb(before);
  const WeightedRendezvous sa(after);
  for (std::uint64_t a = 0; a < 20'000; ++a) {
    const DeviceId db = sb.place(a);
    if (db != 4) {
      EXPECT_EQ(sa.place(a), db) << "ball not on the removed device moved";
    }
  }
}

TEST(RendezvousDraw, IgnoresNonPositiveWeights) {
  const std::vector<Candidate> cands{{1, 0.0}, {2, -3.0}, {3, 5.0}};
  for (std::uint64_t a = 0; a < 100; ++a) {
    EXPECT_EQ(rendezvous_draw(a, 0, cands), 3u);
  }
}

TEST(RendezvousDraw, EmptyMeansNoDevice) {
  EXPECT_EQ(rendezvous_draw(1, 0, std::vector<Candidate>{}), kNoDevice);
  EXPECT_EQ(rendezvous_draw(1, 0, std::vector<Candidate>{{1, 0.0}}),
            kNoDevice);
}

TEST(RendezvousTopK, DistinctAndConsistentWithSingleDraw) {
  const std::vector<Candidate> cands{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < 500; ++a) {
    rendezvous_top_k(a, 0, cands, out);
    EXPECT_NE(out[0], out[1]);
    EXPECT_NE(out[0], out[2]);
    EXPECT_NE(out[1], out[2]);
    // The first of the top-k is the single-draw winner.
    EXPECT_EQ(out[0], rendezvous_draw(a, 0, cands));
  }
}

TEST(RendezvousTopK, ThrowsWhenTooFewCandidates) {
  const std::vector<Candidate> cands{{1, 10}, {2, 0.0}};
  std::vector<DeviceId> out(2);
  EXPECT_THROW(rendezvous_top_k(7, 0, cands, out), std::invalid_argument);
}

TEST(RendezvousTopK, SequentialDrawDistribution) {
  // Second winner given first == successive weighted draw without
  // replacement: for weights {60, 30, 10}, P(second = B | first = A)
  // = 30/40 = 0.75.
  const std::vector<Candidate> cands{{1, 60}, {2, 30}, {3, 10}};
  std::vector<DeviceId> out(2);
  std::uint64_t first_a = 0, second_b_given_a = 0;
  for (std::uint64_t a = 0; a < 100'000; ++a) {
    rendezvous_top_k(a, 0, cands, out);
    if (out[0] == 1) {
      ++first_a;
      if (out[1] == 2) ++second_b_given_a;
    }
  }
  const double p = static_cast<double>(second_b_given_a) /
                   static_cast<double>(first_a);
  EXPECT_NEAR(p, 0.75, 0.02);
}

}  // namespace
}  // namespace rds
