// Typed edge-case sweep: every ReplicationStrategy implementation through
// the same battery of boundary conditions (k == n, single redundancy group,
// extreme addresses, extreme capacity skew).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/static_placement.hpp"
#include "src/placement/trivial_replication.hpp"

namespace rds {
namespace {

template <typename Strategy>
class ReplicatedEdgeCases : public ::testing::Test {
 public:
  static Strategy make(const ClusterConfig& config, unsigned k) {
    return Strategy(config, k);
  }
};

using Strategies =
    ::testing::Types<RedundantShare, FastRedundantShare,
                     PrecomputedRedundantShare, TrivialReplication,
                     RoundRobinStriping>;
TYPED_TEST_SUITE(ReplicatedEdgeCases, Strategies);

ClusterConfig skewed_cluster() {
  return ClusterConfig({{1, 1'000'000'000, ""},
                        {2, 1'000'000, ""},
                        {3, 1'000, ""},
                        {4, 1, ""}});
}

void expect_valid_placement(const ReplicationStrategy& s,
                            std::uint64_t address) {
  std::vector<DeviceId> out(s.replication());
  s.place(address, out);
  std::vector<DeviceId> sorted = out;
  std::ranges::sort(sorted);
  EXPECT_EQ(std::ranges::adjacent_find(sorted), sorted.end())
      << "duplicate device at address " << address;
  for (const DeviceId d : out) EXPECT_NE(d, kNoDevice);
}

TYPED_TEST(ReplicatedEdgeCases, KEqualsNUsesEveryDevice) {
  const ClusterConfig config({{1, 10, ""}, {2, 20, ""}, {3, 30, ""}});
  const auto s = TestFixture::make(config, 3);
  std::vector<DeviceId> out(3);
  for (std::uint64_t a = 0; a < 200; ++a) {
    s.place(a, out);
    std::vector<DeviceId> sorted = out;
    std::ranges::sort(sorted);
    EXPECT_EQ(sorted, (std::vector<DeviceId>{1, 2, 3}));
  }
}

TYPED_TEST(ReplicatedEdgeCases, TwoDevicesMirrored) {
  const ClusterConfig config({{7, 5, ""}, {9, 5, ""}});
  const auto s = TestFixture::make(config, 2);
  std::vector<DeviceId> out(2);
  for (std::uint64_t a = 0; a < 100; ++a) {
    s.place(a, out);
    EXPECT_NE(out[0], out[1]);
  }
}

TYPED_TEST(ReplicatedEdgeCases, ExtremeAddresses) {
  const ClusterConfig config(
      {{1, 100, ""}, {2, 100, ""}, {3, 100, ""}, {4, 100, ""}});
  const auto s = TestFixture::make(config, 2);
  for (const std::uint64_t address :
       {std::uint64_t{0}, std::uint64_t{1},
        std::numeric_limits<std::uint64_t>::max(),
        std::numeric_limits<std::uint64_t>::max() - 1,
        std::uint64_t{0x8000000000000000ULL}}) {
    expect_valid_placement(s, address);
  }
}

TYPED_TEST(ReplicatedEdgeCases, ExtremeCapacitySkew) {
  // Nine orders of magnitude between biggest and smallest device.
  const auto s = TestFixture::make(skewed_cluster(), 2);
  for (std::uint64_t a = 0; a < 2000; ++a) {
    expect_valid_placement(s, a);
  }
}

TYPED_TEST(ReplicatedEdgeCases, DeterministicAcrossInstances) {
  // Two independently constructed instances agree (nothing hidden in
  // global state).
  const ClusterConfig config({{1, 10, ""}, {2, 30, ""}, {3, 60, ""}});
  const auto a = TestFixture::make(config, 2);
  const auto b = TestFixture::make(config, 2);
  std::vector<DeviceId> oa(2), ob(2);
  for (std::uint64_t x = 0; x < 500; ++x) {
    a.place(x, oa);
    b.place(x, ob);
    EXPECT_EQ(oa, ob);
  }
}

TYPED_TEST(ReplicatedEdgeCases, CanonicalOrderInvariance) {
  // The same devices presented in any order produce identical placements
  // (ClusterConfig canonicalizes).
  const ClusterConfig forward({{1, 100, ""}, {2, 200, ""}, {3, 300, ""}});
  const ClusterConfig backward({{3, 300, ""}, {2, 200, ""}, {1, 100, ""}});
  const auto a = TestFixture::make(forward, 2);
  const auto b = TestFixture::make(backward, 2);
  std::vector<DeviceId> oa(2), ob(2);
  for (std::uint64_t x = 0; x < 500; ++x) {
    a.place(x, oa);
    b.place(x, ob);
    EXPECT_EQ(oa, ob);
  }
}

// k = 1 degenerates to a single fair draw for the hash-based strategies
// (striping is excluded: k=1 striping is just modulo).
template <typename Strategy>
class SingleCopyDegeneration : public ::testing::Test {};
using HashStrategies = ::testing::Types<RedundantShare, FastRedundantShare,
                                        PrecomputedRedundantShare,
                                        TrivialReplication>;
TYPED_TEST_SUITE(SingleCopyDegeneration, HashStrategies);

TYPED_TEST(SingleCopyDegeneration, KEqualsOneIsFair) {
  const ClusterConfig config({{1, 600, ""}, {2, 300, ""}, {3, 100, ""}});
  const TypeParam s(config, 1);
  std::uint64_t counts[4] = {};
  std::vector<DeviceId> out(1);
  constexpr std::uint64_t kBalls = 60'000;
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    s.place(a, out);
    ++counts[out[0]];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / kBalls, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kBalls, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / kBalls, 0.1, 0.02);
}

}  // namespace
}  // namespace rds
