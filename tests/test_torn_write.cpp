// Exhaustive torn-write matrix: a journal damaged at EVERY byte boundary
// (truncation) and every byte (bit flip) must recover the valid prefix and
// report -- never crash on -- the damaged tail (src/journal/torn_write.hpp).
#include "src/journal/torn_write.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include "src/journal/journal.hpp"
#include "src/journal/recovery.hpp"
#include "src/storage/snapshot.hpp"
#include "src/util/random.hpp"

namespace rds::journal {
namespace {

ClusterConfig small_config() {
  return ClusterConfig({{1, 2000, "a"},
                        {2, 1800, "b"},
                        {3, 1500, "c"},
                        {4, 1200, "d"},
                        {5, 1000, "e"}});
}

Bytes payload(std::uint64_t block) {
  Bytes b(48);
  Xoshiro256 rng(block * 131 + 7);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

/// Everything observable about a disk's recovered state, for prefix
/// comparison across the damage matrix.
struct Fingerprint {
  std::vector<std::pair<DeviceId, std::uint64_t>> devices;
  std::string scheme;
  PlacementKind kind = PlacementKind::kRedundantShare;
  std::vector<Bytes> blocks;
  bool clean = false;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint_of(VirtualDisk& disk, std::uint64_t block_count) {
  Fingerprint fp;
  for (const Device& d : disk.config().devices()) {
    fp.devices.emplace_back(d.uid, d.capacity);
  }
  std::sort(fp.devices.begin(), fp.devices.end());
  fp.scheme = disk.scheme().name();
  fp.kind = disk.placement_kind();
  for (std::uint64_t b = 0; b < block_count; ++b) {
    fp.blocks.push_back(disk.read(b));
  }
  fp.clean = disk.scrub().clean();
  return fp;
}

/// The deterministic damage scenario: a checkpointed disk plus a journal of
/// admin records, with the byte offset where each durable prefix ends.
struct Scenario {
  std::string checkpoint;
  std::string wal;                          ///< the intact journal bytes
  std::vector<std::size_t> boundaries;      ///< offsets after header, frame 1, ...
  std::vector<Fingerprint> prefix_states;   ///< state after applying 0..n records
  std::uint64_t block_count = 0;
};

Scenario build_scenario() {
  Scenario s;
  s.block_count = 12;
  VirtualDisk disk(small_config(), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < s.block_count; ++b) disk.write(b, payload(b));

  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);
  s.checkpoint = ckpt.str();

  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  disk.set_journal(writer);
  s.boundaries.push_back(static_cast<std::size_t>(wal.tellp()));  // header end

  const std::vector<std::function<void(VirtualDisk&)>> ops = {
      [](VirtualDisk& d) { d.add_device({9, 2500, "late"}); },
      [](VirtualDisk& d) { d.fail_device(3); },
      [](VirtualDisk& d) { d.rebuild(); },
      [](VirtualDisk& d) { d.resize_device(9, 3000); },
      [](VirtualDisk& d) { d.set_strategy(PlacementKind::kRoundRobin); },
  };
  for (const auto& op : ops) {
    op(disk);
    s.boundaries.push_back(static_cast<std::size_t>(wal.tellp()));
  }
  s.wal = wal.str();
  EXPECT_EQ(s.boundaries.back(), s.wal.size());

  // Shadow states: the expected disk after each durable prefix.
  for (std::size_t n = 0; n <= ops.size(); ++n) {
    std::stringstream in(s.checkpoint);
    auto header = read_checkpoint_header(in);
    EXPECT_TRUE(header.ok());
    VirtualDisk shadow = Snapshot::load_disk(in);
    for (std::size_t i = 0; i < n; ++i) ops[i](shadow);
    s.prefix_states.push_back(fingerprint_of(shadow, s.block_count));
  }
  return s;
}

/// Frames (not the header) fully durable below `offset`.
std::size_t frames_below(const Scenario& s, std::size_t offset) {
  std::size_t n = 0;
  for (std::size_t i = 1; i < s.boundaries.size(); ++i) {
    if (s.boundaries[i] <= offset) n = i;
  }
  return n;
}

TEST(TornWriteStream, TruncatesSilently) {
  std::stringstream inner;
  TornWriteStream torn(inner, {.fail_offset = 4});
  torn << "0123456789";
  torn.flush();
  EXPECT_TRUE(torn.good()) << "the fault model: the writer never learns";
  EXPECT_EQ(torn.bytes_offered(), 10u);
  EXPECT_EQ(inner.str(), "0123");
}

TEST(TornWriteStream, FlipsExactlyOneBit) {
  std::stringstream inner;
  TornWriteStream torn(
      inner, {.fail_offset = 2, .mode = TornWriteStream::Mode::kBitFlip,
              .bit = 5});
  torn << "abcdef";
  torn.flush();
  std::string expect = "abcdef";
  expect[2] = static_cast<char>(expect[2] ^ (1u << 5));
  EXPECT_EQ(inner.str(), expect);
}

TEST(TornWriteMatrix, EveryTruncationPointRecoversTheDurablePrefix) {
  const Scenario s = build_scenario();
  const std::size_t header_end = s.boundaries.front();

  for (std::size_t cut = 0; cut <= s.wal.size(); ++cut) {
    std::stringstream inner;
    TornWriteStream torn(inner, {.fail_offset = cut});
    torn.write(s.wal.data(), static_cast<std::streamsize>(s.wal.size()));
    torn.flush();
    ASSERT_EQ(inner.str().size(), cut);

    std::stringstream ckpt(s.checkpoint);
    auto recovered = Recovery::recover_disk(ckpt, &inner);
    ASSERT_TRUE(recovered.ok())
        << "cut=" << cut << ": " << recovered.error().message;

    const std::size_t want = frames_below(s, cut);
    const ReplayReport& report = recovered.value().report;
    EXPECT_EQ(report.records_applied, want) << "cut=" << cut;

    // Clean tail exactly at a frame boundary at or past the header; torn
    // otherwise (mid-header counts as torn: the header never became valid).
    const bool at_boundary =
        cut >= header_end &&
        std::find(s.boundaries.begin(), s.boundaries.end(), cut) !=
            s.boundaries.end();
    EXPECT_EQ(report.tail_corrupt, !at_boundary) << "cut=" << cut;
    if (report.tail_corrupt) {
      EXPECT_FALSE(report.tail_error.empty()) << "cut=" << cut;
    }

    Fingerprint got =
        fingerprint_of(recovered.value().disk, s.block_count);
    EXPECT_TRUE(got == s.prefix_states[want]) << "cut=" << cut;
  }
}

TEST(TornWriteMatrix, EveryBitFlipOffsetRecoversTheIntactPrefix) {
  const Scenario s = build_scenario();

  for (std::size_t at = 0; at < s.wal.size(); ++at) {
    const unsigned bit = static_cast<unsigned>(at % 8);
    std::stringstream inner;
    TornWriteStream torn(
        inner, {.fail_offset = at,
                .mode = TornWriteStream::Mode::kBitFlip,
                .bit = bit});
    torn.write(s.wal.data(), static_cast<std::streamsize>(s.wal.size()));
    torn.flush();
    ASSERT_EQ(inner.str().size(), s.wal.size());

    std::stringstream ckpt(s.checkpoint);
    auto recovered = Recovery::recover_disk(ckpt, &inner);
    ASSERT_TRUE(recovered.ok())
        << "flip at=" << at << ": " << recovered.error().message;

    // The flipped byte lands inside some frame (or the header); every
    // record before it replays, everything from it on is reported corrupt.
    const std::size_t want = frames_below(s, at);
    const ReplayReport& report = recovered.value().report;
    EXPECT_EQ(report.records_applied, want) << "flip at=" << at;
    EXPECT_TRUE(report.tail_corrupt) << "flip at=" << at;
    EXPECT_FALSE(report.tail_error.empty()) << "flip at=" << at;

    Fingerprint got =
        fingerprint_of(recovered.value().disk, s.block_count);
    EXPECT_TRUE(got == s.prefix_states[want]) << "flip at=" << at;
  }
}

TEST(TornWriteMatrix, StrictModeRefusesEveryDamagedJournal) {
  const Scenario s = build_scenario();
  // Sample the matrix (full sweep is covered above in lax mode).
  for (std::size_t cut = 1; cut < s.wal.size(); cut += 7) {
    if (std::find(s.boundaries.begin(), s.boundaries.end(), cut) !=
        s.boundaries.end()) {
      continue;  // a clean boundary is not damage
    }
    std::stringstream inner(s.wal.substr(0, cut));
    std::stringstream ckpt(s.checkpoint);
    auto recovered = Recovery::recover_disk(ckpt, &inner, {.strict = true});
    ASSERT_FALSE(recovered.ok()) << "cut=" << cut;
    EXPECT_EQ(recovered.error().code, ErrorCode::kCorruption);
  }
}

}  // namespace
}  // namespace rds::journal
