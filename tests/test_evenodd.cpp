#include "src/storage/erasure/evenodd.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/util/random.hpp"

namespace rds {
namespace {

Bytes make_block(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes block(size);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng());
  return block;
}

std::vector<std::optional<Bytes>> as_optionals(
    const std::vector<Bytes>& fragments) {
  return {fragments.begin(), fragments.end()};
}

TEST(EvenOdd, RejectsNonPrimes) {
  EXPECT_THROW(EvenOddScheme(0), std::invalid_argument);
  EXPECT_THROW(EvenOddScheme(1), std::invalid_argument);
  EXPECT_THROW(EvenOddScheme(2), std::invalid_argument);
  EXPECT_THROW(EvenOddScheme(4), std::invalid_argument);
  EXPECT_THROW(EvenOddScheme(9), std::invalid_argument);
  EXPECT_NO_THROW(EvenOddScheme(3));
  EXPECT_NO_THROW(EvenOddScheme(11));
}

TEST(EvenOdd, CountsAndName) {
  const EvenOddScheme e(5);
  EXPECT_EQ(e.fragment_count(), 7u);
  EXPECT_EQ(e.min_fragments(), 5u);
  EXPECT_EQ(e.prime(), 5u);
  EXPECT_EQ(e.name(), "evenodd(p=5)");
}

TEST(EvenOdd, RoundTripAllPresent) {
  for (const unsigned p : {3u, 5u, 7u}) {
    const EvenOddScheme e(p);
    const Bytes block = make_block(1000, p);
    const auto fragments = e.encode(block);
    ASSERT_EQ(fragments.size(), p + 2);
    EXPECT_EQ(e.decode(as_optionals(fragments), block.size()), block);
  }
}

TEST(EvenOdd, DataColumnsAreSystematic) {
  const EvenOddScheme e(3);
  Bytes block(3 * 2 * 4);  // p columns x (p-1) chunks x 4 bytes
  std::iota(block.begin(), block.end(), 0);
  const auto fragments = e.encode(block);
  // Column 0 holds the first 8 bytes verbatim.
  EXPECT_TRUE(
      std::equal(fragments[0].begin(), fragments[0].end(), block.begin()));
}

TEST(EvenOdd, ToleratesEverySingleErasure) {
  const EvenOddScheme e(5);
  const Bytes block = make_block(640, 42);
  const auto fragments = e.encode(block);
  for (unsigned lost = 0; lost < 7; ++lost) {
    auto damaged = as_optionals(fragments);
    damaged[lost].reset();
    EXPECT_EQ(e.decode(damaged, block.size()), block) << "lost " << lost;
    EXPECT_EQ(e.reconstruct_fragment(damaged, lost), fragments[lost])
        << "lost " << lost;
  }
}

TEST(EvenOdd, ToleratesEveryDoubleErasure) {
  // The headline property: any TWO column losses are recoverable, for
  // several primes -- this sweeps all the decoder's case splits (two data,
  // data + row parity, data + diagonal parity, both parities).
  for (const unsigned p : {3u, 5u, 7u, 11u}) {
    const EvenOddScheme e(p);
    const Bytes block = make_block(33 * p, p * 7);
    const auto fragments = e.encode(block);
    for (unsigned i = 0; i < p + 2; ++i) {
      for (unsigned j = i + 1; j < p + 2; ++j) {
        auto damaged = as_optionals(fragments);
        damaged[i].reset();
        damaged[j].reset();
        ASSERT_EQ(e.decode(damaged, block.size()), block)
            << "p=" << p << " lost " << i << "," << j;
        ASSERT_EQ(e.reconstruct_fragment(damaged, i), fragments[i])
            << "p=" << p << " lost " << i << "," << j;
        ASSERT_EQ(e.reconstruct_fragment(damaged, j), fragments[j])
            << "p=" << p << " lost " << i << "," << j;
      }
    }
  }
}

TEST(EvenOdd, TripleErasureRejected) {
  const EvenOddScheme e(5);
  auto damaged = as_optionals(e.encode(make_block(100, 9)));
  damaged[0].reset();
  damaged[3].reset();
  damaged[6].reset();
  EXPECT_THROW((void)e.decode(damaged, 100), std::invalid_argument);
}

TEST(EvenOdd, OddBlockSizes) {
  const EvenOddScheme e(3);
  for (const std::size_t size : {0u, 1u, 5u, 6u, 7u, 100u}) {
    const Bytes block = make_block(size, size + 1);
    const auto fragments = e.encode(block);
    auto damaged = as_optionals(fragments);
    if (size > 0) {
      damaged[1].reset();
      damaged[4].reset();  // diagonal parity
    }
    EXPECT_EQ(e.decode(damaged, size), block) << "size " << size;
  }
}

TEST(EvenOdd, ParityPropertiesHold) {
  // Row parity: XOR over every row (across data + row-parity column) is 0.
  const unsigned p = 5;
  const EvenOddScheme e(p);
  const Bytes block = make_block(p * (p - 1) * 8, 13);
  const auto fragments = e.encode(block);
  const std::size_t chunk = fragments[0].size() / (p - 1);
  for (unsigned i = 0; i < p - 1; ++i) {
    for (std::size_t b = 0; b < chunk; ++b) {
      std::uint8_t x = 0;
      for (unsigned j = 0; j <= p; ++j) {
        x ^= fragments[j][i * chunk + b];
      }
      EXPECT_EQ(x, 0) << "row " << i << " byte " << b;
    }
  }
}

TEST(EvenOdd, Validation) {
  const EvenOddScheme e(3);
  const std::vector<std::optional<Bytes>> wrong_count(3);
  EXPECT_THROW((void)e.decode(wrong_count, 4), std::invalid_argument);
  std::vector<std::optional<Bytes>> mismatched(5);
  mismatched[0] = Bytes(4);
  mismatched[1] = Bytes(6);
  EXPECT_THROW((void)e.decode(mismatched, 8), std::invalid_argument);
  std::vector<std::optional<Bytes>> ok(5, Bytes(4));
  EXPECT_THROW((void)e.reconstruct_fragment(ok, 9), std::invalid_argument);
  const std::vector<std::optional<Bytes>> all_missing(5);
  EXPECT_THROW((void)e.decode(all_missing, 4), std::invalid_argument);
}

}  // namespace
}  // namespace rds
