// Result<T> and the canonical ErrorCode -> exception mapping that keeps the
// legacy throwing wrappers byte-compatible with the historical API.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/result.hpp"

namespace rds {
namespace {

Result<int> parity_of(int x) {
  if (x < 0) return Error{ErrorCode::kInvalidArgument, "negative"};
  return x % 2;
}

TEST(Result, CarriesValue) {
  const Result<int> r = parity_of(7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 1);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(Result, CarriesError) {
  const Result<int> r = parity_of(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message, "negative");
}

TEST(Result, TakeMovesTheValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  const std::vector<int> v = std::move(r).take();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Result, VoidSpecialization) {
  const Result<> ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), ErrorCode::kOk);
  ok.value_or_throw();  // success: no throw

  const Result<> bad = Error{ErrorCode::kIoError, "disk full"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kIoError);
  EXPECT_THROW(bad.value_or_throw(), std::runtime_error);
}

TEST(Result, RejectsErrorWithOkCode) {
  EXPECT_THROW(Result<int>(Error{ErrorCode::kOk, ""}), std::logic_error);
}

// The mapping the legacy wrappers (write/read/trim/add_device/...) rely on:
// each code must keep throwing the exception type the pre-Result API threw.
TEST(Result, CanonicalExceptionMapping) {
  const auto thrown_by = [](ErrorCode code) {
    return Result<int>(Error{code, "m"});
  };
  EXPECT_THROW(thrown_by(ErrorCode::kNotFound).value_or_throw(),
               std::out_of_range);
  EXPECT_THROW(thrown_by(ErrorCode::kInvalidArgument).value_or_throw(),
               std::invalid_argument);
  EXPECT_THROW(thrown_by(ErrorCode::kUnrecoverable).value_or_throw(),
               std::runtime_error);
  EXPECT_THROW(thrown_by(ErrorCode::kDeviceFailed).value_or_throw(),
               std::runtime_error);
  EXPECT_THROW(thrown_by(ErrorCode::kReshapeInProgress).value_or_throw(),
               std::runtime_error);
  EXPECT_THROW(thrown_by(ErrorCode::kCancelled).value_or_throw(),
               std::runtime_error);
  EXPECT_THROW(thrown_by(ErrorCode::kIoError).value_or_throw(),
               std::runtime_error);
}

TEST(Result, MessagePropagatesIntoException) {
  try {
    Result<int>(Error{ErrorCode::kNotFound, "block 7 never written"})
        .value_or_throw();
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "block 7 never written");
  }
}

TEST(Result, ErrorCodeNames) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_EQ(to_string(ErrorCode::kNotFound), "not-found");
  EXPECT_EQ(to_string(ErrorCode::kInvalidArgument), "invalid-argument");
  EXPECT_EQ(to_string(ErrorCode::kUnrecoverable), "unrecoverable");
  EXPECT_EQ(to_string(ErrorCode::kDeviceFailed), "device-failed");
  EXPECT_EQ(to_string(ErrorCode::kReshapeInProgress), "reshape-in-progress");
  EXPECT_EQ(to_string(ErrorCode::kCancelled), "cancelled");
  EXPECT_EQ(to_string(ErrorCode::kIoError), "io-error");
  EXPECT_EQ(to_string(ErrorCode::kCorruption), "corruption");
}

TEST(Result, CorruptionMapsToRuntimeError) {
  EXPECT_THROW(
      Result<int>(Error{ErrorCode::kCorruption, "crc mismatch"})
          .value_or_throw(),
      std::runtime_error);
}

}  // namespace
}  // namespace rds
