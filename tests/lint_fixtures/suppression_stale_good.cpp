// Fixture twin: every allow() either shields a live finding or names a
// rule that belongs to another tool (rds_analyze), which rds_lint must
// leave alone -- zero findings expected.
#include <atomic>

namespace fixture {

std::atomic<int> counter_value{0};

int still_violating() {
  // rds_lint: allow(atomic-memory-order) -- fixture: suppression in use
  return counter_value.load();
}

int foreign_rule() {
  // rds_lint: allow(lock-order) -- rds_analyze's rule; not ours to judge
  return counter_value.load(std::memory_order_relaxed);
}

}  // namespace fixture
