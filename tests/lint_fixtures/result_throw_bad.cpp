// Fixture: throws reachable from try_* Result paths and noexcept functions.
#include <stdexcept>

namespace fixture {

template <typename T>
struct Result {
  T value;
};

Result<int> try_parse(int raw) {
  if (raw < 0) {
    throw std::invalid_argument("negative");
  }
  return {raw};
}

void shutdown() noexcept {
  throw std::runtime_error("unreachable in practice");
}

}  // namespace fixture
