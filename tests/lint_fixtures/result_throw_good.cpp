// Fixture: error handling shapes the result-path-throw rule must accept.
#include <stdexcept>

namespace fixture {

template <typename T>
struct Result {
  T value;
  bool ok = true;
};

// try_* path reports through the Result instead of throwing.
Result<int> try_parse(int raw) {
  if (raw < 0) {
    return {0, false};
  }
  return {raw, true};
}

// Throwing is fine in an ordinary (legacy) function...
int parse_or_throw(int raw) {
  if (raw < 0) throw std::invalid_argument("negative");
  return raw;
}

// ...and in a conditionally-noexcept(false) one.
int parse_conditional(int raw) noexcept(false) {
  if (raw < 0) throw std::invalid_argument("negative");
  return raw;
}

}  // namespace fixture
