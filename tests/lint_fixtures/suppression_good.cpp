// Fixture: every supported suppression placement, each with a reason.
#include <atomic>

namespace fixture {

std::atomic<int> counter_value{0};

int same_line() {
  return counter_value.load();  // rds_lint: allow(atomic-memory-order) -- fixture: same-line suppression
}

int standalone_above() {
  // rds_lint: allow(atomic-memory-order) -- fixture: standalone comment
  return counter_value.load();
}

int multi_line_comment_block() {
  // rds_lint: allow(atomic-memory-order) -- fixture: the suppression
  // comment wraps onto a second line before the code it covers.
  return counter_value.load();
}

}  // namespace fixture
