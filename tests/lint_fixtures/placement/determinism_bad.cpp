// Fixture: entropy sources that must never appear under src/placement/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned bad_device_entropy() {
  std::random_device rd;
  return rd();
}

void bad_time_seed() { std::srand(static_cast<unsigned>(std::time(nullptr))); }

int bad_rand() { return std::rand(); }

long bad_clock_seed() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
