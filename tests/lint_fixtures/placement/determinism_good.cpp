// Fixture: deterministic pseudo-randomness placement code is allowed to use
// (seeded engines keyed off the input, never ambient entropy).
#include <chrono>
#include <cstdint>
#include <random>

namespace fixture {

std::uint64_t good_seeded_draw(std::uint64_t key) {
  std::mt19937_64 engine(key);
  return engine();
}

// steady_clock is monotonic-for-measurement, not an entropy source; only
// the wall/system clocks are banned.
long good_duration() {
  const auto start = std::chrono::steady_clock::now();
  return (std::chrono::steady_clock::now() - start).count();
}

}  // namespace fixture
