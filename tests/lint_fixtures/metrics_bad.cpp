// Fixture: metric family names outside the rds_ scheme.
namespace fixture {

struct Registry {
  int& counter(const char*);
  int& gauge(const char*);
  int& histogram(const char*);
};

void publish(Registry& reg) {
  reg.counter("requests_total") = 1;
  reg.gauge("pool_volumes") = 2;
  reg.histogram("write_latency_seconds") = 3;
}

}  // namespace fixture
