// Fixture: explicitly ordered atomics the rule must accept.
#include <atomic>

namespace fixture {

std::atomic<int> counter_value{0};

int good_load() { return counter_value.load(std::memory_order_relaxed); }

void good_store(int v) {
  counter_value.store(v, std::memory_order_release);
}

void good_rmw() { counter_value.fetch_add(1, std::memory_order_relaxed); }

bool good_cas(int& expected) {
  return counter_value.compare_exchange_weak(expected, 7,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed);
}

// Non-atomic member functions that merely share a name must not trip the
// rule: free calls and unrelated methods.
int load() { return 0; }
int not_atomic() { return load(); }

}  // namespace fixture
