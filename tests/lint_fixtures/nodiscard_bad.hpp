// Fixture: droppable Result declarations the nodiscard rule must flag.
#pragma once

#include <memory>

namespace fixture {

template <typename T>
struct Result {
  T value;
};

struct Store {
  Result<int> try_read(int block);
  Result<void> try_write(int block, int v);
  std::shared_ptr<int> exchange(std::shared_ptr<int> next);
};

}  // namespace fixture
