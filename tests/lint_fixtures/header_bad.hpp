// Fixture: a header with no include guard that dumps std into every
// includer.  (Deliberately missing #pragma once.)
#include <string>

using namespace std;

namespace fixture {

inline string greet() { return "hi"; }

}  // namespace fixture
