// Fixture: suppressions that must NOT silence the finding.
#include <atomic>

namespace fixture {

std::atomic<int> counter_value{0};

int missing_reason() {
  // rds_lint: allow(atomic-memory-order)
  return counter_value.load();
}

int wrong_rule() {
  // rds_lint: allow(metrics-naming) -- reason for a different rule
  return counter_value.load();
}

int too_far_away() {
  // rds_lint: allow(atomic-memory-order) -- only spans to the NEXT code line
  int unrelated = 0;
  return counter_value.load() + unrelated;
}

}  // namespace fixture
