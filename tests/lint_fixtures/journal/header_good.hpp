// Fixture: journal header hygiene done right -- #pragma once, fully
// qualified names, no namespace dumping.
#pragma once

#include <string>

namespace fixture::journal {

inline std::string frame_label(unsigned long long lsn) {
  return "record lsn=" + std::to_string(lsn);
}

}  // namespace fixture::journal
