// Fixture: journal-flavoured metric registrations outside the rds_ scheme
// (the names the journal subsystem would plausibly get wrong).
namespace fixture {

struct Registry {
  int& counter(const char*);
  int& histogram(const char*);
};

void init_journal_metrics(Registry& reg) {
  reg.counter("journal_records_total") = 1;
  reg.counter("wal_bytes_total") = 2;
  reg.histogram("journal_replay_latency_ns") = 3;
}

}  // namespace fixture
