// Fixture: the journal's real metric families, all on the rds_ scheme
// (docs/metrics.md).
namespace fixture {

struct Registry {
  int& counter(const char*);
  int& histogram(const char*);
};

void init_journal_metrics(Registry& reg) {
  reg.counter("rds_journal_records_total") = 1;
  reg.counter("rds_journal_bytes_total") = 2;
  reg.counter("rds_journal_append_failures_total") = 3;
  reg.counter("rds_journal_checkpoints_total") = 4;
  reg.counter("rds_journal_recoveries_total") = 5;
  reg.counter("rds_journal_replayed_records_total") = 6;
  reg.counter("rds_journal_replay_corrupt_total") = 7;
  reg.histogram("rds_journal_append_latency_ns") = 8;
  reg.histogram("rds_journal_replay_latency_ns") = 9;
}

}  // namespace fixture
