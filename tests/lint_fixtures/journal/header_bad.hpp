// Fixture: a journal header that forgot the guard and dumps a namespace
// into every includer.  (Deliberately missing #pragma once.)
#include <string>

using namespace std;

namespace fixture::journal {

inline string frame_label(unsigned long long lsn) {
  return "record lsn=" + to_string(lsn);
}

}  // namespace fixture::journal
