// Fixture: a reasoned allow() on code that no longer violates the rule.
// The code was fixed but the comment stayed behind; stale-suppression
// must flag it so the tree does not accumulate lying annotations.
#include <atomic>

namespace fixture {

std::atomic<int> counter_value{0};

int fixed_long_ago() {
  // rds_lint: allow(atomic-memory-order) -- load below was once implicit
  return counter_value.load(std::memory_order_relaxed);
}

}  // namespace fixture
