// Fixture: header hygiene done right -- #pragma once, no namespace dumping;
// function-local using directives are the author's own business.
#pragma once

#include <string>

namespace fixture {

inline std::string greet() {
  using namespace std::string_literals;
  return "hi"s;
}

}  // namespace fixture
