// Fixture: every implicit-seq_cst atomic call shape the rule must catch.
// Not compiled -- consumed as text by test_rds_lint.
#include <atomic>

namespace fixture {

std::atomic<int> counter_value{0};

int bad_load() { return counter_value.load(); }

void bad_store(int v) { counter_value.store(v); }

void bad_rmw() { counter_value.fetch_add(1); }

bool bad_cas_no_orders(int& expected) {
  return counter_value.compare_exchange_weak(expected, 7);
}

bool bad_cas_one_order(int& expected) {
  // Only the success order is spelled out; the failure order is implied.
  return counter_value.compare_exchange_strong(expected, 7,
                                               std::memory_order_acq_rel);
}

}  // namespace fixture
