// Fixture: metric family names the rds_ scheme accepts, plus call shapes
// the rule must not confuse with a family registration.
#include <string>

namespace fixture {

struct Registry {
  int& counter(const char*);
  int& gauge(const char*);
  int& histogram(const char*);
};

void publish(Registry& reg) {
  reg.counter("rds_requests_total") = 1;
  reg.gauge("rds_pool_volumes") = 2;
  reg.histogram("rds_write_latency_seconds") = 3;
}

// A family looked up via a variable is out of scope for a token checker.
void indirect(Registry& reg, const std::string& name) {
  reg.counter(name.c_str()) = 4;
}

}  // namespace fixture
