// Fixture: Result declarations correctly marked, and try_*/exchange shapes
// that are not Result-returning (and so are exempt).
#pragma once

#include <map>
#include <memory>

namespace fixture {

template <typename T>
struct Result {
  T value;
};

struct Store {
  [[nodiscard]] Result<int> try_read(int block);
  [[nodiscard]] Result<void> try_write(int block, int v);
  [[nodiscard]] std::shared_ptr<int> exchange(std::shared_ptr<int> next);

  // Not Result-returning: plain bool try_ is a different idiom (std style).
  bool try_lock();

  // exchange() of a non-pointer is not the RCU hand-off shape.
  int exchange(int next);
};

// Calls inside an inline function body are uses, not declarations.
inline void use(Store& s, std::map<int, int>& m) {
  m.try_emplace(1, 2);
  (void)s.try_lock();
}

}  // namespace fixture
