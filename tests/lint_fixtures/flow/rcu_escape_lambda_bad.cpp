// rds_analyze fixture: trips rcu-escape once.  The epoch handle is
// captured by a lambda handed to an executor; the closure may run after
// the epoch is retired.

namespace fix {

class Refresher {
 public:
  void schedule() {
    auto snap = published_.read();
    executor_.submit([snap] { consume(snap); });
  }

 private:
  RcuCell<PlacementEpoch> published_;
  Executor executor_;
};

}  // namespace fix
