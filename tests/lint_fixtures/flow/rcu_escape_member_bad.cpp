// rds_analyze fixture: trips rcu-escape once.  The epoch-guarded handle
// read out of the RcuCell is stashed in a plain member, which outlives
// the epoch the handle is only valid under.

namespace fix {

class Cache {
 public:
  void refresh() {
    auto snap = published_.read();
    last_ = snap;
  }

 private:
  RcuCell<PlacementEpoch> published_;
  EpochHandle last_;
};

}  // namespace fix
