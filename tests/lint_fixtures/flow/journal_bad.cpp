// rds_analyze fixture: trips journal-protocol twice.
//
//  * commit_ignored drops the append Result on the floor.
//  * mutate_after appends (the commit point) and then mutates member
//    state, so a crash between the two leaves the journal ahead of the
//    in-memory state it is supposed to describe.

namespace fix {

class Journal {
 public:
  Result<long> append(int record);
};

class Pool {
 public:
  void commit_ignored(int record) {
    journal_.append(record);
  }

  void mutate_after(int record) {
    auto appended = journal_.append(record);
    if (!appended.ok()) return;
    state_ = record;
  }

 private:
  Journal journal_;
  int state_ = 0;
};

}  // namespace fix
