// rds_analyze fixture twin: clean.  Only plain copied data crosses into
// the deferred closure; the epoch handle never leaves the guard scope.

namespace fix {

class Refresher {
 public:
  void schedule() {
    auto snap = published_.read();
    const long count = snap->count;
    executor_.submit([count] { record(count); });
  }

 private:
  RcuCell<PlacementEpoch> published_;
  Executor executor_;
};

}  // namespace fix
