// rds_analyze fixture: capacity arithmetic the tolerated ways -- through
// the checked_math helpers (no raw operator at all) or on doubles, where
// overflow saturates instead of wrapping.

namespace fix {

struct Device {
  unsigned long long capacity = 0;
};

unsigned long long raw_total(const Device* devices, int n) {
  unsigned long long total = 0;
  for (int i = 0; i < n; ++i) {
    total = checked_add(total, devices[i].capacity).value_or_throw();
  }
  return total;
}

bool feasible(unsigned long long b_max, unsigned k,
              unsigned long long total) {
  return checked_mul(b_max, k).value_or_throw() <= total;
}

double approx_grow(double capacity, double step) {
  const double grown = capacity + step;
  return grown;
}

}  // namespace fix
