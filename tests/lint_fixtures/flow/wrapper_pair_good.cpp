// rds_analyze fixture twin: clean.  The wrapper-resolved blocking call
// happens after the guard scope closes.

namespace fix {

class Index {
 public:
  void refresh();

  Result<int> try_refresh() {
    fsync(fd_);
    return Result<int>(0);
  }

 private:
  int fd_ = -1;
};

class Coordinator {
 public:
  void tick(Index& idx) {
    {
      const MutexLock lock(mu_);
      ticks_ += 1;
    }
    idx.refresh();
  }

 private:
  Mutex mu_;
  int ticks_ = 0;
};

}  // namespace fix
