// rds_analyze fixture twin: clean.  The sleeping selector call runs
// before the mutex is taken.

namespace fix {

class Selector {
 public:
  void pick(int k) {
    std::this_thread::sleep_for(delay_);
  }

 private:
  Duration delay_;
};

Selector make_selector();

class Balancer {
 public:
  void rebalance() {
    auto sel = make_selector();
    sel.pick(2);
    const MutexLock lock(mu_);
    generation_ += 1;
  }

 private:
  Mutex mu_;
  int generation_ = 0;
};

}  // namespace fix
