// rds_analyze fixture: trips lock-held-across-call twice, both directly:
// an fsync and a sleep inside the critical section.  Every waiter on the
// mutex stalls behind the I/O.

namespace fix {

class Syncer {
 public:
  void flush() {
    const MutexLock lock(mu_);
    dirty_ = false;
    fsync(fd_);
  }

  void pace() {
    const MutexLock lock(mu_);
    std::this_thread::sleep_for(backoff_);
  }

 private:
  Mutex mu_;
  bool dirty_ = false;
  int fd_ = -1;
  Duration backoff_;
};

}  // namespace fix
