// rds_analyze fixture: trips metric-balance once, interprocedurally.
// The in-flight gauge is add()ed, a throwing call runs, and the balance
// only happens inside finish() -- the helper subs on all of ITS paths,
// but the exception edge in run() bypasses the call entirely.

namespace fix {

class Placer {
 public:
  void run(int n) {
    inflight_->add(1);
    risky(n);
    finish();
  }

 private:
  void risky(int n);

  void finish() {
    inflight_->sub(1);
  }

  Gauge* inflight_ = nullptr;
};

}  // namespace fix
