// rds_analyze fixture twin: clean.  State changes happen under the
// mutex; the blocking fsync runs after the guard scope closes.

namespace fix {

class Syncer {
 public:
  void flush() {
    {
      const MutexLock lock(mu_);
      dirty_ = false;
    }
    fsync(fd_);
  }

 private:
  Mutex mu_;
  bool dirty_ = false;
  int fd_ = -1;
};

}  // namespace fix
