// rds_analyze fixture: trips lock-order twice.
//
//  * A::ping holds A::mu_ and calls B::pong, which holds B::mu_ and calls
//    A::poke (A::mu_ again) -- an A::mu_ <-> B::mu_ cycle in the
//    acquisition graph.
//  * VirtualDisk::flush acquires StoragePool::mu_ while holding its own
//    mu_, inverting the documented pool-before-volume order.

namespace fix {

class B;

class A {
 public:
  void ping(B& b);
  void poke() {
    const MutexLock lock(mu_);
    ++hits_;
  }

 private:
  friend class B;
  Mutex mu_;
  int hits_ = 0;
};

class B {
 public:
  void pong(A& a) {
    const MutexLock lock(mu_);
    a.poke();
  }

 private:
  Mutex mu_;
};

void A::ping(B& b) {
  const MutexLock lock(mu_);
  b.pong(*this);
}

class StoragePool {
 public:
  void admit() {
    const MutexLock lock(mu_);
    ++admitted_;
  }

 private:
  Mutex mu_;
  int admitted_ = 0;
};

class VirtualDisk {
 public:
  void flush(StoragePool& pool) {
    const MutexLock lock(mu_);
    pool.admit();
  }

 private:
  Mutex mu_;
};

}  // namespace fix
