// rds_analyze fixture: trips lock-held-across-call once, through a
// recursive SCC.  pump() and drain() call each other; drain() fsyncs, so
// pump's summary must converge to "blocks" through the cycle before the
// lock-holding caller can be flagged.

namespace fix {

class Drainer {
 public:
  void commit() {
    const MutexLock lock(mu_);
    pump(3);
  }

 private:
  void pump(int n) {
    if (n > 0) drain(n - 1);
  }

  void drain(int n) {
    fsync(fd_);
    if (n > 0) pump(n - 1);
  }

  Mutex mu_;
  int fd_ = -1;
};

}  // namespace fix
