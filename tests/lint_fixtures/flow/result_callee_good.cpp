// rds_analyze fixture twin: clean.  The helper inspects the Result it
// is handed, so passing it there IS consumption.

namespace fix {

class Pool {
 public:
  Result<int> try_fetch(int key);

  void drive(int key) {
    auto fetched = try_fetch(key);
    log_checked(fetched);
  }

 private:
  void log_checked(Result<int> r) {
    if (!r.ok()) {
      failures_ += 1;
    }
  }

  int failures_ = 0;
};

}  // namespace fix
