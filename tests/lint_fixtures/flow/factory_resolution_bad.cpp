// rds_analyze fixture: trips lock-held-across-call once, through a
// factory-typed local.  make_selector()'s declared return class types
// `sel`, so sel.pick() resolves to Selector::pick -- which sleeps.

namespace fix {

class Selector {
 public:
  void pick(int k) {
    std::this_thread::sleep_for(delay_);
  }

 private:
  Duration delay_;
};

Selector make_selector();

class Balancer {
 public:
  void rebalance() {
    auto sel = make_selector();
    const MutexLock lock(mu_);
    sel.pick(2);
  }

 private:
  Mutex mu_;
};

}  // namespace fix
