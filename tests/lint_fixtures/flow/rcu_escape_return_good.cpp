// rds_analyze fixture twin: clean.  Returning the shared handle (which
// pins the epoch) or a plain copy of the data is the supported way to
// hand a snapshot outward.

namespace fix {

class Reader {
 public:
  EpochHandle borrow() {
    return published_.read();
  }

  long version() {
    auto snap = published_.read();
    return snap->version;
  }

 private:
  RcuCell<PlacementEpoch> published_;
};

}  // namespace fix
