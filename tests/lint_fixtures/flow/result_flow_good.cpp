// rds_analyze fixture: stored try_* Results inspected on every path --
// either immediately after the call or on both branches.

namespace fix {

Result<int> try_fetch(int key);

int lookup(int key) {
  auto fetched = try_fetch(key);
  if (!fetched.ok()) {
    return -1;
  }
  return fetched.value();
}

int lookup_or_throw(int key) {
  auto fetched = try_fetch(key);
  return fetched.value_or_throw();
}

}  // namespace fix
