// rds_analyze fixture: trips lock-held-across-call once, interprocedurally.
// commit() holds the mutex across a call into a helper whose own body
// blocks (fsync) without expecting any lock -- the pairing is created at
// the call site, so the finding lands there.

namespace fix {

class Pool {
 public:
  void commit() {
    const MutexLock lock(mu_);
    staged_ = pending_;
    flush_data();
  }

 private:
  void flush_data() {
    fsync(fd_);
  }

  Mutex mu_;
  int staged_ = 0;
  int pending_ = 0;
  int fd_ = -1;
};

}  // namespace fix
