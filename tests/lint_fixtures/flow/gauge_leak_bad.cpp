// rds_analyze fixture: trips metric-balance.  The shape of the historical
// BatchPlacer defect: an in-flight gauge is add()ed, a throwing call runs,
// and the matching sub() is only on the fall-through path -- the exception
// edge leaves the gauge raised forever.

namespace fix {

class Placer {
 public:
  Placer() {
    inflight_ = &registry_.gauge("fix_inflight");
  }

  void place(int count) {
    inflight_->add(1);
    place_all(count);
    inflight_->sub(1);
  }

 private:
  void place_all(int count);

  Registry registry_;
  Gauge* inflight_ = nullptr;
};

}  // namespace fix
