// rds_analyze fixture twin: clean.  The mutex protects only the member
// copy; the blocking helper runs after the guard scope closes.

namespace fix {

class Pool {
 public:
  void commit() {
    {
      const MutexLock lock(mu_);
      staged_ = pending_;
    }
    flush_data();
  }

 private:
  void flush_data() {
    fsync(fd_);
  }

  Mutex mu_;
  int staged_ = 0;
  int pending_ = 0;
  int fd_ = -1;
};

}  // namespace fix
