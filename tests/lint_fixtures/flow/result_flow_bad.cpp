// rds_analyze fixture: trips result-flow.  The stored try_* Result is
// only inspected on the positive branch; the fall-through path returns
// without ever looking at it.

namespace fix {

Result<int> try_fetch(int key);

int lookup(int key) {
  auto fetched = try_fetch(key);
  if (key > 0) {
    return fetched.value_or_throw();
  }
  return 0;
}

}  // namespace fix
