// rds_analyze fixture: both ways to balance an in-flight gauge.  The RAII
// guard satisfies the rule structurally (no add/sub pair to check); the
// manual version sub()s on the exception edge and on fall-through before
// any other throwing call.

namespace fix {

class Placer {
 public:
  Placer() {
    inflight_ = &registry_.gauge("fix_inflight");
  }

  void place(int count) {
    const GaugeGuard guard(*inflight_);
    place_all(count);
  }

  void place_manual(int count) {
    inflight_->add(1);
    try {
      place_all(count);
    } catch (...) {
      inflight_->sub(1);
      throw;
    }
    inflight_->sub(1);
  }

 private:
  void place_all(int count);

  Registry registry_;
  Gauge* inflight_ = nullptr;
};

}  // namespace fix
