// rds_analyze fixture: the balanced twin of loadsim_gauge_bad.cpp -- the
// shape src/sim/load_sim.cpp actually uses.  The RAII guard covers the
// throwing selector call structurally; the manual variant balances the
// exception edge by hand.

namespace fix {

class LoadSim {
 public:
  LoadSim() {
    inflight_ = &registry_.gauge("fix_loadsim_inflight");
  }

  void serve(int request) {
    const GaugeGuard in_flight_guard(*inflight_);
    select_replica(request);
  }

  void serve_manual(int request) {
    inflight_->add(1);
    try {
      select_replica(request);
    } catch (...) {
      inflight_->sub(1);
      throw;
    }
    inflight_->sub(1);
  }

 private:
  void select_replica(int request);

  Registry registry_;
  Gauge* inflight_ = nullptr;
};

}  // namespace fix
