// rds_analyze fixture: same classes as lock_order_bad.cpp with a
// consistent acquisition order -- A::mu_ is always taken before B::mu_,
// and the pool lock before the volume lock -- so the graph is acyclic and
// correctly oriented.

namespace fix {

class B {
 public:
  void pong() {
    const MutexLock lock(mu_);
    ++hits_;
  }

 private:
  Mutex mu_;
  int hits_ = 0;
};

class A {
 public:
  void ping(B& b) {
    const MutexLock lock(mu_);
    b.pong();
  }

 private:
  Mutex mu_;
};

class VirtualDisk {
 public:
  void flush() {
    const MutexLock lock(mu_);
    ++flushed_;
  }

 private:
  friend class StoragePool;
  Mutex mu_;
  int flushed_ = 0;
};

class StoragePool {
 public:
  void admit(VirtualDisk& disk) {
    const MutexLock lock(mu_);
    disk.flush();
  }

 private:
  Mutex mu_;
};

}  // namespace fix
