// rds_analyze fixture twin: clean.  Nothing throwing sits between the
// add() and the call into the helper that sub()s on every path, so the
// callee's summary balances the gauge at the call site.

namespace fix {

class Placer {
 public:
  void run(int n) {
    inflight_->add(1);
    finish();
    risky(n);
  }

 private:
  void risky(int n);

  void finish() {
    inflight_->sub(1);
  }

  Gauge* inflight_ = nullptr;
};

}  // namespace fix
