// rds_analyze fixture: trips capacity-arith three times -- an unchecked
// running sum of device capacities, the unchecked Lemma 2.1 demand
// k * b_max, and an unchecked capacity increment.

namespace fix {

struct Device {
  unsigned long long capacity = 0;
};

unsigned long long raw_total(const Device* devices, int n) {
  unsigned long long total = 0;
  for (int i = 0; i < n; ++i) {
    total += devices[i].capacity;
  }
  return total;
}

unsigned long long demand(unsigned long long b_max, unsigned k) {
  return b_max * k;
}

unsigned long long grow(unsigned long long capacity,
                        unsigned long long step) {
  return capacity + step;
}

}  // namespace fix
