// rds_analyze fixture: the commit-log protocol done right.  State is
// mutated first, then the append commits it; the append Result is
// inspected on every path and nothing is touched afterwards.

namespace fix {

class Journal {
 public:
  Result<long> append(int record);
};

class Pool {
 public:
  Result<void> commit(int record) {
    state_ = record;
    auto appended = journal_.append(record);
    if (!appended.ok()) return appended.error();
    return {};
  }

  long commit_or_throw(int record) {
    state_ = record;
    return journal_.append(record).value_or_throw();
  }

 private:
  Journal journal_;
  int state_ = 0;
};

}  // namespace fix
