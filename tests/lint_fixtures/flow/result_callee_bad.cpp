// rds_analyze fixture: trips result-flow twice.  drive() hands its
// Result to log_only(), which never inspects it -- so the caller's pass
// is not a consumption (one finding at the definition in drive) and the
// callee's ignored Result parameter earns its own finding.

namespace fix {

class Pool {
 public:
  Result<int> try_fetch(int key);

  void drive(int key) {
    auto fetched = try_fetch(key);
    log_only(fetched);
  }

 private:
  void log_only(Result<int> r) {
    count_ += 1;
  }

  int count_ = 0;
};

}  // namespace fix
