// rds_analyze fixture twin: clean.  The same mutually recursive pair is
// fine to call once the mutex is released.

namespace fix {

class Drainer {
 public:
  void commit() {
    {
      const MutexLock lock(mu_);
      sealed_ = true;
    }
    pump(3);
  }

 private:
  void pump(int n) {
    if (n > 0) drain(n - 1);
  }

  void drain(int n) {
    fsync(fd_);
    if (n > 0) pump(n - 1);
  }

  Mutex mu_;
  bool sealed_ = false;
  int fd_ = -1;
};

}  // namespace fix
