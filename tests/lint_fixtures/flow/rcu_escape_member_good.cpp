// rds_analyze fixture twin: clean.  The epoch handle is only ever read
// through inside the guard scope; what lands in members is plain copied
// data, and the store() into the RcuCell itself is the publishing path.

namespace fix {

class Cache {
 public:
  void refresh() {
    auto snap = published_.read();
    last_count_ = snap->count;
  }

  void publish(PlacementEpoch next) {
    published_.store(next);
  }

 private:
  RcuCell<PlacementEpoch> published_;
  long last_count_ = 0;
};

}  // namespace fix
