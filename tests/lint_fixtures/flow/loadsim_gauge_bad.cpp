// rds_analyze fixture: trips metric-balance on the queue-sim shape.  The
// in-flight gauge of the load simulator is raised per request, but a
// throwing selector call sits between add() and sub() -- the exception
// edge leaves rds_loadsim_inflight stuck at its peak.

namespace fix {

class LoadSim {
 public:
  LoadSim() {
    inflight_ = &registry_.gauge("fix_loadsim_inflight");
  }

  void serve(int request) {
    inflight_->add(1);
    select_replica(request);
    inflight_->sub(1);
  }

 private:
  void select_replica(int request);

  Registry registry_;
  Gauge* inflight_ = nullptr;
};

}  // namespace fix
