// rds_analyze fixture: trips lock-held-across-call once, through the
// wrapper-pair convention.  Index::refresh is declared but not defined
// here; its try_refresh twin is, and it fsyncs -- so the lock-holding
// call to refresh() inherits the twin's blocking summary.

namespace fix {

class Index {
 public:
  void refresh();

  Result<int> try_refresh() {
    fsync(fd_);
    return Result<int>(0);
  }

 private:
  int fd_ = -1;
};

class Coordinator {
 public:
  void tick(Index& idx) {
    const MutexLock lock(mu_);
    idx.refresh();
  }

 private:
  Mutex mu_;
};

}  // namespace fix
