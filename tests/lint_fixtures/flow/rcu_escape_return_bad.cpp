// rds_analyze fixture: trips rcu-escape once.  A raw pointer into the
// epoch-guarded snapshot is returned past the guard scope; the caller
// holds a view into memory the next publish may retire.

namespace fix {

class Reader {
 public:
  const PlacementEpoch* borrow() {
    auto snap = published_.read();
    return snap.get();
  }

 private:
  RcuCell<PlacementEpoch> published_;
};

}  // namespace fix
