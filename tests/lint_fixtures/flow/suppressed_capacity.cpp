// rds_analyze fixture: the rds_lint suppression syntax carries over to
// the flow rules -- this file would trip capacity-arith without the
// allow() line.

namespace fix {

unsigned long long grow(unsigned long long capacity,
                        unsigned long long step) {
  // rds_lint: allow(capacity-arith) -- fixture: demonstrating suppression
  return capacity + step;
}

}  // namespace fix
