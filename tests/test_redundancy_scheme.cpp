#include "src/storage/redundancy_scheme.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace rds {
namespace {

Bytes make_block(std::size_t n) {
  Bytes b(n);
  std::iota(b.begin(), b.end(), 1);
  return b;
}

TEST(MirroringScheme, EncodeProducesIdenticalCopies) {
  const MirroringScheme m(3);
  const Bytes block = make_block(64);
  const auto fragments = m.encode(block);
  ASSERT_EQ(fragments.size(), 3u);
  for (const Bytes& f : fragments) EXPECT_EQ(f, block);
  EXPECT_EQ(m.fragment_count(), 3u);
  EXPECT_EQ(m.min_fragments(), 1u);
}

TEST(MirroringScheme, DecodeFromAnySingleCopy) {
  const MirroringScheme m(3);
  const Bytes block = make_block(16);
  const auto fragments = m.encode(block);
  for (unsigned keep = 0; keep < 3; ++keep) {
    std::vector<std::optional<Bytes>> damaged(3);
    damaged[keep] = fragments[keep];
    EXPECT_EQ(m.decode(damaged, block.size()), block);
    EXPECT_EQ(m.reconstruct_fragment(damaged, (keep + 1) % 3), block);
  }
}

TEST(MirroringScheme, AllLostThrows) {
  const MirroringScheme m(2);
  const std::vector<std::optional<Bytes>> none(2);
  EXPECT_THROW((void)m.decode(none, 4), std::invalid_argument);
  EXPECT_THROW((void)m.reconstruct_fragment(none, 0), std::invalid_argument);
}

TEST(MirroringScheme, Validation) {
  EXPECT_THROW(MirroringScheme(0), std::invalid_argument);
  const MirroringScheme m(2);
  const std::vector<std::optional<Bytes>> wrong(3);
  EXPECT_THROW((void)m.decode(wrong, 4), std::invalid_argument);
  const std::vector<std::optional<Bytes>> two{Bytes{1, 2}, std::nullopt};
  EXPECT_THROW((void)m.reconstruct_fragment(two, 5), std::invalid_argument);
}

TEST(MirroringScheme, Name) {
  EXPECT_EQ(MirroringScheme(2).name(), "mirror(k=2)");
}

TEST(ReedSolomonScheme, RoundTripAndCounts) {
  const ReedSolomonScheme rs(4, 2);
  EXPECT_EQ(rs.fragment_count(), 6u);
  EXPECT_EQ(rs.min_fragments(), 4u);
  const Bytes block = make_block(200);
  const auto fragments = rs.encode(block);
  std::vector<std::optional<Bytes>> opt(fragments.begin(), fragments.end());
  opt[1].reset();
  opt[4].reset();
  EXPECT_EQ(rs.decode(opt, block.size()), block);
  EXPECT_EQ(rs.reconstruct_fragment(opt, 1), fragments[1]);
  EXPECT_EQ(rs.reconstruct_fragment(opt, 4), fragments[4]);
}

TEST(ReedSolomonScheme, Name) {
  EXPECT_EQ(ReedSolomonScheme(4, 2).name(), "reed-solomon(4+2)");
}

TEST(Schemes, FragmentIdentityMatters) {
  // The erasure fragments are all different -- this is why the placement
  // layer must identify WHICH copy lives where (the paper's point in
  // Section 3).
  const ReedSolomonScheme rs(2, 2);
  const Bytes block = make_block(32);
  const auto fragments = rs.encode(block);
  for (unsigned i = 0; i < 4; ++i) {
    for (unsigned j = i + 1; j < 4; ++j) {
      EXPECT_NE(fragments[i], fragments[j]);
    }
  }
}

}  // namespace
}  // namespace rds
