#include "src/sim/scenario.hpp"

#include <gtest/gtest.h>

namespace rds {
namespace {

TEST(Scenario, PaperBaseLadder) {
  const ClusterConfig c = paper_heterogeneous_base();
  ASSERT_EQ(c.size(), 8u);
  // Canonical order is descending: 1.2M first, 500k last.
  EXPECT_EQ(c[0].capacity, 1'200'000u);
  EXPECT_EQ(c[7].capacity, 500'000u);
  EXPECT_EQ(c.total_capacity(), 6'800'000u);
}

TEST(Scenario, HomogeneousCluster) {
  const ClusterConfig c = homogeneous_cluster(5, 1000);
  ASSERT_EQ(c.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(c[i].capacity, 1000u);
}

TEST(Scenario, Figure2PhaseEvolution) {
  const auto phases = paper_figure2_phases();
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases[0].config.size(), 8u);
  EXPECT_EQ(phases[1].config.size(), 10u);
  EXPECT_EQ(phases[2].config.size(), 12u);
  EXPECT_EQ(phases[3].config.size(), 10u);
  EXPECT_EQ(phases[4].config.size(), 8u);
  // Phase 2 tops out at 1.6M.
  EXPECT_EQ(phases[2].config[0].capacity, 1'600'000u);
  // Final phase kept the 900k..1.6M range.
  EXPECT_EQ(phases[4].config[phases[4].config.size() - 1].capacity,
            900'000u);
  // The smallest original disks are gone.
  EXPECT_FALSE(phases[4].config.contains(0));
  EXPECT_FALSE(phases[4].config.contains(1));
  EXPECT_FALSE(phases[4].config.contains(2));
  EXPECT_FALSE(phases[4].config.contains(3));
}

TEST(Scenario, EditKinds) {
  const ClusterConfig base = paper_heterogeneous_base();

  const EditResult add_big =
      apply_edit(base, EditKind::kAddBiggest, 99, 100'000);
  EXPECT_EQ(add_big.affected, 99u);
  EXPECT_EQ(add_big.config[0].capacity, 1'300'000u);
  EXPECT_EQ(add_big.config.size(), 9u);

  const EditResult add_small =
      apply_edit(base, EditKind::kAddSmallest, 99, 100'000);
  EXPECT_EQ(add_small.config[add_small.config.size() - 1].capacity, 400'000u);

  const EditResult rm_big =
      apply_edit(base, EditKind::kRemoveBiggest, 0, 0);
  EXPECT_EQ(rm_big.config.size(), 7u);
  EXPECT_EQ(rm_big.affected, 7u);  // uid of the 1.2M disk
  EXPECT_FALSE(rm_big.config.contains(7));

  const EditResult rm_small =
      apply_edit(base, EditKind::kRemoveSmallest, 0, 0);
  EXPECT_EQ(rm_small.affected, 0u);
  EXPECT_FALSE(rm_small.config.contains(0));
}

TEST(Scenario, AddSmallestFloorsAtOriginalCapacity) {
  const ClusterConfig tiny({{1, 50, ""}, {2, 60, ""}});
  const EditResult r = apply_edit(tiny, EditKind::kAddSmallest, 9, 100);
  // 50 - 100 would underflow; capacity stays at the smallest existing.
  EXPECT_EQ(r.config[r.config.size() - 1].capacity, 50u);
}

TEST(Scenario, EditKindNames) {
  EXPECT_EQ(to_string(EditKind::kAddBiggest), "add biggest");
  EXPECT_EQ(to_string(EditKind::kRemoveSmallest), "remove smallest");
}

}  // namespace
}  // namespace rds
