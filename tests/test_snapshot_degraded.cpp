// Degraded-state persistence: snapshots of pools with failed devices must
// round-trip the degradation exactly, for every redundancy scheme kind.
#include "src/storage/snapshot.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/erasure/rdp.hpp"
#include "src/util/random.hpp"

namespace rds {
namespace {

ClusterConfig wide_config() {
  return ClusterConfig({{1, 3000, "a"},
                        {2, 2800, "b"},
                        {3, 2600, "c"},
                        {4, 2400, "d"},
                        {5, 2200, "e"},
                        {6, 2000, "f"},
                        {7, 1800, "g"},
                        {8, 1600, "h"}});
}

Bytes payload(std::uint64_t block, std::uint64_t salt) {
  Bytes b(96);
  Xoshiro256 rng(block * 101 + salt);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

std::vector<std::shared_ptr<RedundancyScheme>> every_scheme_kind() {
  return {std::make_shared<MirroringScheme>(2),
          std::make_shared<ReedSolomonScheme>(3, 2),
          std::make_shared<EvenOddScheme>(3),
          std::make_shared<RdpScheme>(5)};
}

TEST(SnapshotDegraded, EverySchemeKindSurvivesAFailedDeviceRoundTrip) {
  for (const auto& scheme : every_scheme_kind()) {
    SCOPED_TRACE(scheme->name());
    VirtualDisk disk(wide_config(), scheme);
    for (std::uint64_t b = 0; b < 50; ++b) disk.write(b, payload(b, 1));
    disk.fail_device(2);

    std::stringstream stream;
    Snapshot::save_disk(disk, stream);
    VirtualDisk restored = Snapshot::load_disk(stream);

    // Degradation is preserved, not healed: the scrub still complains and
    // reads still reconstruct around the dead device.
    EXPECT_EQ(restored.scheme().name(), scheme->name());
    EXPECT_FALSE(restored.scrub().clean());
    const std::uint64_t degraded_before = restored.stats().degraded_reads;
    for (std::uint64_t b = 0; b < 50; ++b) {
      EXPECT_EQ(restored.read(b), payload(b, 1));
    }
    EXPECT_GT(restored.stats().degraded_reads, degraded_before);

    // The restored disk heals exactly like the original would.
    EXPECT_GT(restored.rebuild(), 0u);
    EXPECT_TRUE(restored.scrub().clean());
    EXPECT_EQ(restored.config().size(), wide_config().size() - 1);
  }
}

TEST(SnapshotDegraded, MultipleFailuresWithinToleranceRoundTrip) {
  // RS(3+2) tolerates two lost devices; both flags must survive.
  VirtualDisk disk(wide_config(), std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t b = 0; b < 40; ++b) disk.write(b, payload(b, 2));
  disk.fail_device(1);
  disk.fail_device(5);

  std::stringstream stream;
  Snapshot::save_disk(disk, stream);
  VirtualDisk restored = Snapshot::load_disk(stream);

  EXPECT_FALSE(restored.scrub().clean());
  for (std::uint64_t b = 0; b < 40; ++b) {
    EXPECT_EQ(restored.read(b), payload(b, 2));
  }
  EXPECT_GT(restored.rebuild(), 0u);
  EXPECT_TRUE(restored.scrub().clean());
}

TEST(SnapshotDegraded, DegradedPoolRoundTripsEveryVolume) {
  // One pool, one volume per scheme kind, one shared dead device: every
  // volume must come back degraded and every volume must heal.
  StoragePool pool(wide_config());
  const auto schemes = every_scheme_kind();
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    pool.create_volume("v" + std::to_string(i), schemes[i]);
  }
  for (std::uint64_t b = 0; b < 25; ++b) {
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      pool.volume("v" + std::to_string(i)).write(b, payload(b, 10 + i));
    }
  }
  pool.fail_device(4);

  std::stringstream stream;
  Snapshot::save_pool(pool, stream);
  StoragePool restored = Snapshot::load_pool(stream);

  EXPECT_EQ(restored.volume_count(), schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    SCOPED_TRACE(schemes[i]->name());
    VirtualDisk& vol = restored.volume("v" + std::to_string(i));
    EXPECT_EQ(vol.scheme().name(), schemes[i]->name());
    EXPECT_FALSE(vol.scrub().clean());
    for (std::uint64_t b = 0; b < 25; ++b) {
      EXPECT_EQ(vol.read(b), payload(b, 10 + i));
    }
  }
  // The failure flag is on the SHARED store: one rebuild heals all volumes.
  EXPECT_GT(restored.rebuild(), 0u);
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    EXPECT_TRUE(
        restored.volume("v" + std::to_string(i)).scrub().clean());
  }
}

TEST(SnapshotDegraded, PoolUsageReportsFailureAfterRestore) {
  StoragePool pool(wide_config());
  pool.create_volume("v", std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 10; ++b) {
    pool.volume("v").write(b, payload(b, 3));
  }
  pool.fail_device(7);

  std::stringstream stream;
  Snapshot::save_pool(pool, stream);
  StoragePool restored = Snapshot::load_pool(stream);

  bool saw_failed = false;
  for (const auto& usage : restored.usage()) {
    if (usage.device.uid == 7) {
      saw_failed = true;
      EXPECT_TRUE(usage.failed);
    } else {
      EXPECT_FALSE(usage.failed);
    }
  }
  EXPECT_TRUE(saw_failed);
}

TEST(SnapshotDegraded, FileStoreRoundTripsFilesAndDegradation) {
  FileStore store(
      VirtualDisk(wide_config(), std::make_shared<ReedSolomonScheme>(3, 2)),
      64);
  store.put("alpha", payload(1, 4));
  store.put("beta", payload(2, 4));
  ASSERT_TRUE(store.remove("alpha"));  // leaves free-list state to persist
  store.put("gamma", payload(3, 4));
  store.disk().fail_device(6);

  std::stringstream stream;
  Snapshot::save_file_store(store, stream);
  FileStore restored = Snapshot::load_file_store(stream);

  EXPECT_EQ(restored.file_count(), 2u);
  EXPECT_EQ(restored.block_size(), store.block_size());
  EXPECT_FALSE(restored.contains("alpha"));
  EXPECT_EQ(restored.get("beta"), store.get("beta"));
  EXPECT_EQ(restored.get("gamma"), store.get("gamma"));
  EXPECT_FALSE(restored.disk().scrub().clean());
  EXPECT_GT(restored.disk().rebuild(), 0u);
  EXPECT_TRUE(restored.disk().scrub().clean());

  // The persisted block allocator stays consistent: new writes after the
  // restore reuse the same address space without colliding.
  restored.put("delta", payload(4, 4));
  EXPECT_EQ(restored.get("delta"), std::optional<Bytes>(payload(4, 4)));
  EXPECT_EQ(restored.get("beta"), store.get("beta"));
}

}  // namespace
}  // namespace rds
