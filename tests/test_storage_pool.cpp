#include "src/storage/storage_pool.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace rds {
namespace {

ClusterConfig pool_config() {
  return ClusterConfig({{1, 3000, "a"},
                        {2, 2500, "b"},
                        {3, 2000, "c"},
                        {4, 1500, "d"},
                        {5, 1000, "e"},
                        {6, 1000, "f"}});
}

Bytes payload(std::uint64_t block, std::uint64_t salt) {
  Bytes b(64);
  Xoshiro256 rng(block * 131 + salt);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(StoragePool, VolumesAreIsolatedNamespaces) {
  StoragePool pool(pool_config());
  VirtualDisk& scratch = pool.create_volume(
      "scratch", std::make_shared<MirroringScheme>(2));
  VirtualDisk& archive = pool.create_volume(
      "archive", std::make_shared<ReedSolomonScheme>(4, 2));

  // Both volumes use the SAME block ids with different content.
  for (std::uint64_t b = 0; b < 100; ++b) {
    scratch.write(b, payload(b, 1));
    archive.write(b, payload(b, 2));
  }
  for (std::uint64_t b = 0; b < 100; ++b) {
    EXPECT_EQ(scratch.read(b), payload(b, 1));
    EXPECT_EQ(archive.read(b), payload(b, 2));
  }
  EXPECT_TRUE(scratch.scrub().clean());
  EXPECT_TRUE(archive.scrub().clean());
  EXPECT_EQ(pool.volume_count(), 2u);
  EXPECT_EQ(pool.volume("scratch").volume_id(),
            scratch.volume_id());
}

TEST(StoragePool, SharedCapacityIsContended) {
  // Two volumes' fragments land on the same stores: device usage is the sum.
  StoragePool pool(pool_config());
  VirtualDisk& a = pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  VirtualDisk& b = pool.create_volume("b", std::make_shared<MirroringScheme>(3));
  for (std::uint64_t block = 0; block < 200; ++block) {
    a.write(block, payload(block, 1));
    b.write(block, payload(block, 2));
  }
  std::uint64_t total = 0;
  for (const auto& u : pool.usage()) total += u.used;
  EXPECT_EQ(total, 200u * 2 + 200u * 3);
}

TEST(StoragePool, PoolWideDeviceAddMigratesEveryVolume) {
  StoragePool pool(pool_config());
  VirtualDisk& a = pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  VirtualDisk& b = pool.create_volume("b", std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t block = 0; block < 200; ++block) {
    a.write(block, payload(block, 1));
    b.write(block, payload(block, 2));
  }
  pool.add_device({9, 4000, "grown"});
  EXPECT_TRUE(pool.config().contains(9));
  EXPECT_TRUE(a.config().contains(9));
  EXPECT_TRUE(b.config().contains(9));
  EXPECT_GT(a.used_on(9), 0u);  // shared store: counts both volumes
  for (std::uint64_t block = 0; block < 200; ++block) {
    EXPECT_EQ(a.read(block), payload(block, 1));
    EXPECT_EQ(b.read(block), payload(block, 2));
  }
  EXPECT_TRUE(a.scrub().clean());
  EXPECT_TRUE(b.scrub().clean());
}

TEST(StoragePool, PoolWideRemoveDrainsEveryVolume) {
  StoragePool pool(pool_config());
  VirtualDisk& a = pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  VirtualDisk& b = pool.create_volume("b", std::make_shared<MirroringScheme>(2));
  for (std::uint64_t block = 0; block < 150; ++block) {
    a.write(block, payload(block, 1));
    b.write(block, payload(block, 2));
  }
  pool.remove_device(6);
  EXPECT_FALSE(pool.config().contains(6));
  for (std::uint64_t block = 0; block < 150; ++block) {
    EXPECT_EQ(a.read(block), payload(block, 1));
    EXPECT_EQ(b.read(block), payload(block, 2));
  }
}

TEST(StoragePool, FailureAndRebuildSpanVolumes) {
  StoragePool pool(pool_config());
  VirtualDisk& a = pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  VirtualDisk& b = pool.create_volume("b", std::make_shared<ReedSolomonScheme>(3, 2));
  for (std::uint64_t block = 0; block < 150; ++block) {
    a.write(block, payload(block, 1));
    b.write(block, payload(block, 2));
  }
  pool.fail_device(1);  // biggest device; both volumes degraded
  for (std::uint64_t block = 0; block < 150; ++block) {
    EXPECT_EQ(a.read(block), payload(block, 1));
    EXPECT_EQ(b.read(block), payload(block, 2));
  }
  const std::uint64_t rebuilt = pool.rebuild();
  EXPECT_GT(rebuilt, 0u);
  EXPECT_FALSE(pool.config().contains(1));
  EXPECT_FALSE(a.config().contains(1));
  EXPECT_TRUE(a.scrub().clean());
  EXPECT_TRUE(b.scrub().clean());
}

TEST(StoragePool, DropVolumeReleasesCapacity) {
  StoragePool pool(pool_config());
  VirtualDisk& a = pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  VirtualDisk& b = pool.create_volume("b", std::make_shared<MirroringScheme>(2));
  for (std::uint64_t block = 0; block < 100; ++block) {
    a.write(block, payload(block, 1));
    b.write(block, payload(block, 2));
  }
  std::uint64_t before = 0;
  for (const auto& u : pool.usage()) before += u.used;
  EXPECT_TRUE(pool.drop_volume("a"));
  EXPECT_FALSE(pool.drop_volume("a"));
  std::uint64_t after = 0;
  for (const auto& u : pool.usage()) after += u.used;
  EXPECT_EQ(after, before - 200u);
  // Volume b untouched.
  for (std::uint64_t block = 0; block < 100; ++block) {
    EXPECT_EQ(pool.volume("b").read(block), payload(block, 2));
  }
}

TEST(StoragePool, Validation) {
  StoragePool pool(pool_config());
  pool.create_volume("a", std::make_shared<MirroringScheme>(2));
  EXPECT_THROW(pool.create_volume("a", std::make_shared<MirroringScheme>(2)),
               std::invalid_argument);
  EXPECT_THROW((void)pool.volume("nope"), std::out_of_range);
  EXPECT_THROW(pool.add_device({1, 100, ""}), std::invalid_argument);
  EXPECT_THROW(pool.remove_device(99), std::out_of_range);
  EXPECT_THROW(pool.fail_device(99), std::out_of_range);
  // Scheme needing more fragments than devices.
  EXPECT_THROW(
      pool.create_volume("big", std::make_shared<ReedSolomonScheme>(8, 2)),
      std::invalid_argument);
}

}  // namespace
}  // namespace rds
