// Thread-safety of the strategies: construction produces an immutable
// value, so any number of threads may call place() concurrently.  These
// tests hammer shared strategy instances from several threads and check
// that every thread observes identical, valid placements.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/rendezvous.hpp"

namespace rds {
namespace {

ClusterConfig make_pool() {
  std::vector<Device> devices;
  for (DeviceId uid = 0; uid < 16; ++uid) {
    devices.push_back({uid, 1000 + 250 * uid, ""});
  }
  return ClusterConfig(std::move(devices));
}

template <typename Strategy>
void hammer_replicated(const Strategy& strategy, unsigned k) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kBallsPerThread = 20'000;

  // Reference placements computed single-threaded.
  std::vector<DeviceId> reference(kBallsPerThread * k);
  for (std::uint64_t a = 0; a < kBallsPerThread; ++a) {
    strategy.place(a, {reference.data() + a * k, k});
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&strategy, &reference, &mismatches, k] {
      std::vector<DeviceId> out(k);
      for (std::uint64_t a = 0; a < kBallsPerThread; ++a) {
        strategy.place(a, out);
        for (unsigned j = 0; j < k; ++j) {
          if (out[j] != reference[a * k + j]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, RedundantShareIsShareable) {
  const RedundantShare s(make_pool(), 3);
  hammer_replicated(s, 3);
}

TEST(Concurrency, FastRedundantShareIsShareable) {
  const FastRedundantShare s(make_pool(), 3);
  hammer_replicated(s, 3);
}

TEST(Concurrency, PrecomputedRedundantShareIsShareable) {
  const PrecomputedRedundantShare s(make_pool(), 3);
  hammer_replicated(s, 3);
}

TEST(Concurrency, SingleStrategyIsShareable) {
  const WeightedRendezvous s(make_pool());
  constexpr int kThreads = 4;
  std::vector<DeviceId> reference(20'000);
  for (std::uint64_t a = 0; a < reference.size(); ++a) {
    reference[a] = s.place(a);
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t a = 0; a < reference.size(); ++a) {
        if (s.place(a) != reference[a]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace rds
