#include "src/sim/block_map.hpp"

#include <gtest/gtest.h>

#include "src/core/redundant_share.hpp"
#include "src/placement/static_placement.hpp"

namespace rds {
namespace {

ClusterConfig make_cluster() {
  return ClusterConfig({{1, 50, ""}, {2, 50, ""}, {3, 50, ""}, {4, 50, ""}});
}

TEST(BlockMap, MaterializesSequentialAddresses) {
  const RedundantShare s(make_cluster(), 2);
  const BlockMap map(s, 100, 1000);
  EXPECT_EQ(map.ball_count(), 100u);
  EXPECT_EQ(map.replication(), 2u);
  EXPECT_EQ(map.total_copies(), 200u);
  EXPECT_EQ(map.address(0), 1000u);
  EXPECT_EQ(map.address(99), 1099u);
}

TEST(BlockMap, CopiesMatchStrategy) {
  const RedundantShare s(make_cluster(), 3);
  const BlockMap map(s, 50);
  for (std::uint64_t b = 0; b < 50; ++b) {
    const std::vector<DeviceId> direct = s.place(b);
    const auto stored = map.copies(b);
    EXPECT_TRUE(std::equal(direct.begin(), direct.end(), stored.begin()));
  }
}

TEST(BlockMap, ExplicitAddressList) {
  const RedundantShare s(make_cluster(), 2);
  const std::vector<std::uint64_t> addrs{5, 17, 99, 12345};
  const BlockMap map(s, addrs);
  EXPECT_EQ(map.ball_count(), 4u);
  EXPECT_EQ(map.address(2), 99u);
}

TEST(BlockMap, DeviceCountsSumToTotal) {
  const RedundantShare s(make_cluster(), 2);
  const BlockMap map(s, 500);
  const auto counts = map.device_counts();
  std::uint64_t total = 0;
  for (const auto& [uid, c] : counts) total += c;
  EXPECT_EQ(total, map.total_copies());
  EXPECT_EQ(map.count_on(1), counts.at(1));
}

TEST(BlockMap, CountOnUnknownDeviceIsZero) {
  const RedundantShare s(make_cluster(), 2);
  const BlockMap map(s, 10);
  EXPECT_EQ(map.count_on(99), 0u);
}

TEST(BlockMap, ParallelBuildMatchesSequential) {
  const RedundantShare s(make_cluster(), 3);
  const BlockMap seq(s, 5000, 100);
  const BlockMap par = BlockMap::build_parallel(s, 5000, 4, 100);
  ASSERT_EQ(par.ball_count(), seq.ball_count());
  for (std::uint64_t b = 0; b < 5000; ++b) {
    ASSERT_EQ(par.address(b), seq.address(b));
    const auto cs = seq.copies(b);
    const auto cp = par.copies(b);
    ASSERT_TRUE(std::equal(cs.begin(), cs.end(), cp.begin()));
  }
}

TEST(BlockMap, ParallelBuildValidation) {
  const RedundantShare s(make_cluster(), 2);
  EXPECT_THROW((void)BlockMap::build_parallel(s, 10, 0),
               std::invalid_argument);
  // More threads than balls still works.
  const BlockMap tiny = BlockMap::build_parallel(s, 3, 16);
  EXPECT_EQ(tiny.ball_count(), 3u);
}

TEST(BlockMap, RedundancyHoldsForRedundantShare) {
  const RedundantShare s(make_cluster(), 3);
  const BlockMap map(s, 1000);
  EXPECT_TRUE(map.redundancy_holds());
}

TEST(BlockMap, RedundancyViolationDetected) {
  // A strategy that intentionally duplicates a device.
  class Broken final : public ReplicationStrategy {
   public:
    void place(std::uint64_t, std::span<DeviceId> out) const override {
      out[0] = 1;
      out[1] = 1;
    }
    [[nodiscard]] unsigned replication() const override { return 2; }
    [[nodiscard]] std::string name() const override { return "broken"; }
    [[nodiscard]] std::size_t device_count() const override { return 2; }
  };
  const Broken s;
  const BlockMap map(s, 5);
  EXPECT_FALSE(map.redundancy_holds());
}

}  // namespace
}  // namespace rds
