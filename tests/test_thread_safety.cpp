// Runtime exercises for the annotated lock wrappers (src/util/mutex.hpp).
// The Clang thread-safety analysis proves lock discipline at compile time;
// these tests put the same primitives under real contention so the TSan CI
// job (which runs -R '...|AnnotatedLocks') checks the dynamic side.
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(std::int64_t amount) RDS_EXCLUDES(mu_) {
    const rds::MutexLock lock(mu_);
    balance_ += amount;
  }

  [[nodiscard]] std::int64_t balance() const RDS_EXCLUDES(mu_) {
    const rds::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable rds::Mutex mu_;
  std::int64_t balance_ RDS_GUARDED_BY(mu_) = 0;
};

TEST(AnnotatedLocks, MutexSerializesWriters) {
  Account account;
  constexpr int kThreads = 8;
  constexpr int kDeposits = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&account] {
      for (int i = 0; i < kDeposits; ++i) account.deposit(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(account.balance(), static_cast<std::int64_t>(kThreads) * kDeposits);
}

TEST(AnnotatedLocks, MutexLockRelocksAfterUnlock) {
  rds::Mutex mu;
  int hits = 0;
  {
    rds::MutexLock lock(mu);
    ++hits;
    lock.unlock();
    // While released another thread can take the mutex.
    std::thread outsider([&mu, &hits] {
      const rds::MutexLock inner(mu);
      ++hits;
    });
    outsider.join();
    lock.lock();
    ++hits;
  }
  EXPECT_EQ(hits, 3);
  // Branch on a named bool: the thread-safety analysis tracks the capability
  // through the variable, which it cannot do through gtest's macro plumbing.
  const bool acquired = mu.try_lock();
  EXPECT_TRUE(acquired);
  if (acquired) mu.unlock();
}

TEST(AnnotatedLocks, TryLockReportsContention) {
  rds::Mutex mu;
  const rds::MutexLock lock(mu);
  std::thread outsider([&mu] {
    // Held by the main thread: must fail without blocking.
    const bool acquired = mu.try_lock();
    EXPECT_FALSE(acquired);
    if (acquired) mu.unlock();
  });
  outsider.join();
}

TEST(AnnotatedLocks, CondVarHandsOffUnderLock) {
  rds::Mutex mu;
  rds::CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    rds::MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    observed = 42;
  });
  {
    const rds::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(AnnotatedLocks, MutexOwnersStayMovable) {
  // Snapshot::load_disk/load_pool return lock-owning objects by value; the
  // wrapper must keep the owning class movable while idle.
  Account source;
  source.deposit(7);
  Account moved(std::move(source));
  EXPECT_EQ(moved.balance(), 7);

  std::vector<Account> accounts;
  accounts.reserve(4);
  for (int i = 0; i < 4; ++i) {
    Account a;
    a.deposit(i);
    accounts.push_back(std::move(a));
  }
  EXPECT_EQ(accounts.back().balance(), 3);
}

}  // namespace
