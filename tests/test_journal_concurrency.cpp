// Journal under concurrency: parallel appenders get contiguous LSNs, and a
// journal fed by concurrent admin threads replays to the live state.  Runs
// under TSan in CI (the suite name matches the concurrency filter).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "src/journal/journal.hpp"
#include "src/journal/record.hpp"
#include "src/journal/recovery.hpp"
#include "src/util/random.hpp"

namespace rds::journal {
namespace {

Bytes payload(std::uint64_t block) {
  Bytes b(32);
  Xoshiro256 rng(block + 977);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(JournalConcurrency, ParallelAppendersGetContiguousLsns) {
  std::stringstream wal;
  JournalWriter writer(wal);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;

  std::vector<std::vector<Lsn>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = writer.append(
            make_resize_device(static_cast<DeviceId>(t + 1),
                               1000 + static_cast<std::uint64_t>(i)));
        ASSERT_TRUE(lsn.ok()) << lsn.error().message;
        seen[t].push_back(lsn.value());
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(writer.last_lsn(),
            static_cast<Lsn>(kThreads) * kPerThread);
  // Each thread saw its own LSNs strictly increasing.
  for (const auto& lsns : seen) {
    for (std::size_t i = 1; i < lsns.size(); ++i) {
      EXPECT_LT(lsns[i - 1], lsns[i]);
    }
  }
  // The stream itself is a gap-free, fully parseable journal: the reader
  // enforces LSN contiguity frame by frame.
  JournalReader reader(wal);
  std::uint64_t frames = 0;
  for (;;) {
    auto next = reader.next();
    ASSERT_TRUE(next.ok()) << next.error().message;
    if (!next.value()) break;
    ++frames;
  }
  EXPECT_EQ(frames, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(JournalConcurrency, ConcurrentAdminAndIoReplaysToLiveTopology) {
  ClusterConfig config({{1, 4000, "a"}, {2, 4000, "b"}, {3, 4000, "c"}});
  VirtualDisk disk(std::move(config), std::make_shared<MirroringScheme>(2));
  for (std::uint64_t b = 0; b < 16; ++b) disk.write(b, payload(b));

  std::stringstream ckpt;
  write_checkpoint(disk, 0, ckpt);
  std::stringstream wal;
  auto writer = std::make_shared<JournalWriter>(wal);
  disk.set_journal(writer);

  // Admin threads mutate topology (journaled) while an I/O thread hammers
  // reads and writes (not journaled -- the journal is a topology/content
  // commit log, and block I/O rides the same internal lock).
  constexpr int kAdmins = 3;
  std::vector<std::thread> threads;
  threads.reserve(kAdmins + 1);
  for (int t = 0; t < kAdmins; ++t) {
    threads.emplace_back([&, t] {
      const auto uid = static_cast<DeviceId>(100 + t);
      disk.add_device({uid, 3000, "late-" + std::to_string(t)});
      disk.resize_device(uid, 3500);
    });
  }
  threads.emplace_back([&] {
    for (std::uint64_t b = 0; b < 64; ++b) {
      disk.write(1000 + b, payload(b));
      (void)disk.read(1000 + (b % 16));
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(writer->last_lsn(), 2u * kAdmins);

  auto recovered = Recovery::recover_disk(ckpt, &wal);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;
  VirtualDisk& twin = recovered.value().disk;
  EXPECT_EQ(recovered.value().report.records_applied, 2u * kAdmins);
  EXPECT_FALSE(recovered.value().report.tail_corrupt);

  // The replayed topology matches the live disk exactly (commit order is
  // journal order, whatever interleaving the scheduler picked)...
  EXPECT_TRUE(twin.config() == disk.config());
  // ...and the checkpoint-era data is intact under the final topology.
  for (std::uint64_t b = 0; b < 16; ++b) {
    EXPECT_EQ(twin.read(b), payload(b));
  }
  EXPECT_TRUE(twin.scrub().clean());
}

TEST(JournalConcurrency, AppendFailureIsStickyAcrossThreads) {
  std::stringstream wal;
  JournalWriter writer(wal);
  wal.setstate(std::ios::badbit);

  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto lsn = writer.append(make_rebuild());
        EXPECT_FALSE(lsn.ok());
        EXPECT_EQ(lsn.error().code, ErrorCode::kIoError);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(writer.healthy());
  EXPECT_EQ(writer.last_lsn(), 0u);  // nothing was ever assigned
}

}  // namespace
}  // namespace rds::journal
