#include "src/util/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace rds {
namespace {

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(Hash, Mix64IsInjectiveOnSample) {
  // mix64 is a bijection; any collision on distinct inputs is a bug.
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Hash, Mix64Avalanche) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0.0;
  int trials = 0;
  for (std::uint64_t x = 1; x < 2'000; x += 13) {
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t d = mix64(x) ^ mix64(x ^ (1ULL << bit));
      total_flips += static_cast<double>(__builtin_popcountll(d));
      ++trials;
    }
  }
  const double avg = total_flips / trials;
  EXPECT_NEAR(avg, 32.0, 1.0);
}

TEST(Hash, ToUnitRange) {
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const double u = to_unit(mix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(to_unit(0), 0.0);
  EXPECT_LT(to_unit(~0ULL), 1.0);
}

TEST(Hash, ToUnitIsUniform) {
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    sum += to_unit(mix64(static_cast<std::uint64_t>(i)));
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Hash, Hash2DependsOnBothArguments) {
  EXPECT_NE(hash2(1, 2), hash2(2, 1));
  EXPECT_NE(hash2(1, 2), hash2(1, 3));
  EXPECT_NE(hash2(1, 2), hash2(7, 2));
}

TEST(Hash, Hash3DependsOnLevel) {
  EXPECT_NE(hash3(1, 2, 0), hash3(1, 2, 1));
  EXPECT_NE(hash3(1, 2, 1), hash3(1, 2, 2));
  EXPECT_EQ(hash3(1, 2, 3), hash3(1, 2, 3));
}

TEST(Hash, HashStrBasics) {
  EXPECT_EQ(hash_str("abc"), hash_str("abc"));
  EXPECT_NE(hash_str("abc"), hash_str("abd"));
  EXPECT_NE(hash_str(""), hash_str("a"));
}

TEST(Hash, UnitValueStableUnderUnrelatedChanges) {
  // The (address, uid, level) experiment must not depend on anything else --
  // the adaptivity analysis rests on this.  Trivially true by construction;
  // pin it so a refactor cannot silently break it.
  const double v = unit_value(42, 7, 2);
  EXPECT_EQ(v, unit_value(42, 7, 2));
  EXPECT_NE(v, unit_value(43, 7, 2));
  EXPECT_NE(v, unit_value(42, 8, 2));
  EXPECT_NE(v, unit_value(42, 7, 3));
}

TEST(Hash, PairwiseUnitValuesUncorrelated) {
  // Correlation between u(a, x) and u(a, y) over addresses a should vanish.
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  constexpr int kN = 50'000;
  for (int a = 0; a < kN; ++a) {
    const double x = unit_value(static_cast<std::uint64_t>(a), 1);
    const double y = unit_value(static_cast<std::uint64_t>(a), 2);
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  const double n = kN;
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(std::abs(corr), 0.02);
}

}  // namespace
}  // namespace rds
