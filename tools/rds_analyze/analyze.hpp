#pragma once

/// rds_analyze: flow-aware, whole-program static analysis for this
/// repository (docs/static_analysis.md).  Eight rule families on top of
/// the lexer + CFG + call-graph + summary layers:
///
///   lock-order            cycles in the mutex acquisition graph
///                         (summary-propagated through calls), and
///                         volume->pool inversions of the documented
///                         pool->volume order (storage_pool.hpp)
///   journal-protocol      the journal append is the commit point: its
///                         Result is checked on every path and no state
///                         mutation is reachable after an append, even
///                         when the append hides inside a callee
///                         (docs/persistence.md)
///   metric-balance        every gauge add() is matched by a sub() on
///                         all outgoing paths, exception edges included;
///                         a callee that sub()s on all its paths credits
///                         the caller
///   result-flow           a Result from a try_* call stored in a local
///                         is inspected on every path; passing it to a
///                         callee only counts when the callee consumes
///                         its Result parameters, and a function taking
///                         a Result parameter must consume it
///   capacity-arith        unchecked +/* on capacity values outside
///                         src/util/checked_math.hpp
///   rcu-escape            an epoch-guarded pointer (RcuCell read,
///                         placement_snapshot, copy_locations) must not
///                         be stored in a member, captured by an
///                         escaping lambda, or returned as a raw view
///   lock-held-across-call blocking operations (journal append, fsync,
///                         sleep, thread join) while a mutex is held --
///                         directly or through a call whose callee
///                         blocks without a lock of its own
///   stale-suppression     a `// rds_lint: allow(rule)` comment that no
///                         longer matches any finding of this tool
///
/// `// rds_lint: allow(rule) -- reason` suppressions carry over from
/// rds_lint unchanged.

#include <string>
#include <string_view>
#include <vector>

#include "tools/rds_analyze/callgraph.hpp"
#include "tools/rds_analyze/summary.hpp"

namespace rds::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// When non-empty, only run these rule ids.  stale-suppression needs
  /// every rule's verdict and therefore only runs with an empty filter.
  std::vector<std::string> only_rules;
};

/// Stable ids of every rule family.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Whole-program analyzer: feed it every translation unit, then run().
/// Cross-file state (the call graph, summaries, the lock acquisition
/// graph) is built over everything added; per-function rules run per
/// file against the whole-program summaries.
class Analyzer {
 public:
  /// Analyze in-memory text under the given path (fixtures, tests).
  void add_text(std::string path, std::string_view text);

  /// Read and add a file; returns false (and records an io error) when
  /// the file cannot be read.
  bool add_file(const std::string& path);

  [[nodiscard]] std::vector<Finding> run(const Options& opts = {});

  [[nodiscard]] const std::vector<std::string>& io_errors() const {
    return io_errors_;
  }

  /// The call graph / summaries of the last run() (for --emit-callgraph
  /// and the tests); empty before the first run.
  [[nodiscard]] const CallGraph& callgraph() const { return cg_; }
  [[nodiscard]] const Summaries& summaries() const { return sums_; }

 private:
  std::vector<std::string> paths_;
  std::vector<std::string> texts_;
  std::vector<std::string> io_errors_;
  std::vector<FileModel> files_;  ///< stable: cg_ points into it
  CallGraph cg_;
  Summaries sums_;
};

/// One-shot single-file convenience used by the fixture tests.
[[nodiscard]] std::vector<Finding> analyze_text(const std::string& path,
                                                std::string_view text,
                                                const Options& opts = {});

}  // namespace rds::analyze
