#pragma once

/// rds_analyze: flow-aware static analysis for this repository
/// (docs/static_analysis.md).  Five whole-program / per-function rule
/// families on top of the lexer + CFG layers:
///
///   lock-order       cycles in the mutex acquisition graph, and
///                    volume->pool inversions of the documented
///                    pool->volume order (storage_pool.hpp)
///   journal-protocol the journal append is the commit point: its Result
///                    is checked on every path and no state mutation is
///                    reachable after an append (docs/persistence.md)
///   metric-balance   every gauge add() is matched by a sub() on all
///                    outgoing paths, exception edges included
///   result-flow      a Result from a try_* call stored in a local is
///                    inspected on every (non-exceptional) path
///   capacity-arith   unchecked +/* on capacity values outside
///                    src/util/checked_math.hpp
///
/// `// rds_lint: allow(rule) -- reason` suppressions carry over from
/// rds_lint unchanged.

#include <string>
#include <string_view>
#include <vector>

namespace rds::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// When non-empty, only run these rule ids.
  std::vector<std::string> only_rules;
};

/// Stable ids of every rule family.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Whole-program analyzer: feed it every translation unit, then run().
/// Cross-file state (the lock acquisition graph, the method registry) is
/// built over everything added; per-function rules run per file.
class Analyzer {
 public:
  /// Analyze in-memory text under the given path (fixtures, tests).
  void add_text(std::string path, std::string_view text);

  /// Read and add a file; returns false (and records an io error) when
  /// the file cannot be read.
  bool add_file(const std::string& path);

  [[nodiscard]] std::vector<Finding> run(const Options& opts = {});

  [[nodiscard]] const std::vector<std::string>& io_errors() const {
    return io_errors_;
  }

 private:
  std::vector<std::string> paths_;
  std::vector<std::string> texts_;
  std::vector<std::string> io_errors_;
};

/// One-shot single-file convenience used by the fixture tests.
[[nodiscard]] std::vector<Finding> analyze_text(const std::string& path,
                                                std::string_view text,
                                                const Options& opts = {});

}  // namespace rds::analyze
