#include "tools/rds_analyze/callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <deque>

namespace rds::analyze {

// ---- shared token-pattern helpers ------------------------------------------

bool is_ident(const Tok& t, std::string_view s) {
  return t.kind == Kind::kIdent && t.text == s;
}

bool is_punct(const Tok& t, std::string_view s) {
  return t.kind == Kind::kPunct && t.text == s;
}

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::size_t fwd_match(const std::vector<Tok>& t, std::size_t i,
                      const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

std::size_t find_member_mutation(const std::vector<Tok>& t, std::size_t b,
                                 std::size_t e) {
  static const std::set<std::string> kMutators = {
      "insert", "erase",   "emplace", "emplace_back", "push_back",
      "pop_back", "clear", "reset",   "assign",       "push",
      "pop",    "resize",  "try_emplace"};
  static const std::set<std::string> kAssign = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    const Tok& tok = t[i];
    if (tok.kind != Kind::kIdent || tok.text.size() < 2 ||
        !tok.text.ends_with("_") || tok.text.ends_with("__")) {
      continue;
    }
    if (i > b && t[i - 1].kind == Kind::kPunct &&
        (t[i - 1].text == "++" || t[i - 1].text == "--")) {
      return i - 1;
    }
    if (i > b && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->") ||
                  is_punct(t[i - 1], "::"))) {
      continue;  // x.y_ / Cls::kConst_ -- not a member of *this*
    }
    if (i + 1 >= e) continue;
    const Tok& nx = t[i + 1];
    if (nx.kind == Kind::kPunct && kAssign.contains(nx.text)) return i;
    if ((is_punct(nx, ".") || is_punct(nx, "->")) && i + 3 < e &&
        t[i + 2].kind == Kind::kIdent && is_punct(t[i + 3], "(") &&
        kMutators.contains(t[i + 2].text)) {
      return i;
    }
    if ((is_punct(nx, ".") || is_punct(nx, "->")) && i + 3 < e &&
        t[i + 2].kind == Kind::kIdent && t[i + 3].kind == Kind::kPunct &&
        kAssign.contains(t[i + 3].text)) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

std::size_t find_append_call(const std::vector<Tok>& t, std::size_t b,
                             std::size_t e, std::string* helper_name) {
  for (std::size_t i = b; i + 1 < e && i + 1 < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent || !is_punct(t[i + 1], "(")) continue;
    if (t[i].text == "append" && i >= 2 &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        t[i - 2].kind == Kind::kIdent) {
      const std::string recv = lower(t[i - 2].text);
      if (recv.find("journal") != std::string::npos ||
          recv.find("sink") != std::string::npos ||
          recv.find("wal") != std::string::npos) {
        helper_name->clear();
        return i;
      }
    }
    const std::string name = lower(t[i].text);
    if ((name.find("journal") != std::string::npos &&
         (name.ends_with("_locked") || name.find("append") !=
                                           std::string::npos)) &&
        (i < 2 || !(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")))) {
      *helper_name = t[i].text;
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

std::string_view edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kDirect:
      return "direct";
    case EdgeKind::kWrapper:
      return "wrapper";
    case EdgeKind::kFactory:
      return "factory";
    case EdgeKind::kVirtual:
      return "virtual";
  }
  return "direct";
}

// ---- generic Tarjan --------------------------------------------------------

SccResult tarjan_scc(std::size_t n, const std::vector<std::vector<int>>& adj) {
  SccResult r;
  r.comp.assign(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int> stack;
  int next_index = 0;
  struct Frame {
    int v = 0;
    std::size_t next = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> call_stack;
    const auto open = [&](int v) {
      index[v] = low[v] = next_index++;
      stack.push_back(v);
      on_stack[v] = 1;
      call_stack.push_back({v, 0});
    };
    open(static_cast<int>(root));
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      if (f.next < adj[f.v].size()) {
        const int w = adj[f.v][f.next++];
        if (index[w] == -1) {
          open(w);
        } else if (on_stack[w] != 0) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            const int v = stack.back();
            stack.pop_back();
            on_stack[v] = 0;
            r.comp[v] = r.count;
            if (v == f.v) break;
          }
          ++r.count;
        }
        const int done = f.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          low[call_stack.back().v] =
              std::min(low[call_stack.back().v], low[done]);
        }
      }
    }
  }
  return r;
}

// ---- fact collection -------------------------------------------------------

namespace {

/// Parameter and local types, best effort: `Type[&*] name` where Type is
/// a known class name, plus `var = make_*(...)`-style locals typed by the
/// called factory's declared interface class.
std::map<std::string, std::string> collect_types(
    const Function& fn, const std::set<std::string>& classes,
    const std::map<MethodKey, MethodInfo>& methods) {
  std::map<std::string, std::string> types;
  const auto scan = [&](const std::vector<Tok>& toks) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Kind::kIdent || !classes.contains(toks[i].text)) {
        continue;
      }
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Kind::kIdent) {
        types[toks[j].text] = toks[i].text;
      }
    }
  };
  scan(fn.decl);
  scan(fn.body);

  // Factory-typed locals: `auto s = make_widget(...)` gives `s` the
  // factory's declared return class, so calls through it resolve.
  const auto ret_class_of = [&](const std::string& g) -> std::string {
    const auto free_it = methods.find({"", g});
    if (free_it != methods.end() && !free_it->second.ret_class.empty()) {
      return free_it->second.ret_class;
    }
    const auto self_it = methods.find({fn.cls, g});
    if (self_it != methods.end() && !self_it->second.ret_class.empty()) {
      return self_it->second.ret_class;
    }
    return {};
  };
  const std::vector<Tok>& b = fn.body;
  for (std::size_t i = 0; i + 2 < b.size(); ++i) {
    if (b[i].kind != Kind::kIdent || !is_punct(b[i + 1], "=")) continue;
    if (types.contains(b[i].text)) continue;
    for (std::size_t j = i + 2; j + 1 < b.size(); ++j) {
      if (is_punct(b[j], ";")) break;
      if (b[j].kind == Kind::kIdent && is_punct(b[j + 1], "(")) {
        const std::string rc = ret_class_of(b[j].text);
        if (!rc.empty()) types[b[i].text] = rc;
        break;  // only the outermost call types the variable
      }
    }
  }
  return types;
}

std::set<std::string> collect_local_mutexes(const Function& fn) {
  std::set<std::string> out;
  const std::vector<Tok>& b = fn.body;
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    if (is_ident(b[i], "Mutex") && b[i + 1].kind == Kind::kIdent) {
      out.insert(b[i + 1].text);
    }
  }
  return out;
}

bool call_excluded(const std::string& name) {
  static const std::set<std::string> kNotCalls = {
      "if",     "while",    "for",     "switch",   "catch",   "sizeof",
      "alignof", "decltype", "noexcept", "static_assert", "alignas",
      "return", "throw",    "new",     "delete",   "MutexLock"};
  return kNotCalls.contains(name) || name.starts_with("RDS_");
}

/// Token-linear walk with brace scoping.  Locks are RAII in this
/// codebase, so scope tracking (plus explicit lock()/unlock() toggles,
/// which BatchPlacer::worker_loop relies on) is an accurate model.
FnFacts collect_fn_facts(const Function& fn, const std::string& cls_prefix,
                         const std::vector<std::string>& entry_locks,
                         const std::map<std::string, std::string>& types,
                         const std::set<std::string>& local_mutexes) {
  FnFacts facts;
  struct Active {
    std::string var;
    std::string node;
    int depth = 0;
    bool live = true;
  };
  std::vector<Active> locks;
  for (const std::string& node : entry_locks) {
    locks.push_back({"<entry>", node, -1, true});
  }
  const auto held = [&]() {
    std::vector<std::string> h;
    for (const Active& a : locks) {
      if (a.live) h.push_back(a.node);
    }
    return h;
  };

  const std::vector<Tok>& b = fn.body;
  int depth = 0;
  const std::string self = fn.display;
  const auto resolve_lock_expr = [&](std::size_t abeg,
                                     std::size_t aend) -> std::string {
    const std::size_t n = aend - abeg;
    if (n == 1 && b[abeg].kind == Kind::kIdent) {
      const std::string& v = b[abeg].text;
      if (local_mutexes.contains(v)) return self + "." + v;
      return cls_prefix + "::" + v;
    }
    if (n == 3 && b[abeg].kind == Kind::kIdent &&
        (is_punct(b[abeg + 1], ".") || is_punct(b[abeg + 1], "->")) &&
        b[abeg + 2].kind == Kind::kIdent) {
      const auto it = types.find(b[abeg].text);
      if (it != types.end()) return it->second + "::" + b[abeg + 2].text;
      return "?" + self + "::" + b[abeg].text + "." + b[abeg + 2].text;
    }
    if (n >= 2 && b[abeg].kind == Kind::kIdent && is_punct(b[abeg + 1], "(")) {
      // Lock-returning helper, e.g. lock_of(uid): one node per helper.
      return cls_prefix + "::" + b[abeg].text + "()";
    }
    std::string joined = "?" + self + "::";
    for (std::size_t k = abeg; k < aend; ++k) joined += b[k].text;
    return joined;
  };

  std::size_t i = 0;
  while (i < b.size()) {
    const Tok& t = b[i];
    if (is_punct(t, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      std::erase_if(locks, [&](const Active& a) { return a.depth >= depth; });
      --depth;
      ++i;
      continue;
    }
    if (is_ident(t, "MutexLock")) {
      std::size_t j = i + 1;
      std::string var;
      if (j < b.size() && b[j].kind == Kind::kIdent) {
        var = b[j].text;
        ++j;
      }
      if (j < b.size() && (is_punct(b[j], "(") || is_punct(b[j], "{"))) {
        const char* open = b[j].text == "(" ? "(" : "{";
        const char* close = b[j].text == "(" ? ")" : "}";
        const std::size_t cend = fwd_match(b, j, open, close);
        const std::string node = resolve_lock_expr(j + 1, cend);
        facts.acqs.push_back({node, t.line, held()});
        locks.push_back({var, node, depth, true});
        i = std::min(cend + 1, b.size());
        continue;
      }
      ++i;
      continue;
    }
    // `lock.unlock()` / `lock.lock()` on a tracked guard variable.
    if (t.kind == Kind::kIdent && i + 3 < b.size() && is_punct(b[i + 1], ".") &&
        (is_ident(b[i + 2], "unlock") || is_ident(b[i + 2], "lock")) &&
        is_punct(b[i + 3], "(")) {
      bool toggled = false;
      for (Active& a : locks) {
        if (a.var == t.text) {
          const bool want = b[i + 2].text == "lock";
          if (want && !a.live) {
            a.live = false;  // exclude self from held() below
            std::vector<std::string> h = held();
            facts.acqs.push_back({a.node, t.line, std::move(h)});
          }
          a.live = want;
          toggled = true;
        }
      }
      if (toggled) {
        i += 4;
        continue;
      }
    }
    // Directly blocking operations, recorded with the held set.
    if (t.kind == Kind::kIdent && i + 1 < b.size() && is_punct(b[i + 1], "(")) {
      std::string desc;
      const bool has_recv =
          i >= 2 && (is_punct(b[i - 1], ".") || is_punct(b[i - 1], "->")) &&
          b[i - 2].kind == Kind::kIdent;
      if (t.text == "append" && has_recv) {
        const std::string recv = lower(b[i - 2].text);
        if (recv.find("journal") != std::string::npos ||
            recv.find("sink") != std::string::npos ||
            recv.find("wal") != std::string::npos) {
          desc = "journal append via '" + b[i - 2].text + "'";
        }
      } else if (t.text == "fsync") {
        desc = "fsync";
      } else if (t.text == "sleep_for" || t.text == "sleep_until") {
        desc = "sleep";
      } else if (t.text == "join" && has_recv) {
        desc = "thread join";
      }
      if (!desc.empty()) {
        facts.blocking.push_back({std::move(desc), t.line, i, held()});
      }
    }
    // Call sites.
    if (t.kind == Kind::kIdent && i + 1 < b.size() && is_punct(b[i + 1], "(") &&
        !call_excluded(t.text)) {
      CallSite c;
      c.name = t.text;
      c.line = t.line;
      c.tok = i;
      c.held = held();
      if (i >= 2 && (is_punct(b[i - 1], ".") || is_punct(b[i - 1], "->"))) {
        c.has_recv = true;
        if (b[i - 2].kind == Kind::kIdent) {
          const auto it = types.find(b[i - 2].text);
          if (it != types.end()) c.recv_type = it->second;
        }
      } else if (i >= 2 && is_punct(b[i - 1], "::") &&
                 b[i - 2].kind == Kind::kIdent) {
        c.qualified = true;
        c.qual = b[i - 2].text;
      }
      facts.calls.push_back(std::move(c));
      ++i;
      continue;
    }
    ++i;
  }
  return facts;
}

}  // namespace

// ---- CallGraph -------------------------------------------------------------

const MethodInfo* CallGraph::find(const std::string& cls,
                                  const std::string& name) const {
  const auto it = methods_.find({cls, name});
  return it == methods_.end() ? nullptr : &it->second;
}

const FnFacts& CallGraph::facts_of(const Function* fn) const {
  static const FnFacts kEmpty;
  const auto it = facts_.find(fn);
  return it == facts_.end() ? kEmpty : it->second;
}

bool CallGraph::vetoed(const std::string& name,
                       const std::string& enclosing) const {
  for (const auto& [key, m] : methods_) {
    if (key.second != name || key.first.empty() || key.first == enclosing) {
      continue;
    }
    if (!m.abstract && !m.locking_ann && !m.requires_lock &&
        m.direct_locks.empty()) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<MethodKey, EdgeKind>> CallGraph::resolve(
    const CallSite& c, const std::string& enclosing) const {
  std::vector<std::pair<MethodKey, EdgeKind>> out;
  const auto add = [&](MethodKey k, EdgeKind kind) {
    for (const auto& [have, hk] : out) {
      if (have == k) return;
    }
    out.emplace_back(std::move(k), kind);
  };
  // Walk the class hierarchy upward for an inherited method.
  const auto find_in_hierarchy =
      [&](const std::string& cls,
          const std::string& name) -> std::vector<MethodKey> {
    std::deque<std::string> q{cls};
    std::set<std::string> seen{cls};
    while (!q.empty()) {
      const std::string cur = q.front();
      q.pop_front();
      if (find(cur, name) != nullptr) return {{cur, name}};
      const auto bit = bases_.find(cur);
      if (bit == bases_.end()) continue;
      for (const std::string& base : bit->second) {
        if (seen.insert(base).second) q.push_back(base);
      }
    }
    return {};
  };
  const auto expand = [&](const MethodKey& k) {
    add(k, c.recv_type.empty() && !c.qualified && !c.has_recv
               ? EdgeKind::kDirect
               : (types_via_factory_.contains(c.recv_type)
                      ? EdgeKind::kFactory
                      : EdgeKind::kDirect));
    const MethodInfo* mi = find(k.first, k.second);
    // Wrapper twin: a declared-but-unseen `f` forwards to `try_f`.
    if (mi != nullptr && !mi->defined &&
        find(k.first, "try_" + k.second) != nullptr) {
      add({k.first, "try_" + k.second}, EdgeKind::kWrapper);
    }
    // Virtual fan-out: every derived class overriding the method.
    const auto dit = derived_.find(k.first);
    if (dit != derived_.end()) {
      for (const std::string& d : dit->second) {
        if (find(d, k.second) != nullptr) {
          add({d, k.second}, EdgeKind::kVirtual);
        }
      }
    }
  };

  if (c.qualified) {
    if (find(c.qual, c.name) != nullptr) {
      expand({c.qual, c.name});
      return out;
    }
    if (find("", c.name) != nullptr) expand({"", c.name});
    return out;
  }
  if (!c.has_recv) {
    if (!enclosing.empty()) {
      const auto hit = find_in_hierarchy(enclosing, c.name);
      if (!hit.empty()) {
        expand(hit.front());
        return out;
      }
      if (find(enclosing, "try_" + c.name) != nullptr) {
        add({enclosing, "try_" + c.name}, EdgeKind::kWrapper);
        return out;
      }
    }
    if (find("", c.name) != nullptr) {
      expand({"", c.name});
      return out;
    }
    if (find("", "try_" + c.name) != nullptr) {
      add({"", "try_" + c.name}, EdgeKind::kWrapper);
    }
    return out;
  }
  if (!c.recv_type.empty()) {
    const auto hit = find_in_hierarchy(c.recv_type, c.name);
    if (!hit.empty()) {
      expand(hit.front());
      return out;
    }
    if (find(c.recv_type, "try_" + c.name) != nullptr) {
      add({c.recv_type, "try_" + c.name}, EdgeKind::kWrapper);
    }
    return out;
  }
  // Unknown receiver: candidates are lock-relevant definers elsewhere,
  // unless a plain definer makes the name ambiguous.
  if (vetoed(c.name, enclosing)) return out;
  for (const auto& [key, m] : methods_) {
    if (key.second != c.name || key.first.empty() || key.first == enclosing) {
      continue;
    }
    if (m.locking_ann || m.requires_lock || !m.direct_locks.empty() ||
        m.defined) {
      add(key, EdgeKind::kDirect);
    }
  }
  return out;
}

std::vector<MethodKey> CallGraph::resolve_keys(
    const CallSite& c, const std::string& enclosing) const {
  std::vector<MethodKey> keys;
  for (auto& [key, kind] : resolve(c, enclosing)) keys.push_back(key);
  return keys;
}

CallGraph CallGraph::build(const std::vector<FileModel>& files) {
  CallGraph g;
  // Classes, inheritance, RcuCell-typed members.
  std::map<std::string, std::set<std::string>> children;
  for (const FileModel& fm : files) {
    for (const std::string& c : fm.classes) g.classes_.insert(c);
    for (const auto& [cls, bases] : fm.bases) {
      for (const std::string& base : bases) {
        g.bases_[cls].push_back(base);
        children[base].insert(cls);
      }
    }
    const std::vector<Tok>& t = fm.toks;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!is_ident(t[i], "RcuCell") || !is_punct(t[i + 1], "<")) continue;
      int angle = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") ++angle;
        if (t[j].text == ">") --angle;
        if (t[j].text == ">>") angle -= 2;
        if (angle <= 0) break;
      }
      if (j + 1 < t.size() && t[j + 1].kind == Kind::kIdent &&
          t[j + 1].text.ends_with("_")) {
        g.rcu_members_.insert(t[j + 1].text);
      }
    }
  }
  for (auto& [cls, bases] : g.bases_) {
    std::sort(bases.begin(), bases.end());
    bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
  }
  // Transitive derived-of closure.
  for (const auto& [base, kids] : children) {
    std::deque<std::string> q(kids.begin(), kids.end());
    std::set<std::string>& all = g.derived_[base];
    while (!q.empty()) {
      const std::string cur = q.front();
      q.pop_front();
      if (!all.insert(cur).second) continue;
      const auto it = children.find(cur);
      if (it != children.end()) {
        for (const std::string& k : it->second) q.push_back(k);
      }
    }
  }

  // Registry pass: declarations first.
  for (const FileModel& fm : files) {
    for (const Declaration& d : fm.decls) {
      MethodInfo& m = g.methods_[{d.cls, d.name}];
      m.declared = true;
      m.abstract = m.abstract || d.abstract;
      m.locking_ann = m.locking_ann || d.locking;
      m.requires_lock = m.requires_lock || d.requires_lock;
      m.returns_result = m.returns_result || d.returns_result;
      m.returns_raw = m.returns_raw || d.returns_raw;
      for (const std::string& lk : d.required_locks) {
        const std::string node = d.cls.empty() ? lk : d.cls + "::" + lk;
        if (std::find(m.required_locks.begin(), m.required_locks.end(),
                      node) == m.required_locks.end()) {
          m.required_locks.push_back(node);
        }
      }
      if (m.ret_class.empty()) {
        for (const std::string& ri : d.ret_idents) {
          if (g.classes_.contains(ri)) {
            m.ret_class = ri;
            break;
          }
        }
      }
      if (d.result_params.size() > m.result_params.size()) {
        m.result_params = d.result_params;
      }
    }
  }
  // `*_locked` naming without an explicit RDS_REQUIRES defaults to the
  // class mutex.
  for (auto& [key, m] : g.methods_) {
    if (m.requires_lock && m.required_locks.empty() && !key.first.empty()) {
      m.required_locks.push_back(key.first + "::mu_");
    }
  }
  // Interface classes reachable through factories, for edge labeling.
  for (const auto& [key, m] : g.methods_) {
    if (!m.ret_class.empty() && key.second.find("make_") != std::string::npos) {
      g.types_via_factory_.insert(m.ret_class);
    }
  }

  // Facts pass: per-definition lock/call/blocking facts.
  for (const FileModel& fm : files) {
    for (const Function& fn : fm.functions) {
      MethodInfo& m = g.methods_[{fn.cls, fn.name}];
      m.defined = true;
      m.is_lambda = m.is_lambda || fn.is_lambda;
      if (fn.name.ends_with("_locked")) {
        m.requires_lock = true;
        if (m.required_locks.empty() && !fn.cls.empty()) {
          m.required_locks.push_back(fn.cls + "::mu_");
        }
      }
      std::vector<std::string> entry_locks = m.required_locks;
      if (entry_locks.empty() && m.requires_lock && !fn.cls.empty()) {
        entry_locks.push_back(fn.cls + "::mu_");
      }
      const auto types = collect_types(fn, g.classes_, g.methods_);
      const auto local_mutexes = collect_local_mutexes(fn);
      FnFacts facts =
          collect_fn_facts(fn, fn.cls, entry_locks, types, local_mutexes);
      for (const LockAcq& a : facts.acqs) m.direct_locks.insert(a.node);
      if (!fn.is_lambda) {
        // Calls *into* a lambda are not resolvable by name; the lambda
        // body is analyzed as its own function instead.
        for (const CallSite& c : facts.calls) m.calls.push_back(c);
      }
      m.defs.push_back(&fn);
      m.def_files.push_back(&fm);
      g.facts_.emplace(&fn, std::move(facts));
    }
  }

  // Resolved edges, deduplicated per (from, to, kind).
  for (const auto& [key, m] : g.methods_) {
    std::set<std::pair<MethodKey, EdgeKind>> seen;
    for (const CallSite& c : m.calls) {
      for (const auto& [target, kind] : g.resolve(c, key.first)) {
        if (target == key) continue;
        if (!seen.insert({target, kind}).second) continue;
        g.edges_[key].push_back({target, kind, c.line});
      }
    }
  }

  // SCC condensation, callee-first.
  std::vector<MethodKey> keys;
  keys.reserve(g.methods_.size());
  std::map<MethodKey, int> id;
  for (const auto& [key, m] : g.methods_) {
    id[key] = static_cast<int>(keys.size());
    keys.push_back(key);
  }
  std::vector<std::vector<int>> adj(keys.size());
  for (const auto& [from, outs] : g.edges_) {
    for (const CallEdge& e : outs) {
      adj[id[from]].push_back(id[e.to]);
    }
  }
  const SccResult scc = tarjan_scc(keys.size(), adj);
  g.sccs_.assign(static_cast<std::size_t>(scc.count), {});
  for (std::size_t i = 0; i < keys.size(); ++i) {
    g.sccs_[static_cast<std::size_t>(scc.comp[i])].push_back(keys[i]);
  }
  return g;
}

}  // namespace rds::analyze
