#include "tools/rds_analyze/cfg.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

namespace rds::analyze {
namespace {

bool is_code(const Tok& t) {
  return t.kind != Kind::kComment && t.kind != Kind::kPreproc;
}

bool is_kw(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",       "while",   "for",      "switch",  "catch",
      "sizeof",   "alignof", "decltype", "noexcept", "static_assert",
      "alignas",  "return",  "co_return", "unsigned", "signed",
      "int",      "char",    "bool",     "float",   "double",
      "void",     "auto",    "new",      "delete",  "throw"};
  return kKw.contains(s);
}

/// Index of the matching closer for the opener at `i` (same depth), or
/// `toks.size()` when unbalanced.  Works for {} () [] over code tokens.
std::size_t match(const std::vector<Tok>& toks, std::size_t i,
                  const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == open) ++depth;
    if (toks[j].text == close && --depth == 0) return j;
  }
  return toks.size();
}

// ---- function extraction ---------------------------------------------------

struct ScopeEnt {
  enum K { kNs, kClass };
  K k;
  std::string name;
};

/// What a `{` at namespace/class scope opens, from the declaration tokens
/// collected since the last boundary.
enum class DeclKind { kNamespace, kClass, kFunction, kOther };

DeclKind classify(const std::vector<const Tok*>& decl) {
  for (std::size_t i = 0; i < decl.size(); ++i) {
    const Tok& t = *decl[i];
    if (t.kind == Kind::kPunct && t.text == "(") break;
    if (t.kind != Kind::kIdent) continue;
    if (t.text == "template") {
      // Skip the parameter list so `template <class T>` does not read as
      // a class definition.
      int depth = 0;
      while (i + 1 < decl.size()) {
        ++i;
        if (decl[i]->text == "<") ++depth;
        if (decl[i]->text == ">" && --depth <= 0) break;
      }
      continue;
    }
    if (t.text == "namespace") return DeclKind::kNamespace;
    if (t.text == "class" || t.text == "struct" || t.text == "enum" ||
        t.text == "union") {
      return DeclKind::kClass;
    }
  }
  for (const Tok* t : decl) {
    if (t->kind == Kind::kPunct && t->text == "(") return DeclKind::kFunction;
  }
  return DeclKind::kOther;
}

std::string class_name_of(const std::vector<const Tok*>& decl) {
  std::size_t i = 0;
  while (i < decl.size() && !(decl[i]->kind == Kind::kIdent &&
                              (decl[i]->text == "class" ||
                               decl[i]->text == "struct" ||
                               decl[i]->text == "enum" ||
                               decl[i]->text == "union"))) {
    ++i;
  }
  ++i;
  while (i < decl.size()) {
    const Tok& t = *decl[i];
    if (t.text == ":") break;  // base clause
    if (t.kind == Kind::kIdent) {
      if (t.text == "class" || t.text == "final" || t.text == "alignas") {
        ++i;
        continue;
      }
      // Macro attribute like RDS_CAPABILITY("mutex"): skip its argument
      // list and keep looking for the real name.
      if (i + 1 < decl.size() && decl[i + 1]->text == "(") {
        int depth = 0;
        ++i;
        while (i < decl.size()) {
          if (decl[i]->text == "(") ++depth;
          if (decl[i]->text == ")" && --depth == 0) break;
          ++i;
        }
        ++i;
        continue;
      }
      return t.text;
    }
    if (t.text == "[") {  // [[attribute]]
      int depth = 0;
      while (i < decl.size()) {
        if (decl[i]->text == "[") ++depth;
        if (decl[i]->text == "]" && --depth == 0) break;
        ++i;
      }
    }
    ++i;
  }
  return {};
}

/// Locates the parameter-list '(' in a function declaration and reports
/// the name before it plus an optional `Cls::` qualifier.
struct FnSig {
  std::string cls;
  std::string name;
  std::size_t paren = 0;  ///< index of '(' in decl
};

FnSig fn_signature(const std::vector<const Tok*>& decl) {
  FnSig sig;
  for (std::size_t i = 0; i < decl.size(); ++i) {
    if (decl[i]->text != "(") continue;
    sig.paren = i;
    if (i == 0) return sig;
    const Tok& prev = *decl[i - 1];
    if (prev.kind == Kind::kIdent) {
      sig.name = prev.text;
      if (i >= 3 && decl[i - 2]->text == "::" &&
          decl[i - 3]->kind == Kind::kIdent) {
        sig.cls = decl[i - 3]->text;
      }
    } else if (i >= 2 && decl[i - 2]->kind == Kind::kIdent &&
               decl[i - 2]->text == "operator") {
      sig.name = "operator" + prev.text;
    }
    return sig;
  }
  return sig;
}

bool has_ident(const std::vector<const Tok*>& decl, std::string_view name) {
  return std::any_of(decl.begin(), decl.end(), [&](const Tok* t) {
    return t->kind == Kind::kIdent && t->text == name;
  });
}

/// Identifiers never naming a class in a return type position.
bool is_type_noise(const std::string& s) {
  static const std::set<std::string> kNoise = {
      "const",    "static",   "inline",    "virtual", "explicit",
      "friend",   "nodiscard", "constexpr", "noexcept", "unsigned",
      "signed",   "long",     "short",     "int",     "bool",
      "void",     "auto",     "double",    "float",   "char",
      "typename", "template", "class",     "struct",  "std",
      "override", "final",    "operator",  "maybe_unused"};
  return kNoise.contains(s);
}

/// Names of `Result`-typed parameters in decl's parameter list: for each
/// top-level comma-separated parameter mentioning `Result`, the last
/// identifier is the parameter name (`const Result<T>& r` -> "r").
std::vector<std::string> collect_result_params(
    const std::vector<const Tok*>& decl, std::size_t paren) {
  std::vector<std::string> out;
  if (paren >= decl.size()) return out;
  int par = 0;
  int angle = 0;
  bool has_result = false;
  std::string last_ident;
  for (std::size_t i = paren; i < decl.size(); ++i) {
    const Tok& t = *decl[i];
    if (t.text == "(") ++par;
    if (t.text == "<") ++angle;
    if (t.text == ">") --angle;
    if (t.text == ">>") angle -= 2;
    const bool param_end =
        (t.text == "," && par == 1 && angle <= 0) ||
        (t.text == ")" && par == 1);
    if (param_end) {
      if (has_result && !last_ident.empty() && last_ident != "Result") {
        out.push_back(last_ident);
      }
      has_result = false;
      last_ident.clear();
      if (t.text == ")") break;
      continue;
    }
    if (t.text == ")") --par;
    if (t.kind == Kind::kIdent && par >= 1) {
      if (t.text == "Result") has_result = true;
      if (angle <= 0 && !is_type_noise(t.text)) last_ident = t.text;
    }
  }
  return out;
}

Declaration make_declaration(const std::vector<const Tok*>& decl,
                             const std::string& enclosing_cls) {
  const FnSig sig = fn_signature(decl);
  Declaration d;
  d.name = sig.name;
  d.cls = sig.cls.empty() ? enclosing_cls : sig.cls;
  // A friend declaration inside a class declares a free function.
  if (has_ident(decl, "friend")) d.cls.clear();
  const std::size_t n = decl.size();
  d.abstract = n >= 2 && decl[n - 2]->text == "=" && decl[n - 1]->text == "0";
  d.locking = has_ident(decl, "RDS_EXCLUDES");
  d.requires_lock =
      has_ident(decl, "RDS_REQUIRES") || d.name.ends_with("_locked");
  for (std::size_t i = 0; i < sig.paren && i < decl.size(); ++i) {
    const Tok& t = *decl[i];
    if (t.kind == Kind::kIdent && t.text == "Result") d.returns_result = true;
    if (t.kind == Kind::kPunct && (t.text == "*" || t.text == "&")) {
      d.returns_raw = true;
    }
    if (t.kind == Kind::kIdent && !is_type_noise(t.text) &&
        t.text != d.name && t.text != d.cls) {
      d.ret_idents.push_back(t.text);
    }
  }
  if (has_ident(decl, "shared_ptr") || has_ident(decl, "unique_ptr")) {
    d.returns_raw = false;  // owning smart pointer, not a borrowed view
  }
  // RDS_REQUIRES(mu_, other_mu_): capture the named locks.
  for (std::size_t i = 0; i + 1 < decl.size(); ++i) {
    if (decl[i]->kind != Kind::kIdent || decl[i]->text != "RDS_REQUIRES" ||
        decl[i + 1]->text != "(") {
      continue;
    }
    for (std::size_t j = i + 2; j < decl.size() && decl[j]->text != ")"; ++j) {
      if (decl[j]->kind == Kind::kIdent) {
        d.required_locks.push_back(decl[j]->text);
      }
    }
  }
  d.result_params = collect_result_params(decl, sig.paren);
  return d;
}

/// Direct base-class names from a class-head declaration: the identifier
/// ending each base-specifier in the clause after ':'.
std::vector<std::string> base_classes_of(const std::vector<const Tok*>& decl) {
  std::vector<std::string> bases;
  std::size_t i = 0;
  while (i < decl.size() && decl[i]->text != ":") ++i;
  if (i >= decl.size()) return bases;
  int angle = 0;
  std::string last_ident;
  for (++i; i < decl.size(); ++i) {
    const Tok& t = *decl[i];
    if (t.text == "<") ++angle;
    if (t.text == ">") --angle;
    if (t.text == ">>") angle -= 2;
    if (angle > 0) continue;
    if (t.text == ",") {
      if (!last_ident.empty()) bases.push_back(last_ident);
      last_ident.clear();
      continue;
    }
    if (t.kind == Kind::kIdent && t.text != "public" &&
        t.text != "protected" && t.text != "private" &&
        t.text != "virtual" && t.text != "std") {
      last_ident = t.text;
    }
  }
  if (!last_ident.empty()) bases.push_back(last_ident);
  return bases;
}

/// Copies the code tokens of [begin, end) into a flat body, extracting
/// every lambda as its own Function (body excised, intro kept) so flow
/// rules never treat deferred statements as inline ones.
std::vector<Tok> extract_body(const std::vector<Tok>& toks, std::size_t begin,
                              std::size_t end, const Function& parent,
                              std::vector<Function>& out);

Function make_lambda(const std::vector<Tok>& toks, std::size_t intro,
                     std::size_t body_open, std::size_t body_close,
                     const Function& parent, std::vector<Function>& out) {
  Function fn;
  fn.cls = parent.cls;
  fn.is_lambda = true;
  fn.line = toks[body_open].line;
  fn.name = parent.name + "::lambda@" + std::to_string(fn.line);
  fn.display = parent.display + "::lambda@" + std::to_string(fn.line);
  for (std::size_t k = intro; k < body_open; ++k) {
    if (is_code(toks[k])) fn.decl.push_back(toks[k]);
  }
  fn.body = extract_body(toks, body_open + 1, body_close, fn, out);
  return fn;
}

std::vector<Tok> extract_body(const std::vector<Tok>& toks, std::size_t begin,
                              std::size_t end, const Function& parent,
                              std::vector<Function>& out) {
  std::vector<Tok> body;
  std::size_t i = begin;
  while (i < end) {
    const Tok& t = toks[i];
    if (!is_code(t)) {
      ++i;
      continue;
    }
    if (t.text == "[") {
      // [[attribute]]: copy as a unit, no lambda detection inside.
      if (i + 1 < end && toks[i + 1].text == "[") {
        const std::size_t close = match(toks, i, "[", "]");
        for (std::size_t k = i; k <= close && k < end; ++k) {
          if (is_code(toks[k])) body.push_back(toks[k]);
        }
        i = std::min(close + 1, end);
        continue;
      }
      // Lambda intro vs. subscript: a subscript follows a value (ident,
      // number, ')' or ']'); a capture list cannot.
      const bool after_value =
          !body.empty() &&
          (body.back().kind == Kind::kIdent ||
           body.back().kind == Kind::kNumber || body.back().text == ")" ||
           body.back().text == "]");
      if (!after_value) {
        const std::size_t intro_close = match(toks, i, "[", "]");
        std::size_t k = intro_close + 1;
        if (k < end && toks[k].text == "(") k = match(toks, k, "(", ")") + 1;
        // Skip trailing specifiers (mutable, noexcept, -> Ret) up to the
        // body; anything unexpected means this was not a lambda after all.
        std::size_t guard = 0;
        while (k < end && toks[k].text != "{" && guard++ < 16 &&
               (toks[k].kind == Kind::kIdent || toks[k].text == "->" ||
                toks[k].text == "::" || toks[k].text == "<" ||
                toks[k].text == ">" || toks[k].text == "*" ||
                toks[k].text == "&")) {
          ++k;
        }
        if (k < end && toks[k].text == "{") {
          const std::size_t body_close = match(toks, k, "{", "}");
          out.push_back(make_lambda(toks, i, k, body_close, parent, out));
          for (std::size_t c = i; c < k; ++c) {
            if (is_code(toks[c])) body.push_back(toks[c]);
          }
          i = std::min(body_close + 1, end);
          continue;
        }
      }
    }
    body.push_back(t);
    ++i;
  }
  return body;
}

}  // namespace

FileModel build_file_model(std::string path, std::string_view text) {
  FileModel fm;
  fm.path = std::move(path);
  fm.toks = tokenize(text);
  fm.sup = collect_suppressions(fm.toks);

  std::vector<ScopeEnt> scopes;
  std::vector<const Tok*> decl;
  const std::vector<Tok>& toks = fm.toks;

  const auto enclosing_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->k == ScopeEnt::kClass) return it->name;
    }
    return {};
  };

  std::size_t i = 0;
  while (i < toks.size()) {
    const Tok& t = toks[i];
    if (!is_code(t)) {
      ++i;
      continue;
    }
    if (t.text == "{") {
      switch (classify(decl)) {
        case DeclKind::kNamespace:
          scopes.push_back({ScopeEnt::kNs, {}});
          break;
        case DeclKind::kClass: {
          std::string name = class_name_of(decl);
          if (!name.empty()) {
            fm.classes.push_back(name);
            std::vector<std::string> bases = base_classes_of(decl);
            if (!bases.empty()) fm.bases[name] = std::move(bases);
          }
          scopes.push_back({ScopeEnt::kClass, std::move(name)});
          break;
        }
        case DeclKind::kFunction: {
          const std::size_t close = match(toks, i, "{", "}");
          const FnSig sig = fn_signature(decl);
          Function fn;
          fn.cls = sig.cls.empty() ? enclosing_class() : sig.cls;
          if (has_ident(decl, "friend")) fn.cls.clear();
          fn.name = sig.name;
          fn.display = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
          fn.line = decl.empty() ? t.line : decl.front()->line;
          for (const Tok* d : decl) fn.decl.push_back(*d);
          fn.body = extract_body(toks, i + 1, close, fn, fm.functions);
          if (!fn.name.empty()) {
            Declaration d = make_declaration(decl, enclosing_class());
            fm.decls.push_back(std::move(d));
            fm.functions.push_back(std::move(fn));
          }
          i = std::min(close + 1, toks.size());
          decl.clear();
          continue;
        }
        case DeclKind::kOther: {
          // Initializer braces at namespace/class scope (`= { ... }`):
          // skip the aggregate, keep collecting the declaration.
          const std::size_t close = match(toks, i, "{", "}");
          i = std::min(close + 1, toks.size());
          continue;
        }
      }
      decl.clear();
      ++i;
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      decl.clear();
      ++i;
      continue;
    }
    if (t.text == ";") {
      const bool in_class =
          !scopes.empty() && scopes.back().k == ScopeEnt::kClass;
      const bool at_ns = scopes.empty() || scopes.back().k == ScopeEnt::kNs;
      if ((in_class || at_ns) &&
          std::any_of(decl.begin(), decl.end(),
                      [](const Tok* d) { return d->text == "("; })) {
        Declaration d = make_declaration(decl, in_class ? scopes.back().name
                                                        : std::string{});
        if (!d.name.empty() && d.name != "static_assert") {
          fm.decls.push_back(std::move(d));
        }
      }
      decl.clear();
      ++i;
      continue;
    }
    if (t.text == ":" && decl.size() == 1 && decl[0]->kind == Kind::kIdent &&
        (decl[0]->text == "public" || decl[0]->text == "private" ||
         decl[0]->text == "protected")) {
      decl.clear();
      ++i;
      continue;
    }
    decl.push_back(&t);
    ++i;
  }
  return fm;
}

// ---- CFG construction ------------------------------------------------------

namespace {

class Builder {
 public:
  explicit Builder(const std::vector<Tok>& body) : t_(body) {
    cfg_.nodes.resize(2);  // ENTRY, EXIT
    frontier_ = {Cfg::kEntry};
  }

  Cfg build() {
    std::size_t i = 0;
    parse_list(i, t_.size());
    for (const int f : frontier_) cfg_.nodes[f].succ.push_back(Cfg::kExit);
    return std::move(cfg_);
  }

 private:
  const std::vector<Tok>& t_;
  Cfg cfg_;
  std::vector<int> frontier_;
  int handler_ = Cfg::kExit;
  std::vector<int>* break_sink_ = nullptr;
  int continue_target_ = -1;
  int switch_cond_ = -1;

  [[nodiscard]] const std::string& txt(std::size_t i) const {
    static const std::string kEmpty;
    return i < t_.size() ? t_[i].text : kEmpty;
  }

  int new_node(std::size_t b, std::size_t e, bool branch, bool link) {
    CfgNode n;
    n.begin = b;
    n.end = std::min(e, t_.size());
    n.line = b < t_.size() ? t_[b].line
                           : (t_.empty() ? 0 : t_.back().line);
    n.is_branch = branch;
    for (std::size_t k = n.begin; k < n.end; ++k) {
      if (t_[k].kind == Kind::kIdent && t_[k].text == "throw") {
        n.is_throw = true;
      }
      if (t_[k].kind == Kind::kIdent && !is_kw(t_[k].text) &&
          k + 1 < n.end && t_[k + 1].text == "(") {
        n.has_call = true;
      }
    }
    const int id = static_cast<int>(cfg_.nodes.size());
    if (n.has_call || n.is_throw) n.esucc.push_back(handler_);
    cfg_.nodes.push_back(std::move(n));
    if (link) {
      for (const int f : frontier_) cfg_.nodes[f].succ.push_back(id);
      frontier_ = {id};
    }
    return id;
  }

  int mk(std::size_t b, std::size_t e, bool branch = false) {
    return new_node(b, e, branch, /*link=*/true);
  }

  /// End of a simple statement: the ';' at paren depth 0, skipping
  /// balanced braces (aggregate inits).  Stops before an unbalanced '}'.
  std::size_t stmt_end(std::size_t i, std::size_t end) const {
    int par = 0;
    std::size_t j = i;
    while (j < end) {
      const std::string& s = t_[j].text;
      if (s == "(") ++par;
      if (s == ")") --par;
      if (s == "{") {
        j = match(t_, j, "{", "}");
        if (j >= end) return end;
      }
      if (s == ";" && par <= 0) return j;
      if (s == "}" && par <= 0) return j > i ? j - 1 : i;
      ++j;
    }
    return end - 1;
  }

  void parse_list(std::size_t& i, std::size_t end) {
    while (i < end) {
      const std::size_t before = i;
      parse_stmt(i, end);
      if (i == before) ++i;  // malformed input: never stall
    }
  }

  void add_succs(const std::vector<int>& from, int to) {
    for (const int f : from) cfg_.nodes[f].succ.push_back(to);
  }

  void parse_stmt(std::size_t& i, std::size_t end) {  // NOLINT(misc-no-recursion)
    const std::string& s = txt(i);
    if (s == ";") {
      ++i;
      return;
    }
    if (s == "{") {
      const std::size_t close = std::min(match(t_, i, "{", "}"), end);
      std::size_t j = i + 1;
      parse_list(j, close);
      i = std::min(close + 1, end);
      return;
    }
    if (s == "if") {
      ++i;
      if (txt(i) == "constexpr") ++i;
      const std::size_t close = match(t_, i, "(", ")");
      const int cond = mk(i, std::min(close + 1, end), /*branch=*/true);
      i = std::min(close + 1, end);
      parse_stmt(i, end);
      std::vector<int> exits = frontier_;
      if (txt(i) == "else") {
        ++i;
        frontier_ = {cond};
        parse_stmt(i, end);
        exits.insert(exits.end(), frontier_.begin(), frontier_.end());
      } else {
        exits.push_back(cond);
      }
      frontier_ = std::move(exits);
      return;
    }
    if (s == "while") {
      ++i;
      const std::size_t close = match(t_, i, "(", ")");
      const int cond = mk(i, std::min(close + 1, end), /*branch=*/true);
      i = std::min(close + 1, end);
      parse_loop_body(i, end, cond, cond);
      return;
    }
    if (s == "for") {
      ++i;
      const std::size_t close = match(t_, i, "(", ")");
      const int head = mk(i, std::min(close + 1, end), /*branch=*/true);
      i = std::min(close + 1, end);
      parse_loop_body(i, end, head, head);
      return;
    }
    if (s == "do") {
      ++i;
      const int head = mk(i, i, /*branch=*/false);  // loop re-entry point
      std::vector<int> breaks;
      auto* const save_sink = break_sink_;
      const int save_cont = continue_target_;
      break_sink_ = &breaks;
      continue_target_ = head;
      parse_stmt(i, end);
      break_sink_ = save_sink;
      continue_target_ = save_cont;
      if (txt(i) == "while") {
        ++i;
        const std::size_t close = match(t_, i, "(", ")");
        const int cond = mk(i, std::min(close + 1, end), /*branch=*/true);
        i = std::min(close + 1, end);
        if (txt(i) == ";") ++i;
        cfg_.nodes[cond].succ.push_back(head);
        frontier_ = {cond};
      }
      frontier_.insert(frontier_.end(), breaks.begin(), breaks.end());
      return;
    }
    if (s == "switch") {
      ++i;
      const std::size_t close = match(t_, i, "(", ")");
      const int cond = mk(i, std::min(close + 1, end), /*branch=*/true);
      i = std::min(close + 1, end);
      std::vector<int> breaks;
      auto* const save_sink = break_sink_;
      const int save_cond = switch_cond_;
      break_sink_ = &breaks;
      switch_cond_ = cond;
      parse_stmt(i, end);  // the '{ ... }' body
      break_sink_ = save_sink;
      switch_cond_ = save_cond;
      frontier_.insert(frontier_.end(), breaks.begin(), breaks.end());
      frontier_.push_back(cond);  // no-default fallthrough
      return;
    }
    if ((s == "case" || s == "default") && switch_cond_ >= 0) {
      std::size_t colon = i;
      while (colon < end && txt(colon) != ":") ++colon;
      const int label = mk(i, std::min(colon + 1, end));
      cfg_.nodes[switch_cond_].succ.push_back(label);
      i = std::min(colon + 1, end);
      return;
    }
    if (s == "try") {
      ++i;
      const int h = new_node(i, i, /*branch=*/false, /*link=*/false);
      const int save_handler = handler_;
      handler_ = h;
      parse_stmt(i, end);  // the try block
      handler_ = save_handler;
      std::vector<int> exits = frontier_;
      while (txt(i) == "catch") {
        ++i;
        const std::size_t close = match(t_, i, "(", ")");
        i = std::min(close + 1, end);
        frontier_ = {h};
        parse_stmt(i, end);  // the handler block
        exits.insert(exits.end(), frontier_.begin(), frontier_.end());
      }
      frontier_ = std::move(exits);
      return;
    }
    if (s == "return" || s == "co_return") {
      const std::size_t e = stmt_end(i, end);
      const int n = mk(i, e + 1);
      cfg_.nodes[n].succ.push_back(Cfg::kExit);
      frontier_.clear();
      i = std::min(e + 1, end);
      return;
    }
    if (s == "throw") {
      const std::size_t e = stmt_end(i, end);
      mk(i, e + 1);  // is_throw wires the exception edge
      frontier_.clear();
      i = std::min(e + 1, end);
      return;
    }
    if (s == "break" || s == "continue") {
      const std::size_t e = stmt_end(i, end);
      const int n = mk(i, e + 1);
      if (s == "break") {
        if (break_sink_ != nullptr) {
          break_sink_->push_back(n);
        } else {
          cfg_.nodes[n].succ.push_back(Cfg::kExit);
        }
      } else if (continue_target_ >= 0) {
        cfg_.nodes[n].succ.push_back(continue_target_);
      }
      frontier_.clear();
      i = std::min(e + 1, end);
      return;
    }
    const std::size_t e = stmt_end(i, end);
    mk(i, e + 1);
    i = std::min(e + 1, end);
  }

  void parse_loop_body(std::size_t& i, std::size_t end, int cond,
                       int back_to) {  // NOLINT(misc-no-recursion)
    std::vector<int> breaks;
    auto* const save_sink = break_sink_;
    const int save_cont = continue_target_;
    break_sink_ = &breaks;
    continue_target_ = back_to;
    frontier_ = {cond};
    parse_stmt(i, end);
    break_sink_ = save_sink;
    continue_target_ = save_cont;
    add_succs(frontier_, back_to);
    frontier_ = {cond};
    frontier_.insert(frontier_.end(), breaks.begin(), breaks.end());
  }
};

}  // namespace

Cfg build_cfg(const Function& fn) { return Builder(fn.body).build(); }

// ---- CFG reachability ------------------------------------------------------

bool reaches_exit(const Cfg& cfg, int start, bool use_esucc, bool start_esucc,
                  const std::function<bool(int)>& barrier) {
  std::deque<int> q;
  std::set<int> seen;
  const auto push = [&](int n) {
    if (seen.insert(n).second) q.push_back(n);
  };
  for (const int s : cfg.nodes[start].succ) push(s);
  if (start_esucc) {
    for (const int s : cfg.nodes[start].esucc) push(s);
  }
  while (!q.empty()) {
    const int n = q.front();
    q.pop_front();
    if (n == Cfg::kExit) return true;
    if (barrier(n)) continue;
    for (const int s : cfg.nodes[n].succ) push(s);
    if (use_esucc) {
      for (const int s : cfg.nodes[n].esucc) push(s);
    }
  }
  return false;
}

std::vector<int> reachable_after(const Cfg& cfg, int start, bool use_esucc) {
  std::deque<int> q;
  std::set<int> seen;
  const auto push = [&](int n) {
    if (seen.insert(n).second) q.push_back(n);
  };
  for (const int s : cfg.nodes[start].succ) push(s);
  if (use_esucc) {
    for (const int s : cfg.nodes[start].esucc) push(s);
  }
  std::vector<int> out;
  while (!q.empty()) {
    const int n = q.front();
    q.pop_front();
    out.push_back(n);
    for (const int s : cfg.nodes[n].succ) push(s);
    if (use_esucc) {
      for (const int s : cfg.nodes[n].esucc) push(s);
    }
  }
  return out;
}

}  // namespace rds::analyze
