#include "tools/rds_analyze/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace rds::analyze {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<Tok> tokenize(std::string_view s) {
  std::vector<Tok> toks;
  const std::size_t n = s.size();
  std::size_t i = 0;
  int line = 1;
  bool line_start = true;  // nothing but whitespace seen on this line
  const auto peek = [&](std::size_t k) { return i + k < n ? s[i + k] : '\0'; };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && line_start) {
      // Whole preprocessor directive as one token (continuations folded).
      const int start = line;
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && peek(1) == '\n') {
          text += ' ';
          i += 2;
          ++line;
          continue;
        }
        if (s[i] == '\n') break;
        text += s[i];
        ++i;
      }
      toks.push_back({Kind::kPreproc, std::move(text), start});
      continue;
    }
    line_start = false;
    if (c == '/' && peek(1) == '/') {
      std::string text;
      while (i < n && s[i] != '\n') {
        text += s[i];
        ++i;
      }
      toks.push_back({Kind::kComment, std::move(text), line});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start = line;
      std::string text = "/*";
      i += 2;
      while (i < n && !(s[i] == '*' && peek(1) == '/')) {
        if (s[i] == '\n') ++line;
        text += s[i];
        ++i;
      }
      if (i < n) {
        text += "*/";
        i += 2;
      }
      toks.push_back({Kind::kComment, std::move(text), start});
      continue;
    }
    if (c == 'R' && peek(1) == '"') {
      // Raw string literal R"delim( ... )delim".
      const int start = line;
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && s[j] != '(') {
        delim += s[j];
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      std::size_t end = s.find(closer, j);
      end = end == std::string_view::npos ? n : end + closer.size();
      std::string text(s.substr(i, end - i));
      line += static_cast<int>(std::count(text.begin(), text.end(), '\n'));
      i = end;
      toks.push_back({Kind::kString, std::move(text), start});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      const int start = line;
      std::string text(1, q);
      ++i;
      while (i < n) {
        const char d = s[i];
        text += d;
        ++i;
        if (d == '\\' && i < n) {
          text += s[i];
          ++i;
          continue;
        }
        if (d == q) break;
        if (d == '\n') ++line;  // unterminated literal: keep lexing
      }
      toks.push_back(
          {q == '"' ? Kind::kString : Kind::kChar, std::move(text), start});
      continue;
    }
    if (is_ident_start(c)) {
      std::string text;
      while (i < n && is_ident_char(s[i])) {
        text += s[i];
        ++i;
      }
      toks.push_back({Kind::kIdent, std::move(text), line});
      continue;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      std::string text;
      while (i < n) {
        const char d = s[i];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          text += d;
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty() &&
            (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
             text.back() == 'P')) {
          text += d;
          ++i;
          continue;
        }
        break;
      }
      toks.push_back({Kind::kNumber, std::move(text), line});
      continue;
    }
    static constexpr std::array<std::string_view, 20> kTwoChar = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
    std::string text(1, c);
    if (i + 1 < n) {
      const std::string_view pair = s.substr(i, 2);
      for (const std::string_view t : kTwoChar) {
        if (pair == t) {
          text = std::string(t);
          break;
        }
      }
    }
    i += text.size();
    toks.push_back({Kind::kPunct, std::move(text), line});
  }
  return toks;
}

Suppressions collect_suppressions(const std::vector<Tok>& toks) {
  std::set<int> code_lines;
  for (const Tok& t : toks) {
    if (t.kind != Kind::kComment) code_lines.insert(t.line);
  }
  Suppressions sup;
  for (const Tok& t : toks) {
    if (t.kind != Kind::kComment) continue;
    if (t.text.find("rds_lint:") == std::string::npos) continue;
    // The reason is mandatory: a bare allow() keeps the finding alive.
    const std::size_t dashes = t.text.find("--");
    const bool has_reason =
        dashes != std::string::npos &&
        t.text.find_first_not_of(" \t", dashes + 2) != std::string::npos;
    if (!has_reason) continue;
    std::size_t pos = 0;
    while ((pos = t.text.find("allow(", pos)) != std::string::npos) {
      const std::size_t open = pos + 6;
      const std::size_t close = t.text.find(')', open);
      pos = open;
      if (close == std::string::npos) break;
      std::string rule = t.text.substr(open, close - open);
      const auto strip = [](std::string& v) {
        while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
          v.erase(v.begin());
        }
        while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
          v.pop_back();
        }
      };
      strip(rule);
      if (rule.empty()) continue;
      sup.declared[t.line].insert(rule);
      sup.by_line[t.line].insert(rule);
      sup.origin.emplace(std::pair<int, std::string>{t.line, rule}, t.line);
      if (!code_lines.contains(t.line)) {
        const auto next = code_lines.upper_bound(t.line);
        if (next != code_lines.end()) {
          sup.by_line[*next].insert(rule);
          sup.origin.emplace(std::pair<int, std::string>{*next, rule},
                             t.line);
        }
      }
    }
  }
  return sup;
}

}  // namespace rds::analyze
