#include "tools/rds_analyze/report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

namespace rds::analyze {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string baseline_key(const Finding& f, const std::string& root) {
  return relative_to(f.file, root) + "|" + std::to_string(f.line) + "|" +
         f.rule + "|" + f.message;
}

}  // namespace

std::string relative_to(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::error_code ec;
  const std::filesystem::path p =
      std::filesystem::weakly_canonical(path, ec);
  const std::filesystem::path r =
      std::filesystem::weakly_canonical(root, ec);
  if (ec) return path;
  const auto rel = std::filesystem::relative(p, r, ec);
  if (ec) return path;
  const std::string s = rel.generic_string();
  if (s.empty() || s == "." || s.starts_with("..")) return path;
  return s;
}

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& root) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"rds_analyze\",\n"
      << "      \"informationUri\": \"docs/static_analysis.md\",\n"
      << "      \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids()) {
    out << (first ? "" : ", ") << "{\"id\": \"" << id << "\"}";
    first = false;
  }
  out << "]\n    }},\n    \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    out << (first ? "\n" : ",\n")
        << "      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(relative_to(f.file, root))
        << "\"}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
        << "}}}]}";
    first = false;
  }
  out << "\n    ]\n  }]\n}\n";
  return out.str();
}

std::string format_baseline(const std::vector<Finding>& findings,
                            const std::string& root) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f, root));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out =
      "# rds_analyze baseline: one `file|line|rule|message` per line.\n"
      "# Findings listed here are tolerated (ratchet); anything new fails.\n"
      "# Regenerate with: rds_analyze --emit-baseline <this file> ...\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::vector<std::string> parse_baseline(const std::string& text) {
  std::vector<std::string> keys;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line.front() == '#') continue;
    keys.push_back(line);
  }
  return keys;
}

std::vector<Finding> new_findings(const std::vector<Finding>& findings,
                                  const std::vector<std::string>& baseline,
                                  const std::string& root) {
  const std::set<std::string> base(baseline.begin(), baseline.end());
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (!base.contains(baseline_key(f, root))) out.push_back(f);
  }
  return out;
}

std::string callgraph_to_dot(const CallGraph& cg, const Summaries& sums) {
  const auto display = [](const MethodKey& k) {
    return k.first.empty() ? k.second : k.first + "::" + k.second;
  };
  std::ostringstream out;
  out << "digraph rds_callgraph {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=box, fontsize=10];\n";
  for (const auto& [key, m] : cg.methods()) {
    const FnSummary& s = sums.of(key);
    std::string attrs;
    if (!s.locks.empty()) {
      attrs += "\\nlocks:";
      for (const std::string& l : s.locks) attrs += " " + l;
    }
    if (s.appends_journal) attrs += "\\njournal";
    if (s.returns_epoch) attrs += "\\nepoch";
    if (s.blocking_unguarded) attrs += "\\nblocking";
    out << "  \"" << display(key) << "\" [label=\"" << display(key) << attrs
        << "\"";
    if (!m.defined) out << ", style=dotted";
    out << "];\n";
  }
  for (const auto& [from, outs] : cg.edges()) {
    for (const CallEdge& e : outs) {
      out << "  \"" << display(from) << "\" -> \"" << display(e.to) << "\"";
      if (e.kind != EdgeKind::kDirect) {
        out << " [style=dashed, label=\"" << edge_kind_name(e.kind) << "\"]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string callgraph_to_json(const CallGraph& cg, const Summaries& sums) {
  const auto display = [](const MethodKey& k) {
    return k.first.empty() ? k.second : k.first + "::" + k.second;
  };
  std::ostringstream out;
  out << "{\n  \"methods\": [";
  bool first = true;
  for (const auto& [key, m] : cg.methods()) {
    const FnSummary& s = sums.of(key);
    out << (first ? "\n" : ",\n") << "    {\"name\": \""
        << json_escape(display(key)) << "\", \"defined\": "
        << (m.defined ? "true" : "false") << ", \"locks\": [";
    bool f2 = true;
    for (const std::string& l : s.locks) {
      out << (f2 ? "" : ", ") << "\"" << json_escape(l) << "\"";
      f2 = false;
    }
    out << "], \"appends_journal\": " << (s.appends_journal ? "true" : "false")
        << ", \"returns_epoch\": " << (s.returns_epoch ? "true" : "false")
        << ", \"blocking_unguarded\": "
        << (s.blocking_unguarded ? "true" : "false") << "}";
    first = false;
  }
  out << "\n  ],\n  \"edges\": [";
  first = true;
  for (const auto& [from, outs] : cg.edges()) {
    for (const CallEdge& e : outs) {
      out << (first ? "\n" : ",\n") << "    {\"from\": \""
          << json_escape(display(from)) << "\", \"to\": \""
          << json_escape(display(e.to)) << "\", \"kind\": \""
          << edge_kind_name(e.kind) << "\", \"line\": " << e.line << "}";
      first = false;
    }
  }
  out << "\n  ],\n  \"sccs\": [";
  first = true;
  for (const auto& scc : cg.sccs()) {
    out << (first ? "\n" : ",\n") << "    [";
    bool f2 = true;
    for (const MethodKey& k : scc) {
      out << (f2 ? "" : ", ") << "\"" << json_escape(display(k)) << "\"";
      f2 = false;
    }
    out << "]";
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  const auto analyzable = [](const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  std::set<std::string> out;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      auto it = std::filesystem::recursive_directory_iterator(
          path, std::filesystem::directory_options::skip_permission_denied,
          ec);
      const auto end = std::filesystem::recursive_directory_iterator{};
      while (it != end) {
        const std::filesystem::path& p = it->path();
        const std::string name = p.filename().string();
        if (it->is_directory(ec) &&
            (name == "build" || (!name.empty() && name.front() == '.'))) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file(ec) && analyzable(p)) {
          out.insert(p.string());
        }
        it.increment(ec);
        if (ec) break;
      }
    } else {
      out.insert(path);
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> compile_commands_files(const std::string& json_text) {
  std::set<std::string> out;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json_text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = json_text.find_first_not_of(" \t\r\n", pos);
    if (pos == std::string::npos || json_text[pos] != ':') continue;
    pos = json_text.find_first_not_of(" \t\r\n", pos + 1);
    if (pos == std::string::npos || json_text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < json_text.size() && json_text[pos] != '"') {
      if (json_text[pos] == '\\' && pos + 1 < json_text.size()) {
        ++pos;  // minimal unescape: \" and \\ (CMake emits plain paths)
      }
      value += json_text[pos];
      ++pos;
    }
    const std::filesystem::path p(value);
    const std::string ext = p.extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
      out.insert(value);
    }
  }
  return {out.begin(), out.end()};
}

}  // namespace rds::analyze
