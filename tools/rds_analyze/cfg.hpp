#pragma once

/// Function extraction and per-function control-flow graphs for rds_analyze
/// (docs/static_analysis.md).
///
/// This is deliberately NOT a C++ parse.  A scope walker finds function
/// bodies (free functions, in-class methods, out-of-class `Cls::method`
/// definitions, lambdas); each body becomes a statement/branch CFG with
/// `if`/loop/`switch`/`try`-`catch` edges plus exception edges from every
/// node that can throw (a call or an explicit `throw`) to the innermost
/// enclosing catch handler, or to EXIT when there is none.  Lambdas are
/// analyzed as separate functions and their bodies are excised from the
/// enclosing function's token stream, so a rule never sees a lambda's
/// statements as if they executed inline at the definition site.

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "tools/rds_analyze/lexer.hpp"

namespace rds::analyze {

/// One extracted function body.
struct Function {
  std::string cls;      ///< enclosing class ("" for free functions)
  std::string name;     ///< method name; lambdas are "<fn>::lambda@<line>"
  std::string display;  ///< "Cls::name" or just "name"
  int line = 0;         ///< line of the declaration
  bool is_lambda = false;
  std::vector<Tok> decl;  ///< signature tokens (return type .. before '{')
  std::vector<Tok> body;  ///< code tokens inside '{ }', lambda bodies excised
};

/// A method or free-function declaration harvested while scope-walking.
/// Definitions contribute one too, so the whole-program registry sees
/// every signature whether or not the header was scanned first.
struct Declaration {
  std::string cls;  ///< "" for free functions
  std::string name;
  bool abstract = false;       ///< pure virtual (`= 0`)
  bool locking = false;        ///< RDS_EXCLUDES(...) on the declaration
  bool requires_lock = false;  ///< RDS_REQUIRES(...) or a *_locked name
  bool returns_result = false;  ///< return type mentions Result
  bool returns_raw = false;  ///< return type has * or & (non-owning view)
  std::vector<std::string> required_locks;  ///< RDS_REQUIRES(...) arguments
  std::vector<std::string> ret_idents;  ///< identifiers in the return type
  std::vector<std::string> result_params;  ///< names of Result-typed params
};

/// Everything rds_analyze keeps per translation unit.
struct FileModel {
  std::string path;
  std::vector<Tok> toks;  ///< full token stream (comments included)
  Suppressions sup;
  std::vector<Function> functions;
  std::vector<Declaration> decls;
  std::vector<std::string> classes;  ///< class/struct names seen in this file
  /// class -> direct base classes (`class D : public B` base clauses).
  std::map<std::string, std::vector<std::string>> bases;
};

[[nodiscard]] FileModel build_file_model(std::string path,
                                         std::string_view text);

/// CFG node: one statement (or branch condition).  `succ` are normal
/// control-flow successors; `esucc` are exception successors (populated
/// when the node contains a call or a `throw`).
struct CfgNode {
  int line = 0;
  std::size_t begin = 0;  ///< token span [begin,end) into Function::body
  std::size_t end = 0;
  bool has_call = false;
  bool is_throw = false;
  bool is_branch = false;  ///< if/loop/switch condition node
  std::vector<int> succ;
  std::vector<int> esucc;
};

struct Cfg {
  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;
  std::vector<CfgNode> nodes;  ///< nodes[0] = ENTRY, nodes[1] = EXIT
};

[[nodiscard]] Cfg build_cfg(const Function& fn);

/// True when EXIT is reachable from `start` without passing through a
/// node for which `barrier` returns true.  `use_esucc` follows exception
/// edges too; `start_esucc` additionally seeds the walk with `start`'s
/// own exception successors (the statement itself may throw).
[[nodiscard]] bool reaches_exit(const Cfg& cfg, int start, bool use_esucc,
                                bool start_esucc,
                                const std::function<bool(int)>& barrier);

/// Every node reachable strictly after `start` (successors onward).
[[nodiscard]] std::vector<int> reachable_after(const Cfg& cfg, int start,
                                               bool use_esucc);

}  // namespace rds::analyze
