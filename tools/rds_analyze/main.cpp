// rds_analyze CLI (docs/static_analysis.md).
//
//   rds_analyze [options] [path...]
//     --rule <id>            run only this rule (repeatable)
//     --list-rules           print rule ids and exit
//     --root <dir>           root for relative paths (default: cwd)
//     -p <compile_commands>  analyze the files of a compilation database
//     --baseline <file>      tolerate findings listed in <file> (ratchet)
//     --emit-baseline <file> write the current findings as the baseline
//     --sarif <file>         also write SARIF 2.1.0 to <file>
//     --emit-callgraph <f>   dump the resolved call graph to <f>
//                            (Graphviz DOT when <f> ends in .dot,
//                            JSON otherwise)
//
// Paths may be files or directories (recursed, skipping build/ and
// hidden directories).  Exit codes: 0 clean (or fully baselined),
// 1 non-baselined findings, 2 usage or I/O error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/rds_analyze/analyze.hpp"
#include "tools/rds_analyze/report.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: rds_analyze [--rule id]... [--root dir] [-p compile_db]\n"
         "                   [--baseline file] [--emit-baseline file]\n"
         "                   [--sarif file] [--emit-callgraph file]\n"
         "                   [--list-rules] [path...]\n";
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = std::move(ss).str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using rds::analyze::Analyzer;
  using rds::analyze::Finding;
  using rds::analyze::Options;

  Options opts;
  std::vector<std::string> paths;
  std::string root = std::filesystem::current_path().string();
  std::string compile_db;
  std::string baseline_path;
  std::string emit_baseline_path;
  std::string sarif_path;
  std::string callgraph_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list-rules") {
      for (const std::string& id : rds::analyze::rule_ids()) {
        std::cout << id << "\n";
      }
      return 0;
    }
    if (arg == "--rule") {
      const char* v = value();
      if (v == nullptr) return usage();
      opts.only_rules.emplace_back(v);
      continue;
    }
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return usage();
      root = v;
      continue;
    }
    if (arg == "-p") {
      const char* v = value();
      if (v == nullptr) return usage();
      compile_db = v;
      continue;
    }
    if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      baseline_path = v;
      continue;
    }
    if (arg == "--emit-baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      emit_baseline_path = v;
      continue;
    }
    if (arg == "--sarif") {
      const char* v = value();
      if (v == nullptr) return usage();
      sarif_path = v;
      continue;
    }
    if (arg == "--emit-callgraph") {
      const char* v = value();
      if (v == nullptr) return usage();
      callgraph_path = v;
      continue;
    }
    if (!arg.empty() && arg.front() == '-') return usage();
    paths.push_back(arg);
  }

  std::vector<std::string> sources;
  if (!compile_db.empty()) {
    std::string text;
    if (!read_file(compile_db, text)) {
      std::cerr << "rds_analyze: cannot open " << compile_db << "\n";
      return 2;
    }
    sources = rds::analyze::compile_commands_files(text);
  }
  const std::vector<std::string> walked =
      rds::analyze::collect_sources(paths);
  sources.insert(sources.end(), walked.begin(), walked.end());
  if (sources.empty()) return usage();

  Analyzer analyzer;
  for (const std::string& s : sources) analyzer.add_file(s);
  if (!analyzer.io_errors().empty()) {
    for (const std::string& e : analyzer.io_errors()) {
      std::cerr << "rds_analyze: " << e << "\n";
    }
    return 2;
  }

  const std::vector<Finding> findings = analyzer.run(opts);

  if (!callgraph_path.empty()) {
    const bool dot = callgraph_path.ends_with(".dot");
    const std::string text =
        dot ? rds::analyze::callgraph_to_dot(analyzer.callgraph(),
                                             analyzer.summaries())
            : rds::analyze::callgraph_to_json(analyzer.callgraph(),
                                              analyzer.summaries());
    if (!write_file(callgraph_path, text)) {
      std::cerr << "rds_analyze: cannot write " << callgraph_path << "\n";
      return 2;
    }
    std::size_t edge_count = 0;
    for (const auto& [from, outs] : analyzer.callgraph().edges()) {
      edge_count += outs.size();
    }
    std::cout << "rds_analyze: callgraph with "
              << analyzer.callgraph().methods().size() << " method(s), "
              << edge_count << " edge(s) written to " << callgraph_path
              << "\n";
  }

  if (!emit_baseline_path.empty()) {
    const std::string text = rds::analyze::format_baseline(findings, root);
    if (!write_file(emit_baseline_path, text)) {
      std::cerr << "rds_analyze: cannot write " << emit_baseline_path << "\n";
      return 2;
    }
    std::cout << "rds_analyze: baseline with " << findings.size()
              << " finding(s) written to " << emit_baseline_path << "\n";
    return 0;
  }

  std::vector<Finding> to_report = findings;
  std::size_t baselined = 0;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "rds_analyze: cannot open " << baseline_path << "\n";
      return 2;
    }
    to_report = rds::analyze::new_findings(
        findings, rds::analyze::parse_baseline(text), root);
    baselined = findings.size() - to_report.size();
  }

  if (!sarif_path.empty()) {
    if (!write_file(sarif_path, rds::analyze::to_sarif(to_report, root))) {
      std::cerr << "rds_analyze: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  for (const Finding& f : to_report) {
    std::cout << rds::analyze::relative_to(f.file, root) << ":" << f.line
              << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cout << "rds_analyze: " << sources.size() << " file(s), "
            << to_report.size() << " new finding(s)";
  if (baselined > 0) std::cout << ", " << baselined << " baselined";
  std::cout << "\n";
  return to_report.empty() ? 0 : 1;
}
