#pragma once

/// Token layer for rds_analyze (docs/static_analysis.md).
///
/// Same loose C++ lexer philosophy as tools/rds_lint: tell identifiers,
/// literals, comments and preprocessor lines apart, fold continuations,
/// survive raw strings -- and nothing more.  The flow rules are built from
/// token streams plus a per-function CFG (cfg.hpp), never a real parse, so
/// the analyzer stays independent of compiler internals.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rds::analyze {

enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kComment, kPreproc };

struct Tok {
  Kind kind;
  std::string text;
  int line = 0;
};

/// Lex `s` into tokens.  Never fails: malformed input produces best-effort
/// tokens, which at worst costs a rule some precision, never a crash.
[[nodiscard]] std::vector<Tok> tokenize(std::string_view s);

/// `// rds_lint: allow(rule) -- reason` comments, exactly the rds_lint
/// syntax so one suppression grammar covers both tools.  The reason is
/// mandatory; a standalone comment also covers the next code line.
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  /// (covered line, rule) -> line of the comment that granted it, so a
  /// match on any covered line marks the whole comment as used.
  std::map<std::pair<int, std::string>, int> origin;
  /// comment line -> rules it names; the stale-suppression pass walks
  /// this to find allow() comments that no longer match any finding.
  std::map<int, std::set<std::string>> declared;

  [[nodiscard]] bool allows(int line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.contains(rule);
  }

  /// Comment line that makes `allows(line, rule)` true, or -1.
  [[nodiscard]] int origin_of(int line, const std::string& rule) const {
    const auto it = origin.find({line, rule});
    return it == origin.end() ? -1 : it->second;
  }
};

[[nodiscard]] Suppressions collect_suppressions(const std::vector<Tok>& toks);

}  // namespace rds::analyze
