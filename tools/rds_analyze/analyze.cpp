#include "tools/rds_analyze/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/rds_analyze/cfg.hpp"
#include "tools/rds_analyze/lexer.hpp"

namespace rds::analyze {
namespace {

// ---- shared helpers --------------------------------------------------------

bool is_ident(const Tok& t, std::string_view s) {
  return t.kind == Kind::kIdent && t.text == s;
}

bool is_punct(const Tok& t, std::string_view s) {
  return t.kind == Kind::kPunct && t.text == s;
}

std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::size_t fwd_match(const std::vector<Tok>& t, std::size_t i,
                      const char* open, const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == open) ++depth;
    if (t[j].text == close && --depth == 0) return j;
  }
  return t.size();
}

// ---- per-function lock/call facts ------------------------------------------

/// What a function does that the lock-order rule cares about: the lock
/// nodes it acquires directly (with the set already held at that point)
/// and every call site (with the held set), for closure + edge building.
struct LockAcq {
  std::string node;
  int line = 0;
  std::vector<std::string> held;
};

struct CallSite {
  std::string name;
  std::string recv_type;  ///< resolved receiver type, "" if unknown
  bool has_recv = false;  ///< x.f() / x->f()
  bool qualified = false; ///< Q::f()
  std::string qual;       ///< Q for qualified calls
  int line = 0;
  std::vector<std::string> held;
};

struct FnFacts {
  std::vector<LockAcq> acqs;
  std::vector<CallSite> calls;
};

/// Parameter and local types, best effort: `Type[&*] name` where Type is
/// a known class name.  Enough to resolve `disk.mu_` / `pool.mu_` and
/// typed receiver calls; anything else stays an unknown receiver.
std::map<std::string, std::string> collect_types(
    const Function& fn, const std::set<std::string>& classes) {
  std::map<std::string, std::string> types;
  const auto scan = [&](const std::vector<Tok>& toks) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Kind::kIdent || !classes.contains(toks[i].text)) {
        continue;
      }
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Kind::kIdent) {
        types[toks[j].text] = toks[i].text;
      }
    }
  };
  scan(fn.decl);
  scan(fn.body);
  return types;
}

std::set<std::string> collect_local_mutexes(const Function& fn) {
  std::set<std::string> out;
  const std::vector<Tok>& b = fn.body;
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    if (is_ident(b[i], "Mutex") && b[i + 1].kind == Kind::kIdent) {
      out.insert(b[i + 1].text);
    }
  }
  return out;
}

bool call_excluded(const std::string& name) {
  static const std::set<std::string> kNotCalls = {
      "if",     "while",    "for",     "switch",   "catch",   "sizeof",
      "alignof", "decltype", "noexcept", "static_assert", "alignas",
      "return", "throw",    "new",     "delete",   "MutexLock"};
  return kNotCalls.contains(name) || name.starts_with("RDS_");
}

/// Token-linear walk with brace scoping.  Locks are RAII in this
/// codebase, so scope tracking (plus explicit lock()/unlock() toggles,
/// which BatchPlacer::worker_loop relies on) is an accurate model.
FnFacts collect_fn_facts(const Function& fn, const std::string& cls_prefix,
                         bool starts_locked,
                         const std::map<std::string, std::string>& types,
                         const std::set<std::string>& local_mutexes) {
  FnFacts facts;
  struct Active {
    std::string var;
    std::string node;
    int depth = 0;
    bool live = true;
  };
  std::vector<Active> locks;
  if (starts_locked && !cls_prefix.empty()) {
    locks.push_back({"<entry>", cls_prefix + "::mu_", -1, true});
  }
  const auto held = [&]() {
    std::vector<std::string> h;
    for (const Active& a : locks) {
      if (a.live) h.push_back(a.node);
    }
    return h;
  };

  const std::vector<Tok>& b = fn.body;
  int depth = 0;
  const std::string self = fn.display;
  const auto resolve_lock_expr = [&](std::size_t abeg,
                                     std::size_t aend) -> std::string {
    const std::size_t n = aend - abeg;
    if (n == 1 && b[abeg].kind == Kind::kIdent) {
      const std::string& v = b[abeg].text;
      if (local_mutexes.contains(v)) return self + "." + v;
      return cls_prefix + "::" + v;
    }
    if (n == 3 && b[abeg].kind == Kind::kIdent &&
        (is_punct(b[abeg + 1], ".") || is_punct(b[abeg + 1], "->")) &&
        b[abeg + 2].kind == Kind::kIdent) {
      const auto it = types.find(b[abeg].text);
      if (it != types.end()) return it->second + "::" + b[abeg + 2].text;
      return "?" + self + "::" + b[abeg].text + "." + b[abeg + 2].text;
    }
    if (n >= 2 && b[abeg].kind == Kind::kIdent && is_punct(b[abeg + 1], "(")) {
      // Lock-returning helper, e.g. lock_of(uid): one node per helper.
      return cls_prefix + "::" + b[abeg].text + "()";
    }
    std::string joined = "?" + self + "::";
    for (std::size_t k = abeg; k < aend; ++k) joined += b[k].text;
    return joined;
  };

  std::size_t i = 0;
  while (i < b.size()) {
    const Tok& t = b[i];
    if (is_punct(t, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      std::erase_if(locks, [&](const Active& a) { return a.depth >= depth; });
      --depth;
      ++i;
      continue;
    }
    if (is_ident(t, "MutexLock")) {
      std::size_t j = i + 1;
      std::string var;
      if (j < b.size() && b[j].kind == Kind::kIdent) {
        var = b[j].text;
        ++j;
      }
      if (j < b.size() && (is_punct(b[j], "(") || is_punct(b[j], "{"))) {
        const char* open = b[j].text == "(" ? "(" : "{";
        const char* close = b[j].text == "(" ? ")" : "}";
        const std::size_t cend = fwd_match(b, j, open, close);
        const std::string node = resolve_lock_expr(j + 1, cend);
        facts.acqs.push_back({node, t.line, held()});
        locks.push_back({var, node, depth, true});
        i = std::min(cend + 1, b.size());
        continue;
      }
      ++i;
      continue;
    }
    // `lock.unlock()` / `lock.lock()` on a tracked guard variable.
    if (t.kind == Kind::kIdent && i + 3 < b.size() && is_punct(b[i + 1], ".") &&
        (is_ident(b[i + 2], "unlock") || is_ident(b[i + 2], "lock")) &&
        is_punct(b[i + 3], "(")) {
      bool toggled = false;
      for (Active& a : locks) {
        if (a.var == t.text) {
          const bool want = b[i + 2].text == "lock";
          if (want && !a.live) {
            a.live = false;  // exclude self from held() below
            std::vector<std::string> h = held();
            facts.acqs.push_back({a.node, t.line, std::move(h)});
          }
          a.live = want;
          toggled = true;
        }
      }
      if (toggled) {
        i += 4;
        continue;
      }
    }
    // Call sites.
    if (t.kind == Kind::kIdent && i + 1 < b.size() && is_punct(b[i + 1], "(") &&
        !call_excluded(t.text)) {
      CallSite c;
      c.name = t.text;
      c.line = t.line;
      c.held = held();
      if (i >= 2 && (is_punct(b[i - 1], ".") || is_punct(b[i - 1], "->"))) {
        c.has_recv = true;
        if (b[i - 2].kind == Kind::kIdent) {
          const auto it = types.find(b[i - 2].text);
          if (it != types.end()) c.recv_type = it->second;
        }
      } else if (i >= 2 && is_punct(b[i - 1], "::") &&
                 b[i - 2].kind == Kind::kIdent) {
        c.qualified = true;
        c.qual = b[i - 2].text;
      }
      facts.calls.push_back(std::move(c));
      ++i;
      continue;
    }
    ++i;
  }
  return facts;
}

// ---- whole-program method registry -----------------------------------------

using MethodKey = std::pair<std::string, std::string>;  // (class, name)

struct MethodData {
  bool defined = false;
  bool abstract = false;
  bool locking_ann = false;   ///< RDS_EXCLUDES on some declaration
  bool requires_lock = false; ///< RDS_REQUIRES / *_locked
  bool returns_result = false;
  bool declared = false;
  std::set<std::string> direct;   ///< direct lock nodes from the body
  std::vector<CallSite> calls;    ///< for transitive closure
};

struct Registry {
  std::map<MethodKey, MethodData> methods;
  std::set<std::string> classes;

  [[nodiscard]] const MethodData* find(const std::string& cls,
                                       const std::string& name) const {
    const auto it = methods.find({cls, name});
    return it == methods.end() ? nullptr : &it->second;
  }

  /// True when some non-abstract class declares `name` without taking a
  /// lock: an unknown receiver might be that class, so the edge is
  /// dropped rather than guessed (no false cycles from name collisions).
  [[nodiscard]] bool vetoed(const std::string& name,
                            const std::string& enclosing) const {
    for (const auto& [key, m] : methods) {
      if (key.second != name || key.first.empty() || key.first == enclosing) {
        continue;
      }
      if (!m.abstract && !m.locking_ann && !m.requires_lock &&
          m.direct.empty()) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::vector<MethodKey> resolve(
      const CallSite& c, const std::string& enclosing) const {
    if (c.qualified) {
      if (find(c.qual, c.name) != nullptr) return {{c.qual, c.name}};
      if (find("", c.name) != nullptr) return {{"", c.name}};
      return {};
    }
    if (!c.has_recv) {
      if (!enclosing.empty() && find(enclosing, c.name) != nullptr) {
        return {{enclosing, c.name}};
      }
      if (find("", c.name) != nullptr) return {{"", c.name}};
      return {};
    }
    if (!c.recv_type.empty()) {
      if (find(c.recv_type, c.name) != nullptr) {
        return {{c.recv_type, c.name}};
      }
      return {};
    }
    // Unknown receiver: candidates are lock-relevant definers elsewhere,
    // unless a plain definer makes the name ambiguous.
    if (vetoed(c.name, enclosing)) return {};
    std::vector<MethodKey> out;
    for (const auto& [key, m] : methods) {
      if (key.second != c.name || key.first.empty() ||
          key.first == enclosing) {
        continue;
      }
      if (m.locking_ann || m.requires_lock || !m.direct.empty() ||
          m.defined) {
        out.push_back(key);
      }
    }
    return out;
  }
};

/// Transitive lock acquisitions of a method, memoized and cycle-safe.
class AcquiresClosure {
 public:
  explicit AcquiresClosure(const Registry& reg) : reg_(reg) {}

  const std::set<std::string>& of(const MethodKey& key) {
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    auto [slot, inserted] = memo_.emplace(key, std::set<std::string>{});
    if (in_flight_.contains(key)) return slot->second;
    in_flight_.insert(key);
    std::set<std::string> acc;
    const auto mit = reg_.methods.find(key);
    if (mit != reg_.methods.end()) {
      const MethodData& m = mit->second;
      acc = m.direct;
      if (m.locking_ann && !m.defined && !key.first.empty()) {
        // Annotated but body unseen: assume it takes its class lock.
        acc.insert(key.first + "::mu_");
      }
      for (const CallSite& c : m.calls) {
        for (const MethodKey& target : reg_.resolve(c, key.first)) {
          if (target == key) continue;
          const std::set<std::string>& sub = of(target);
          acc.insert(sub.begin(), sub.end());
        }
      }
    }
    in_flight_.erase(key);
    memo_[key] = std::move(acc);
    return memo_[key];
  }

 private:
  const Registry& reg_;
  std::map<MethodKey, std::set<std::string>> memo_;
  std::set<MethodKey> in_flight_;
};

// ---- lock graph ------------------------------------------------------------

struct EdgeWitness {
  std::string file;
  int line = 0;
  std::string fn;
};

using LockGraph = std::map<std::string, std::map<std::string, EdgeWitness>>;

void add_edge(LockGraph& g, const std::string& from, const std::string& to,
              const EdgeWitness& w) {
  if (from == to) return;  // re-entry on the same node is not an ordering
  g[from].try_emplace(to, w);
}

/// Tarjan SCC over the lock graph; any component with >1 node is a
/// potential deadlock cycle.
struct Scc {
  std::map<std::string, int> comp;
  int count = 0;
};

Scc tarjan(const LockGraph& g) {
  std::set<std::string> names;
  for (const auto& [from, outs] : g) {
    names.insert(from);
    for (const auto& [to, w] : outs) names.insert(to);
  }
  Scc scc;
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;

  struct Frame {
    std::string node;
    std::vector<std::string> succs;
    std::size_t next = 0;
  };
  for (const std::string& root : names) {
    if (index.contains(root)) continue;
    std::vector<Frame> call_stack;
    const auto open = [&](const std::string& v) {
      index[v] = low[v] = next_index++;
      stack.push_back(v);
      on_stack[v] = true;
      Frame f;
      f.node = v;
      const auto it = g.find(v);
      if (it != g.end()) {
        for (const auto& [to, w] : it->second) f.succs.push_back(to);
      }
      call_stack.push_back(std::move(f));
    };
    open(root);
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      if (f.next < f.succs.size()) {
        const std::string w = f.succs[f.next++];
        if (!index.contains(w)) {
          open(w);
        } else if (on_stack[w]) {
          low[f.node] = std::min(low[f.node], index[w]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          while (true) {
            const std::string v = stack.back();
            stack.pop_back();
            on_stack[v] = false;
            scc.comp[v] = scc.count;
            if (v == f.node) break;
          }
          ++scc.count;
        }
        const std::string done = f.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          low[call_stack.back().node] =
              std::min(low[call_stack.back().node], low[done]);
        }
      }
    }
  }
  return scc;
}

// ---- CFG reachability ------------------------------------------------------

/// True when EXIT is reachable from `start`'s successors without passing
/// through a barrier node.  `use_esucc` also follows exception edges of
/// intermediate nodes; `start_esucc` additionally seeds the search with
/// the start node's own exception edges.
template <typename Barrier>
bool reaches_exit(const Cfg& cfg, int start, bool use_esucc, bool start_esucc,
                  Barrier barrier) {
  std::deque<int> q;
  std::set<int> seen;
  const auto push = [&](int n) {
    if (seen.insert(n).second) q.push_back(n);
  };
  for (const int s : cfg.nodes[start].succ) push(s);
  if (start_esucc) {
    for (const int s : cfg.nodes[start].esucc) push(s);
  }
  while (!q.empty()) {
    const int n = q.front();
    q.pop_front();
    if (n == Cfg::kExit) return true;
    if (barrier(n)) continue;
    for (const int s : cfg.nodes[n].succ) push(s);
    if (use_esucc) {
      for (const int s : cfg.nodes[n].esucc) push(s);
    }
  }
  return false;
}

/// All nodes reachable from `start` (successors, optionally exception
/// edges), excluding `start` itself unless revisited through a loop.
std::vector<int> reachable_after(const Cfg& cfg, int start, bool use_esucc) {
  std::deque<int> q;
  std::set<int> seen;
  const auto push = [&](int n) {
    if (seen.insert(n).second) q.push_back(n);
  };
  for (const int s : cfg.nodes[start].succ) push(s);
  if (use_esucc) {
    for (const int s : cfg.nodes[start].esucc) push(s);
  }
  std::vector<int> out;
  while (!q.empty()) {
    const int n = q.front();
    q.pop_front();
    out.push_back(n);
    for (const int s : cfg.nodes[n].succ) push(s);
    if (use_esucc) {
      for (const int s : cfg.nodes[n].esucc) push(s);
    }
  }
  return out;
}

// ---- rule: journal-protocol ------------------------------------------------

/// Index of the first token of a member-state mutation in [b,e), or
/// npos.  Members follow the codebase convention of a trailing '_'.
std::size_t find_member_mutation(const std::vector<Tok>& t, std::size_t b,
                                 std::size_t e) {
  static const std::set<std::string> kMutators = {
      "insert", "erase",   "emplace", "emplace_back", "push_back",
      "pop_back", "clear", "reset",   "assign",       "push",
      "pop",    "resize",  "try_emplace"};
  static const std::set<std::string> kAssign = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    const Tok& tok = t[i];
    if (tok.kind != Kind::kIdent || tok.text.size() < 2 ||
        !tok.text.ends_with("_") || tok.text.ends_with("__")) {
      continue;
    }
    if (i > b && t[i - 1].kind == Kind::kPunct &&
        (t[i - 1].text == "++" || t[i - 1].text == "--")) {
      return i - 1;
    }
    if (i > b && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->") ||
                  is_punct(t[i - 1], "::"))) {
      continue;  // x.y_ / Cls::kConst_ -- not a member of *this*
    }
    if (i + 1 >= e) continue;
    const Tok& nx = t[i + 1];
    if (nx.kind == Kind::kPunct && kAssign.contains(nx.text)) return i;
    if ((is_punct(nx, ".") || is_punct(nx, "->")) && i + 3 < e &&
        t[i + 2].kind == Kind::kIdent && is_punct(t[i + 3], "(") &&
        kMutators.contains(t[i + 2].text)) {
      return i;
    }
    if ((is_punct(nx, ".") || is_punct(nx, "->")) && i + 3 < e &&
        t[i + 2].kind == Kind::kIdent && t[i + 3].kind == Kind::kPunct &&
        kAssign.contains(t[i + 3].text)) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Position of an append call inside a node span: a `x->append(` /
/// `x.append(` whose receiver mentions "journal" or "sink", or a call to
/// a *journal*_locked / journal_append style helper.  Returns npos when
/// the node has none.
std::size_t find_append_call(const std::vector<Tok>& t, std::size_t b,
                             std::size_t e, std::string* helper_name) {
  for (std::size_t i = b; i + 1 < e && i + 1 < t.size(); ++i) {
    if (t[i].kind != Kind::kIdent || !is_punct(t[i + 1], "(")) continue;
    if (t[i].text == "append" && i >= 2 &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        t[i - 2].kind == Kind::kIdent) {
      const std::string recv = lower(t[i - 2].text);
      if (recv.find("journal") != std::string::npos ||
          recv.find("sink") != std::string::npos ||
          recv.find("wal") != std::string::npos) {
        helper_name->clear();
        return i;
      }
    }
    const std::string name = lower(t[i].text);
    if ((name.find("journal") != std::string::npos &&
         (name.ends_with("_locked") || name.find("append") !=
                                           std::string::npos)) &&
        (i < 2 || !(is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")))) {
      *helper_name = t[i].text;
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

// ---- registry-facing result ------------------------------------------------

struct AnalysisState {
  Registry reg;
  LockGraph graph;
  std::vector<Finding> findings;
};

bool mentions(const std::vector<Tok>& t, std::size_t b, std::size_t e,
              const std::string& name, std::size_t skip) {
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (i == skip) continue;
    if (is_ident(t[i], name)) return true;
  }
  return false;
}

}  // namespace

// ---- rule ids --------------------------------------------------------------

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "lock-order", "journal-protocol", "metric-balance", "result-flow",
      "capacity-arith"};
  return kIds;
}

// ---- Analyzer --------------------------------------------------------------

void Analyzer::add_text(std::string path, std::string_view text) {
  paths_.push_back(std::move(path));
  texts_.emplace_back(text);
}

bool Analyzer::add_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    io_errors_.push_back("cannot open " + path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  paths_.push_back(path);
  texts_.push_back(std::move(ss).str());
  return true;
}

std::vector<Finding> Analyzer::run(const Options& opts) {
  // Deterministic whole-program order regardless of add order.
  std::vector<std::size_t> order(paths_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return paths_[a] < paths_[b];
  });

  std::vector<FileModel> files;
  files.reserve(order.size());
  for (const std::size_t i : order) {
    files.push_back(build_file_model(paths_[i], texts_[i]));
  }

  AnalysisState st;
  for (const FileModel& fm : files) {
    for (const std::string& c : fm.classes) st.reg.classes.insert(c);
  }
  // Registry pass: declarations first, then per-function facts.
  for (const FileModel& fm : files) {
    for (const Declaration& d : fm.decls) {
      MethodData& m = st.reg.methods[{d.cls, d.name}];
      m.declared = true;
      m.abstract = m.abstract || d.abstract;
      m.locking_ann = m.locking_ann || d.locking;
      m.requires_lock = m.requires_lock || d.requires_lock;
      m.returns_result = m.returns_result || d.returns_result;
    }
  }
  std::map<const Function*, FnFacts> all_facts;
  for (const FileModel& fm : files) {
    for (const Function& fn : fm.functions) {
      const MethodData* known = st.reg.find(fn.cls, fn.name);
      const bool starts_locked =
          (known != nullptr && known->requires_lock) ||
          fn.name.ends_with("_locked");
      const auto types = collect_types(fn, st.reg.classes);
      const auto local_mutexes = collect_local_mutexes(fn);
      FnFacts facts = collect_fn_facts(fn, fn.cls, starts_locked, types,
                                       local_mutexes);
      MethodData& m = st.reg.methods[{fn.cls, fn.name}];
      m.defined = true;
      m.requires_lock = m.requires_lock || fn.name.ends_with("_locked");
      for (const LockAcq& a : facts.acqs) m.direct.insert(a.node);
      if (!fn.is_lambda) {
        // Calls *into* a lambda are not resolvable by name; the lambda
        // body is analyzed as its own function instead.
        for (const CallSite& c : facts.calls) m.calls.push_back(c);
      }
      all_facts.emplace(&fn, std::move(facts));
    }
  }

  AcquiresClosure closure(st.reg);

  // Lock graph: for every acquisition (direct or via a resolvable call)
  // add held -> acquired edges.
  for (const FileModel& fm : files) {
    for (const Function& fn : fm.functions) {
      const FnFacts& facts = all_facts.at(&fn);
      for (const LockAcq& a : facts.acqs) {
        for (const std::string& h : a.held) {
          add_edge(st.graph, h, a.node, {fm.path, a.line, fn.display});
        }
      }
      for (const CallSite& c : facts.calls) {
        if (c.held.empty()) continue;
        for (const MethodKey& target : st.reg.resolve(c, fn.cls)) {
          for (const std::string& node : closure.of(target)) {
            for (const std::string& h : c.held) {
              add_edge(st.graph, h, node, {fm.path, c.line, fn.display});
            }
          }
        }
      }
    }
  }

  // Suppression lookup by file path.
  std::map<std::string, const Suppressions*> sup_of;
  for (const FileModel& fm : files) sup_of[fm.path] = &fm.sup;
  const auto emit = [&](const std::string& file, int line,
                        const std::string& rule, std::string message) {
    const auto it = sup_of.find(file);
    if (it != sup_of.end() && it->second->allows(line, rule)) return;
    st.findings.push_back({file, line, rule, std::move(message)});
  };

  // ---- lock-order findings -------------------------------------------------
  {
    const Scc scc = tarjan(st.graph);
    std::map<int, std::vector<std::string>> members;
    for (const auto& [node, comp] : scc.comp) members[comp].push_back(node);
    std::set<int> reported;
    for (const auto& [from, outs] : st.graph) {
      for (const auto& [to, w] : outs) {
        const auto cf = scc.comp.find(from);
        const auto ct = scc.comp.find(to);
        if (cf == scc.comp.end() || ct == scc.comp.end() ||
            cf->second != ct->second) {
          continue;
        }
        if (!reported.insert(cf->second).second) continue;
        std::string cyc;
        for (const std::string& n : members[cf->second]) {
          if (!cyc.empty()) cyc += ", ";
          cyc += n;
        }
        emit(w.file, w.line, "lock-order",
             "acquiring " + to + " while holding " + from + " (in " + w.fn +
                 ") closes a lock cycle among {" + cyc +
                 "}; establish one order and stick to it");
      }
    }
    // Documented order: pool before volume (src/storage/storage_pool.hpp).
    static const std::vector<std::pair<std::string, std::string>> kOrder = {
        {"StoragePool::mu_", "VirtualDisk::mu_"}};
    for (const auto& [first, second] : kOrder) {
      const auto it = st.graph.find(second);
      if (it == st.graph.end()) continue;
      const auto e = it->second.find(first);
      if (e == it->second.end()) continue;
      emit(e->second.file, e->second.line, "lock-order",
           "acquiring " + first + " while holding " + second + " (in " +
               e->second.fn + ") inverts the documented pool -> volume "
               "order (storage_pool.hpp)");
    }
  }

  // ---- per-function CFG rules ---------------------------------------------
  for (const FileModel& fm : files) {
    // Gauge-typed receivers bound in this translation unit.
    std::set<std::string> gauge_vars;
    for (std::size_t i = 0; i + 2 < fm.toks.size(); ++i) {
      const Tok& t = fm.toks[i];
      if (t.kind != Kind::kIdent) continue;
      if (!(is_punct(fm.toks[i + 1], "=") || is_punct(fm.toks[i + 1], "(") ||
            is_punct(fm.toks[i + 1], "{"))) {
        continue;
      }
      for (std::size_t j = i + 2; j < std::min(fm.toks.size(), i + 14); ++j) {
        if (is_ident(fm.toks[j], "gauge") && j + 1 < fm.toks.size() &&
            is_punct(fm.toks[j + 1], "(")) {
          gauge_vars.insert(t.text);
          break;
        }
        if (is_punct(fm.toks[j], ";")) break;
      }
    }

    for (const Function& fn : fm.functions) {
      const Cfg cfg = build_cfg(fn);
      const std::vector<Tok>& b = fn.body;

      // ---- journal-protocol ----
      for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
        const CfgNode& node = cfg.nodes[n];
        std::string helper;
        const std::size_t ap =
            find_append_call(b, node.begin, node.end, &helper);
        if (ap == static_cast<std::size_t>(-1)) continue;
        // (a) The append's Result must be consumed.  Helpers that return
        // void (StoragePool::journal_locked throws internally) are exempt.
        bool needs_check = helper.empty();
        if (!helper.empty()) {
          const MethodData* hm = st.reg.find(fn.cls, helper);
          if (hm == nullptr) hm = st.reg.find("", helper);
          needs_check = hm != nullptr && hm->returns_result;
        }
        if (needs_check && !node.is_branch) {
          bool consumed = false;
          std::string stored;
          for (std::size_t k = node.begin; k < ap; ++k) {
            if (is_punct(b[k], "=") && k > node.begin &&
                b[k - 1].kind == Kind::kIdent) {
              consumed = true;
              stored = b[k - 1].text;
            }
            if (is_ident(b[k], "return") || is_ident(b[k], "co_return")) {
              consumed = true;
            }
          }
          for (std::size_t k = ap; k < node.end && k < b.size(); ++k) {
            if (is_ident(b[k], "value_or_throw") || is_ident(b[k], "ok") ||
                is_ident(b[k], "code") || is_ident(b[k], "error")) {
              consumed = true;
              stored.clear();
            }
          }
          if (!consumed) {
            emit(fm.path, node.line, "journal-protocol",
                 "journal append result is ignored in " + fn.display +
                     "; the append is the commit point -- check it "
                     "(docs/persistence.md)");
          } else if (!stored.empty()) {
            const std::string var = stored;
            const bool inline_use = [&] {
              std::size_t eq = node.begin;
              for (std::size_t k = node.begin; k < ap; ++k) {
                if (is_punct(b[k], "=")) eq = k;
              }
              for (std::size_t k = eq + 1; k < node.end && k < b.size(); ++k) {
                if (is_ident(b[k], var)) return true;
              }
              return false;
            }();
            if (!inline_use &&
                reaches_exit(cfg, static_cast<int>(n), /*use_esucc=*/false,
                             /*start_esucc=*/false, [&](int m) {
                               const CfgNode& mm = cfg.nodes[m];
                               return mentions(b, mm.begin, mm.end, var,
                                               static_cast<std::size_t>(-1));
                             })) {
              emit(fm.path, node.line, "journal-protocol",
                   "journal append result '" + var + "' in " + fn.display +
                       " is not checked on every path (docs/persistence.md)");
            }
          }
        }
        // (b) No state mutation reachable after the append: the append is
        // the commit point, so journal order must equal commit order.
        for (const int m : reachable_after(cfg, static_cast<int>(n),
                                           /*use_esucc=*/true)) {
          if (m == Cfg::kExit || m == Cfg::kEntry) continue;
          const CfgNode& mn = cfg.nodes[m];
          const std::size_t mut =
              find_member_mutation(b, mn.begin, mn.end);
          if (mut == static_cast<std::size_t>(-1)) continue;
          emit(fm.path, mn.line, "journal-protocol",
               "state mutation of '" + b[mut].text + "' in " + fn.display +
                   " is reachable after the journal append at line " +
                   std::to_string(node.line) +
                   "; mutate before journaling (journal order is commit "
                   "order, docs/persistence.md)");
        }
      }

      // ---- metric-balance ----
      {
        const auto site_of = [&](const CfgNode& node, const char* what)
            -> std::string {
          for (std::size_t k = node.begin;
               k + 3 < node.end && k + 3 < b.size(); ++k) {
            if (b[k].kind == Kind::kIdent && gauge_vars.contains(b[k].text) &&
                (is_punct(b[k + 1], ".") || is_punct(b[k + 1], "->")) &&
                is_ident(b[k + 2], what) && is_punct(b[k + 3], "(")) {
              return b[k].text;
            }
          }
          return {};
        };
        std::map<std::string, std::vector<int>> adds;
        std::map<std::string, std::vector<int>> subs;
        for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
          const std::string a = site_of(cfg.nodes[n], "add");
          if (!a.empty()) adds[a].push_back(static_cast<int>(n));
          const std::string s = site_of(cfg.nodes[n], "sub");
          if (!s.empty()) subs[s].push_back(static_cast<int>(n));
        }
        for (const auto& [var, add_nodes] : adds) {
          const auto sit = subs.find(var);
          if (sit == subs.end()) continue;  // monotonic gauge: no pairing
          const std::set<int> sub_set(sit->second.begin(), sit->second.end());
          for (const int a : add_nodes) {
            // The add itself does not throw; everything after it may.
            if (reaches_exit(cfg, a, /*use_esucc=*/true,
                             /*start_esucc=*/false, [&](int m) {
                               return sub_set.contains(m);
                             })) {
              emit(fm.path, cfg.nodes[a].line, "metric-balance",
                   "gauge '" + var + "' add() in " + fn.display +
                       " is not matched by sub() on every path (exception "
                       "edges included); use rds::metrics::GaugeGuard");
            }
          }
        }
      }

      // ---- result-flow ----
      for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
        const CfgNode& node = cfg.nodes[n];
        std::size_t def = static_cast<std::size_t>(-1);
        std::string var;
        for (std::size_t k = node.begin; k + 1 < node.end && k + 1 < b.size();
             ++k) {
          if (b[k].kind != Kind::kIdent || !is_punct(b[k + 1], "=")) continue;
          if (b[k].text.ends_with("_")) continue;
          for (std::size_t j = k + 2; j + 1 < node.end && j + 1 < b.size();
               ++j) {
            if (b[j].kind == Kind::kIdent && b[j].text.starts_with("try_") &&
                is_punct(b[j + 1], "(")) {
              def = k;
              var = b[k].text;
              break;
            }
            if (is_punct(b[j], ";")) break;
          }
          if (def != static_cast<std::size_t>(-1)) break;
        }
        if (def == static_cast<std::size_t>(-1)) continue;
        // Inspected within the defining statement (if-init etc.)?
        if (mentions(b, def + 1, node.end, var, static_cast<std::size_t>(-1))) {
          continue;
        }
        if (reaches_exit(cfg, static_cast<int>(n), /*use_esucc=*/false,
                         /*start_esucc=*/false, [&](int m) {
                           const CfgNode& mm = cfg.nodes[m];
                           return mentions(b, mm.begin, mm.end, var,
                                           static_cast<std::size_t>(-1));
                         })) {
          emit(fm.path, node.line, "result-flow",
               "Result from try_* stored in '" + var + "' in " + fn.display +
                   " is dropped on some path without being inspected");
        }
      }
    }

    // ---- capacity-arith (token level, per file) ----
    if (!fm.path.ends_with("checked_math.hpp")) {
      const std::vector<Tok>& t = fm.toks;
      std::vector<const Tok*> code;
      for (const Tok& tok : t) {
        if (tok.kind != Kind::kComment && tok.kind != Kind::kPreproc) {
          code.push_back(&tok);
        }
      }
      const auto is_capacity_ident = [](const Tok* tok) {
        if (tok->kind != Kind::kIdent) return false;
        const std::string low = lower(tok->text);
        return low.find("capacity") != std::string::npos ||
               low == "b_max" || low == "bmax";
      };
      for (std::size_t i = 0; i < code.size(); ++i) {
        const Tok* op = code[i];
        if (op->kind != Kind::kPunct) continue;
        const bool additive = op->text == "+" || op->text == "+=";
        const bool multiplicative = op->text == "*" || op->text == "*=";
        if (!additive && !multiplicative) continue;
        if (i == 0 || i + 1 >= code.size()) continue;
        // Binary use only: the left neighbour must be a value.
        const Tok* lhs = code[i - 1];
        if (!(lhs->kind == Kind::kIdent || lhs->kind == Kind::kNumber ||
              lhs->text == ")" || lhs->text == "]")) {
          continue;
        }
        // Operand chains on both sides.
        bool capacity = false;
        {
          std::size_t j = i;
          while (j > 0) {
            --j;
            const Tok* tk = code[j];
            if (tk->text == ")" || tk->text == "]") {
              const char* open = tk->text == ")" ? "(" : "[";
              int depth = 0;
              while (true) {
                if (code[j]->text == tk->text) ++depth;
                if (code[j]->text == open && --depth == 0) break;
                if (j == 0) break;
                --j;
              }
              continue;
            }
            if (tk->kind == Kind::kIdent) {
              if (is_capacity_ident(tk)) capacity = true;
            } else if (tk->text != "." && tk->text != "->" &&
                       tk->text != "::") {
              break;
            }
          }
        }
        {
          std::size_t j = i + 1;
          while (j < code.size()) {
            const Tok* tk = code[j];
            if (tk->text == "(" || tk->text == "[") {
              const char* close = tk->text == "(" ? ")" : "]";
              j = [&] {
                int depth = 0;
                for (std::size_t k = j; k < code.size(); ++k) {
                  if (code[k]->text == tk->text) ++depth;
                  if (code[k]->text == close && --depth == 0) return k;
                }
                return code.size();
              }();
              ++j;
              continue;
            }
            if (tk->kind == Kind::kIdent || tk->kind == Kind::kNumber) {
              if (is_capacity_ident(tk)) capacity = true;
              ++j;
              continue;
            }
            if (tk->text == "." || tk->text == "->" || tk->text == "::") {
              ++j;
              continue;
            }
            break;
          }
        }
        if (!capacity) continue;
        // Floating-point statements are the double-precision analysis
        // path (Lemma 2.1/2.2 math) -- overflow is not the failure mode.
        bool fp = false;
        {
          std::size_t lo = i;
          while (lo > 0 && code[lo]->text != ";" && code[lo]->text != "{" &&
                 code[lo]->text != "}") {
            --lo;
          }
          std::size_t hi = i;
          while (hi + 1 < code.size() && code[hi]->text != ";" &&
                 code[hi]->text != "}") {
            ++hi;
          }
          for (std::size_t k = lo; k <= hi && k < code.size(); ++k) {
            if (is_ident(*code[k], "double") || is_ident(*code[k], "float")) {
              fp = true;
              break;
            }
          }
        }
        if (fp) continue;
        emit(fm.path, op->line, "capacity-arith",
             std::string("unchecked '") + op->text +
                 "' on capacity values; route through rds::checked_add/"
                 "checked_mul (src/util/checked_math.hpp)");
      }
    }
  }

  // ---- filtering + ordering -------------------------------------------------
  std::vector<Finding> out;
  for (Finding& f : st.findings) {
    if (!opts.only_rules.empty() &&
        std::find(opts.only_rules.begin(), opts.only_rules.end(), f.rule) ==
            opts.only_rules.end()) {
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<Finding> analyze_text(const std::string& path,
                                  std::string_view text, const Options& opts) {
  Analyzer a;
  a.add_text(path, text);
  return a.run(opts);
}

}  // namespace rds::analyze
