#include "tools/rds_analyze/analyze.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/rds_analyze/cfg.hpp"
#include "tools/rds_analyze/lexer.hpp"

namespace rds::analyze {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::string display_of(const MethodKey& key) {
  return key.first.empty() ? key.second : key.first + "::" + key.second;
}

std::string join(const std::vector<std::string>& v) {
  std::string s;
  for (const std::string& x : v) {
    if (!s.empty()) s += ", ";
    s += x;
  }
  return s;
}

bool mentions(const std::vector<Tok>& t, std::size_t b, std::size_t e,
              const std::string& name, std::size_t skip) {
  for (std::size_t i = b; i < e && i < t.size(); ++i) {
    if (i == skip) continue;
    if (is_ident(t[i], name)) return true;
  }
  return false;
}

/// Member of *this* by naming convention: trailing '_', not preceded by
/// an access path (x.y_ / Cls::kConst_ are someone else's state).
bool member_ident(const std::vector<Tok>& b, std::size_t i) {
  return b[i].kind == Kind::kIdent && b[i].text.size() >= 2 &&
         b[i].text.ends_with("_") && !b[i].text.ends_with("__") &&
         (i == 0 || !(is_punct(b[i - 1], ".") || is_punct(b[i - 1], "->") ||
                      is_punct(b[i - 1], "::")));
}

/// The mention at `i` uses the handle itself (or extracts the raw
/// pointer), as opposed to reading a field through it.
bool handle_use(const std::vector<Tok>& b, std::size_t i) {
  if (i + 1 >= b.size()) return true;
  if (is_punct(b[i + 1], ".") || is_punct(b[i + 1], "->")) {
    return i + 2 < b.size() && is_ident(b[i + 2], "get");
  }
  return !is_punct(b[i + 1], "[");
}

// ---- lock graph ------------------------------------------------------------

struct EdgeWitness {
  std::string file;
  int line = 0;
  std::string fn;
};

using LockGraph = std::map<std::string, std::map<std::string, EdgeWitness>>;

void add_edge(LockGraph& g, const std::string& from, const std::string& to,
              const EdgeWitness& w) {
  if (from == to) return;  // re-entry on the same node is not an ordering
  g[from].try_emplace(to, w);
}

/// Component id per lock node, via the generic Tarjan from callgraph.hpp.
std::map<std::string, int> lock_scc(const LockGraph& g) {
  std::vector<std::string> names;
  for (const auto& [from, outs] : g) {
    names.push_back(from);
    for (const auto& [to, w] : outs) names.push_back(to);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::map<std::string, int> id;
  for (std::size_t i = 0; i < names.size(); ++i) {
    id[names[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> adj(names.size());
  for (const auto& [from, outs] : g) {
    for (const auto& [to, w] : outs) adj[id[from]].push_back(id[to]);
  }
  const SccResult r = tarjan_scc(names.size(), adj);
  std::map<std::string, int> comp;
  for (const std::string& n : names) comp[n] = r.comp[id[n]];
  return comp;
}

/// Calls a lambda intro could escape through: thread pools, schedulers,
/// callbacks -- anything that runs the closure after the caller returns.
bool escape_call(const std::string& name) {
  static const std::set<std::string> kEscape = {
      "submit",   "post",        "enqueue", "dispatch",     "defer",
      "schedule", "async",       "spawn",   "detach",       "start_thread",
      "thread",   "set_callback", "then",    "on_complete", "add_task"};
  return kEscape.contains(lower(name));
}

}  // namespace

// ---- rule ids --------------------------------------------------------------

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "lock-order",     "journal-protocol",
      "metric-balance", "result-flow",
      "capacity-arith", "rcu-escape",
      "lock-held-across-call", "stale-suppression"};
  return kIds;
}

// ---- Analyzer --------------------------------------------------------------

void Analyzer::add_text(std::string path, std::string_view text) {
  paths_.push_back(std::move(path));
  texts_.emplace_back(text);
}

bool Analyzer::add_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    io_errors_.push_back("cannot open " + path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  paths_.push_back(path);
  texts_.push_back(std::move(ss).str());
  return true;
}

std::vector<Finding> Analyzer::run(const Options& opts) {
  // Deterministic whole-program order regardless of add order.
  std::vector<std::size_t> order(paths_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return paths_[a] < paths_[b];
  });

  files_.clear();
  files_.reserve(order.size());
  for (const std::size_t i : order) {
    files_.push_back(build_file_model(paths_[i], texts_[i]));
  }

  cg_ = CallGraph::build(files_);
  sums_ = Summaries::compute(cg_);

  // Functions known to hand back an epoch handle, for source matching.
  std::set<std::string> epoch_fns = {"placement_snapshot", "copy_locations"};
  for (const auto& [key, s] : sums_.all()) {
    if (s.returns_epoch) epoch_fns.insert(key.second);
  }

  std::vector<Finding> findings;
  // Suppression lookup by file path, plus per-comment usage so the
  // stale-suppression pass can tell live allow() comments from dead ones.
  std::map<std::string, const Suppressions*> sup_of;
  for (const FileModel& fm : files_) sup_of[fm.path] = &fm.sup;
  std::set<std::tuple<std::string, int, std::string>> used_sups;
  const auto emit = [&](const std::string& file, int line,
                        const std::string& rule, std::string message) {
    const auto it = sup_of.find(file);
    if (it != sup_of.end() && it->second->allows(line, rule)) {
      used_sups.insert({file, it->second->origin_of(line, rule), rule});
      return;
    }
    findings.push_back({file, line, rule, std::move(message)});
  };

  // ---- lock graph: direct acquisitions + summary-propagated calls ----------
  LockGraph graph;
  for (const FileModel& fm : files_) {
    for (const Function& fn : fm.functions) {
      const FnFacts& facts = cg_.facts_of(&fn);
      for (const LockAcq& a : facts.acqs) {
        for (const std::string& h : a.held) {
          add_edge(graph, h, a.node, {fm.path, a.line, fn.display});
        }
      }
      for (const CallSite& c : facts.calls) {
        if (c.held.empty()) continue;
        for (const MethodKey& target : cg_.resolve_keys(c, fn.cls)) {
          for (const std::string& node : sums_.of(target).locks) {
            for (const std::string& h : c.held) {
              add_edge(graph, h, node, {fm.path, c.line, fn.display});
            }
          }
        }
      }
    }
  }

  // ---- lock-order findings -------------------------------------------------
  {
    const std::map<std::string, int> comp = lock_scc(graph);
    std::map<int, std::vector<std::string>> members;
    for (const auto& [node, c] : comp) members[c].push_back(node);
    std::set<int> reported;
    for (const auto& [from, outs] : graph) {
      for (const auto& [to, w] : outs) {
        const auto cf = comp.find(from);
        const auto ct = comp.find(to);
        if (cf == comp.end() || ct == comp.end() ||
            cf->second != ct->second) {
          continue;
        }
        if (!reported.insert(cf->second).second) continue;
        std::string cyc;
        for (const std::string& n : members[cf->second]) {
          if (!cyc.empty()) cyc += ", ";
          cyc += n;
        }
        emit(w.file, w.line, "lock-order",
             "acquiring " + to + " while holding " + from + " (in " + w.fn +
                 ") closes a lock cycle among {" + cyc +
                 "}; establish one order and stick to it");
      }
    }
    // Documented order: pool before volume (src/storage/storage_pool.hpp).
    static const std::vector<std::pair<std::string, std::string>> kOrder = {
        {"StoragePool::mu_", "VirtualDisk::mu_"}};
    for (const auto& [first, second] : kOrder) {
      const auto it = graph.find(second);
      if (it == graph.end()) continue;
      const auto e = it->second.find(first);
      if (e == it->second.end()) continue;
      emit(e->second.file, e->second.line, "lock-order",
           "acquiring " + first + " while holding " + second + " (in " +
               e->second.fn + ") inverts the documented pool -> volume "
               "order (storage_pool.hpp)");
    }
  }

  // ---- per-function CFG rules ---------------------------------------------
  for (const FileModel& fm : files_) {
    // Gauge-typed receivers bound in this translation unit.
    std::set<std::string> gauge_vars;
    for (std::size_t i = 0; i + 2 < fm.toks.size(); ++i) {
      const Tok& t = fm.toks[i];
      if (t.kind != Kind::kIdent) continue;
      if (!(is_punct(fm.toks[i + 1], "=") || is_punct(fm.toks[i + 1], "(") ||
            is_punct(fm.toks[i + 1], "{"))) {
        continue;
      }
      for (std::size_t j = i + 2; j < std::min(fm.toks.size(), i + 14); ++j) {
        if (is_ident(fm.toks[j], "gauge") && j + 1 < fm.toks.size() &&
            is_punct(fm.toks[j + 1], "(")) {
          gauge_vars.insert(t.text);
          break;
        }
        if (is_punct(fm.toks[j], ";")) break;
      }
    }

    for (const Function& fn : fm.functions) {
      const Cfg cfg = build_cfg(fn);
      const std::vector<Tok>& b = fn.body;
      const FnFacts& facts = cg_.facts_of(&fn);

      // CFG node holding each call site, for summary-aware barriers.
      const auto node_of_tok = [&](std::size_t tok) -> int {
        for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
          if (tok >= cfg.nodes[n].begin && tok < cfg.nodes[n].end) {
            return static_cast<int>(n);
          }
        }
        return -1;
      };

      // A mention of a Result local that really consumes it: member
      // access, negation, return, or passing it to a callee that
      // consumes its Result parameters.  Handing it to a callee that
      // provably ignores it does not count.
      const auto consuming_mention = [&](std::size_t i) {
        if (i + 1 < b.size() &&
            (is_punct(b[i + 1], ".") || is_punct(b[i + 1], "->") ||
             is_punct(b[i + 1], "["))) {
          return true;
        }
        if (i > 0 && (is_punct(b[i - 1], "!") || is_ident(b[i - 1], "return") ||
                      is_ident(b[i - 1], "co_return"))) {
          return true;
        }
        std::size_t pos = i;
        for (int hops = 0; hops < 4; ++hops) {
          const CallSite* encl = nullptr;
          for (const CallSite& c : facts.calls) {
            if (c.tok >= pos || c.tok + 1 >= b.size() ||
                !is_punct(b[c.tok + 1], "(")) {
              continue;
            }
            const std::size_t cend = fwd_match(b, c.tok + 1, "(", ")");
            if (pos > c.tok + 1 && pos < cend &&
                (encl == nullptr || c.tok > encl->tok)) {
              encl = &c;
            }
          }
          if (encl == nullptr) return true;  // bare use in a condition etc.
          if (encl->name == "move" || encl->name == "forward") {
            pos = encl->tok;
            continue;
          }
          const std::vector<MethodKey> targets =
              cg_.resolve_keys(*encl, fn.cls);
          if (targets.empty()) return true;  // unknown callee: benefit of doubt
          bool any_result_taking = false;
          for (const MethodKey& t : targets) {
            const FnSummary& ts = sums_.of(t);
            if (!ts.has_result_params) continue;
            any_result_taking = true;
            if (ts.consumes_result_params) return true;
          }
          return !any_result_taking;
        }
        return true;
      };

      // ---- journal-protocol ----
      for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
        const CfgNode& node = cfg.nodes[n];
        std::string helper;
        std::size_t ap = find_append_call(b, node.begin, node.end, &helper);
        const MethodInfo* append_target = nullptr;
        if (ap == kNpos) {
          // Interprocedural: a same-class helper whose summary reaches a
          // journal append is a commit point too, whatever its name.
          for (const CallSite& c : facts.calls) {
            if (c.tok < node.begin || c.tok >= node.end) continue;
            for (const MethodKey& t : cg_.resolve_keys(c, fn.cls)) {
              if (t.first != fn.cls || fn.cls.empty()) continue;
              if (!sums_.of(t).appends_journal) continue;
              ap = c.tok;
              helper = c.name;
              append_target = cg_.find(t.first, t.second);
              break;
            }
            if (ap != kNpos) break;
          }
        }
        if (ap == kNpos) continue;
        // (a) The append's Result must be consumed.  Helpers that return
        // void (StoragePool::journal_locked throws internally) are exempt.
        bool needs_check = helper.empty();
        if (!helper.empty()) {
          const MethodInfo* hm = append_target;
          if (hm == nullptr) hm = cg_.find(fn.cls, helper);
          if (hm == nullptr) hm = cg_.find("", helper);
          needs_check = hm != nullptr && hm->returns_result;
        }
        if (needs_check && !node.is_branch) {
          bool consumed = false;
          std::string stored;
          for (std::size_t k = node.begin; k < ap; ++k) {
            if (is_punct(b[k], "=") && k > node.begin &&
                b[k - 1].kind == Kind::kIdent) {
              consumed = true;
              stored = b[k - 1].text;
            }
            if (is_ident(b[k], "return") || is_ident(b[k], "co_return")) {
              consumed = true;
            }
          }
          for (std::size_t k = ap; k < node.end && k < b.size(); ++k) {
            if (is_ident(b[k], "value_or_throw") || is_ident(b[k], "ok") ||
                is_ident(b[k], "code") || is_ident(b[k], "error")) {
              consumed = true;
              stored.clear();
            }
          }
          if (!consumed) {
            emit(fm.path, node.line, "journal-protocol",
                 "journal append result is ignored in " + fn.display +
                     "; the append is the commit point -- check it "
                     "(docs/persistence.md)");
          } else if (!stored.empty()) {
            const std::string var = stored;
            const bool inline_use = [&] {
              std::size_t eq = node.begin;
              for (std::size_t k = node.begin; k < ap; ++k) {
                if (is_punct(b[k], "=")) eq = k;
              }
              for (std::size_t k = eq + 1; k < node.end && k < b.size(); ++k) {
                if (is_ident(b[k], var)) return true;
              }
              return false;
            }();
            if (!inline_use &&
                reaches_exit(cfg, static_cast<int>(n), /*use_esucc=*/false,
                             /*start_esucc=*/false, [&](int m) {
                               const CfgNode& mm = cfg.nodes[m];
                               return mentions(b, mm.begin, mm.end, var,
                                               kNpos);
                             })) {
              emit(fm.path, node.line, "journal-protocol",
                   "journal append result '" + var + "' in " + fn.display +
                       " is not checked on every path (docs/persistence.md)");
            }
          }
        }
        // (b) No state mutation reachable after the append: the append is
        // the commit point, so journal order must equal commit order.
        for (const int m : reachable_after(cfg, static_cast<int>(n),
                                           /*use_esucc=*/true)) {
          if (m == Cfg::kExit || m == Cfg::kEntry) continue;
          const CfgNode& mn = cfg.nodes[m];
          const std::size_t mut =
              find_member_mutation(b, mn.begin, mn.end);
          if (mut == kNpos) continue;
          emit(fm.path, mn.line, "journal-protocol",
               "state mutation of '" + b[mut].text + "' in " + fn.display +
                   " is reachable after the journal append at line " +
                   std::to_string(node.line) +
                   "; mutate before journaling (journal order is commit "
                   "order, docs/persistence.md)");
        }
      }

      // ---- metric-balance ----
      {
        // Receivers: locals bound to a gauge() factory, plus member
        // gauges used with add()/sub() in this function.
        std::set<std::string> receivers = gauge_vars;
        for (std::size_t k = 0; k + 3 < b.size(); ++k) {
          if (member_ident(b, k) &&
              (is_punct(b[k + 1], ".") || is_punct(b[k + 1], "->")) &&
              (is_ident(b[k + 2], "add") || is_ident(b[k + 2], "sub")) &&
              is_punct(b[k + 3], "(")) {
            receivers.insert(b[k].text);
          }
        }
        const auto site_of = [&](const CfgNode& node, const char* what)
            -> std::string {
          for (std::size_t k = node.begin;
               k + 3 < node.end && k + 3 < b.size(); ++k) {
            if (b[k].kind == Kind::kIdent && receivers.contains(b[k].text) &&
                (is_punct(b[k + 1], ".") || is_punct(b[k + 1], "->")) &&
                is_ident(b[k + 2], what) && is_punct(b[k + 3], "(")) {
              return b[k].text;
            }
          }
          return {};
        };
        std::map<std::string, std::vector<int>> adds;
        std::map<std::string, std::set<int>> subs;
        for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
          const std::string a = site_of(cfg.nodes[n], "add");
          if (!a.empty()) adds[a].push_back(static_cast<int>(n));
          const std::string s = site_of(cfg.nodes[n], "sub");
          if (!s.empty()) subs[s].insert(static_cast<int>(n));
        }
        // A callee that sub()s the gauge on all its paths balances the
        // add at its call site.
        for (const CallSite& c : facts.calls) {
          const int n = node_of_tok(c.tok);
          if (n < 0) continue;
          for (const MethodKey& t : cg_.resolve_keys(c, fn.cls)) {
            for (const std::string& g : sums_.of(t).subs_on_all_paths) {
              subs[g].insert(n);
            }
          }
        }
        for (const auto& [var, add_nodes] : adds) {
          const auto sit = subs.find(var);
          if (sit == subs.end()) continue;  // monotonic gauge: no pairing
          const std::set<int>& sub_set = sit->second;
          for (const int a : add_nodes) {
            // The add itself does not throw; everything after it may.
            if (reaches_exit(cfg, a, /*use_esucc=*/true,
                             /*start_esucc=*/false, [&](int m) {
                               return sub_set.contains(m);
                             })) {
              emit(fm.path, cfg.nodes[a].line, "metric-balance",
                   "gauge '" + var + "' add() in " + fn.display +
                       " is not matched by sub() on every path (exception "
                       "edges included); use rds::metrics::GaugeGuard");
            }
          }
        }
      }

      // ---- result-flow ----
      for (std::size_t n = 2; n < cfg.nodes.size(); ++n) {
        const CfgNode& node = cfg.nodes[n];
        std::size_t def = kNpos;
        std::string var;
        for (std::size_t k = node.begin; k + 1 < node.end && k + 1 < b.size();
             ++k) {
          if (b[k].kind != Kind::kIdent || !is_punct(b[k + 1], "=")) continue;
          if (b[k].text.ends_with("_")) continue;
          for (std::size_t j = k + 2; j + 1 < node.end && j + 1 < b.size();
               ++j) {
            if (b[j].kind == Kind::kIdent && b[j].text.starts_with("try_") &&
                is_punct(b[j + 1], "(")) {
              def = k;
              var = b[k].text;
              break;
            }
            if (is_punct(b[j], ";")) break;
          }
          if (def != kNpos) break;
        }
        if (def == kNpos) continue;
        // Inspected within the defining statement (if-init etc.)?
        if (mentions(b, def + 1, node.end, var, kNpos)) {
          continue;
        }
        const auto consuming_in = [&](std::size_t from, std::size_t to) {
          for (std::size_t k = from; k < to && k < b.size(); ++k) {
            if (is_ident(b[k], var) && consuming_mention(k)) return true;
          }
          return false;
        };
        if (reaches_exit(cfg, static_cast<int>(n), /*use_esucc=*/false,
                         /*start_esucc=*/false, [&](int m) {
                           const CfgNode& mm = cfg.nodes[m];
                           return consuming_in(mm.begin, mm.end);
                         })) {
          emit(fm.path, node.line, "result-flow",
               "Result from try_* stored in '" + var + "' in " + fn.display +
                   " is dropped on some path without being inspected");
        }
      }

      // ---- rcu-escape ----
      {
        const std::set<std::string> epoch_vars =
            collect_epoch_vars(fn, cg_, sums_);
        const auto epoch_handle_in = [&](std::size_t from,
                                         std::size_t to) -> std::string {
          for (std::size_t k = from; k < to && k < b.size(); ++k) {
            if (b[k].kind == Kind::kIdent && epoch_vars.contains(b[k].text) &&
                handle_use(b, k)) {
              return b[k].text;
            }
          }
          if (epoch_source_in(b, from, to, cg_.rcu_members(), epoch_fns)) {
            return "<rcu read>";
          }
          return {};
        };
        // Default-capture lambdas in [from,to) whose (excised) body uses
        // an epoch variable of this function.
        const auto lambda_capture_in = [&](std::size_t from,
                                           std::size_t to) -> std::string {
          for (std::size_t k = from; k < to && k < b.size(); ++k) {
            if (!is_punct(b[k], "[")) continue;
            const std::size_t cap_end = fwd_match(b, k, "[", "]");
            for (std::size_t j = k + 1; j < cap_end && j < b.size(); ++j) {
              if (b[j].kind == Kind::kIdent &&
                  epoch_vars.contains(b[j].text)) {
                return b[j].text;
              }
            }
            const bool default_cap =
                k + 1 < b.size() &&
                (is_punct(b[k + 1], "&") || is_punct(b[k + 1], "="));
            if (!default_cap) continue;
            for (const Function& l : fm.functions) {
              if (!l.is_lambda ||
                  !l.name.starts_with(fn.name + "::lambda@") ||
                  l.line < b[k].line) {
                continue;
              }
              for (const std::string& v : epoch_vars) {
                if (mentions(l.body, 0, l.body.size(), v, kNpos)) return v;
              }
            }
          }
          return {};
        };

        static const std::set<std::string> kStoreMutators = {
            "insert", "emplace", "emplace_back", "push_back",
            "push",   "assign",  "try_emplace",  "reset"};
        for (std::size_t k = 0; k + 1 < b.size(); ++k) {
          if (!member_ident(b, k)) continue;
          if (cg_.rcu_members().contains(b[k].text)) continue;  // publishing
          if (is_punct(b[k + 1], "=")) {
            std::size_t stmt_end = k + 2;
            while (stmt_end < b.size() && !is_punct(b[stmt_end], ";")) {
              ++stmt_end;
            }
            std::string v = epoch_handle_in(k + 2, stmt_end);
            if (v.empty()) v = lambda_capture_in(k + 2, stmt_end);
            if (!v.empty()) {
              emit(fm.path, b[k].line, "rcu-escape",
                   "epoch-guarded pointer '" + v + "' is stored in member '" +
                       b[k].text + "' in " + fn.display +
                       "; the member outlives the epoch -- copy the data or "
                       "re-read the snapshot where it is used");
            }
          } else if ((is_punct(b[k + 1], ".") || is_punct(b[k + 1], "->")) &&
                     k + 3 < b.size() && b[k + 2].kind == Kind::kIdent &&
                     kStoreMutators.contains(b[k + 2].text) &&
                     is_punct(b[k + 3], "(")) {
            const std::size_t close = fwd_match(b, k + 3, "(", ")");
            const std::string v = epoch_handle_in(k + 4, close);
            if (!v.empty()) {
              emit(fm.path, b[k].line, "rcu-escape",
                   "epoch-guarded pointer '" + v + "' is stored in member '" +
                       b[k].text + "' in " + fn.display +
                       "; the member outlives the epoch -- copy the data or "
                       "re-read the snapshot where it is used");
            }
          }
        }
        // Captured by a lambda handed to a scheduler/thread/callback slot.
        for (const CallSite& c : facts.calls) {
          if (!escape_call(c.name) || c.tok + 1 >= b.size() ||
              !is_punct(b[c.tok + 1], "(")) {
            continue;
          }
          const std::size_t close = fwd_match(b, c.tok + 1, "(", ")");
          std::string v;
          for (std::size_t k = c.tok + 2; k < close && k < b.size(); ++k) {
            if (!is_punct(b[k], "[")) continue;
            const std::size_t cap_end = fwd_match(b, k, "[", "]");
            for (std::size_t j = k + 1; j < cap_end && j < b.size(); ++j) {
              if (b[j].kind == Kind::kIdent &&
                  epoch_vars.contains(b[j].text)) {
                v = b[j].text;
                break;
              }
            }
            if (v.empty() && k + 1 < b.size() &&
                (is_punct(b[k + 1], "&") || is_punct(b[k + 1], "="))) {
              v = lambda_capture_in(k, cap_end + 1);
            }
            if (!v.empty()) break;
          }
          if (!v.empty()) {
            emit(fm.path, c.line, "rcu-escape",
                 "epoch-guarded pointer '" + v +
                     "' is captured by a lambda passed to '" + c.name +
                     "' in " + fn.display +
                     "; the closure may run after the epoch is retired");
          }
        }
        // Returned as a raw view past the guard scope.
        const MethodInfo* mi = cg_.find(fn.cls, fn.name);
        if (mi != nullptr && mi->returns_raw && !epoch_vars.empty()) {
          for (std::size_t k = 0; k < b.size(); ++k) {
            if (!is_ident(b[k], "return") && !is_ident(b[k], "co_return")) {
              continue;
            }
            std::size_t stmt_end = k + 1;
            while (stmt_end < b.size() && !is_punct(b[stmt_end], ";")) {
              ++stmt_end;
            }
            for (std::size_t j = k + 1; j < stmt_end; ++j) {
              if (b[j].kind == Kind::kIdent &&
                  epoch_vars.contains(b[j].text)) {
                emit(fm.path, b[j].line, "rcu-escape",
                     "returning a raw view into epoch-guarded snapshot '" +
                         b[j].text + "' from " + fn.display +
                         "; the epoch may be retired once the caller's "
                         "guard scope ends -- return a copy or the shared "
                         "handle");
                break;
              }
            }
          }
        }
      }

      // ---- lock-held-across-call ----
      for (const BlockingOp& op : facts.blocking) {
        if (op.held.empty()) continue;
        emit(fm.path, op.line, "lock-held-across-call",
             "blocking " + op.desc + " while holding " + join(op.held) +
                 " in " + fn.display +
                 "; every waiter on the mutex stalls behind the I/O -- "
                 "move the operation outside the critical section");
      }
      for (const CallSite& c : facts.calls) {
        if (c.held.empty()) continue;
        for (const MethodKey& t : cg_.resolve_keys(c, fn.cls)) {
          const FnSummary& ts = sums_.of(t);
          if (!ts.blocking_unguarded || !ts.required.empty()) continue;
          emit(fm.path, c.line, "lock-held-across-call",
               "call into " + display_of(t) + " (" + ts.blocking_desc +
                   ") while holding " + join(c.held) + " in " + fn.display +
                   "; the callee blocks with the caller's lock held");
        }
      }
    }

    // ---- capacity-arith (token level, per file) ----
    if (!fm.path.ends_with("checked_math.hpp")) {
      const std::vector<Tok>& t = fm.toks;
      std::vector<const Tok*> code;
      for (const Tok& tok : t) {
        if (tok.kind != Kind::kComment && tok.kind != Kind::kPreproc) {
          code.push_back(&tok);
        }
      }
      const auto is_capacity_ident = [](const Tok* tok) {
        if (tok->kind != Kind::kIdent) return false;
        const std::string low = lower(tok->text);
        return low.find("capacity") != std::string::npos ||
               low == "b_max" || low == "bmax";
      };
      for (std::size_t i = 0; i < code.size(); ++i) {
        const Tok* op = code[i];
        if (op->kind != Kind::kPunct) continue;
        const bool additive = op->text == "+" || op->text == "+=";
        const bool multiplicative = op->text == "*" || op->text == "*=";
        if (!additive && !multiplicative) continue;
        if (i == 0 || i + 1 >= code.size()) continue;
        // Binary use only: the left neighbour must be a value.
        const Tok* lhs = code[i - 1];
        if (!(lhs->kind == Kind::kIdent || lhs->kind == Kind::kNumber ||
              lhs->text == ")" || lhs->text == "]")) {
          continue;
        }
        // Operand chains on both sides.
        bool capacity = false;
        {
          std::size_t j = i;
          while (j > 0) {
            --j;
            const Tok* tk = code[j];
            if (tk->text == ")" || tk->text == "]") {
              const char* open = tk->text == ")" ? "(" : "[";
              int depth = 0;
              while (true) {
                if (code[j]->text == tk->text) ++depth;
                if (code[j]->text == open && --depth == 0) break;
                if (j == 0) break;
                --j;
              }
              continue;
            }
            if (tk->kind == Kind::kIdent) {
              if (is_capacity_ident(tk)) capacity = true;
            } else if (tk->text != "." && tk->text != "->" &&
                       tk->text != "::") {
              break;
            }
          }
        }
        {
          std::size_t j = i + 1;
          while (j < code.size()) {
            const Tok* tk = code[j];
            if (tk->text == "(" || tk->text == "[") {
              const char* close = tk->text == "(" ? ")" : "]";
              j = [&] {
                int depth = 0;
                for (std::size_t k = j; k < code.size(); ++k) {
                  if (code[k]->text == tk->text) ++depth;
                  if (code[k]->text == close && --depth == 0) return k;
                }
                return code.size();
              }();
              ++j;
              continue;
            }
            if (tk->kind == Kind::kIdent || tk->kind == Kind::kNumber) {
              if (is_capacity_ident(tk)) capacity = true;
              ++j;
              continue;
            }
            if (tk->text == "." || tk->text == "->" || tk->text == "::") {
              ++j;
              continue;
            }
            break;
          }
        }
        if (!capacity) continue;
        // Floating-point statements are the double-precision analysis
        // path (Lemma 2.1/2.2 math) -- overflow is not the failure mode.
        bool fp = false;
        {
          std::size_t lo = i;
          while (lo > 0 && code[lo]->text != ";" && code[lo]->text != "{" &&
                 code[lo]->text != "}") {
            --lo;
          }
          std::size_t hi = i;
          while (hi + 1 < code.size() && code[hi]->text != ";" &&
                 code[hi]->text != "}") {
            ++hi;
          }
          for (std::size_t k = lo; k <= hi && k < code.size(); ++k) {
            if (is_ident(*code[k], "double") || is_ident(*code[k], "float")) {
              fp = true;
              break;
            }
          }
        }
        if (fp) continue;
        emit(fm.path, op->line, "capacity-arith",
             std::string("unchecked '") + op->text +
                 "' on capacity values; route through rds::checked_add/"
                 "checked_mul (src/util/checked_math.hpp)");
      }
    }
  }

  // ---- result-flow: Result parameters a callee never consumes --------------
  for (const auto& [key, m] : cg_.methods()) {
    if (m.result_params.empty() || m.defs.empty() || m.is_lambda) continue;
    const FnSummary& s = sums_.of(key);
    if (!s.has_result_params || s.consumes_result_params) continue;
    emit(m.def_files.front()->path, m.defs.front()->line, "result-flow",
         "Result parameter(s) " + join(m.result_params) + " of " +
             display_of(key) +
             " are not inspected on every path; consume or propagate them");
  }

  // ---- stale-suppression ---------------------------------------------------
  // Needs every family's verdict, so it only runs without a rule filter.
  if (opts.only_rules.empty()) {
    std::set<std::string> ours(rule_ids().begin(), rule_ids().end());
    ours.erase("stale-suppression");
    for (const FileModel& fm : files_) {
      for (const auto& [cline, rules] : fm.sup.declared) {
        for (const std::string& rule : rules) {
          if (!ours.contains(rule)) continue;  // another tool's rule id
          if (used_sups.contains({fm.path, cline, rule})) continue;
          emit(fm.path, cline, "stale-suppression",
               "suppression 'allow(" + rule +
                   ")' matches no " + rule + " finding; remove it");
        }
      }
    }
  }

  // ---- filtering + ordering -------------------------------------------------
  std::vector<Finding> out;
  for (Finding& f : findings) {
    if (!opts.only_rules.empty() &&
        std::find(opts.only_rules.begin(), opts.only_rules.end(), f.rule) ==
            opts.only_rules.end()) {
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<Finding> analyze_text(const std::string& path,
                                  std::string_view text, const Options& opts) {
  Analyzer a;
  a.add_text(path, text);
  return a.run(opts);
}

}  // namespace rds::analyze
