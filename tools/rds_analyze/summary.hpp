#pragma once

/// Per-function summaries for rds_analyze, propagated bottom-up over the
/// call graph's SCC condensation (docs/static_analysis.md).
///
/// A summary is what a caller needs to know about a callee without seeing
/// its body: the locks it (transitively) acquires, the locks it requires
/// on entry, whether it reaches a blocking operation with no lock of its
/// own (so a caller holding one creates the lock-held-across-call
/// pairing), whether it appends to the journal, whether it hands back an
/// RCU epoch/snapshot pointer, whether it consumes its Result parameters,
/// and which member gauges it sub()'s on every path (exception edges
/// included).  SCCs are processed callee-first with a fixpoint iteration
/// inside each component, so mutual recursion converges.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/rds_analyze/callgraph.hpp"

namespace rds::analyze {

struct FnSummary {
  std::set<std::string> locks;        ///< transitively acquired lock nodes
  std::vector<std::string> required;  ///< entry-held lock nodes
  bool appends_journal = false;       ///< reaches a journal append
  /// Reaches a blocking op (journal append, fsync, sleep, join) with no
  /// lock held anywhere inside the callee subtree.  A caller holding a
  /// lock across such a call creates the pairing, so the call site is
  /// the reporting point; guarded callees report internally instead.
  bool blocking_unguarded = false;
  std::string blocking_desc;  ///< first cause, for messages
  bool returns_epoch = false;  ///< returns an RCU epoch/snapshot handle
  bool has_result_params = false;
  bool consumes_result_params = false;  ///< every Result param inspected
  /// Member gauge names this function sub()'s on every path to exit,
  /// exception edges included (credited to callers by metric-balance).
  std::set<std::string> subs_on_all_paths;
};

class Summaries {
 public:
  [[nodiscard]] static Summaries compute(const CallGraph& cg);

  /// Summary for a method key; a shared empty summary when unknown.
  [[nodiscard]] const FnSummary& of(const MethodKey& key) const;
  [[nodiscard]] const std::map<MethodKey, FnSummary>& all() const {
    return sums_;
  }

 private:
  std::map<MethodKey, FnSummary> sums_;
};

/// True when [from,to) contains an epoch-handle source: an RcuCell member
/// load()/read(), or a call to a function in `epoch_fns` (names whose
/// summaries return an epoch handle).
[[nodiscard]] bool epoch_source_in(const std::vector<Tok>& b,
                                   std::size_t from, std::size_t to,
                                   const std::set<std::string>& rcu_members,
                                   const std::set<std::string>& epoch_fns);

/// Local variables of `fn` bound to an epoch-guarded snapshot: assigned
/// from an RcuCell member load()/read(), from placement_snapshot /
/// copy_locations, from a callee whose summary returns_epoch, or copied
/// from another epoch variable.
[[nodiscard]] std::set<std::string> collect_epoch_vars(const Function& fn,
                                                       const CallGraph& cg,
                                                       const Summaries& sums);

}  // namespace rds::analyze
