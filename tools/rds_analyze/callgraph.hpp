#pragma once

/// Whole-program call graph for rds_analyze (docs/static_analysis.md).
///
/// Builds on the per-file models from cfg.hpp: a method registry keyed by
/// (class, name), per-function lock/call/blocking facts from a token-linear
/// walk, and a resolved call graph whose edges cover four resolution forms:
///   - direct:  unqualified / receiver-typed / `Q::f` calls,
///   - wrapper: a call to a declared-but-unseen `f` also resolves to the
///     `try_f` twin on the same class (the throwing-wrapper convention),
///   - factory: a local assigned from a `make_*` factory carries the
///     factory's declared interface type, so calls through it resolve,
///   - virtual: a call through an interface type fans out to every class
///     derived from it that declares the method.
/// The graph is condensed into SCCs (Tarjan) listed callee-first, which is
/// the propagation order the summary layer (summary.hpp) runs in.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/rds_analyze/cfg.hpp"

namespace rds::analyze {

using MethodKey = std::pair<std::string, std::string>;  // (class, name)

/// One direct lock acquisition with the set already held at that point.
struct LockAcq {
  std::string node;
  int line = 0;
  std::vector<std::string> held;
};

/// One call site with enough shape to resolve it later.
struct CallSite {
  std::string name;
  std::string recv_type;   ///< resolved receiver type, "" if unknown
  bool has_recv = false;   ///< x.f() / x->f()
  bool qualified = false;  ///< Q::f()
  std::string qual;        ///< Q for qualified calls
  int line = 0;
  std::size_t tok = 0;  ///< index of the name token in Function::body
  std::vector<std::string> held;  ///< lock nodes held at the call
};

/// A directly blocking operation (journal append, fsync, sleep, join).
struct BlockingOp {
  std::string desc;
  int line = 0;
  std::size_t tok = 0;
  std::vector<std::string> held;
};

struct FnFacts {
  std::vector<LockAcq> acqs;
  std::vector<CallSite> calls;
  std::vector<BlockingOp> blocking;
};

enum class EdgeKind { kDirect, kWrapper, kFactory, kVirtual };

[[nodiscard]] std::string_view edge_kind_name(EdgeKind k);

struct CallEdge {
  MethodKey to;
  EdgeKind kind = EdgeKind::kDirect;
  int line = 0;
};

/// Everything the registry knows about one (class, name), merged over all
/// declarations and definitions seen anywhere in the tree.
struct MethodInfo {
  bool declared = false;
  bool defined = false;
  bool abstract = false;
  bool locking_ann = false;    ///< RDS_EXCLUDES on some declaration
  bool requires_lock = false;  ///< RDS_REQUIRES / *_locked
  bool returns_result = false;
  bool returns_raw = false;  ///< return type is a pointer/reference view
  bool is_lambda = false;
  std::vector<std::string> required_locks;  ///< resolved "Cls::mu_" nodes
  std::string ret_class;  ///< known class named in the return type, or ""
  std::vector<std::string> result_params;  ///< Result-typed parameter names
  std::set<std::string> direct_locks;      ///< lock nodes the body acquires
  std::vector<CallSite> calls;  ///< merged over all definitions
  std::vector<const Function*> defs;  ///< bodies (overloads merge here)
  std::vector<const FileModel*> def_files;  ///< parallel to defs
};

/// Generic iterative Tarjan over an int-indexed adjacency.  Component ids
/// number SCCs in reverse topological order: every edge u -> v outside a
/// component has comp[v] < comp[u], so ascending id order is callee-first.
struct SccResult {
  std::vector<int> comp;
  int count = 0;
};

[[nodiscard]] SccResult tarjan_scc(std::size_t n,
                                   const std::vector<std::vector<int>>& adj);

class CallGraph {
 public:
  /// Builds the registry, facts, resolved edges, and SCC condensation.
  /// The FileModels must outlive the graph (MethodInfo points into them).
  [[nodiscard]] static CallGraph build(const std::vector<FileModel>& files);

  /// All resolution forms (direct + wrapper + factory + virtual).  Kinds
  /// are reported per target; unresolvable calls return empty.
  [[nodiscard]] std::vector<std::pair<MethodKey, EdgeKind>> resolve(
      const CallSite& c, const std::string& enclosing) const;

  /// Target keys only, for callers that do not care about the edge kind.
  [[nodiscard]] std::vector<MethodKey> resolve_keys(
      const CallSite& c, const std::string& enclosing) const;

  [[nodiscard]] const MethodInfo* find(const std::string& cls,
                                       const std::string& name) const;
  [[nodiscard]] const std::map<MethodKey, MethodInfo>& methods() const {
    return methods_;
  }
  [[nodiscard]] const std::map<MethodKey, std::vector<CallEdge>>& edges()
      const {
    return edges_;
  }
  /// SCCs of the method graph, callee-first (reverse topological).
  [[nodiscard]] const std::vector<std::vector<MethodKey>>& sccs() const {
    return sccs_;
  }
  [[nodiscard]] const std::set<std::string>& classes() const {
    return classes_;
  }
  /// base -> transitively derived classes.
  [[nodiscard]] const std::map<std::string, std::set<std::string>>& derived()
      const {
    return derived_;
  }
  /// Member names declared with an RcuCell type (e.g. "published_").
  [[nodiscard]] const std::set<std::string>& rcu_members() const {
    return rcu_members_;
  }
  /// Per-definition facts (lambdas included), keyed by body identity.
  [[nodiscard]] const FnFacts& facts_of(const Function* fn) const;

 private:
  [[nodiscard]] bool vetoed(const std::string& name,
                            const std::string& enclosing) const;

  std::map<MethodKey, MethodInfo> methods_;
  std::map<MethodKey, std::vector<CallEdge>> edges_;
  std::vector<std::vector<MethodKey>> sccs_;
  std::set<std::string> classes_;
  std::map<std::string, std::vector<std::string>> bases_;  ///< direct bases
  std::map<std::string, std::set<std::string>> derived_;
  std::set<std::string> rcu_members_;
  std::set<std::string> types_via_factory_;  ///< interface classes factories
                                             ///< hand out (edge labeling)
  std::map<const Function*, FnFacts> facts_;
};

// ---- shared token-pattern helpers (used by the summary and rule layers) ----

[[nodiscard]] bool is_ident(const Tok& t, std::string_view s);
[[nodiscard]] bool is_punct(const Tok& t, std::string_view s);
[[nodiscard]] std::string lower(std::string s);
[[nodiscard]] std::size_t fwd_match(const std::vector<Tok>& t, std::size_t i,
                                    const char* open, const char* close);

/// Index of the first member-state mutation in [b,e) (trailing-underscore
/// member assigned or mutated through a container call), or npos.
[[nodiscard]] std::size_t find_member_mutation(const std::vector<Tok>& t,
                                               std::size_t b, std::size_t e);

/// Position of a journal append inside [b,e): `x->append(` with a
/// journal/sink/wal receiver, or a *journal*_locked / journal_append
/// helper call (`helper_name` receives the helper, "" for direct
/// appends).  Returns npos when the span has none.
[[nodiscard]] std::size_t find_append_call(const std::vector<Tok>& t,
                                           std::size_t b, std::size_t e,
                                           std::string* helper_name);

}  // namespace rds::analyze
