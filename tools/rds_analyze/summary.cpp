#include "tools/rds_analyze/summary.hpp"

#include <algorithm>

namespace rds::analyze {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::string display_of(const MethodKey& key) {
  return key.first.empty() ? key.second : key.first + "::" + key.second;
}

/// Inspection members that count as consuming a Result.
bool is_inspect_member(const Tok& t) {
  static const std::set<std::string> kInspect = {
      "ok",       "code",          "error",    "value",
      "value_or", "value_or_throw", "has_value"};
  return t.kind == Kind::kIdent && kInspect.contains(t.text);
}

/// Locals bound to an epoch handle: direct sources, plus handle copies
/// (`auto b = snap;`), raw extractions (`snap.get()`, `&snap`, `*snap`).
std::set<std::string> epoch_vars_impl(
    const Function& fn, const std::set<std::string>& rcu_members,
    const std::set<std::string>& epoch_fns) {
  const std::vector<Tok>& b = fn.body;
  std::set<std::string> vars;
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
      if (b[i].kind != Kind::kIdent || !is_punct(b[i + 1], "=")) continue;
      if (vars.contains(b[i].text) || b[i].text.ends_with("_")) continue;
      std::size_t stmt_end = i + 2;
      while (stmt_end < b.size() && !is_punct(b[stmt_end], ";")) ++stmt_end;
      bool epoch = epoch_source_in(b, i + 2, stmt_end, rcu_members, epoch_fns);
      if (!epoch) {
        // Handle/raw-pointer copies of an already-tainted variable.
        std::size_t j = i + 2;
        bool lead_addr = false;
        while (j < stmt_end &&
               (is_punct(b[j], "*") || is_punct(b[j], "&"))) {
          lead_addr = true;
          ++j;
        }
        if (j < stmt_end && b[j].kind == Kind::kIdent &&
            vars.contains(b[j].text)) {
          if (lead_addr || j + 1 >= stmt_end || is_punct(b[j + 1], ";")) {
            epoch = true;
          } else if ((is_punct(b[j + 1], ".") || is_punct(b[j + 1], "->")) &&
                     j + 2 < stmt_end && is_ident(b[j + 2], "get")) {
            epoch = true;
          }
        }
      }
      if (epoch && vars.insert(b[i].text).second) grew = true;
    }
  }
  return vars;
}

/// True when some `return` statement hands back the epoch handle itself
/// (a tainted variable not immediately dereferenced, or a direct source).
bool returns_epoch_handle(const std::vector<Tok>& b,
                          const std::set<std::string>& vars,
                          const std::set<std::string>& rcu_members,
                          const std::set<std::string>& epoch_fns) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (!is_ident(b[i], "return") && !is_ident(b[i], "co_return")) continue;
    std::size_t stmt_end = i + 1;
    while (stmt_end < b.size() && !is_punct(b[stmt_end], ";")) ++stmt_end;
    if (epoch_source_in(b, i + 1, stmt_end, rcu_members, epoch_fns)) {
      return true;
    }
    for (std::size_t j = i + 1; j < stmt_end; ++j) {
      if (b[j].kind != Kind::kIdent || !vars.contains(b[j].text)) continue;
      const bool derefed =
          j + 1 < stmt_end && (is_punct(b[j + 1], ".") ||
                               is_punct(b[j + 1], "->") ||
                               is_punct(b[j + 1], "["));
      if (!derefed) return true;
    }
  }
  return false;
}

/// Name of the call the mention at `i` is an argument of, skipping
/// through std::move/std::forward wrappers; "" when not inside a call.
std::string enclosing_callee(const std::vector<Tok>& b, std::size_t i) {
  std::size_t pos = i;
  for (int hops = 0; hops < 4; ++hops) {
    int depth = 0;
    std::size_t j = pos;
    std::string callee;
    while (j > 0) {
      --j;
      if (is_punct(b[j], ")")) ++depth;
      if (is_punct(b[j], "(")) {
        if (depth == 0) {
          if (j > 0 && b[j - 1].kind == Kind::kIdent) callee = b[j - 1].text;
          break;
        }
        --depth;
      }
      if (is_punct(b[j], ";") || is_punct(b[j], "{")) return {};
    }
    if (callee.empty()) return {};
    if (callee == "move" || callee == "forward") {
      pos = j;  // keep walking outward from the wrapper's '('
      continue;
    }
    return callee;
  }
  return {};
}

}  // namespace

bool epoch_source_in(const std::vector<Tok>& b, std::size_t from,
                     std::size_t to, const std::set<std::string>& rcu_members,
                     const std::set<std::string>& epoch_fns) {
  for (std::size_t j = from; j < to && j < b.size(); ++j) {
    if (b[j].kind != Kind::kIdent) continue;
    if (rcu_members.contains(b[j].text) && j + 2 < b.size() &&
        (is_punct(b[j + 1], ".") || is_punct(b[j + 1], "->")) &&
        (is_ident(b[j + 2], "load") || is_ident(b[j + 2], "read"))) {
      return true;
    }
    if (j + 1 < b.size() && is_punct(b[j + 1], "(") &&
        epoch_fns.contains(b[j].text)) {
      return true;
    }
  }
  return false;
}

const FnSummary& Summaries::of(const MethodKey& key) const {
  static const FnSummary kEmpty;
  const auto it = sums_.find(key);
  return it == sums_.end() ? kEmpty : it->second;
}

std::set<std::string> collect_epoch_vars(const Function& fn,
                                         const CallGraph& cg,
                                         const Summaries& sums) {
  std::set<std::string> epoch_fns = {"placement_snapshot", "copy_locations"};
  for (const auto& [key, s] : sums.all()) {
    if (s.returns_epoch) epoch_fns.insert(key.second);
  }
  return epoch_vars_impl(fn, cg.rcu_members(), epoch_fns);
}

Summaries Summaries::compute(const CallGraph& cg) {
  Summaries out;
  const auto& methods = cg.methods();
  for (const auto& [key, m] : methods) {
    FnSummary s;
    s.required = m.required_locks;
    s.has_result_params = !m.result_params.empty();
    // A body we never saw gets the benefit of the doubt on consumption.
    if (s.has_result_params && m.defs.empty()) {
      s.consumes_result_params = true;
    }
    out.sums_.emplace(key, std::move(s));
  }

  // Resolution is summary-independent: do it once per call site.
  std::map<const CallSite*, std::vector<MethodKey>> resolved;
  for (const auto& [key, m] : methods) {
    for (const CallSite& c : m.calls) {
      resolved.emplace(&c, cg.resolve_keys(c, key.first));
    }
    for (const Function* fn : m.defs) {
      for (const CallSite& c : cg.facts_of(fn).calls) {
        resolved.emplace(&c, cg.resolve_keys(c, key.first));
      }
    }
  }
  // Methods sharing a name, for the Result-param pass-through check.
  std::map<std::string, std::vector<MethodKey>> by_name;
  for (const auto& [key, m] : methods) by_name[key.second].push_back(key);

  std::map<const Function*, Cfg> cfgs;
  const auto cfg_of = [&](const Function* fn) -> const Cfg& {
    auto it = cfgs.find(fn);
    if (it == cfgs.end()) it = cfgs.emplace(fn, build_cfg(*fn)).first;
    return it->second;
  };
  std::set<std::string> epoch_fns = {"placement_snapshot", "copy_locations"};

  const auto param_consumed = [&](const std::vector<Tok>& b,
                                  const std::string& p) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (!is_ident(b[i], p)) continue;
      if (i + 1 < b.size() && is_punct(b[i + 1], "=")) continue;  // reassign
      if (i + 2 < b.size() &&
          (is_punct(b[i + 1], ".") || is_punct(b[i + 1], "->")) &&
          is_inspect_member(b[i + 2])) {
        return true;
      }
      if (i > 0 && is_punct(b[i - 1], "!")) return true;
      if (i > 0 && (is_ident(b[i - 1], "return") ||
                    is_ident(b[i - 1], "co_return"))) {
        return true;
      }
      // Passed along: consuming only if the callee consumes its Result
      // parameter; an unknown callee gets the benefit of the doubt.
      const std::string callee = enclosing_callee(b, i);
      if (callee.empty()) continue;
      const auto nit = by_name.find(callee);
      if (nit == by_name.end()) return true;  // unresolvable: assume consumed
      bool any_result_taking = false;
      for (const MethodKey& k : nit->second) {
        const FnSummary& ks = out.sums_.at(k);
        if (!ks.has_result_params) continue;
        any_result_taking = true;
        if (ks.consumes_result_params) return true;
      }
      if (!any_result_taking) return true;  // odd shape: stay conservative
    }
    return false;
  };

  const auto recompute = [&](const MethodKey& key) {
    const MethodInfo& m = methods.at(key);
    FnSummary next = out.sums_.at(key);

    std::set<std::string> locks = m.direct_locks;
    if (m.locking_ann && !m.defined && !key.first.empty()) {
      // Annotated but body unseen: assume it takes its class lock.
      locks.insert(key.first + "::mu_");
    }
    bool appends = false;
    bool unguarded = false;
    std::string desc = next.blocking_desc;
    for (const Function* fn : m.defs) {
      std::string helper;
      if (find_append_call(fn->body, 0, fn->body.size(), &helper) != kNpos) {
        appends = true;
      }
      for (const BlockingOp& op : cg.facts_of(fn).blocking) {
        if (op.held.empty() && !unguarded) {
          unguarded = true;
          desc = op.desc;
        }
      }
    }
    for (const CallSite& c : m.calls) {
      for (const MethodKey& t : resolved.at(&c)) {
        if (t == key) continue;
        const FnSummary& ts = out.sums_.at(t);
        locks.insert(ts.locks.begin(), ts.locks.end());
        if (ts.appends_journal) appends = true;
        if (c.held.empty() && ts.blocking_unguarded && !unguarded) {
          unguarded = true;
          desc = "call into " + display_of(t) + " (" + ts.blocking_desc + ")";
        }
      }
    }
    next.locks = std::move(locks);
    next.appends_journal = appends;
    next.blocking_unguarded = unguarded;
    if (unguarded) next.blocking_desc = desc;

    if (!next.returns_epoch) {
      for (const Function* fn : m.defs) {
        const std::set<std::string> vars =
            epoch_vars_impl(*fn, cg.rcu_members(), epoch_fns);
        if (returns_epoch_handle(fn->body, vars, cg.rcu_members(),
                                 epoch_fns)) {
          next.returns_epoch = true;
          break;
        }
      }
    }

    if (next.has_result_params && !next.consumes_result_params &&
        !m.defs.empty()) {
      bool all = true;
      for (const std::string& p : m.result_params) {
        bool one = false;
        for (const Function* fn : m.defs) {
          if (param_consumed(fn->body, p)) {
            one = true;
            break;
          }
        }
        if (!one) {
          all = false;
          break;
        }
      }
      next.consumes_result_params = all;
    }

    // Member gauges sub()'d on every path to exit (exception edges too).
    std::set<std::string> all_subs;
    bool first_def = true;
    for (const Function* fn : m.defs) {
      const std::vector<Tok>& b = fn->body;
      const FnFacts& facts = cg.facts_of(fn);
      std::set<std::string> candidates;
      const auto sub_of_g_at = [&](std::size_t k, const std::string& g) {
        return is_ident(b[k], g) &&
               (k == 0 || !(is_punct(b[k - 1], ".") ||
                            is_punct(b[k - 1], "->") ||
                            is_punct(b[k - 1], "::"))) &&
               k + 3 < b.size() &&
               (is_punct(b[k + 1], ".") || is_punct(b[k + 1], "->")) &&
               is_ident(b[k + 2], "sub") && is_punct(b[k + 3], "(");
      };
      for (std::size_t k = 0; k + 3 < b.size(); ++k) {
        if (b[k].kind == Kind::kIdent && b[k].text.ends_with("_") &&
            !b[k].text.ends_with("__") && sub_of_g_at(k, b[k].text)) {
          candidates.insert(b[k].text);
        }
      }
      for (const CallSite& c : facts.calls) {
        for (const MethodKey& t : resolved.at(&c)) {
          const FnSummary& ts = out.sums_.at(t);
          candidates.insert(ts.subs_on_all_paths.begin(),
                            ts.subs_on_all_paths.end());
        }
      }
      std::set<std::string> def_subs;
      for (const std::string& g : candidates) {
        const Cfg& cfg = cfg_of(fn);
        const auto barrier = [&](int n) {
          const CfgNode& node = cfg.nodes[static_cast<std::size_t>(n)];
          for (std::size_t k = node.begin;
               k < node.end && k + 3 < b.size(); ++k) {
            if (sub_of_g_at(k, g)) return true;
          }
          for (const CallSite& c : facts.calls) {
            if (c.tok < node.begin || c.tok >= node.end) continue;
            for (const MethodKey& t : resolved.at(&c)) {
              if (out.sums_.at(t).subs_on_all_paths.contains(g)) return true;
            }
          }
          return false;
        };
        if (!reaches_exit(cfg, Cfg::kEntry, /*use_esucc=*/true,
                          /*start_esucc=*/false, barrier)) {
          def_subs.insert(g);
        }
      }
      if (first_def) {
        all_subs = std::move(def_subs);
        first_def = false;
      } else {
        std::set<std::string> inter;
        std::set_intersection(all_subs.begin(), all_subs.end(),
                              def_subs.begin(), def_subs.end(),
                              std::inserter(inter, inter.begin()));
        all_subs = std::move(inter);
      }
    }
    next.subs_on_all_paths = std::move(all_subs);

    FnSummary& cur = out.sums_.at(key);
    const bool changed =
        next.locks != cur.locks ||
        next.appends_journal != cur.appends_journal ||
        next.blocking_unguarded != cur.blocking_unguarded ||
        next.blocking_desc != cur.blocking_desc ||
        next.returns_epoch != cur.returns_epoch ||
        next.consumes_result_params != cur.consumes_result_params ||
        next.subs_on_all_paths != cur.subs_on_all_paths;
    if (next.returns_epoch) epoch_fns.insert(key.second);
    cur = std::move(next);
    return changed;
  };

  for (const auto& scc : cg.sccs()) {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 12) {
      changed = false;
      for (const MethodKey& key : scc) {
        if (recompute(key)) changed = true;
      }
    }
  }
  return out;
}

}  // namespace rds::analyze
