#include "tools/rds_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace rds::lint {
namespace {

// ---- tokens ----------------------------------------------------------------

enum class Kind { kIdent, kNumber, kString, kChar, kPunct, kComment, kPreproc };

struct Tok {
  Kind kind;
  std::string text;
  int line = 0;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// A loose C++ lexer: good enough to tell identifiers, literals, comments,
/// and preprocessor lines apart.  Deliberately NOT a full grammar -- the
/// rules below only need token streams, and staying token-level keeps the
/// checker independent of compiler internals.
std::vector<Tok> tokenize(std::string_view s) {
  std::vector<Tok> toks;
  const std::size_t n = s.size();
  std::size_t i = 0;
  int line = 1;
  bool line_start = true;  // nothing but whitespace seen on this line
  const auto peek = [&](std::size_t k) { return i + k < n ? s[i + k] : '\0'; };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && line_start) {
      // Whole preprocessor directive as one token (continuations folded).
      const int start = line;
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && peek(1) == '\n') {
          text += ' ';
          i += 2;
          ++line;
          continue;
        }
        if (s[i] == '\n') break;
        text += s[i];
        ++i;
      }
      toks.push_back({Kind::kPreproc, std::move(text), start});
      continue;
    }
    line_start = false;
    if (c == '/' && peek(1) == '/') {
      std::string text;
      while (i < n && s[i] != '\n') {
        text += s[i];
        ++i;
      }
      toks.push_back({Kind::kComment, std::move(text), line});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start = line;
      std::string text = "/*";
      i += 2;
      while (i < n && !(s[i] == '*' && peek(1) == '/')) {
        if (s[i] == '\n') ++line;
        text += s[i];
        ++i;
      }
      if (i < n) {
        text += "*/";
        i += 2;
      }
      toks.push_back({Kind::kComment, std::move(text), start});
      continue;
    }
    if (c == 'R' && peek(1) == '"') {
      // Raw string literal R"delim( ... )delim".
      const int start = line;
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && s[j] != '(') {
        delim += s[j];
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      std::size_t end = s.find(closer, j);
      end = end == std::string_view::npos ? n : end + closer.size();
      std::string text(s.substr(i, end - i));
      line += static_cast<int>(std::count(text.begin(), text.end(), '\n'));
      i = end;
      toks.push_back({Kind::kString, std::move(text), start});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char q = c;
      const int start = line;
      std::string text(1, q);
      ++i;
      while (i < n) {
        const char d = s[i];
        text += d;
        ++i;
        if (d == '\\' && i < n) {
          text += s[i];
          ++i;
          continue;
        }
        if (d == q) break;
        if (d == '\n') ++line;  // unterminated literal: keep lexing
      }
      toks.push_back(
          {q == '"' ? Kind::kString : Kind::kChar, std::move(text), start});
      continue;
    }
    if (is_ident_start(c)) {
      std::string text;
      while (i < n && is_ident_char(s[i])) {
        text += s[i];
        ++i;
      }
      toks.push_back({Kind::kIdent, std::move(text), line});
      continue;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      std::string text;
      while (i < n) {
        const char d = s[i];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          text += d;
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty() &&
            (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
             text.back() == 'P')) {
          text += d;
          ++i;
          continue;
        }
        break;
      }
      toks.push_back({Kind::kNumber, std::move(text), line});
      continue;
    }
    static constexpr std::array<std::string_view, 20> kTwoChar = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
    std::string text(1, c);
    if (i + 1 < n) {
      const std::string_view pair = s.substr(i, 2);
      for (const std::string_view t : kTwoChar) {
        if (pair == t) {
          text = std::string(t);
          break;
        }
      }
    }
    i += text.size();
    toks.push_back({Kind::kPunct, std::move(text), line});
  }
  return toks;
}

// ---- suppressions ----------------------------------------------------------

/// `// rds_lint: allow(rule) -- reason` comments.  A suppression applies to
/// its own line; when the comment stands alone, also to the next line that
/// holds code (skipping blank and comment-only lines).
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  /// (covered line, rule) -> line of the granting comment, so a match on
  /// any covered line marks the whole comment as used.
  std::map<std::pair<int, std::string>, int> origin;
  /// comment line -> rules it names; the stale-suppression pass walks
  /// this to find allow() comments that no longer match any finding.
  std::map<int, std::set<std::string>> declared;

  [[nodiscard]] bool allows(int line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.contains(rule);
  }

  /// Comment line that makes `allows(line, rule)` true, or -1.
  [[nodiscard]] int origin_of(int line, const std::string& rule) const {
    const auto it = origin.find({line, rule});
    return it == origin.end() ? -1 : it->second;
  }
};

Suppressions collect_suppressions(const std::vector<Tok>& toks) {
  std::set<int> code_lines;
  for (const Tok& t : toks) {
    if (t.kind != Kind::kComment) code_lines.insert(t.line);
  }
  Suppressions sup;
  for (const Tok& t : toks) {
    if (t.kind != Kind::kComment) continue;
    if (t.text.find("rds_lint:") == std::string::npos) continue;
    // The reason is mandatory: a bare allow() keeps the finding alive.
    const std::size_t dashes = t.text.find("--");
    const bool has_reason =
        dashes != std::string::npos &&
        t.text.find_first_not_of(" \t", dashes + 2) != std::string::npos;
    if (!has_reason) continue;
    std::size_t pos = 0;
    while ((pos = t.text.find("allow(", pos)) != std::string::npos) {
      const std::size_t open = pos + 6;
      const std::size_t close = t.text.find(')', open);
      pos = open;
      if (close == std::string::npos) break;
      std::string rule = t.text.substr(open, close - open);
      const auto strip = [](std::string& v) {
        while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
          v.erase(v.begin());
        }
        while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
          v.pop_back();
        }
      };
      strip(rule);
      if (rule.empty()) continue;
      sup.by_line[t.line].insert(rule);
      sup.declared[t.line].insert(rule);
      sup.origin[{t.line, rule}] = t.line;
      if (!code_lines.contains(t.line)) {
        const auto next = code_lines.upper_bound(t.line);
        if (next != code_lines.end()) {
          sup.by_line[*next].insert(rule);
          sup.origin[{*next, rule}] = t.line;
        }
      }
    }
  }
  return sup;
}

// ---- scope tracking --------------------------------------------------------

struct Scope {
  enum K { kNamespace, kType, kFunction, kOther };
  K kind = kOther;
  bool fn_try = false;       ///< function named try_*
  bool fn_noexcept = false;  ///< function declared noexcept
  std::string fn_name;
};

/// Decides what a `{` opens from the declaration tokens collected since the
/// last `;` / `{` / `}`.  Only consulted outside function bodies; inside a
/// function every nested brace is an ordinary block.
Scope classify(const std::vector<const Tok*>& decl) {
  for (const Tok* t : decl) {
    if (t->kind == Kind::kPunct && t->text == "(") break;
    if (t->kind != Kind::kIdent) continue;
    if (t->text == "namespace") return {Scope::kNamespace};
    if (t->text == "class" || t->text == "struct" || t->text == "enum" ||
        t->text == "union") {
      return {Scope::kType};
    }
  }
  for (std::size_t i = 0; i < decl.size(); ++i) {
    if (decl[i]->kind != Kind::kPunct || decl[i]->text != "(") continue;
    Scope s;
    s.kind = Scope::kFunction;
    if (i > 0) {
      s.fn_name = decl[i - 1]->text;
      s.fn_try = decl[i - 1]->kind == Kind::kIdent &&
                 s.fn_name.starts_with("try_");
    }
    for (std::size_t j = i; j < decl.size(); ++j) {
      if (decl[j]->kind != Kind::kIdent || decl[j]->text != "noexcept") {
        continue;
      }
      const bool conditional_false = j + 2 < decl.size() &&
                                     decl[j + 1]->text == "(" &&
                                     decl[j + 2]->text == "false";
      if (!conditional_false) s.fn_noexcept = true;
    }
    return s;
  }
  return {Scope::kOther};
}

// ---- rules -----------------------------------------------------------------

constexpr std::array<std::string_view, 10> kAtomicOps = {
    "load",      "store",    "exchange",    "fetch_add",
    "fetch_sub", "fetch_and", "fetch_or",   "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong"};

constexpr std::array<std::string_view, 6> kNondeterministic = {
    "random_device", "srand", "rand",
    "system_clock",  "high_resolution_clock", "time"};

constexpr std::array<std::string_view, 3> kMetricFactories = {
    "counter", "gauge", "histogram"};

template <std::size_t N>
bool in_set(const std::array<std::string_view, N>& set,
            const std::string& word) {
  return std::find(set.begin(), set.end(), word) != set.end();
}

bool ends_with_any(const std::string& path,
                   std::initializer_list<std::string_view> exts) {
  for (const std::string_view e : exts) {
    if (path.size() >= e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "atomic-memory-order",   "result-path-throw", "placement-determinism",
      "header-hygiene",        "metrics-naming",    "nodiscard-result",
      "stale-suppression"};
  return kIds;
}

std::vector<Finding> lint_text(const std::string& path, std::string_view text,
                               const Options& opts) {
  const std::vector<Tok> toks = tokenize(text);
  const Suppressions sup = collect_suppressions(toks);

  const auto enabled = [&](std::string_view rule) {
    if (opts.only_rules.empty()) return true;
    return std::find(opts.only_rules.begin(), opts.only_rules.end(), rule) !=
           opts.only_rules.end();
  };

  std::vector<Finding> out;
  // (comment line, rule) pairs that actually shielded a finding, so the
  // stale-suppression pass can tell live allow() comments from dead ones.
  std::set<std::pair<int, std::string>> used_sups;
  const auto emit = [&](int line, const char* rule, std::string msg) {
    if (!enabled(rule)) return;
    if (sup.allows(line, rule)) {
      used_sups.insert({sup.origin_of(line, rule), rule});
      return;
    }
    out.push_back({path, line, rule, std::move(msg)});
  };

  const bool is_header = ends_with_any(path, {".hpp", ".h", ".hh"});
  const bool is_placement = path.find("placement/") != std::string::npos;

  if (is_header) {
    bool pragma_once = false;
    for (const Tok& t : toks) {
      if (t.kind == Kind::kPreproc &&
          t.text.find("pragma") != std::string::npos &&
          t.text.find("once") != std::string::npos) {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      emit(1, "header-hygiene", "header is missing #pragma once");
    }
  }

  // Code tokens only (comments and preprocessor lines play no scope role).
  std::vector<const Tok*> code;
  code.reserve(toks.size());
  for (const Tok& t : toks) {
    if (t.kind != Kind::kComment && t.kind != Kind::kPreproc) {
      code.push_back(&t);
    }
  }
  const auto at = [&](std::size_t k) -> const Tok* {
    return k < code.size() ? code[k] : nullptr;
  };

  std::vector<Scope> stack;
  std::vector<const Tok*> decl;
  const auto nearest_function = [&]() -> const Scope* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Scope::kFunction) return &*it;
    }
    return nullptr;
  };

  for (std::size_t k = 0; k < code.size(); ++k) {
    const Tok& t = *code[k];

    if (t.kind == Kind::kPunct) {
      if (t.text == "{") {
        // Inside a function every brace is an ordinary block; declaration
        // classification only matters at namespace/class scope.
        stack.push_back(nearest_function() != nullptr ? Scope{Scope::kOther}
                                                      : classify(decl));
        decl.clear();
        continue;
      }
      if (t.text == "}") {
        if (!stack.empty()) stack.pop_back();
        decl.clear();
        continue;
      }
      if (t.text == ";") {
        decl.clear();
        continue;
      }
    }

    if (t.kind == Kind::kIdent) {
      if (t.text == "throw") {
        const Scope* fn = nearest_function();
        if (fn != nullptr && (fn->fn_try || fn->fn_noexcept)) {
          emit(t.line, "result-path-throw",
               "'" + fn->fn_name + "' is a " +
                   (fn->fn_try ? std::string("Result-returning try_* path")
                               : std::string("noexcept function")) +
                   "; report the error, do not throw");
        }
      }

      if (is_header && t.text == "using" && nearest_function() == nullptr) {
        const Tok* n1 = at(k + 1);
        if (n1 != nullptr && n1->kind == Kind::kIdent &&
            n1->text == "namespace") {
          emit(t.line, "header-hygiene",
               "'using namespace' at namespace scope in a header leaks "
               "names into every includer");
        }
      }

      if (is_placement && in_set(kNondeterministic, t.text)) {
        emit(t.line, "placement-determinism",
             "'" + t.text +
                 "' in src/placement/: placement must be a deterministic "
                 "function of (input, config)");
      }

      if (in_set(kAtomicOps, t.text)) {
        const Tok* p = k > 0 ? code[k - 1] : nullptr;
        const Tok* n1 = at(k + 1);
        if (p != nullptr && (p->text == "." || p->text == "->") &&
            n1 != nullptr && n1->text == "(") {
          int depth = 0;
          int orders = 0;
          for (std::size_t j = k + 1; j < code.size() && j < k + 512; ++j) {
            const Tok& a = *code[j];
            if (a.kind == Kind::kPunct && a.text == "(") ++depth;
            if (a.kind == Kind::kPunct && a.text == ")" && --depth == 0) break;
            if (a.kind == Kind::kIdent &&
                a.text.find("memory_order") != std::string::npos) {
              ++orders;
            }
          }
          const bool is_cas = t.text.starts_with("compare_exchange");
          const int required = is_cas ? 2 : 1;
          if (orders < required) {
            emit(t.line, "atomic-memory-order",
                 "atomic " + t.text + "() without " +
                     (is_cas ? "explicit success AND failure memory orders"
                             : "an explicit memory order") +
                     "; spell out the weakest order that is correct");
          }
        }
      }

      if (in_set(kMetricFactories, t.text)) {
        const Tok* n1 = at(k + 1);
        const Tok* n2 = at(k + 2);
        if (n1 != nullptr && n1->text == "(" && n2 != nullptr &&
            n2->kind == Kind::kString && !n2->text.starts_with("\"rds_")) {
          emit(n2->line, "metrics-naming",
               "metric family " + n2->text +
                   " does not follow the rds_* naming scheme "
                   "(docs/metrics.md)");
        }
      }

      if (is_header && nearest_function() == nullptr) {
        const Tok* n1 = at(k + 1);
        const bool is_call_shape = n1 != nullptr && n1->text == "(";
        const auto decl_has = [&](std::string_view word) {
          for (const Tok* d : decl) {
            if (d->kind == Kind::kIdent && d->text == word) return true;
          }
          return false;
        };
        if (is_call_shape && t.text.starts_with("try_") &&
            decl_has("Result") && !decl_has("nodiscard")) {
          emit(t.line, "nodiscard-result",
               "Result-returning '" + t.text +
                   "' must be [[nodiscard]]: a dropped Result is a "
                   "silently swallowed error");
        }
        if (is_call_shape && t.text == "exchange" && decl_has("shared_ptr") &&
            !decl_has("nodiscard")) {
          emit(t.line, "nodiscard-result",
               "'exchange' hands back the previous pointer; dropping it "
               "defeats the swap -- mark it [[nodiscard]]");
        }
      }
    }

    // Bounded: giant table initializers would otherwise balloon the span.
    if (decl.size() < 4096) decl.push_back(&t);
  }

  // Stale suppressions: an allow() naming one of OUR rules that shielded
  // nothing is dead weight (or worse, hides that the code was fixed but
  // the comment lies).  Needs every rule's verdict, so it only runs with
  // an empty rule filter; rule ids belonging to other tools (rds_analyze)
  // are left alone.
  if (opts.only_rules.empty()) {
    std::set<std::string> ours(rule_ids().begin(), rule_ids().end());
    ours.erase("stale-suppression");
    for (const auto& [cline, rules] : sup.declared) {
      for (const std::string& rule : rules) {
        if (!ours.contains(rule)) continue;
        if (used_sups.contains({cline, rule})) continue;
        emit(cline, "stale-suppression",
             "suppression 'allow(" + rule + ")' matches no " + rule +
                 " finding; remove it");
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

bool lint_file(const std::string& path, std::vector<Finding>& out,
               std::string& error, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    error = "read error on " + path;
    return false;
  }
  const std::vector<Finding> findings = lint_text(path, buf.str(), opts);
  out.insert(out.end(), findings.begin(), findings.end());
  return true;
}

}  // namespace rds::lint
