// rds_lint CLI: lints the given files/directories and exits non-zero on
// findings.  See tools/rds_lint/lint.hpp for the rule set.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "tools/rds_lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

void print_usage(std::ostream& out) {
  out << "usage: rds_lint [--rule <id>]... [--list-rules] <path>...\n"
         "\n"
         "Lints .hpp/.h/.cpp/.cc files (directories are walked recursively;\n"
         "hidden directories and build/ trees are skipped).  Exits 0 when\n"
         "clean, 1 on findings, 2 on usage or I/O errors.\n";
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || (!name.empty() && name.front() == '.');
}

std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       std::string& error) {
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    const fs::path p(raw);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(
          p, fs::directory_options::skip_permission_denied, ec);
      if (ec) {
        error = raw + ": " + ec.message();
        return {};
      }
      for (const fs::recursive_directory_iterator end; it != end;) {
        const fs::directory_entry& entry = *it;
        if (entry.is_directory(ec) && skip_directory(entry.path())) {
          it.disable_recursion_pending();
          it.increment(ec);
          continue;
        }
        if (entry.is_regular_file(ec) && lintable_extension(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
        it.increment(ec);
        if (ec) break;
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.generic_string());
    } else {
      error = raw + ": no such file or directory";
      return {};
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  rds::lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const std::string& id : rds::lint::rule_ids()) {
        std::cout << id << "\n";
      }
      return 0;
    }
    if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::cerr << "rds_lint: --rule needs an argument\n";
        return 2;
      }
      const std::string id = argv[++i];
      const auto& ids = rds::lint::rule_ids();
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
        std::cerr << "rds_lint: unknown rule '" << id
                  << "' (see --list-rules)\n";
        return 2;
      }
      opts.only_rules.push_back(id);
      continue;
    }
    if (arg.starts_with("-")) {
      std::cerr << "rds_lint: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  std::string error;
  const std::vector<std::string> files = collect_files(paths, error);
  if (!error.empty()) {
    std::cerr << "rds_lint: " << error << "\n";
    return 2;
  }

  std::vector<rds::lint::Finding> findings;
  bool io_error = false;
  for (const std::string& file : files) {
    if (!rds::lint::lint_file(file, findings, error, opts)) {
      std::cerr << "rds_lint: " << error << "\n";
      io_error = true;
    }
  }
  for (const rds::lint::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cerr << "rds_lint: " << findings.size() << " finding(s) in "
            << files.size() << " file(s)\n";
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}
