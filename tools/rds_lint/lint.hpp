// rds_lint: project-specific invariant checker (docs/static_analysis.md).
//
// A token-level scanner -- not a compiler plugin -- that enforces the
// conventions the compiler cannot or that clang-tidy has no check for:
//
//   atomic-memory-order     every std::atomic operation spells its
//                           memory_order explicitly (compare_exchange needs
//                           both the success and the failure order)
//   result-path-throw       no `throw` inside try_* (Result-returning) or
//                           noexcept functions
//   placement-determinism   no std::random_device / time-seeded entropy in
//                           src/placement/ (placement must be a pure
//                           function of its inputs)
//   header-hygiene          headers start with #pragma once and never say
//                           `using namespace` at namespace scope
//   metrics-naming          metric family literals follow the `rds_` scheme
//   nodiscard-result        Result-returning try_* declarations (and
//                           pointer-swapping exchange()) are [[nodiscard]]
//   stale-suppression       an `allow(rule)` comment naming one of the
//                           rules above that no longer shields a finding
//                           (only when every rule runs, i.e. an empty
//                           --rule filter; foreign rule ids are ignored)
//
// Findings are suppressed per line with
//   // rds_lint: allow(rule-id) -- reason
// on the offending line, or on a standalone comment line directly above it
// (the reason after `--` is mandatory; a bare allow() is ignored and the
// finding stands).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rds::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Empty = run every rule; otherwise only the listed rule ids.
  std::vector<std::string> only_rules;
};

/// Every rule id, in reporting order.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Lints `text` as if it were the contents of `path` (the path decides
/// which rules apply: header rules for .hpp/.h, determinism rules for
/// paths containing "placement/").
[[nodiscard]] std::vector<Finding> lint_text(const std::string& path,
                                             std::string_view text,
                                             const Options& opts = {});

/// Reads and lints one file.  Returns false (and reports via `error`) when
/// the file cannot be read; findings are appended to `out`.
[[nodiscard]] bool lint_file(const std::string& path,
                             std::vector<Finding>& out, std::string& error,
                             const Options& opts = {});

}  // namespace rds::lint
