# ctest helper: drives `rds_cli` subcommands with --metrics-out OUT and
# asserts the JSON snapshot contains the metric families each scenario must
# have touched.  Covers simulate, then a snapshot -> recover round trip
# (the journal families; docs/persistence.md).
#
# Expects -DRDS_CLI=<path to rds_cli> -DTRACE=<trace file>
#         -DJOURNAL_TRACE=<topology-only trace> -DOUT=<json path>.
foreach(var RDS_CLI TRACE JOURNAL_TRACE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_metrics_out.cmake: -D${var}=... is required")
  endif()
endforeach()

function(require_families json_file label)
  if(NOT EXISTS "${json_file}")
    message(FATAL_ERROR "${label}: --metrics-out did not create ${json_file}")
  endif()
  file(READ "${json_file}" json)
  foreach(needle IN LISTS ARGN)
    string(FIND "${json}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
              "${label}: metrics JSON is missing ${needle}:\n${json}")
    endif()
  endforeach()
endfunction()

# ---- simulate ---------------------------------------------------------------

execute_process(
  COMMAND "${RDS_CLI}" simulate --caps 1000,1000,1000
          --script "${TRACE}" --metrics-out "${OUT}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rds_cli simulate failed (rc=${rc}): ${stderr}")
endif()

require_families("${OUT}" "simulate"
    "\"version\""
    "rds_placements_total"
    "rds_placement_latency_ns"
    "rds_device_fragments"
    "rds_migration_bytes_moved_total"
    "rds_migration_fragments_moved_total"
    "rds_storage_degraded_reads_total"
    "rds_topology_events_total"
    "\"buckets\"")

# ---- snapshot (checkpoint + journaled trace) --------------------------------

get_filename_component(work_dir "${OUT}" DIRECTORY)
set(ckpt "${work_dir}/cli_ckpt.bin")
set(wal "${work_dir}/cli_wal.bin")
set(snapshot_json "${work_dir}/metrics_snapshot.json")
set(recover_json "${work_dir}/metrics_recover.json")

execute_process(
  COMMAND "${RDS_CLI}" snapshot --caps 1000,1000,1000
          --out "${ckpt}" --journal "${wal}"
          --script "${JOURNAL_TRACE}" --metrics-out "${snapshot_json}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rds_cli snapshot failed (rc=${rc}): ${stderr}")
endif()
if(NOT stdout MATCHES "journal last lsn:[ ]+4")
  message(FATAL_ERROR
          "snapshot did not journal the 4 topology commands:\n${stdout}")
endif()

require_families("${snapshot_json}" "snapshot"
    "\"version\""
    "rds_journal_records_total"
    "rds_journal_bytes_total"
    "rds_journal_append_latency_ns"
    "rds_journal_checkpoints_total")

# ---- recover (replay the journal over the checkpoint) -----------------------

execute_process(
  COMMAND "${RDS_CLI}" recover --snapshot "${ckpt}" --journal "${wal}"
          --metrics-out "${recover_json}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rds_cli recover failed (rc=${rc}): ${stderr}")
endif()
foreach(expect "records applied:[ ]+4" "journal tail:[ ]+clean"
        "scrub:[ ]+clean")
  if(NOT stdout MATCHES "${expect}")
    message(FATAL_ERROR "recover output lacks '${expect}':\n${stdout}")
  endif()
endforeach()

require_families("${recover_json}" "recover"
    "\"version\""
    "rds_journal_replayed_records_total"
    "rds_journal_replay_latency_ns"
    "rds_journal_recoveries_total")

# --strict must be accepted and succeed on an undamaged journal (the
# torn-tail strict semantics themselves are unit-tested exhaustively in
# tests/test_torn_write.cpp).
execute_process(
  COMMAND "${RDS_CLI}" recover --snapshot "${ckpt}" --journal "${wal}"
          --strict
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "rds_cli recover --strict failed on a clean journal (rc=${rc}): "
          "${stderr}")
endif()

message(STATUS
        "metrics snapshots OK: ${OUT}, ${snapshot_json}, ${recover_json}")
