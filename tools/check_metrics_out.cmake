# ctest helper: runs `rds_cli simulate --metrics-out OUT` and asserts the
# JSON snapshot contains the metric families the scenario must have touched.
#
# Expects -DRDS_CLI=<path to rds_cli> -DTRACE=<trace file> -DOUT=<json path>.
foreach(var RDS_CLI TRACE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_metrics_out.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND "${RDS_CLI}" simulate --caps 1000,1000,1000
          --script "${TRACE}" --metrics-out "${OUT}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rds_cli simulate failed (rc=${rc}): ${stderr}")
endif()

if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "--metrics-out did not create ${OUT}")
endif()
file(READ "${OUT}" json)

foreach(needle
    "\"version\""
    "rds_placements_total"
    "rds_placement_latency_ns"
    "rds_device_fragments"
    "rds_migration_bytes_moved_total"
    "rds_migration_fragments_moved_total"
    "rds_storage_degraded_reads_total"
    "rds_topology_events_total"
    "\"buckets\"")
  string(FIND "${json}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics JSON is missing ${needle}:\n${json}")
  endif()
endforeach()

message(STATUS "metrics snapshot OK: ${OUT}")
