// perf_ratchet -- compares a google-benchmark JSON run against a committed
// baseline and fails on regression (docs/benchmarks.md).
//
// The committed BENCH_placement.json doubles as the baseline: CI reruns the
// harness, compares row by row with a documented noise tolerance, enforces
// relative speedup invariants (which are machine-independent, unlike
// absolute rates), and refuses any run whose context says the code under
// test was built without NDEBUG.  Like the rds_analyze baseline, the file
// only ratchets upward: improvements beyond tolerance are reported so the
// baseline can be regenerated, never silently absorbed.
//
// The core is a library (this header) so tests can drive parsing,
// comparison and stamping on in-memory fixtures; main.cpp is a thin CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rds::ratchet {

// ---------- Minimal JSON document model ----------
//
// Dependency-free, order-preserving (objects keep insertion order so a
// stamped file diffs cleanly against its input).  Only what benchmark JSON
// needs; parse errors carry the byte offset.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] Json* find(std::string_view key) noexcept;

  /// Sets (or appends) an object member to a string value.
  void set_string(std::string_view key, std::string_view value);
};

/// Parses a JSON document.  Throws std::runtime_error with the byte offset
/// on malformed input.
[[nodiscard]] Json parse_json(std::string_view text);

/// Serializes with 2-space indentation.  Integral numbers in the exact
/// double range print without a fraction; others round-trip at full
/// precision.
[[nodiscard]] std::string to_json(const Json& value);

// ---------- Benchmark-run view ----------

struct BenchRow {
  std::string name;
  double rate = 0.0;  ///< items/s when reported, else iterations/s
  /// p99 response latency in us, from the row's `p99_us` custom counter
  /// (bench/perf_latency.cpp).  Unlike `rate` this is an output of the
  /// seeded queueing model, so rules over it are machine-independent.
  std::optional<double> p99_us;
};

struct BenchRun {
  std::string library_build_type;  ///< context key, "" when absent
  std::string rds_build_type;      ///< our stamp (bench/perf_main.hpp)
  std::vector<BenchRow> rows;

  [[nodiscard]] const BenchRow* find(std::string_view name) const noexcept;
};

/// Extracts the comparable view of a benchmark JSON document: context build
/// types plus one row per per-iteration benchmark entry (aggregates are
/// skipped).  Throws std::runtime_error when `benchmarks` is missing or a
/// row has no name or no usable rate.
[[nodiscard]] BenchRun extract_run(const Json& doc);

// ---------- Comparison ----------

struct RatchetOptions {
  /// Relative throughput loss tolerated before a row fails, e.g. 0.40
  /// allows a drop to 60% of baseline.  Rationale: docs/benchmarks.md --
  /// shared CI runners routinely jitter tens of percent; the ratchet is a
  /// tripwire for order-of-magnitude truths, not a microscope.
  double tolerance = 0.40;
};

/// A machine-independent invariant: `fast` must beat `slow` by at least
/// `min_ratio` within one run.  Spec form "FAST:SLOW:RATIO".
struct SpeedupRule {
  std::string fast;
  std::string slow;
  double min_ratio = 1.0;
};

[[nodiscard]] std::optional<SpeedupRule> parse_speedup_rule(
    std::string_view spec);

/// A machine-independent SLO invariant over the seeded queueing model:
/// `fast`'s p99_us must be STRICTLY below `slow`'s p99_us * max_ratio.
/// Spec form "FAST:SLOW:RATIO"; ratio 1.0 says "strictly better".
struct LatencyRule {
  std::string fast;
  std::string slow;
  double max_ratio = 1.0;
};

[[nodiscard]] std::optional<LatencyRule> parse_latency_rule(
    std::string_view spec);

struct Report {
  std::vector<std::string> failures;
  std::vector<std::string> notes;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Fails when the code under test was not built with NDEBUG: rds_build_type
/// must say "release"; files without the stamp fall back to the stock
/// library_build_type key (which is what old debug captures carried).
void check_build_type(const BenchRun& current, Report& report);

/// Row-by-row rate comparison: every baseline row must exist in `current`
/// at >= (1 - tolerance) of its baseline rate.  Improvements beyond
/// tolerance and rows missing from the baseline become notes.
void compare_runs(const BenchRun& baseline, const BenchRun& current,
                  const RatchetOptions& options, Report& report);

/// Enforces one relative speedup invariant within `current`.
void check_speedup(const BenchRun& current, const SpeedupRule& rule,
                   Report& report);

/// Enforces one p99 latency-ordering invariant within `current`: fails
/// when either row or its p99_us counter is missing, or when
/// fast.p99_us >= slow.p99_us * max_ratio (the comparison is strict --
/// the SLO counters are deterministic, so a tie is a real finding).
void check_latency(const BenchRun& current, const LatencyRule& rule,
                   Report& report);

// ---------- Stamping ----------

/// Rewrites `context.library_build_type` from `context.rds_build_type` so
/// the committed artifact reports the build type of the code under test
/// (the stock key reports how the google-benchmark *library* was compiled
/// -- misleading on split builds; see bench/perf_main.hpp).  The library's
/// own mode is preserved as `benchmark_library_assertions`.  Throws
/// std::runtime_error unless rds_build_type is "release".
void stamp_build_type(Json& doc);

}  // namespace rds::ratchet
