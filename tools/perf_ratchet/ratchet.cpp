#include "tools/perf_ratchet/ratchet.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rds::ratchet {
namespace {

// ---------- Parser ----------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after document");
    return value;
  }

 private:
  // Deep enough for benchmark JSON (3 levels) with a wide safety margin;
  // bounds stack use on adversarial input.
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        Json v;
        v.kind = Json::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.kind = Json::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array(int depth) {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow for a valid pair.
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const std::uint32_t low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("bad surrogate pair");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("lone surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone surrogate");
    }
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("bad number");
    }
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------- Serializer ----------

void append_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(double value, std::string& out) {
  // benchmark writes iteration counts as integers; keep them that way so
  // stamped files diff cleanly against the tool's own output.
  if (std::nearbyint(value) == value && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  out += oss.str();
}

void append_value(const Json& v, std::string& out, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (v.kind) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case Json::Kind::kNumber:
      append_number(v.number, out);
      break;
    case Json::Kind::kString:
      append_escaped(v.string, out);
      break;
    case Json::Kind::kArray:
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += inner;
        append_value(v.array[i], out, depth + 1);
        if (i + 1 < v.array.size()) out += ',';
        out += '\n';
      }
      out += indent;
      out += ']';
      break;
    case Json::Kind::kObject:
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += inner;
        append_escaped(v.object[i].first, out);
        out += ": ";
        append_value(v.object[i].second, out, depth + 1);
        if (i + 1 < v.object.size()) out += ',';
        out += '\n';
      }
      out += indent;
      out += '}';
      break;
  }
}

std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", rate);
  return buf;
}

}  // namespace

const Json* Json::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(std::string_view key) noexcept {
  return const_cast<Json*>(static_cast<const Json*>(this)->find(key));
}

void Json::set_string(std::string_view key, std::string_view value) {
  Json* existing = find(key);
  if (existing == nullptr) {
    Json v;
    v.kind = Kind::kString;
    v.string = value;
    object.emplace_back(std::string(key), std::move(v));
    return;
  }
  *existing = Json{};
  existing->kind = Kind::kString;
  existing->string = value;
}

Json parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string to_json(const Json& value) {
  std::string out;
  append_value(value, out, 0);
  out += '\n';
  return out;
}

const BenchRow* BenchRun::find(std::string_view name) const noexcept {
  for (const auto& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

BenchRun extract_run(const Json& doc) {
  BenchRun run;
  if (const Json* context = doc.find("context")) {
    if (const Json* lib = context->find("library_build_type")) {
      run.library_build_type = lib->string;
    }
    if (const Json* rds = context->find("rds_build_type")) {
      run.rds_build_type = rds->string;
    }
  }
  const Json* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind != Json::Kind::kArray) {
    throw std::runtime_error(
        "extract_run: no `benchmarks` array (not a google-benchmark JSON "
        "file?)");
  }
  for (const Json& entry : benchmarks->array) {
    // With repetitions enabled the file interleaves per-iteration rows with
    // mean/median/stddev aggregates; only the former are comparable rates.
    if (const Json* run_type = entry.find("run_type")) {
      if (run_type->string != "iteration") continue;
    }
    const Json* name = entry.find("name");
    if (name == nullptr || name->kind != Json::Kind::kString) {
      throw std::runtime_error("extract_run: benchmark entry without a name");
    }
    BenchRow row;
    row.name = name->string;
    if (const Json* items = entry.find("items_per_second")) {
      row.rate = items->number;
    } else if (const Json* real_time = entry.find("real_time");
               real_time != nullptr && real_time->number > 0.0) {
      double per_second = 1e9;  // benchmark's default unit
      if (const Json* unit = entry.find("time_unit")) {
        if (unit->string == "us") per_second = 1e6;
        else if (unit->string == "ms") per_second = 1e3;
        else if (unit->string == "s") per_second = 1.0;
      }
      row.rate = per_second / real_time->number;
    } else {
      throw std::runtime_error("extract_run: benchmark `" + row.name +
                               "` has neither items_per_second nor a "
                               "positive real_time");
    }
    // Custom counters surface as top-level row fields; p99_us is the SLO
    // counter the latency rules key on (bench/perf_latency.cpp).
    if (const Json* p99 = entry.find("p99_us")) {
      row.p99_us = p99->number;
    }
    run.rows.push_back(std::move(row));
  }
  return run;
}

std::optional<SpeedupRule> parse_speedup_rule(std::string_view spec) {
  // Benchmark names never contain ':' (they use '/', '<', '>'), so a plain
  // two-colon split is unambiguous.
  const std::size_t last = spec.rfind(':');
  if (last == std::string_view::npos || last == 0) return std::nullopt;
  const std::size_t mid = spec.rfind(':', last - 1);
  if (mid == std::string_view::npos || mid == 0) return std::nullopt;
  SpeedupRule rule;
  rule.fast = std::string(spec.substr(0, mid));
  rule.slow = std::string(spec.substr(mid + 1, last - mid - 1));
  const std::string ratio(spec.substr(last + 1));
  if (rule.slow.empty() || ratio.empty()) return std::nullopt;
  char* end = nullptr;
  rule.min_ratio = std::strtod(ratio.c_str(), &end);
  if (end != ratio.c_str() + ratio.size() || !(rule.min_ratio > 0.0)) {
    return std::nullopt;
  }
  return rule;
}

std::optional<LatencyRule> parse_latency_rule(std::string_view spec) {
  // Same FAST:SLOW:RATIO grammar as speedup rules.
  const std::optional<SpeedupRule> parsed = parse_speedup_rule(spec);
  if (!parsed) return std::nullopt;
  LatencyRule rule;
  rule.fast = parsed->fast;
  rule.slow = parsed->slow;
  rule.max_ratio = parsed->min_ratio;
  return rule;
}

void check_build_type(const BenchRun& current, Report& report) {
  // Prefer our own stamp -- the stock library_build_type key reports how
  // the benchmark LIBRARY was compiled, which on Debian is always "debug".
  const std::string& type = current.rds_build_type.empty()
                                ? current.library_build_type
                                : current.rds_build_type;
  if (type == "release") return;
  const char* key =
      current.rds_build_type.empty() ? "library_build_type" : "rds_build_type";
  report.failures.push_back(
      std::string("build type: context.") + key + " is `" +
      (type.empty() ? "<missing>" : type) +
      "` -- perf truth requires an NDEBUG build (run bench/run_perf.sh)");
}

void compare_runs(const BenchRun& baseline, const BenchRun& current,
                  const RatchetOptions& options, Report& report) {
  const double floor = 1.0 - options.tolerance;
  const double ceiling = 1.0 + options.tolerance;
  for (const BenchRow& base : baseline.rows) {
    const BenchRow* cur = current.find(base.name);
    if (cur == nullptr) {
      report.failures.push_back("missing: `" + base.name +
                                "` is in the baseline but not in the "
                                "current run");
      continue;
    }
    if (base.rate <= 0.0) {
      report.notes.push_back("skipped: `" + base.name +
                             "` has a non-positive baseline rate");
      continue;
    }
    const double ratio = cur->rate / base.rate;
    if (ratio < floor) {
      report.failures.push_back(
          "regression: `" + base.name + "` " + format_rate(base.rate) +
          " -> " + format_rate(cur->rate) + " items/s (" +
          format_rate(ratio * 100.0) + "% of baseline, floor " +
          format_rate(floor * 100.0) + "%)");
    } else if (ratio > ceiling) {
      report.notes.push_back("improved: `" + base.name + "` " +
                             format_rate(base.rate) + " -> " +
                             format_rate(cur->rate) +
                             " items/s; consider regenerating the baseline "
                             "to ratchet it in");
    }
  }
  for (const BenchRow& cur : current.rows) {
    if (baseline.find(cur.name) == nullptr) {
      report.notes.push_back("new: `" + cur.name +
                             "` is not in the baseline yet");
    }
  }
}

void check_speedup(const BenchRun& current, const SpeedupRule& rule,
                   Report& report) {
  const BenchRow* fast = current.find(rule.fast);
  const BenchRow* slow = current.find(rule.slow);
  if (fast == nullptr || slow == nullptr) {
    report.failures.push_back(
        "speedup: rule needs `" + rule.fast + "` and `" + rule.slow +
        "` but the current run lacks " +
        (fast == nullptr ? "`" + rule.fast + "`" : "`" + rule.slow + "`"));
    return;
  }
  if (slow->rate <= 0.0) {
    report.failures.push_back("speedup: `" + rule.slow +
                              "` has a non-positive rate");
    return;
  }
  const double ratio = fast->rate / slow->rate;
  if (ratio < rule.min_ratio) {
    report.failures.push_back(
        "speedup: `" + rule.fast + "` is only " + format_rate(ratio) +
        "x `" + rule.slow + "` (need >= " + format_rate(rule.min_ratio) +
        "x)");
  } else {
    report.notes.push_back("speedup ok: `" + rule.fast + "` is " +
                           format_rate(ratio) + "x `" + rule.slow + "`");
  }
}

void check_latency(const BenchRun& current, const LatencyRule& rule,
                   Report& report) {
  const BenchRow* fast = current.find(rule.fast);
  const BenchRow* slow = current.find(rule.slow);
  if (fast == nullptr || slow == nullptr) {
    report.failures.push_back(
        "latency: rule needs `" + rule.fast + "` and `" + rule.slow +
        "` but the current run lacks " +
        (fast == nullptr ? "`" + rule.fast + "`" : "`" + rule.slow + "`"));
    return;
  }
  if (!fast->p99_us || !slow->p99_us) {
    report.failures.push_back(
        "latency: `" +
        (fast->p99_us ? rule.slow : rule.fast) +
        "` carries no p99_us counter -- not an SLO benchmark row?");
    return;
  }
  const double bound = *slow->p99_us * rule.max_ratio;
  if (!(*fast->p99_us < bound)) {
    report.failures.push_back(
        "latency: `" + rule.fast + "` p99 " + format_rate(*fast->p99_us) +
        "us is not strictly below " + format_rate(bound) + "us (`" +
        rule.slow + "` p99 " + format_rate(*slow->p99_us) + "us x " +
        format_rate(rule.max_ratio) + ")");
  } else {
    report.notes.push_back("latency ok: `" + rule.fast + "` p99 " +
                           format_rate(*fast->p99_us) + "us < `" + rule.slow +
                           "` p99 " + format_rate(*slow->p99_us) + "us x " +
                           format_rate(rule.max_ratio));
  }
}

void stamp_build_type(Json& doc) {
  Json* context = doc.find("context");
  if (context == nullptr) {
    throw std::runtime_error("stamp: document has no `context` object");
  }
  const Json* rds = context->find("rds_build_type");
  if (rds == nullptr || rds->string != "release") {
    throw std::runtime_error(
        "stamp: context.rds_build_type is `" +
        (rds == nullptr ? std::string("<missing>") : rds->string) +
        "` -- only NDEBUG runs may be stamped (see bench/perf_main.hpp)");
  }
  // Idempotent: once a file is stamped, library_build_type no longer
  // reflects the library, so the first pass's assertions record wins.
  if (context->find("benchmark_library_assertions") == nullptr) {
    const Json* lib = context->find("library_build_type");
    const bool library_assertions =
        lib == nullptr || lib->string != "release";
    context->set_string("benchmark_library_assertions",
                        library_assertions ? "enabled" : "disabled");
  }
  context->set_string("library_build_type", "release");
}

}  // namespace rds::ratchet
