// perf_ratchet CLI: `check` compares a benchmark run against the committed
// baseline (exit 1 on regression / debug build / broken speedup invariant),
// `stamp` rewrites a run's build-type context so the committed artifact
// describes the code under test.  See docs/benchmarks.md for the workflow.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/perf_ratchet/ratchet.hpp"

namespace {

using namespace rds::ratchet;

int usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "perf_ratchet: " << error << "\n";
  std::cerr
      << "usage:\n"
         "  perf_ratchet check --baseline FILE --current FILE\n"
         "               [--tolerance FRACTION]  (default 0.40)\n"
         "               [--min-speedup FAST:SLOW:RATIO] ...\n"
         "               [--max-p99-ratio FAST:SLOW:RATIO] ...\n"
         "      Fails (exit 1) when the current run was not an NDEBUG\n"
         "      build, a baseline row is missing or slower than\n"
         "      (1 - tolerance) x baseline, a speedup rule is violated,\n"
         "      or FAST's p99_us counter is not strictly below SLOW's\n"
         "      p99_us x RATIO (SLO rows from bench/perf_latency.cpp).\n"
         "  perf_ratchet stamp --in FILE --out FILE\n"
         "      Rewrites library_build_type from rds_build_type so the\n"
         "      committed JSON reports the build type of the code under\n"
         "      test; refuses runs not stamped `release`.\n";
  return 2;
}

bool read_file(const std::string& path, std::string& out,
               std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool next_value(const std::vector<std::string>& args, std::size_t& i,
                std::string& out) {
  if (i + 1 >= args.size()) return false;
  out = args[++i];
  return true;
}

int run_check(const std::vector<std::string>& args) {
  std::string baseline_path;
  std::string current_path;
  RatchetOptions options;
  std::vector<SpeedupRule> rules;
  std::vector<LatencyRule> latency_rules;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--baseline") {
      if (!next_value(args, i, baseline_path)) return usage("--baseline needs a file");
    } else if (arg == "--current") {
      if (!next_value(args, i, current_path)) return usage("--current needs a file");
    } else if (arg == "--tolerance") {
      if (!next_value(args, i, value)) return usage("--tolerance needs a fraction");
      try {
        std::size_t end = 0;
        options.tolerance = std::stod(value, &end);
        if (end != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        return usage("bad --tolerance: " + value);
      }
      if (options.tolerance < 0.0 || options.tolerance >= 1.0) {
        return usage("--tolerance must be in [0, 1): " + value);
      }
    } else if (arg == "--min-speedup") {
      if (!next_value(args, i, value)) return usage("--min-speedup needs FAST:SLOW:RATIO");
      const auto rule = parse_speedup_rule(value);
      if (!rule) return usage("bad --min-speedup spec: " + value);
      rules.push_back(*rule);
    } else if (arg == "--max-p99-ratio") {
      if (!next_value(args, i, value)) {
        return usage("--max-p99-ratio needs FAST:SLOW:RATIO");
      }
      const auto rule = parse_latency_rule(value);
      if (!rule) return usage("bad --max-p99-ratio spec: " + value);
      latency_rules.push_back(*rule);
    } else {
      return usage("unknown check option: " + arg);
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    return usage("check requires --baseline and --current");
  }

  std::string baseline_text;
  std::string current_text;
  std::string error;
  if (!read_file(baseline_path, baseline_text, error) ||
      !read_file(current_path, current_text, error)) {
    std::cerr << "perf_ratchet: " << error << "\n";
    return 2;
  }

  Report report;
  try {
    const BenchRun baseline = extract_run(parse_json(baseline_text));
    const BenchRun current = extract_run(parse_json(current_text));
    check_build_type(current, report);
    compare_runs(baseline, current, options, report);
    for (const SpeedupRule& rule : rules) {
      check_speedup(current, rule, report);
    }
    for (const LatencyRule& rule : latency_rules) {
      check_latency(current, rule, report);
    }
  } catch (const std::exception& e) {
    std::cerr << "perf_ratchet: " << e.what() << "\n";
    return 2;
  }

  for (const std::string& note : report.notes) {
    std::cout << "note: " << note << "\n";
  }
  for (const std::string& failure : report.failures) {
    std::cout << "FAIL: " << failure << "\n";
  }
  if (!report.ok()) {
    std::cout << "perf_ratchet: FAIL (" << report.failures.size()
              << " finding(s), tolerance " << options.tolerance << ")\n";
    return 1;
  }
  std::cout << "perf_ratchet: OK (tolerance " << options.tolerance << ", "
            << rules.size() << " speedup rule(s), " << latency_rules.size()
            << " latency rule(s))\n";
  return 0;
}

int run_stamp(const std::vector<std::string>& args) {
  std::string in_path;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--in") {
      if (!next_value(args, i, in_path)) return usage("--in needs a file");
    } else if (arg == "--out") {
      if (!next_value(args, i, out_path)) return usage("--out needs a file");
    } else {
      return usage("unknown stamp option: " + arg);
    }
  }
  if (in_path.empty() || out_path.empty()) {
    return usage("stamp requires --in and --out");
  }

  std::string text;
  std::string error;
  if (!read_file(in_path, text, error)) {
    std::cerr << "perf_ratchet: " << error << "\n";
    return 2;
  }
  try {
    Json doc = parse_json(text);
    stamp_build_type(doc);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "perf_ratchet: cannot write " << out_path << "\n";
      return 2;
    }
    out << to_json(doc);
  } catch (const std::exception& e) {
    std::cerr << "perf_ratchet: " << e.what() << "\n";
    return 1;
  }
  std::cout << "perf_ratchet: stamped " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "check") return run_check(args);
  if (command == "stamp") return run_stamp(args);
  return usage("unknown command: " + command);
}
