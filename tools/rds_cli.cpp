// rds_cli -- command-line driver for the Redundant Share library.
//
//   rds_cli analyze  --caps 500,600,700 --k 2
//       Capacity feasibility (Lemma 2.1), adjusted weights (Algorithm 1)
//       and the maximum ball count (Lemma 2.2).
//
//   rds_cli place    --caps 500,600,700 --k 2 --address 42 [--count 10]
//       The device uids storing copies 0..k-1 of each ball.  Uids are the
//       0-based positions in the --caps list.
//
//   rds_cli fairness --caps 500,600,700 --k 2 [--balls 100000]
//       Materializes a placement and prints the per-device fill report.
//
//   rds_cli migrate  --caps 500,600,700 --to-caps 500,600,700,800 --k 2
//                    [--balls 100000]
//       Movement analysis between two configurations: replaced copies,
//       theoretical minimum, competitive ratio.
//
//   rds_cli loss     --caps 500,600,700 --k 2 --failed 0,1 [--need 1]
//       Exact probability that a block becomes unreadable when the listed
//       devices fail simultaneously (--need = fragments required to
//       reconstruct; 1 = mirroring).
//
//   rds_cli simulate --caps 500,600,700 --script ops.txt
//                    [--scheme mirror:2|rs:4+2|evenodd:5|rdp:5]
//       Runs an operation trace (see src/sim/op_trace.hpp for the command
//       language) against a virtual disk built on the pool.
//
//   rds_cli stats    --caps 500,600,700 --k 2 [--balls 100000]
//       Materializes a placement and dumps the metrics registry (see
//       docs/metrics.md) in text form: placement counters, chain depths,
//       per-device load gauges.
//
//   rds_cli loadsim  --caps 500,600,700 --k 2 [--workload zipf:0.9]
//                    [--policy all] [--requests 100000] [--rate 0.05]
//                    [--service exponential] [--seed 42] [--balls 100000]
//       Read-path SLO benchmark: replays a synthetic open-loop read trace
//       against the k copy locations of every ball and reports
//       p50/p99/p999 response latency plus device utilization per
//       replica-selection policy (docs/load_balancing.md).  Device speed
//       scales with capacity; --rate is requests per microsecond.
//
//   rds_cli snapshot --caps 500,600,700 --out ckpt.bin [--journal wal.bin]
//                    [--script ops.txt] [--scheme mirror:2]
//       Writes a checkpoint of the freshly built disk, then (optionally)
//       runs an operation trace with a write-ahead journal attached --
//       `recover` can replay that journal over the checkpoint.  See
//       docs/persistence.md.
//
//   rds_cli recover  --snapshot ckpt.bin [--journal wal.bin]
//       Loads a checkpoint, replays the journal over it, and reports the
//       recovered state (LSNs applied, torn-tail status, scrub result).
//
// Every command accepts --metrics-out FILE to additionally write the full
// metrics registry as a JSON snapshot (schema: docs/metrics.md) when the
// command finishes.
//
// Devices keep their uid (= index in the ORIGINAL --caps list) across
// --to-caps, so growing a pool means appending capacities and shrinking it
// means passing 0 for retired devices.
#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "src/core/capacity.hpp"
#include "src/core/loss_analysis.hpp"
#include "src/core/redundant_share.hpp"
#include "src/journal/journal.hpp"
#include "src/journal/recovery.hpp"
#include "src/metrics/registry.hpp"
#include "src/placement/batch_placer.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/sim/op_trace.hpp"
#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/erasure/rdp.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/fairness_report.hpp"
#include "src/sim/load_sim.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/replica_selector.hpp"
#include "src/sim/workload.hpp"

namespace {

using namespace rds;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: rds_cli <analyze|place|fairness|migrate|loss|simulate|stats"
         "|loadsim|snapshot|recover> [options]\n"
      << "  --caps a,b,c      device capacities (uid = position)\n"
      << "  --to-caps a,b,c   target capacities for `migrate` (0 = retired)\n"
      << "  --k N             replication degree (default 2)\n"
      << "  --address N       first ball address for `place` (default 0)\n"
      << "  --count N         number of balls for `place` (default 1)\n"
      << "  --balls N         sample size for fairness/migrate/stats"
         " (default 100000)\n"
      << "  --failed a,b      device uids assumed failed, for `loss`\n"
      << "  --need N          fragments needed to reconstruct (default 1)\n"
      << "  --script FILE     operation trace for `simulate`\n"
      << "  --scheme S        redundancy for `simulate`: mirror:K, rs:D+P,\n"
      << "                    evenodd:P, rdp:P (default mirror:2)\n"
      << "  --strategy S      placement strategy: " << placement_kind_names()
      << ";\n"
      << "                    default redundant-share\n"
      << "  --threads N       worker threads for place/fairness/stats\n"
      << "                    (default 1; 0 = all hardware threads)\n"
      << "  --workload W      `loadsim` trace shape: " << workload_kind_names()
      << "\n"
      << "                    (default zipf:0.9)\n"
      << "  --policy P        `loadsim` replica selector: "
      << replica_selector_names() << ",\n"
      << "                    or `all` to sweep every policy (default all)\n"
      << "  --requests N      `loadsim` trace length (default 100000)\n"
      << "  --rate R          `loadsim` mean arrival rate, requests/us\n"
      << "                    (default 0.05)\n"
      << "  --service S       `loadsim` service-time shape: deterministic,\n"
      << "                    exponential, lognormal (default exponential)\n"
      << "  --seed N          `loadsim` trace/service RNG seed (default 42)\n"
      << "  --out F           checkpoint output file for `snapshot`\n"
      << "  --snapshot F      checkpoint input file for `recover`\n"
      << "  --journal F       write-ahead journal file (written by\n"
      << "                    `snapshot`, replayed by `recover`)\n"
      << "  --strict          `recover`: fail on a torn journal tail\n"
      << "                    instead of reporting it\n"
      << "  --metrics-out F   write a JSON metrics snapshot to F on exit\n";
  std::exit(2);
}

/// Strict decimal parser: the whole string must be digits and fit the
/// target type.  Everything the shell can mistype -- signs, spaces,
/// trailing garbage, overflow -- lands in usage() with a nonzero exit
/// instead of an uncaught std::invalid_argument / std::out_of_range or a
/// silently wrapped value (stoull happily parses "-1" as 2^64-1).
std::uint64_t parse_u64(const std::string& what, const std::string& value) {
  std::uint64_t out = 0;
  const char* const first = value.data();
  const char* const last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) {
    usage(what + " out of range: " + value);
  }
  if (ec != std::errc() || ptr != last || value.empty()) {
    usage("bad " + what + ": '" + value + "' (expected unsigned integer)");
  }
  return out;
}

unsigned parse_u32(const std::string& what, const std::string& value) {
  const std::uint64_t v = parse_u64(what, value);
  if (v > std::numeric_limits<unsigned>::max()) {
    usage(what + " out of range: " + value);
  }
  return static_cast<unsigned>(v);
}

double parse_positive_double(const std::string& what,
                             const std::string& value) {
  double out = 0.0;
  const char* const first = value.data();
  const char* const last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc() || ptr != last || value.empty() ||
      !std::isfinite(out) || out <= 0.0) {
    usage("bad " + what + ": '" + value + "' (expected positive number)");
  }
  return out;
}

std::vector<std::uint64_t> parse_caps(const std::string& arg) {
  std::vector<std::uint64_t> caps;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    caps.push_back(parse_u64("capacity", item));
  }
  if (caps.empty()) usage("empty capacity list");
  return caps;
}

ClusterConfig config_from(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (caps[i] == 0) continue;  // retired device
    devices.push_back({i, caps[i], "disk-" + std::to_string(i)});
  }
  if (devices.empty()) usage("no devices with positive capacity");
  return ClusterConfig(std::move(devices));
}

struct Args {
  std::string command;
  std::vector<std::uint64_t> caps;
  std::vector<std::uint64_t> to_caps;
  std::vector<std::uint64_t> failed;
  std::string script;
  std::string scheme = "mirror:2";
  std::string metrics_out;
  std::string workload = "zipf:0.9";  // `loadsim` trace shape
  std::string policy = "all";         // `loadsim` replica selector
  std::string service = "exponential";  // `loadsim` service-time shape
  double rate = 0.05;                 // `loadsim` arrivals per microsecond
  std::uint64_t requests = 100'000;   // `loadsim` trace length
  std::uint64_t seed = 42;            // `loadsim` RNG seed
  std::string out;            // `snapshot` checkpoint target
  std::string snapshot_path;  // `recover` checkpoint source
  std::string journal;        // journal file (snapshot writes, recover reads)
  bool strict = false;        // `recover`: torn tail is fatal
  PlacementKind strategy = PlacementKind::kRedundantShare;
  unsigned k = 2;
  unsigned need = 1;
  unsigned threads = 1;
  std::uint64_t address = 0;
  std::uint64_t count = 1;
  std::uint64_t balls = 100'000;
};

std::unique_ptr<ReplicationStrategy> make_strategy(const Args& args,
                                                   const ClusterConfig& cfg) {
  return make_replication_strategy(args.strategy, cfg, args.k);
}

unsigned effective_threads(const Args& args) {
  if (args.threads != 0) return args.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::shared_ptr<RedundancyScheme> parse_scheme(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) usage("bad --scheme: " + spec);
  const std::string kind = spec.substr(0, colon);
  const std::string param = spec.substr(colon + 1);
  if (kind == "mirror") {
    return std::make_shared<MirroringScheme>(
        parse_u32("--scheme mirror parameter", param));
  }
  if (kind == "rs") {
    const std::size_t plus = param.find('+');
    if (plus == std::string::npos) usage("rs scheme needs D+P");
    return std::make_shared<ReedSolomonScheme>(
        parse_u32("--scheme rs data count", param.substr(0, plus)),
        parse_u32("--scheme rs parity count", param.substr(plus + 1)));
  }
  if (kind == "evenodd") {
    return std::make_shared<EvenOddScheme>(
        parse_u32("--scheme evenodd parameter", param));
  }
  if (kind == "rdp") {
    return std::make_shared<RdpScheme>(
        parse_u32("--scheme rdp parameter", param));
  }
  usage("unknown scheme kind: " + kind);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  // Valueless flags first; everything left must pair up key/value.
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--strict") {
      args.strict = true;
    } else {
      rest.emplace_back(argv[i]);
    }
  }
  std::map<std::string, std::string> opts;
  for (std::size_t i = 0; i + 1 < rest.size(); i += 2) {
    opts[rest[i]] = rest[i + 1];
  }
  if (rest.size() % 2 != 0) usage("dangling option");
  const auto get = [&](const std::string& key) -> std::string {
    const auto it = opts.find(key);
    return it == opts.end() ? "" : it->second;
  };
  if (const std::string v = get("--caps"); !v.empty()) {
    args.caps = parse_caps(v);
  }
  if (const std::string v = get("--to-caps"); !v.empty()) {
    args.to_caps = parse_caps(v);
  }
  if (const std::string v = get("--failed"); !v.empty()) {
    args.failed = parse_caps(v);
  }
  if (const std::string v = get("--script"); !v.empty()) args.script = v;
  if (const std::string v = get("--scheme"); !v.empty()) args.scheme = v;
  if (const std::string v = get("--metrics-out"); !v.empty()) {
    args.metrics_out = v;
  }
  if (const std::string v = get("--out"); !v.empty()) args.out = v;
  if (const std::string v = get("--snapshot"); !v.empty()) {
    args.snapshot_path = v;
  }
  if (const std::string v = get("--journal"); !v.empty()) args.journal = v;
  if (const std::string v = get("--strategy"); !v.empty()) {
    const std::optional<PlacementKind> kind = parse_placement_kind(v);
    if (!kind) {
      usage("unknown --strategy: " + v +
            " (valid: " + placement_kind_names() + ")");
    }
    args.strategy = *kind;
  }
  if (const std::string v = get("--threads"); !v.empty()) {
    args.threads = parse_u32("--threads", v);
  }
  if (const std::string v = get("--k"); !v.empty()) {
    args.k = parse_u32("--k", v);
  }
  if (const std::string v = get("--need"); !v.empty()) {
    args.need = parse_u32("--need", v);
  }
  if (const std::string v = get("--address"); !v.empty()) {
    args.address = parse_u64("--address", v);
  }
  if (const std::string v = get("--count"); !v.empty()) {
    args.count = parse_u64("--count", v);
  }
  if (const std::string v = get("--balls"); !v.empty()) {
    args.balls = parse_u64("--balls", v);
  }
  if (const std::string v = get("--workload"); !v.empty()) args.workload = v;
  if (const std::string v = get("--policy"); !v.empty()) args.policy = v;
  if (const std::string v = get("--service"); !v.empty()) args.service = v;
  if (const std::string v = get("--rate"); !v.empty()) {
    args.rate = parse_positive_double("--rate", v);
  }
  if (const std::string v = get("--requests"); !v.empty()) {
    args.requests = parse_u64("--requests", v);
  }
  if (const std::string v = get("--seed"); !v.empty()) {
    args.seed = parse_u64("--seed", v);
  }
  if (args.k == 0) usage("--k must be at least 1");
  // `recover` rebuilds its configuration from the checkpoint itself.
  if (args.caps.empty() && args.command != "recover") {
    usage("--caps is required");
  }
  return args;
}

int cmd_analyze(const Args& args) {
  std::vector<double> caps;
  for (const std::uint64_t c : args.caps) {
    if (c > 0) caps.push_back(static_cast<double>(c));
  }
  std::ranges::sort(caps, std::greater<>());
  const CapacityAnalysis a = analyze_capacity(caps, args.k);
  // The double-based analysis can misjudge feasibility near the k*b_max = B
  // boundary for capacities beyond 2^53; the exact test never does.
  const bool exact_feasible =
      config_from(args.caps).try_capacity_efficient(args.k).value_or_throw();
  std::cout << "devices:            " << caps.size() << '\n'
            << "replication k:      " << args.k << '\n'
            << "raw capacity B:     " << a.raw_capacity << '\n'
            << "feasible (L2.1):    "
            << (a.feasible_unadjusted ? "yes" : "no") << '\n'
            << "feasible (exact):   " << (exact_feasible ? "yes" : "no")
            << '\n'
            << "usable capacity B': " << a.usable_capacity << '\n'
            << "max balls (L2.2):   " << a.max_balls << '\n'
            << "adjusted weights:  ";
  for (const double w : a.adjusted) std::cout << ' ' << w;
  std::cout << '\n';
  return 0;
}

int cmd_place(const Args& args) {
  const ClusterConfig config = config_from(args.caps);
  const auto strategy = make_strategy(args, config);
  // One batch through the placer, even for --count 1: with --threads 1 the
  // batch runs inline on this thread, with more it fans out.
  std::vector<std::uint64_t> addresses(args.count);
  std::iota(addresses.begin(), addresses.end(), args.address);
  std::vector<DeviceId> copies(args.count * args.k);
  BatchPlacer placer(effective_threads(args));
  placer.place(*strategy, addresses, copies);
  for (std::uint64_t i = 0; i < args.count; ++i) {
    std::cout << "ball " << addresses[i] << " ->";
    for (unsigned j = 0; j < args.k; ++j) {
      std::cout << " copy" << j << "=disk-" << copies[i * args.k + j];
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_fairness(const Args& args) {
  const ClusterConfig config = config_from(args.caps);
  const auto strategy = make_strategy(args, config);
  const BlockMap map =
      BlockMap::build_parallel(*strategy, args.balls, effective_threads(args));
  const FairnessReport report =
      fairness_report(config, usable_capacities(*strategy, config), map);
  report.print(std::cout, std::string(to_string(args.strategy)) + ", " +
                              std::to_string(args.balls) + " balls, k = " +
                              std::to_string(args.k));
  return 0;
}

int cmd_migrate(const Args& args) {
  if (args.to_caps.empty()) usage("migrate requires --to-caps");
  const ClusterConfig before = config_from(args.caps);
  const ClusterConfig after = config_from(args.to_caps);
  const auto sb = make_strategy(args, before);
  const auto sa = make_strategy(args, after);
  const MovementReport r =
      diff_placements(BlockMap(*sb, args.balls), BlockMap(*sa, args.balls));
  std::cout << "balls:                " << args.balls << '\n'
            << "total copies:         " << r.total_copies << '\n'
            << "replaced (mirroring): " << r.moved_set << "  ("
            << 100.0 * r.moved_set_fraction() << "%)\n"
            << "replaced (erasure):   " << r.moved_indexed << '\n'
            << "theoretical minimum:  " << r.optimal_moves << '\n'
            << "competitive ratio:    " << r.competitive_set() << '\n';
  return 0;
}

int cmd_loss(const Args& args) {
  if (args.failed.empty()) usage("loss requires --failed");
  if (args.strategy != PlacementKind::kRedundantShare) {
    usage("loss analysis is exact only for --strategy redundant-share");
  }
  const ClusterConfig config = config_from(args.caps);
  const RedundantShare strategy(config, args.k);
  const std::vector<DeviceId> failed(args.failed.begin(), args.failed.end());
  const std::vector<double> dist =
      copies_in_set_distribution(strategy, failed);
  std::cout << "copies-in-failed-set distribution:\n";
  for (std::size_t c = 0; c < dist.size(); ++c) {
    std::cout << "  P(" << c << " of " << args.k << " copies lost) = "
              << dist[c] << '\n';
  }
  std::cout << "loss probability (need " << args.need
            << " surviving fragment" << (args.need == 1 ? "" : "s")
            << "): "
            << exact_loss_probability(strategy, failed, args.need) << '\n';
  return 0;
}

int cmd_simulate(const Args& args) {
  if (args.script.empty()) usage("simulate requires --script");
  std::ifstream script(args.script);
  if (!script) {
    std::cerr << "error: cannot open " << args.script << '\n';
    return 1;
  }
  TraceRunner runner(
      VirtualDisk(config_from(args.caps), parse_scheme(args.scheme)));
  const TraceStats stats = runner.run(script);
  const VirtualDisk::Stats& disk = runner.disk().stats();
  runner.disk().publish_device_gauges();
  std::cout << "commands executed:   " << stats.commands << '\n'
            << "blocks written:      " << stats.blocks_written << '\n'
            << "blocks verified:     " << stats.blocks_verified << '\n'
            << "blocks trimmed:      " << stats.blocks_trimmed << '\n'
            << "topology changes:    " << stats.topology_changes << '\n'
            << "fragments moved:     " << disk.fragments_moved << '\n'
            << "fragments rebuilt:   " << disk.fragments_rebuilt << '\n'
            << "fragments repaired:  " << disk.fragments_repaired << '\n'
            << "checksum failures:   " << disk.checksum_failures << '\n'
            << "bytes moved:         " << disk.bytes_moved << '\n';
  return 0;
}

int cmd_stats(const Args& args) {
  const ClusterConfig config = config_from(args.caps);
  const auto strategy = make_strategy(args, config);
  const BlockMap map =
      BlockMap::build_parallel(*strategy, args.balls, effective_threads(args));
  metrics::Registry& reg = metrics::Registry::global();
  for (const auto& [uid, fragments] : map.device_counts()) {
    reg.gauge("rds_device_fragments",
              {{"device", std::to_string(uid)}})
        .set(static_cast<std::int64_t>(fragments));
  }
  std::cout << metrics::to_text(reg.snapshot());
  return 0;
}

ServiceModel::Shape parse_service_shape(const std::string& name) {
  if (name == "deterministic" || name == "det") {
    return ServiceModel::Shape::kDeterministic;
  }
  if (name == "exponential" || name == "exp") {
    return ServiceModel::Shape::kExponential;
  }
  if (name == "lognormal") return ServiceModel::Shape::kLognormal;
  usage("unknown --service: " + name +
        " (valid: deterministic (det), exponential (exp), lognormal)");
}

int cmd_loadsim(const Args& args) {
  const ClusterConfig config = config_from(args.caps);
  const VirtualDisk disk(config, std::make_shared<MirroringScheme>(args.k),
                         args.strategy);

  // Device speed scales with capacity: the largest device serves a request
  // in 25us (20 seek + 5 transfer), a half-size device takes twice that.
  const ServiceModel::Shape shape = parse_service_shape(args.service);
  std::uint64_t max_cap = 0;
  for (const Device& d : config.devices()) {
    max_cap = std::max(max_cap, d.capacity);
  }
  std::vector<ServiceModel> models;
  for (const Device& d : config.devices()) {
    const double scale =
        static_cast<double>(max_cap) / static_cast<double>(d.capacity);
    ServiceModel m;
    m.seek_us = 20.0 * scale;
    m.us_per_block = 5.0 * scale;
    m.shape = shape;
    models.push_back(m);
  }

  Result<std::unique_ptr<WorkloadGenerator>> workload =
      try_make_workload(args.workload, args.balls);
  if (!workload.ok()) usage(workload.error().message);
  Xoshiro256 trace_rng(args.seed);
  const std::vector<Request> trace =
      make_trace(*workload.value(), args.requests, args.rate, trace_rng);

  std::vector<SelectorKind> policies;
  if (args.policy == "all") {
    const auto all = all_selector_kinds();
    policies.assign(all.begin(), all.end());
  } else {
    const Result<std::unique_ptr<ReplicaSelector>> probe =
        try_make_replica_selector(args.policy);
    if (!probe.ok()) usage(probe.error().message);
    for (const SelectorKind kind : all_selector_kinds()) {
      if (to_string(kind) == probe.value()->name()) policies.push_back(kind);
    }
  }

  std::cout << "workload:            " << workload.value()->name() << '\n'
            << "balls:               " << args.balls << '\n'
            << "requests:            " << trace.size() << '\n'
            << "arrival rate:        " << args.rate << " req/us\n"
            << "service shape:       " << args.service << '\n'
            << "replication k:       " << args.k << "  ("
            << to_string(args.strategy) << ")\n\n";

  const auto line = [] {
    std::cout << "  " << std::string(76, '-') << '\n';
  };
  std::cout << "  " << std::left << std::setw(14) << "policy" << std::right
            << std::setw(12) << "p50 us" << std::setw(12) << "p99 us"
            << std::setw(12) << "p999 us" << std::setw(12) << "mean us"
            << std::setw(12) << "max util" << '\n';
  line();
  for (const SelectorKind kind : policies) {
    // Identical seeds per policy: rows differ only by the selector.
    Xoshiro256 rng(args.seed + 1);
    const auto selector = make_replica_selector(kind);
    const LoadResult r = simulate_load(disk, trace, models, *selector, rng);
    std::cout << "  " << std::left << std::setw(14) << selector->name()
              << std::right << std::fixed << std::setprecision(1)
              << std::setw(12) << r.p50_response_us << std::setw(12)
              << r.p99_response_us << std::setw(12) << r.p999_response_us
              << std::setw(12) << r.mean_response_us << std::setprecision(1)
              << std::setw(11) << 100.0 * r.max_utilization() << "%"
              << std::defaultfloat << '\n';
  }
  line();
  return 0;
}

int cmd_snapshot(const Args& args) {
  if (args.out.empty()) usage("snapshot requires --out");
  VirtualDisk disk(config_from(args.caps), parse_scheme(args.scheme),
                   args.strategy);
  {
    std::ofstream snap(args.out, std::ios::binary | std::ios::trunc);
    if (!snap) {
      std::cerr << "error: cannot open " << args.out << '\n';
      return 1;
    }
    // Checkpoint the pristine disk at watermark 0: every journaled record
    // (LSNs start at 1) replays on top of it.
    journal::write_checkpoint(disk, 0, snap);
    snap.flush();
    if (!snap) {
      std::cerr << "error: write failed: " << args.out << '\n';
      return 1;
    }
  }
  std::cout << "checkpoint:          " << args.out << '\n'
            << "watermark lsn:       0\n";

  std::shared_ptr<journal::JournalWriter> writer;
  std::ofstream journal_out;
  if (!args.journal.empty()) {
    journal_out.open(args.journal, std::ios::binary | std::ios::trunc);
    if (!journal_out) {
      std::cerr << "error: cannot open " << args.journal << '\n';
      return 1;
    }
    writer = std::make_shared<journal::JournalWriter>(journal_out);
    disk.set_journal(writer);
  }
  if (!args.script.empty()) {
    std::ifstream script(args.script);
    if (!script) {
      std::cerr << "error: cannot open " << args.script << '\n';
      return 1;
    }
    TraceRunner runner(std::move(disk));
    const TraceStats stats = runner.run(script);
    std::cout << "commands executed:   " << stats.commands << '\n'
              << "topology changes:    " << stats.topology_changes << '\n';
  }
  if (writer) {
    std::cout << "journal:             " << args.journal << '\n'
              << "journal last lsn:    " << writer->last_lsn() << '\n';
  }
  return 0;
}

int cmd_recover(const Args& args) {
  if (args.snapshot_path.empty()) usage("recover requires --snapshot");
  std::ifstream snap(args.snapshot_path, std::ios::binary);
  if (!snap) {
    std::cerr << "error: cannot open " << args.snapshot_path << '\n';
    return 1;
  }
  std::ifstream journal_in;
  std::istream* journal_ptr = nullptr;
  if (!args.journal.empty()) {
    journal_in.open(args.journal, std::ios::binary);
    if (!journal_in) {
      std::cerr << "error: cannot open " << args.journal << '\n';
      return 1;
    }
    journal_ptr = &journal_in;
  }
  journal::RecoveryOptions options;
  options.strict = args.strict;
  Result<journal::DiskRecovery> recovered =
      journal::Recovery::recover_disk(snap, journal_ptr, options);
  if (!recovered.ok()) {
    std::cerr << "error: " << to_string(recovered.error().code) << ": "
              << recovered.error().message << '\n';
    return 1;
  }
  journal::DiskRecovery result = std::move(recovered).take();
  const journal::ReplayReport& report = result.report;
  const VirtualDisk::ScrubReport scrub = result.disk.scrub();
  std::cout << "watermark lsn:       " << report.watermark << '\n'
            << "last applied lsn:    " << report.last_applied << '\n'
            << "records applied:     " << report.records_applied << '\n'
            << "records skipped:     " << report.records_skipped << '\n'
            << "journal tail:        "
            << (report.tail_corrupt
                    ? "CORRUPT (" + report.tail_error + ")"
                    : std::string("clean"))
            << '\n'
            << "devices:             " << result.disk.config().size() << '\n'
            << "blocks:              " << result.disk.block_count() << '\n'
            << "scrub:               " << (scrub.clean() ? "clean" : "DEGRADED")
            << '\n';
  return 0;
}

int dispatch(const Args& args) {
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "place") return cmd_place(args);
  if (args.command == "fairness") return cmd_fairness(args);
  if (args.command == "migrate") return cmd_migrate(args);
  if (args.command == "loss") return cmd_loss(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "stats") return cmd_stats(args);
  if (args.command == "loadsim") return cmd_loadsim(args);
  if (args.command == "snapshot") return cmd_snapshot(args);
  if (args.command == "recover") return cmd_recover(args);
  usage("unknown command: " + args.command);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    const int rc = dispatch(args);
    if (rc == 0 && !args.metrics_out.empty()) {
      metrics::write_json_file(metrics::Registry::global().snapshot(),
                               args.metrics_out);
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
