#include "src/placement/share.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {

Share::Share(const ClusterConfig& config, double stretch, std::uint64_t salt)
    : device_count_(config.size()), salt_(salt) {
  if (config.empty()) throw std::invalid_argument("Share: empty cluster");
  const auto n = static_cast<double>(config.size());
  stretch_ = stretch > 0.0 ? stretch : 3.0 * std::log(n) + 6.0;

  // Each device claims an interval of stretched length s * c_i.  Lengths
  // above 1 wrap around the circle: the device covers every point
  // floor(length) times plus once more inside the fractional remainder --
  // the multiplicity is what keeps the covering sets proportional to
  // capacity (a device twice the size is twice as likely to win the uniform
  // race at any point).
  struct Interval {
    double start;
    double length;  // fractional remainder, < 1
    DeviceId uid;
  };
  std::vector<Interval> intervals;
  base_multiplicity_.assign(config.size(), 0);
  uid_of_.reserve(config.size());
  std::vector<double> cuts{0.0};
  for (std::size_t i = 0; i < config.size(); ++i) {
    const Device& d = config[i];
    uid_of_.push_back(d.uid);
    const double len = stretch_ * config.relative_capacity(i);
    base_multiplicity_[i] = static_cast<std::uint32_t>(len);
    const double frac = len - std::floor(len);
    if (frac <= 0.0) continue;
    const double start = to_unit(hash2(d.uid, salt_));
    intervals.push_back({start, frac, d.uid});
    cuts.push_back(start);
    double end = start + frac;
    if (end >= 1.0) end -= 1.0;  // wrap
    cuts.push_back(end);
  }
  std::ranges::sort(cuts);
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  boundaries_ = cuts;
  segment_extra_.assign(boundaries_.size(), {});

  // Mark every elementary segment covered by each fractional interval.
  // O(n * segments) worst case; acceptable at simulation scale.
  const auto segment_of = [this](double x) {
    auto it = std::ranges::upper_bound(boundaries_, x);
    return static_cast<std::size_t>(it - boundaries_.begin()) - 1;
  };
  for (const Interval& iv : intervals) {
    const std::size_t first = segment_of(iv.start);
    double end = iv.start + iv.length;
    const bool wraps = end >= 1.0;
    if (wraps) end -= 1.0;
    const std::size_t last = segment_of(end);  // segment starting at end is
                                               // NOT covered
    std::size_t s = first;
    while (s != last) {
      segment_extra_[s].push_back(iv.uid);
      s = (s + 1 == segment_extra_.size()) ? 0 : s + 1;
    }
  }
}

DeviceId Share::place(std::uint64_t address) const {
  const double x = to_unit(mix64(address ^ (salt_ * 0x9e3779b97f4a7c15ULL +
                                            0x51afd7ed558ccd25ULL)));
  auto it = std::ranges::upper_bound(boundaries_, x);
  const auto seg = static_cast<std::size_t>(it - boundaries_.begin()) - 1;
  const std::vector<DeviceId>& extra = segment_extra_[seg];

  // Uniform race among all covering interval copies: device i participates
  // with its multiplicity at x, each copy with an independent hash.
  DeviceId best = kNoDevice;
  std::uint64_t best_score = 0;
  const auto race = [&](DeviceId uid, std::uint32_t copy) {
    const std::uint64_t s =
        hash3(address, uid, (salt_ << 8) ^ copy ^ 0xf00dULL);
    if (best == kNoDevice || s > best_score ||
        (s == best_score && uid < best)) {
      best_score = s;
      best = uid;
    }
  };
  for (std::size_t i = 0; i < uid_of_.size(); ++i) {
    for (std::uint32_t c = 0; c < base_multiplicity_[i]; ++c) {
      race(uid_of_[i], c + 1);
    }
  }
  for (const DeviceId uid : extra) race(uid, 0);
  if (best == kNoDevice) {
    // A point left uncovered by every interval (probability e^-Theta(stretch),
    // possible for tiny capacity skews): fall back to a uniform race over
    // all devices so the lookup never fails.
    for (const DeviceId uid : uid_of_) race(uid, 0x7fffffff);
  }
  return best;
}

std::string Share::name() const { return "share"; }

double Share::average_coverage() const {
  double acc = 0.0;
  for (const std::uint32_t m : base_multiplicity_) acc += m;
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    const double next = (i + 1 < boundaries_.size()) ? boundaries_[i + 1] : 1.0;
    acc += (next - boundaries_[i]) *
           static_cast<double>(segment_extra_[i].size());
  }
  return acc;
}

}  // namespace rds
