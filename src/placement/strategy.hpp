// Placement strategy interfaces.
//
// A *single-copy* strategy maps a ball address to one device; a *replication*
// strategy maps a ball address to k pairwise-distinct devices, where the i-th
// entry of the result is, by contract, the i-th copy (copy identification --
// required when the redundancy scheme is an erasure code and the sub-blocks
// are not interchangeable).
//
// Strategies are immutable snapshots of a ClusterConfig: to react to a device
// change, construct a new strategy from the new config and diff the
// placements (src/sim/movement.hpp).  Placement must be a pure function of
// (address, config) so that two calls always agree -- this is what lets a
// distributed system run the same computation on every node with no
// coordination.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cluster/cluster_config.hpp"

namespace rds {

/// A candidate bin in a weighted draw: a stable uid plus a non-negative
/// weight.  The weight need not equal the device capacity (Redundant Share
/// boosts single candidates -- the b-tilde adjustment).
struct Candidate {
  DeviceId uid = kNoDevice;
  double weight = 0.0;
};

/// Maps a ball address to exactly one device.
class SingleStrategy {
 public:
  virtual ~SingleStrategy() = default;

  /// Device that stores the (single copy of the) ball.
  [[nodiscard]] virtual DeviceId place(std::uint64_t address) const = 0;

  /// Human-readable strategy name (for reports).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of devices known to this strategy.
  [[nodiscard]] virtual std::size_t device_count() const = 0;
};

/// Maps a ball address to k pairwise-distinct devices.
class ReplicationStrategy {
 public:
  virtual ~ReplicationStrategy() = default;

  /// Fills `out` (size == replication()) with the devices of copies
  /// 0..k-1.  Entries are pairwise distinct.
  virtual void place(std::uint64_t address, std::span<DeviceId> out) const = 0;

  /// Convenience overload returning a fresh vector.  Allocates per call --
  /// hot loops use the span overload or place_many() instead.
  [[nodiscard]] std::vector<DeviceId> place(std::uint64_t address) const {
    std::vector<DeviceId> out(replication());
    place(address, out);
    return out;
  }

  /// Batch placement: fills out[i*k .. i*k+k) with the copies of
  /// addresses[i].  `out.size()` must equal `addresses.size() * k`.  The
  /// default loops over place(); strategies whose per-call setup can be
  /// amortized across a batch may override.
  virtual void place_many(std::span<const std::uint64_t> addresses,
                          std::span<DeviceId> out) const {
    const unsigned k = replication();
    if (out.size() != addresses.size() * k) {
      throw std::invalid_argument(
          "ReplicationStrategy::place_many: output size != addresses * k");
    }
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      place(addresses[i], out.subspan(i * k, k));
    }
  }

  /// Replication degree k.
  [[nodiscard]] virtual unsigned replication() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::size_t device_count() const = 0;
};

/// Throws std::invalid_argument unless the output span matches k.
inline void check_out_span(std::span<const DeviceId> out, unsigned k) {
  if (out.size() != k) {
    throw std::invalid_argument(
        "ReplicationStrategy::place: output span size != replication degree");
  }
}

}  // namespace rds
