#include "src/placement/batch_placer.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/metrics/registry.hpp"
#include "src/metrics/scoped_timer.hpp"
#include "src/util/gauge_guard.hpp"

namespace rds {

BatchPlacer::BatchPlacer(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  metrics::Registry& reg = metrics::Registry::global();
  placements_total_ = &reg.counter("rds_batch_placements_total");
  batches_total_ = &reg.counter("rds_batch_batches_total");
  inflight_ = &reg.gauge("rds_batch_inflight");
  batch_latency_ns_ = &reg.histogram("rds_batch_placement_latency_ns");

  workers_.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchPlacer::~BatchPlacer() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void BatchPlacer::run_chunks(Batch& batch) {
  for (;;) {
    const std::size_t c = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch.chunk_count) return;
    const std::size_t begin = c * batch.chunk;
    const std::size_t end = std::min(batch.count, begin + batch.chunk);
    batch.strategy->place_many(
        {batch.addresses + begin, end - begin},
        {batch.out + begin * batch.k, (end - begin) * batch.k});
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.chunk_count) {
      const MutexLock lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void BatchPlacer::worker_loop() {
  std::uint64_t seen = 0;
  MutexLock lock(mu_);
  for (;;) {
    // Explicit wait loop (not a predicate lambda) so the thread-safety
    // analysis sees the guarded reads under the held lock.
    while (!stopping_ && !(batch_ != nullptr && generation_ != seen)) {
      work_cv_.wait(lock);
    }
    if (stopping_) return;
    seen = generation_;
    const std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    run_chunks(*batch);
    lock.lock();
  }
}

void BatchPlacer::place(const ReplicationStrategy& strategy,
                        std::span<const std::uint64_t> addresses,
                        std::span<DeviceId> out) {
  const unsigned k = strategy.replication();
  if (out.size() != addresses.size() * k) {
    throw std::invalid_argument(
        "BatchPlacer::place: output size != addresses * k");
  }
  if (addresses.empty()) return;

  const metrics::GaugeGuard inflight_guard(*inflight_);
  metrics::ScopedTimer batch_span(*batch_latency_ns_);

  try {
    if (workers_.empty()) {
      strategy.place_many(addresses, out);
    } else {
      auto batch = std::make_shared<Batch>();
      batch->strategy = &strategy;
      batch->addresses = addresses.data();
      batch->out = out.data();
      batch->count = addresses.size();
      batch->k = k;
      // Chunks well past the thread count so a straggler core cannot stall
      // the batch, but large enough that the fetch_add is noise.
      batch->chunk = std::max<std::size_t>(
          256, addresses.size() / (std::size_t{thread_count()} * 8));
      batch->chunk_count =
          (batch->count + batch->chunk - 1) / batch->chunk;
      {
        const MutexLock lock(mu_);
        batch_ = batch;
        ++generation_;
      }
      work_cv_.notify_all();
      run_chunks(*batch);
      {
        MutexLock lock(mu_);
        while (batch->done.load(std::memory_order_acquire) !=
               batch->chunk_count) {
          done_cv_.wait(lock);
        }
        batch_.reset();
      }
    }
  } catch (...) {
    // A throwing strategy must not record a bogus latency sample for a
    // batch that never completed; the gauge guard handles the in-flight
    // count on unwind.
    batch_span.cancel();
    throw;
  }

  // One metrics flush per batch, not per placement.
  batch_span.stop();
  placements_total_->inc(addresses.size());
  batches_total_->inc();
}

}  // namespace rds
