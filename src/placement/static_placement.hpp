// Static (table/pattern) placement baselines.
//
// These are the strategies the paper's introduction argues *against*:
// perfectly fine for a fixed homogeneous array, but either unfair on
// heterogeneous capacities or catastrophically non-adaptive (a device change
// reshuffles nearly all data).  They exist to quantify exactly that in the
// adaptivity benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

/// address mod n.  Uniform over devices regardless of capacity; the classic
/// "hashing does not adapt" strawman.
class ModuloPlacement final : public SingleStrategy {
 public:
  explicit ModuloPlacement(const ClusterConfig& config);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return uids_.size();
  }

 private:
  std::vector<DeviceId> uids_;
};

/// RAID-style striping with replication: copy j of ball a sits on device
/// (a*k + j) mod n.  Fair only for homogeneous devices; adapting to a new
/// device count relocates almost everything.
class RoundRobinStriping final : public ReplicationStrategy {
 public:
  RoundRobinStriping(const ClusterConfig& config, unsigned k);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;
  [[nodiscard]] unsigned replication() const override { return k_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return uids_.size();
  }

 private:
  std::vector<DeviceId> uids_;
  unsigned k_;
};

}  // namespace rds
