// The one place a replication strategy is constructed from a kind tag.
//
// Every layer that lets a caller pick a placement algorithm by name or enum
// (VirtualDisk, StoragePool, rds_cli, benches, examples) goes through
// make_replication_strategy() -- adding a strategy means adding one enum
// value and one case here, and every consumer picks it up.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "src/cluster/cluster_config.hpp"
#include "src/placement/strategy.hpp"

namespace rds {

/// Which placement strategy backs a disk / volume / CLI run.
/// Values are serialized into checkpoints (one byte); only append.
enum class PlacementKind {
  kRedundantShare,      ///< the paper's strategy, O(n k) per access
  kFastRedundantShare,  ///< Section 3.3 variant, O(k log n) per access
  kTrivial,             ///< k independent draws (for comparison only)
  kRoundRobin,          ///< static striping baseline
  kPrecomputed,         ///< Section 3.3 full trade-off, O(k) per access
                        ///< (per-state alias tables, O(k n^2) memory)
};

/// Every kind, in declaration order -- the one list consumers (tests, CLI
/// usage text, error messages) iterate so a new kind cannot be forgotten.
[[nodiscard]] std::span<const PlacementKind> all_placement_kinds() noexcept;

/// Comma-separated list of every accepted spelling, canonical names first
/// ("redundant-share (rs), ..."), for usage text and unknown-name errors.
[[nodiscard]] std::string placement_kind_names();

/// Constructs the strategy for `kind` over a cluster snapshot with
/// replication degree k.  Throws std::invalid_argument for parameters the
/// strategy rejects (k == 0, k > cluster size) and std::logic_error for an
/// out-of-range kind value (corrupt snapshot byte, casted integer).
[[nodiscard]] std::unique_ptr<ReplicationStrategy> make_replication_strategy(
    PlacementKind kind, const ClusterConfig& config, unsigned k);

/// Canonical spelling, also accepted by parse_placement_kind().
[[nodiscard]] std::string_view to_string(PlacementKind kind) noexcept;

/// Parses a kind name: canonical spellings ("redundant-share",
/// "fast-redundant-share", "trivial", "round-robin", "precomputed") plus
/// the short CLI aliases ("rs", "fast", "rr", "pre").  nullopt for
/// anything else; placement_kind_names() lists every accepted spelling.
[[nodiscard]] std::optional<PlacementKind> parse_placement_kind(
    std::string_view name) noexcept;

}  // namespace rds
