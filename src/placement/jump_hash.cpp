#include "src/placement/jump_hash.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {

std::uint32_t jump_consistent_hash(std::uint64_t key, std::uint32_t buckets) {
  if (buckets == 0) throw std::invalid_argument("jump hash: zero buckets");
  std::int64_t b = -1;
  std::int64_t j = 0;
  while (j < static_cast<std::int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::uint32_t>(b);
}

JumpHash::JumpHash(const ClusterConfig& config, std::uint64_t salt)
    : salt_(salt) {
  if (config.empty()) throw std::invalid_argument("JumpHash: empty cluster");
  uids_.reserve(config.size());
  for (const Device& d : config.devices()) uids_.push_back(d.uid);
  // Bucket numbering must be stable as devices come and go at the END, so
  // order by uid, not by capacity.
  std::ranges::sort(uids_);
}

DeviceId JumpHash::place(std::uint64_t address) const {
  const std::uint32_t bucket = jump_consistent_hash(
      mix64(address ^ salt_), static_cast<std::uint32_t>(uids_.size()));
  return uids_[bucket];
}

std::string JumpHash::name() const { return "jump-hash"; }

}  // namespace rds
