// Simplified CRUSH (Weil, Brandt, Miller, Maltzahn, SC 2006) -- the paper's
// reference [12], the successor of the RUSH family.
//
// A two-level hierarchy: failure domains (racks, hosts, ...) containing
// weighted devices.  Replica selection is "straw" drawing, which is exactly
// a weighted rendezvous race: the k distinct domains with the best scores
// win (one replica each, so no two copies share a failure domain), and a
// second race picks the device inside each chosen domain.
//
// The instructive defect, deliberately preserved: selecting k domains by
// taking the top-k of ONE weighted race is the paper's *trivial* strategy
// (Definition 2.3) at domain granularity.  When failure domains have
// heterogeneous total weights, the biggest domain receives less than its
// fair share (Lemma 2.4) and capacity is wasted -- the cross-domain version
// of Figure 1.  HierarchicalRedundantShare (src/core/hierarchical.hpp)
// replaces the domain race with Redundant Share and removes the loss;
// bench/ext_failure_domains quantifies the difference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

/// One failure domain: a named group of devices that must not hold two
/// copies of the same block.
struct FailureDomain {
  std::string name;
  std::vector<Device> devices;

  /// Throws std::invalid_argument if the sum overflows uint64.
  [[nodiscard]] std::uint64_t total_capacity() const;
};

class CrushPlacement final : public ReplicationStrategy {
 public:
  /// k <= number of domains; device uids must be globally unique.
  CrushPlacement(std::vector<FailureDomain> domains, unsigned k,
                 std::uint64_t salt = 0);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;

  [[nodiscard]] unsigned replication() const override { return k_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override;
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }

  /// Index of the domain holding `uid`, or size() if unknown (tests).
  [[nodiscard]] std::size_t domain_of(DeviceId uid) const;

 private:
  std::vector<FailureDomain> domains_;
  std::vector<Candidate> domain_candidates_;  // uid = domain index
  unsigned k_;
  std::uint64_t salt_;
};

}  // namespace rds
