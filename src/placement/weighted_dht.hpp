// Weighted distributed hash tables (Schindelhauer & Schomaker, SPAA 2005)
// -- the paper's reference [11].
//
// Both methods place one (or v) ring point(s) per device and assign a ball
// at ring position x to the device minimizing a *weighted distance* from its
// point p to x:
//
//   linear method:       dist(x, p) / w
//   logarithmic method:  -ln(1 - dist(x, p)) / w
//
// with dist the clockwise distance on the unit circle.  Over the random
// choice of the points, dist(x, p) is uniform on [0,1) and -ln(1-dist) is a
// rate-1 exponential, so the logarithmic method wins with probability
// w_i / sum w_j *in expectation over the ring layout* for any weight ratio
// -- whereas the linear method's expected share is systematically biased for
// skewed weights, which is why [11] introduces the logarithmic variant.
// For a fixed ring both fluctuate around their expectation like consistent
// hashing does; more points per device tighten the concentration.  Unlike
// rendezvous hashing (one hash per lookup *pair*), the randomness here is
// frozen into one stored point per device, making lookups table-driven.
// We ship both variants so the benchmarks can show the difference.
#pragma once

#include <cstdint>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

enum class DhtDistance {
  kLinear,       ///< dist / w  (approximate fairness)
  kLogarithmic,  ///< -ln(1 - dist) / w  (exact fairness)
};

class WeightedDht final : public SingleStrategy {
 public:
  /// `points_per_device` > 1 sharpens the linear method's fairness and
  /// smooths adaptivity; the logarithmic method is exact already at 1.
  explicit WeightedDht(const ClusterConfig& config,
                       DhtDistance distance = DhtDistance::kLogarithmic,
                       unsigned points_per_device = 1,
                       std::uint64_t salt = 0);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return device_count_;
  }

 private:
  struct Point {
    double position;  // on the unit circle
    double weight;
    DeviceId uid;
  };

  std::vector<Point> points_;  // sorted by position
  DhtDistance distance_;
  std::size_t device_count_ = 0;
  std::uint64_t salt_ = 0;
};

}  // namespace rds
