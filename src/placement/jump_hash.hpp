// Jump consistent hashing (Lamping & Veach, 2014).
//
// Maps a key to one of n numbered buckets in O(log n) time with ZERO state
// and optimal movement when n grows -- but only for *equal-weight* buckets,
// and capacity can only be added or removed at the END of the bucket range.
// It is the modern embodiment of the restrictions the paper's Section 1
// catalogues (RAID's homogeneity, RUSH's chunked growth): a beautiful
// special case that Redundant Share generalizes away.  Included as a
// baseline for the substrate comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

/// The core jump function: bucket index in [0, buckets) for `key`.
[[nodiscard]] std::uint32_t jump_consistent_hash(std::uint64_t key,
                                                 std::uint32_t buckets);

/// SingleStrategy adapter over a cluster: bucket i = canonical device i.
/// Device capacities are IGNORED (uniform distribution) -- by design; see
/// above.  Throws if the cluster is empty.
class JumpHash final : public SingleStrategy {
 public:
  explicit JumpHash(const ClusterConfig& config, std::uint64_t salt = 0);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return uids_.size();
  }

 private:
  std::vector<DeviceId> uids_;  // ordered by uid: append-only growth story
  std::uint64_t salt_;
};

}  // namespace rds
