#include "src/placement/static_placement.hpp"

#include <stdexcept>

namespace rds {

ModuloPlacement::ModuloPlacement(const ClusterConfig& config) {
  if (config.empty()) {
    throw std::invalid_argument("ModuloPlacement: empty cluster");
  }
  uids_.reserve(config.size());
  for (const Device& d : config.devices()) uids_.push_back(d.uid);
}

DeviceId ModuloPlacement::place(std::uint64_t address) const {
  return uids_[address % uids_.size()];
}

std::string ModuloPlacement::name() const { return "modulo"; }

RoundRobinStriping::RoundRobinStriping(const ClusterConfig& config, unsigned k)
    : k_(k) {
  if (k == 0) throw std::invalid_argument("RoundRobinStriping: k == 0");
  if (config.size() < k) {
    throw std::invalid_argument("RoundRobinStriping: fewer devices than k");
  }
  uids_.reserve(config.size());
  for (const Device& d : config.devices()) uids_.push_back(d.uid);
}

void RoundRobinStriping::place(std::uint64_t address,
                               std::span<DeviceId> out) const {
  check_out_span(out, k_);
  const std::size_t n = uids_.size();
  const std::size_t base = static_cast<std::size_t>(
      (address % n) * static_cast<std::uint64_t>(k_) % n);
  for (unsigned j = 0; j < k_; ++j) {
    out[j] = uids_[(base + j) % n];
  }
}

std::string RoundRobinStriping::name() const { return "round-robin-striping"; }

}  // namespace rds
