// The Share strategy (Brinkmann, Salzwedel, Scheideler, SPAA 2002).
//
// Share reduces *non-uniform* placement to *uniform* placement: every device
// claims an interval on the unit circle whose length is its relative
// capacity stretched by a factor s = Theta(log n); a ball hashes to a point
// x, and among the devices whose intervals cover x, a uniform strategy
// (equal-weight rendezvous here) picks the winner.  The probability that a
// device covers x is proportional to its capacity, so the composition is
// fair up to the uniform strategy's deviation; adaptivity is inherited
// because interval starts depend only on the device uid.
//
// This is the strategy the paper cites as its fair `placeonecopy` candidate
// for heterogeneous capacities; we ship it both as a standalone
// SingleStrategy and as an alternative backend for Redundant Share.
#pragma once

#include <cstdint>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

class Share final : public SingleStrategy {
 public:
  /// `stretch` <= 0 selects the default 3*ln(n)+6 (covers every point with
  /// high probability).  `salt` decorrelates independent instances.
  explicit Share(const ClusterConfig& config, double stretch = 0.0,
                 std::uint64_t salt = 0);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return device_count_;
  }

  [[nodiscard]] double stretch() const noexcept { return stretch_; }

  /// Average number of devices covering a point (for tests; ~stretch).
  [[nodiscard]] double average_coverage() const;

 private:
  // The unit circle is cut at every fractional-interval endpoint into
  // elementary segments; segment_extra_[i] lists the devices whose
  // fractional remainder covers segment [boundaries_[i], boundaries_[i+1]).
  // base_multiplicity_[d] is the number of whole wraps of device d's
  // interval (covers every point).
  std::vector<double> boundaries_;
  std::vector<std::vector<DeviceId>> segment_extra_;
  std::vector<std::uint32_t> base_multiplicity_;  // canonical device order
  std::vector<DeviceId> uid_of_;                  // canonical device order
  std::size_t device_count_ = 0;
  double stretch_ = 0.0;
  std::uint64_t salt_ = 0;
};

}  // namespace rds
