#include "src/placement/trivial_replication.hpp"

#include <stdexcept>

#include "src/placement/rendezvous.hpp"
#include "src/util/hash.hpp"

namespace rds {

TrivialReplication::TrivialReplication(const ClusterConfig& config, unsigned k,
                                       TrivialBackend backend,
                                       std::uint64_t salt)
    : k_(k), backend_(backend), salt_(salt) {
  if (k == 0) throw std::invalid_argument("TrivialReplication: k == 0");
  if (config.size() < k) {
    throw std::invalid_argument("TrivialReplication: fewer devices than k");
  }
  candidates_.reserve(config.size());
  for (const Device& d : config.devices()) {
    candidates_.push_back({d.uid, static_cast<double>(d.capacity)});
  }
  if (backend_ == TrivialBackend::kRingWalk) {
    ring_ = std::make_unique<ConsistentHashing>(config, 256, salt);
  }
}

void TrivialReplication::place(std::uint64_t address,
                               std::span<DeviceId> out) const {
  check_out_span(out, k_);
  switch (backend_) {
    case TrivialBackend::kExactRace:
      rendezvous_top_k(address, salt_, candidates_, out);
      return;
    case TrivialBackend::kRingWalk:
      for (unsigned j = 0; j < k_; ++j) {
        // Draw j excludes the already chosen devices, per Definition 2.3.
        const DeviceId uid = ring_->place_excluding(
            hash_combine(address, j), std::span<const DeviceId>(out.data(), j));
        if (uid == kNoDevice) {
          throw std::runtime_error("TrivialReplication: ring exhausted");
        }
        out[j] = uid;
      }
      return;
  }
  throw std::logic_error("TrivialReplication: unknown backend");
}

std::string TrivialReplication::name() const {
  return backend_ == TrivialBackend::kExactRace ? "trivial(exact-race)"
                                                : "trivial(ring-walk)";
}

}  // namespace rds
