#include "src/placement/strategy_factory.hpp"

#include <stdexcept>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/static_placement.hpp"
#include "src/placement/trivial_replication.hpp"

namespace rds {

std::unique_ptr<ReplicationStrategy> make_replication_strategy(
    PlacementKind kind, const ClusterConfig& config, unsigned k) {
  switch (kind) {
    case PlacementKind::kRedundantShare:
      return std::make_unique<RedundantShare>(config, k);
    case PlacementKind::kFastRedundantShare:
      return std::make_unique<FastRedundantShare>(config, k);
    case PlacementKind::kTrivial:
      return std::make_unique<TrivialReplication>(config, k);
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinStriping>(config, k);
  }
  throw std::logic_error("make_replication_strategy: unknown placement kind");
}

std::string_view to_string(PlacementKind kind) noexcept {
  switch (kind) {
    case PlacementKind::kRedundantShare: return "redundant-share";
    case PlacementKind::kFastRedundantShare: return "fast-redundant-share";
    case PlacementKind::kTrivial: return "trivial";
    case PlacementKind::kRoundRobin: return "round-robin";
  }
  return "?";
}

std::optional<PlacementKind> parse_placement_kind(
    std::string_view name) noexcept {
  if (name == "redundant-share" || name == "rs") {
    return PlacementKind::kRedundantShare;
  }
  if (name == "fast-redundant-share" || name == "fast") {
    return PlacementKind::kFastRedundantShare;
  }
  if (name == "trivial") return PlacementKind::kTrivial;
  if (name == "round-robin" || name == "rr") return PlacementKind::kRoundRobin;
  return std::nullopt;
}

}  // namespace rds
