#include "src/placement/strategy_factory.hpp"

#include <stdexcept>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/static_placement.hpp"
#include "src/placement/trivial_replication.hpp"

namespace rds {
namespace {

/// Accepted spellings per kind: canonical name first, then aliases.
/// parse_placement_kind, placement_kind_names and to_string all read this
/// table, so a new kind shows up in every error message automatically.
struct KindNames {
  PlacementKind kind;
  std::string_view canonical;
  std::string_view alias;  // empty when the kind has no short form
};

constexpr PlacementKind kAllKinds[] = {
    PlacementKind::kRedundantShare,  PlacementKind::kFastRedundantShare,
    PlacementKind::kTrivial,         PlacementKind::kRoundRobin,
    PlacementKind::kPrecomputed,
};

constexpr KindNames kNames[] = {
    {PlacementKind::kRedundantShare, "redundant-share", "rs"},
    {PlacementKind::kFastRedundantShare, "fast-redundant-share", "fast"},
    {PlacementKind::kTrivial, "trivial", ""},
    {PlacementKind::kRoundRobin, "round-robin", "rr"},
    {PlacementKind::kPrecomputed, "precomputed", "pre"},
};

}  // namespace

std::unique_ptr<ReplicationStrategy> make_replication_strategy(
    PlacementKind kind, const ClusterConfig& config, unsigned k) {
  switch (kind) {
    case PlacementKind::kRedundantShare:
      return std::make_unique<RedundantShare>(config, k);
    case PlacementKind::kFastRedundantShare:
      return std::make_unique<FastRedundantShare>(config, k);
    case PlacementKind::kTrivial:
      return std::make_unique<TrivialReplication>(config, k);
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinStriping>(config, k);
    case PlacementKind::kPrecomputed:
      return std::make_unique<PrecomputedRedundantShare>(config, k);
  }
  throw std::logic_error(
      "make_replication_strategy: unknown placement kind; valid: " +
      placement_kind_names());
}

std::span<const PlacementKind> all_placement_kinds() noexcept {
  return kAllKinds;
}

std::string placement_kind_names() {
  std::string out;
  for (const KindNames& entry : kNames) {
    if (!out.empty()) out += ", ";
    out += entry.canonical;
    if (!entry.alias.empty()) {
      out += " (";
      out += entry.alias;
      out += ")";
    }
  }
  return out;
}

std::string_view to_string(PlacementKind kind) noexcept {
  for (const KindNames& entry : kNames) {
    if (entry.kind == kind) return entry.canonical;
  }
  return "?";
}

std::optional<PlacementKind> parse_placement_kind(
    std::string_view name) noexcept {
  for (const KindNames& entry : kNames) {
    if (name == entry.canonical ||
        (!entry.alias.empty() && name == entry.alias)) {
      return entry.kind;
    }
  }
  return std::nullopt;
}

}  // namespace rds
