#include "src/placement/rendezvous.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {

double rendezvous_score(std::uint64_t address, DeviceId uid,
                        std::uint64_t salt, double weight) noexcept {
  const double u = unit_value(address, uid, salt);
  // u in [2^-53, 1): ln(u) < 0, so the score is positive and finite.
  // Guard u == 0 anyway (belt and braces against future hash changes).
  const double lg = std::log(u > 0.0 ? u : 0x1.0p-53);
  return -weight / lg;
}

DeviceId rendezvous_draw(std::uint64_t address, std::uint64_t salt,
                         std::span<const Candidate> candidates) {
  DeviceId best = kNoDevice;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const Candidate& c : candidates) {
    if (c.weight <= 0.0) continue;
    const double s = rendezvous_score(address, c.uid, salt, c.weight);
    if (s > best_score) {
      best_score = s;
      best = c.uid;
    }
  }
  return best;
}

void rendezvous_top_k(std::uint64_t address, std::uint64_t salt,
                      std::span<const Candidate> candidates,
                      std::span<DeviceId> out) {
  struct Scored {
    double score;
    DeviceId uid;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    if (c.weight <= 0.0) continue;
    scored.push_back({rendezvous_score(address, c.uid, salt, c.weight), c.uid});
  }
  if (scored.size() < out.size()) {
    throw std::invalid_argument("rendezvous_top_k: fewer candidates than k");
  }
  const auto mid = scored.begin() + static_cast<std::ptrdiff_t>(out.size());
  std::partial_sort(scored.begin(), mid, scored.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.score > b.score;
                    });
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = scored[i].uid;
}

WeightedRendezvous::WeightedRendezvous(const ClusterConfig& config,
                                       std::uint64_t salt)
    : salt_(salt) {
  candidates_.reserve(config.size());
  for (const Device& d : config.devices()) {
    candidates_.push_back({d.uid, static_cast<double>(d.capacity)});
  }
}

DeviceId WeightedRendezvous::place(std::uint64_t address) const {
  return rendezvous_draw(address, salt_, candidates_);
}

std::string WeightedRendezvous::name() const { return "rendezvous"; }

}  // namespace rds
