// The Sieve strategy (Brinkmann, Salzwedel, Scheideler, SPAA 2002) -- the
// second compact adaptive scheme of the paper's reference [2].
//
// Rejection sampling over the bins: trial t hashes the ball to a candidate
// bin (uniformly) and to an acceptance level in [0, 1); the candidate is
// accepted if the level falls below the bin's weight relative to the
// heaviest bin.  Accepted trials are distributed exactly in proportion to
// the weights, so the first accepted trial is a perfectly fair draw.  The
// expected number of trials is w_max * n / sum w <= n; for moderately
// skewed systems it is a small constant.  Adaptivity: a trial's outcome
// depends only on (ball, trial, bin layout), so capacity changes perturb
// only the trials they touch.
//
// The trial-to-bin mapping uses a power-of-two slot table (>= 2n slots)
// with hash-probed, uid-stable slot assignment, so adding a device claims a
// fresh slot instead of renumbering everyone -- the trick that keeps
// Sieve's movement low.  Caveat of this simplified implementation: when the
// device count crosses a power-of-two boundary the table resizes and the
// slot assignment reshuffles (a one-off migration); the full SPAA'02
// construction avoids this with a multi-level frame structure.
#pragma once

#include <cstdint>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

class Sieve final : public SingleStrategy {
 public:
  explicit Sieve(const ClusterConfig& config, std::uint64_t salt = 0);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return device_count_;
  }

  /// Expected trials per lookup (slots / n * w_max * n / sum w); for tests.
  [[nodiscard]] double expected_trials() const noexcept;

 private:
  std::vector<Candidate> slots_;  // size = power of two >= n; empty slots
                                  // have weight 0 (rejected outright)
  double max_weight_ = 0.0;
  double total_weight_ = 0.0;
  std::size_t device_count_ = 0;
  std::uint64_t salt_ = 0;
};

}  // namespace rds
