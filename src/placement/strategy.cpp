#include "src/placement/strategy.hpp"

// Interfaces only; anchors the vtables of SingleStrategy/ReplicationStrategy
// in the library (keyed to the destructors' first out-of-line use).
namespace rds {}  // namespace rds
