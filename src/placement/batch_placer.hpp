// BatchPlacer: fans a span of block addresses across a persistent worker
// pool and fills a contiguous DeviceId output row-major (address i's copies
// at out[i*k .. i*k+k)).
//
// Strategies are immutable, so the only coordination a batch needs is chunk
// hand-out (one relaxed fetch_add per chunk) -- the workers never touch
// shared mutable state.  Metrics are flushed once per batch (latency
// histogram, placement counter), not once per placement, which is the point:
// a placement is tens of nanoseconds, a clock read is not.
//
// place() itself is not reentrant: one batch at a time per BatchPlacer.
// Different BatchPlacer instances are independent.  The calling thread
// participates in the batch, so `threads == 1` means "no extra threads"
// and runs entirely inline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/placement/strategy.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace rds::metrics {
class Counter;
class Gauge;
class LatencyHistogram;
}  // namespace rds::metrics

namespace rds {

class BatchPlacer {
 public:
  /// `threads` including the caller; 0 picks hardware_concurrency().
  explicit BatchPlacer(unsigned threads = 0);
  ~BatchPlacer();

  BatchPlacer(const BatchPlacer&) = delete;
  BatchPlacer& operator=(const BatchPlacer&) = delete;

  /// Worker threads plus the participating caller.
  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Places every address of the batch under `strategy`.  `out.size()`
  /// must equal `addresses.size() * strategy.replication()` (throws
  /// std::invalid_argument otherwise).  Identical output to a sequential
  /// place_many(); blocks until the batch is complete.
  void place(const ReplicationStrategy& strategy,
             std::span<const std::uint64_t> addresses,
             std::span<DeviceId> out) RDS_EXCLUDES(mu_);

 private:
  struct Batch {
    const ReplicationStrategy* strategy = nullptr;
    const std::uint64_t* addresses = nullptr;
    DeviceId* out = nullptr;
    std::size_t count = 0;
    unsigned k = 0;
    std::size_t chunk = 0;        ///< addresses per hand-out unit
    std::size_t chunk_count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void worker_loop() RDS_EXCLUDES(mu_);
  void run_chunks(Batch& batch) RDS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;                   ///< workers wait for a new batch
  CondVar done_cv_;                   ///< caller waits for completion
  /// Non-null while a batch is running.
  std::shared_ptr<Batch> batch_ RDS_GUARDED_BY(mu_);
  std::uint64_t generation_ RDS_GUARDED_BY(mu_) = 0;
  bool stopping_ RDS_GUARDED_BY(mu_) = false;
  // Written by the constructor, joined by the destructor, sized by
  // thread_count(): never mutated while workers run, so unguarded.
  std::vector<std::thread> workers_;

  // Registry-owned instruments, resolved once (see docs/metrics.md).
  metrics::Counter* placements_total_ = nullptr;
  metrics::Counter* batches_total_ = nullptr;
  metrics::Gauge* inflight_ = nullptr;
  metrics::LatencyHistogram* batch_latency_ns_ = nullptr;
};

}  // namespace rds
