#include "src/placement/weighted_dht.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {

WeightedDht::WeightedDht(const ClusterConfig& config, DhtDistance distance,
                         unsigned points_per_device, std::uint64_t salt)
    : distance_(distance), device_count_(config.size()), salt_(salt) {
  if (config.empty()) throw std::invalid_argument("WeightedDht: empty cluster");
  if (points_per_device == 0) {
    throw std::invalid_argument("WeightedDht: zero points per device");
  }
  points_.reserve(config.size() * points_per_device);
  for (std::size_t i = 0; i < config.size(); ++i) {
    const Device& d = config[i];
    for (unsigned v = 0; v < points_per_device; ++v) {
      points_.push_back({to_unit(hash3(d.uid, v, salt_)),
                         static_cast<double>(d.capacity), d.uid});
    }
  }
  std::ranges::sort(points_, [](const Point& a, const Point& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.uid < b.uid;
  });
}

DeviceId WeightedDht::place(std::uint64_t address) const {
  const double x = to_unit(mix64(address ^ (salt_ + 0x0ddba11ULL)));
  // Clockwise distance from x to every point; the weighted-minimal one wins.
  // O(#points): each point's distance is (p - x) mod 1.
  DeviceId best = kNoDevice;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const Point& p : points_) {
    double dist = p.position - x;
    if (dist < 0.0) dist += 1.0;
    double cost;
    switch (distance_) {
      case DhtDistance::kLinear:
        cost = dist / p.weight;
        break;
      case DhtDistance::kLogarithmic:
        // dist in [0,1): -log1p(-dist) is finite and monotone.
        cost = -std::log1p(-dist) / p.weight;
        break;
      default:
        throw std::logic_error("WeightedDht: unknown distance");
    }
    if (cost < best_cost || (cost == best_cost && p.uid < best)) {
      best_cost = cost;
      best = p.uid;
    }
  }
  return best;
}

std::string WeightedDht::name() const {
  return distance_ == DhtDistance::kLinear ? "weighted-dht(linear)"
                                           : "weighted-dht(logarithmic)";
}

}  // namespace rds
