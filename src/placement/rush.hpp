// Simplified RUSH_P (Honicky & Miller, IPDPS 2003/2004) -- the related-work
// comparator of Section 1.2.
//
// RUSH organizes storage into *sub-clusters*: chunks of identical devices
// added together.  Replicas of an object are apportioned to sub-clusters in
// proportion to the sub-clusters' weights (newest first), then mapped to
// distinct devices inside the chosen sub-cluster by a prime-step
// permutation.  The paper's criticism, which this implementation makes
// measurable, is the chunk restriction: capacity can only be added in
// groups of same-type devices, and a sub-cluster must be large enough to
// host every replica assigned to it without violating redundancy.
//
// This is a faithful-in-spirit simplification (deterministic randomized
// rounding of the per-sub-cluster replica counts instead of RUSH's
// hypergeometric draws); it keeps RUSH's signature properties: no two
// replicas share a device, placement is a pure hash function, and adding a
// sub-cluster moves only the data the new sub-cluster should own.
#pragma once

#include <cstdint>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

/// A chunk of identical devices added together.
struct SubCluster {
  std::vector<DeviceId> uids;
  double device_weight = 1.0;  ///< relative weight of each device

  [[nodiscard]] double total_weight() const noexcept {
    return device_weight * static_cast<double>(uids.size());
  }
};

class RushPlacement final : public ReplicationStrategy {
 public:
  /// Sub-clusters in addition order (oldest first).  Each sub-cluster needs
  /// at least one device; the union must have >= k devices, and the oldest
  /// sub-cluster must have >= k devices (it is the overflow target).
  RushPlacement(std::vector<SubCluster> sub_clusters, unsigned k,
                std::uint64_t salt = 0);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;
  [[nodiscard]] unsigned replication() const override { return k_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override;

 private:
  /// Selects `count` distinct devices of sub-cluster `j` for `address`.
  void pick_in_subcluster(std::uint64_t address, std::size_t j,
                          unsigned count, std::span<DeviceId> out) const;

  std::vector<SubCluster> sub_clusters_;
  std::vector<double> cumulative_weight_;  // weight of clusters 0..j
  unsigned k_;
  std::uint64_t salt_;
};

}  // namespace rds
