// Consistent hashing (Karger et al., STOC 1997), weighted via virtual nodes.
//
// Each device owns a number of points on a 64-bit ring proportional to its
// capacity; a ball is stored on the device owning the first point at or
// after the ball's own ring position.  Fairness is only approximate (it
// concentrates around the capacity share as the number of virtual nodes
// grows), which is exactly why the paper needs strategies beyond it -- but it
// is the classical substrate the paper builds on and a required baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

class ConsistentHashing final : public SingleStrategy {
 public:
  /// `vnodes_per_unit`: ring points per unit of *relative* capacity times
  /// device count; the default gives ~256 points for an average device.
  /// `salt` decorrelates independent rings over the same cluster.
  explicit ConsistentHashing(const ClusterConfig& config,
                             unsigned vnodes_per_avg_device = 256,
                             std::uint64_t salt = 0);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;

  /// Placement with some devices excluded: the ring is walked clockwise
  /// past points owned by excluded devices.  This is the "bins already
  /// chosen do not take part in draw i" rule of the trivial strategy
  /// (Definition 2.3) realized on a ring.
  [[nodiscard]] DeviceId place_excluding(
      std::uint64_t address, std::span<const DeviceId> excluded) const;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return device_count_;
  }

  /// Total number of ring points (for tests).
  [[nodiscard]] std::size_t ring_size() const noexcept { return ring_.size(); }

 private:
  struct RingPoint {
    std::uint64_t position;
    DeviceId uid;
  };

  std::vector<RingPoint> ring_;  // sorted by position
  std::size_t device_count_ = 0;
  std::uint64_t salt_ = 0;
};

}  // namespace rds
