// The trivial replication strategy (Definition 2.3): k successive fair
// draws, where each draw is proportional to the bins' constant relative
// weights among the bins not yet chosen.
//
// This is the paper's negative result (Lemma 2.4): it is NOT capacity
// efficient -- the largest bin receives strictly less than its fair share as
// soon as it is more than epsilon larger than the rest, wasting capacity
// (1/12 of the total already on {2,1,1} with k=2, Figure 1).  We implement
// it exactly so the benchmarks can reproduce that loss.
//
// Two backends:
//  * kExactRace  -- one weighted rendezvous ranking; taking the top-k is
//    distributionally identical to k successive weighted draws without
//    replacement (the exponential race theorem), so this is the *exact*
//    trivial strategy.
//  * kRingWalk   -- k draws on a consistent-hashing ring where already
//    chosen devices' points are skipped: the practical P2P implementation
//    the paper alludes to (approximately fair per draw).
#pragma once

#include <cstdint>
#include <memory>

#include "src/placement/consistent_hashing.hpp"
#include "src/placement/strategy.hpp"

namespace rds {

enum class TrivialBackend {
  kExactRace,  ///< exact successive weighted draws (rendezvous top-k)
  kRingWalk,   ///< consistent-hashing ring, skipping chosen devices
};

class TrivialReplication final : public ReplicationStrategy {
 public:
  TrivialReplication(const ClusterConfig& config, unsigned k,
                     TrivialBackend backend = TrivialBackend::kExactRace,
                     std::uint64_t salt = 0);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;
  [[nodiscard]] unsigned replication() const override { return k_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return candidates_.size();
  }

 private:
  std::vector<Candidate> candidates_;
  std::unique_ptr<ConsistentHashing> ring_;  // kRingWalk only
  unsigned k_;
  TrivialBackend backend_;
  std::uint64_t salt_;
};

}  // namespace rds
