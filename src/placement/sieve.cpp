#include "src/placement/sieve.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include "src/placement/rendezvous.hpp"
#include "src/util/hash.hpp"

namespace rds {

Sieve::Sieve(const ClusterConfig& config, std::uint64_t salt)
    : device_count_(config.size()), salt_(salt) {
  if (config.empty()) throw std::invalid_argument("Sieve: empty cluster");
  // Twice-oversized power-of-two slot table; every device claims the first
  // free slot probing from hash(uid).  Assignment is computed in uid order,
  // so a device change only perturbs the (rare) colliding probe chains --
  // this slot stability is what keeps Sieve's data movement low.
  const std::size_t slot_count = std::bit_ceil(2 * config.size());
  slots_.assign(slot_count, Candidate{kNoDevice, 0.0});

  std::vector<Device> by_uid(config.devices().begin(),
                             config.devices().end());
  std::ranges::sort(by_uid,
                    [](const Device& a, const Device& b) { return a.uid < b.uid; });
  const std::uint64_t mask = slot_count - 1;
  for (const Device& d : by_uid) {
    std::uint64_t slot = hash2(d.uid, salt_) & mask;
    while (slots_[slot].uid != kNoDevice) slot = (slot + 1) & mask;
    slots_[slot] = {d.uid, static_cast<double>(d.capacity)};
    max_weight_ = std::max(max_weight_, static_cast<double>(d.capacity));
    total_weight_ += static_cast<double>(d.capacity);
  }
}

DeviceId Sieve::place(std::uint64_t address) const {
  // Deterministic trial sequence; each trial picks a slot and an acceptance
  // level from independent hashes.  Bounded by a generous cap, after which
  // we fall back to an exact rendezvous race so the lookup never fails --
  // the fallback fires with probability < 2^-64 for any sane system.
  constexpr unsigned kMaxTrials = 256;
  const std::uint64_t mask = slots_.size() - 1;
  for (unsigned t = 0; t < kMaxTrials; ++t) {
    const std::uint64_t h = hash3(address, t, salt_ ^ 0x51E7EULL);
    const Candidate& c = slots_[h & mask];
    if (c.weight <= 0.0) continue;  // empty slot: rejected
    const double level = to_unit(mix64(h ^ 0x9e3779b97f4a7c15ULL));
    if (level * max_weight_ < c.weight) return c.uid;
  }
  return rendezvous_draw(address, salt_ ^ 0xFA11BACCULL, slots_);
}

std::string Sieve::name() const { return "sieve"; }

double Sieve::expected_trials() const noexcept {
  // P(accept per trial) = sum_i (1/slots) * w_i / w_max.
  const double p = total_weight_ /
                   (max_weight_ * static_cast<double>(slots_.size()));
  return p > 0.0 ? 1.0 / p : 0.0;
}

}  // namespace rds
