#include "src/placement/consistent_hashing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {

ConsistentHashing::ConsistentHashing(const ClusterConfig& config,
                                     unsigned vnodes_per_avg_device,
                                     std::uint64_t salt)
    : device_count_(config.size()), salt_(salt) {
  if (config.empty()) {
    throw std::invalid_argument("ConsistentHashing: empty cluster");
  }
  if (vnodes_per_avg_device == 0) {
    throw std::invalid_argument("ConsistentHashing: zero virtual nodes");
  }
  const double avg_capacity =
      static_cast<double>(config.total_capacity()) /
      static_cast<double>(config.size());
  for (const Device& d : config.devices()) {
    const double share = static_cast<double>(d.capacity) / avg_capacity;
    const auto vnodes = static_cast<std::size_t>(std::max(
        1.0, std::round(share * static_cast<double>(vnodes_per_avg_device))));
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Ring position depends only on (uid, vnode index, salt): stable under
      // any change to other devices.
      ring_.push_back({hash3(d.uid, v, salt_), d.uid});
    }
  }
  std::ranges::sort(ring_, [](const RingPoint& a, const RingPoint& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.uid < b.uid;  // deterministic tie-break
  });
}

DeviceId ConsistentHashing::place(std::uint64_t address) const {
  const std::uint64_t pos = mix64(address ^ salt_);
  auto it = std::ranges::lower_bound(
      ring_, pos, {}, [](const RingPoint& p) { return p.position; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->uid;
}

DeviceId ConsistentHashing::place_excluding(
    std::uint64_t address, std::span<const DeviceId> excluded) const {
  const auto is_excluded = [excluded](DeviceId uid) {
    return std::ranges::find(excluded, uid) != excluded.end();
  };
  const std::uint64_t pos = mix64(address ^ salt_);
  auto it = std::ranges::lower_bound(
      ring_, pos, {}, [](const RingPoint& p) { return p.position; });
  // Walk at most one full revolution.
  for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (!is_excluded(it->uid)) return it->uid;
    ++it;
  }
  return kNoDevice;  // every device excluded
}

std::string ConsistentHashing::name() const { return "consistent-hashing"; }

}  // namespace rds
