#include "src/placement/rush.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {
namespace {

/// Smallest prime >= 2 that does not divide n (step size for the in-cluster
/// permutation; any step coprime to n visits all devices exactly once).
std::uint64_t coprime_step(std::uint64_t n, std::uint64_t seed) {
  if (n <= 2) return 1;
  // Try a handful of primes in seed-dependent order for de-correlation.
  constexpr std::uint64_t primes[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                      29, 31, 37, 41, 43, 47, 53, 59};
  constexpr std::size_t np = sizeof(primes) / sizeof(primes[0]);
  for (std::size_t t = 0; t < np; ++t) {
    const std::uint64_t p = primes[(seed + t) % np];
    if (n % p != 0) return p;
  }
  return 1;  // n divisible by all small primes: fall back to step 1
}

}  // namespace

RushPlacement::RushPlacement(std::vector<SubCluster> sub_clusters, unsigned k,
                             std::uint64_t salt)
    : sub_clusters_(std::move(sub_clusters)), k_(k), salt_(salt) {
  if (k_ == 0) throw std::invalid_argument("RushPlacement: k == 0");
  if (sub_clusters_.empty()) {
    throw std::invalid_argument("RushPlacement: no sub-clusters");
  }
  for (const SubCluster& sc : sub_clusters_) {
    if (sc.uids.empty()) {
      throw std::invalid_argument("RushPlacement: empty sub-cluster");
    }
    if (sc.device_weight <= 0.0) {
      throw std::invalid_argument("RushPlacement: non-positive weight");
    }
  }
  // The chunk restriction the paper criticizes: the oldest sub-cluster takes
  // every replica the newer ones decline, so it must fit a whole group.
  if (sub_clusters_.front().uids.size() < k_) {
    throw std::invalid_argument(
        "RushPlacement: first sub-cluster smaller than replication degree "
        "(RUSH chunk restriction)");
  }
  cumulative_weight_.resize(sub_clusters_.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < sub_clusters_.size(); ++j) {
    acc += sub_clusters_[j].total_weight();
    cumulative_weight_[j] = acc;
  }
}

std::size_t RushPlacement::device_count() const {
  std::size_t n = 0;
  for (const SubCluster& sc : sub_clusters_) n += sc.uids.size();
  return n;
}

void RushPlacement::pick_in_subcluster(std::uint64_t address, std::size_t j,
                                       unsigned count,
                                       std::span<DeviceId> out) const {
  const SubCluster& sc = sub_clusters_[j];
  const std::uint64_t n = sc.uids.size();
  const std::uint64_t seed = hash3(address, j, salt_ ^ 0xbeefULL);
  const std::uint64_t start = seed % n;
  const std::uint64_t step = coprime_step(n, seed >> 32);
  for (unsigned t = 0; t < count; ++t) {
    out[t] = sc.uids[(start + static_cast<std::uint64_t>(t) * step) % n];
  }
}

void RushPlacement::place(std::uint64_t address,
                          std::span<DeviceId> out) const {
  check_out_span(out, k_);
  unsigned remaining = k_;
  std::size_t filled = 0;
  // Newest sub-cluster first, as in RUSH: each sub-cluster takes its share
  // of the remaining replicas, the rest recurse into older sub-clusters.
  for (std::size_t j = sub_clusters_.size(); j-- > 1 && remaining > 0;) {
    const SubCluster& sc = sub_clusters_[j];
    const double share = sc.total_weight() / cumulative_weight_[j];
    const double expected = static_cast<double>(remaining) * share;
    const auto cap =
        static_cast<unsigned>(std::min<std::uint64_t>(remaining, sc.uids.size()));
    auto take = static_cast<unsigned>(expected);
    const double frac = expected - static_cast<double>(take);
    if (unit_value(address, j, salt_) < frac) ++take;
    take = std::min(take, cap);
    if (take > 0) {
      pick_in_subcluster(address, j, take, out.subspan(filled, take));
      filled += take;
      remaining -= take;
    }
  }
  if (remaining > 0) {
    // Overflow lands in the oldest sub-cluster (guaranteed >= k devices).
    pick_in_subcluster(address, 0, remaining, out.subspan(filled, remaining));
    filled += remaining;
  }
}

std::string RushPlacement::name() const { return "rush-p(simplified)"; }

}  // namespace rds
