#include "src/placement/crush.hpp"

#include <stdexcept>
#include <unordered_set>

#include "src/placement/rendezvous.hpp"
#include "src/util/checked_math.hpp"
#include "src/util/hash.hpp"

namespace rds {

std::uint64_t FailureDomain::total_capacity() const {
  std::uint64_t total = 0;
  for (const Device& d : devices) {
    total = checked_add(total, d.capacity).value_or_throw();
  }
  return total;
}

CrushPlacement::CrushPlacement(std::vector<FailureDomain> domains, unsigned k,
                               std::uint64_t salt)
    : domains_(std::move(domains)), k_(k), salt_(salt) {
  if (k_ == 0) throw std::invalid_argument("CrushPlacement: k == 0");
  if (domains_.size() < k_) {
    throw std::invalid_argument("CrushPlacement: fewer domains than k");
  }
  std::unordered_set<DeviceId> seen;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    if (domains_[d].devices.empty()) {
      throw std::invalid_argument("CrushPlacement: empty domain");
    }
    for (const Device& dev : domains_[d].devices) {
      if (dev.capacity == 0) {
        throw std::invalid_argument("CrushPlacement: zero-capacity device");
      }
      if (!seen.insert(dev.uid).second) {
        throw std::invalid_argument("CrushPlacement: duplicate device uid");
      }
    }
    domain_candidates_.push_back(
        {d, static_cast<double>(domains_[d].total_capacity())});
  }
}

std::size_t CrushPlacement::device_count() const {
  std::size_t n = 0;
  for (const FailureDomain& d : domains_) n += d.devices.size();
  return n;
}

std::size_t CrushPlacement::domain_of(DeviceId uid) const {
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    for (const Device& dev : domains_[d].devices) {
      if (dev.uid == uid) return d;
    }
  }
  return domains_.size();
}

void CrushPlacement::place(std::uint64_t address,
                           std::span<DeviceId> out) const {
  check_out_span(out, k_);
  // Straw phase 1: the k best-scoring domains, one replica each -- a
  // rendezvous top-k, i.e. k successive weighted draws without replacement
  // (the trivial strategy at domain granularity; see the header).
  std::vector<DeviceId> chosen(k_);
  rendezvous_top_k(address, salt_ ^ 0xC2054ULL, domain_candidates_, chosen);

  // Straw phase 2: a weighted race among each chosen domain's devices.
  for (unsigned r = 0; r < k_; ++r) {
    const FailureDomain& domain = domains_[chosen[r]];
    std::vector<Candidate> devices;
    devices.reserve(domain.devices.size());
    for (const Device& dev : domain.devices) {
      devices.push_back({dev.uid, static_cast<double>(dev.capacity)});
    }
    const DeviceId uid =
        rendezvous_draw(address, salt_ ^ (0xD0D0ULL + chosen[r]), devices);
    if (uid == kNoDevice) {
      throw std::logic_error("CrushPlacement: empty device race");
    }
    out[r] = uid;
  }
}

std::string CrushPlacement::name() const { return "crush(straw,simplified)"; }

}  // namespace rds
