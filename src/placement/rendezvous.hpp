// Weighted rendezvous (highest-random-weight) hashing.
//
// Every (ball, device, salt) pair gets an independent uniform value u; the
// device maximizing the score  -w / ln(u)  wins.  Because -ln(u)/w is an
// exponential with rate w, the winner is device i with probability exactly
// w_i / sum w_j ("exponential race"), for *arbitrary* weights -- no virtual
// node approximation.  Removing or adding a device only moves the balls that
// device wins/loses, so the scheme is 1-competitive for adaptivity.
//
// This is the library's default `placeonecopy` for Redundant Share: the
// paper requires a perfectly fair single-copy scheme whose randomness per
// bin depends only on (address, bin), and weighted rendezvous is the
// simplest scheme with that exact property.
//
// The free function `rendezvous_draw` ranks an arbitrary candidate list (the
// per-call suffixes Redundant Share needs); the `WeightedRendezvous` class
// adapts it to the SingleStrategy interface over a whole cluster.
#pragma once

#include <cstdint>
#include <span>

#include "src/placement/strategy.hpp"

namespace rds {

/// Rendezvous score of one candidate: -w / ln(u(address, uid, salt)).
/// Strictly increasing in w; u == 0 is impossible by construction of
/// unit_value (top 53 bits of a hash), so the score is finite.
[[nodiscard]] double rendezvous_score(std::uint64_t address, DeviceId uid,
                                      std::uint64_t salt,
                                      double weight) noexcept;

/// Winner of a weighted rendezvous race over `candidates`.  Candidates with
/// non-positive weight never win.  Returns kNoDevice when no candidate has
/// positive weight.  O(|candidates|).
[[nodiscard]] DeviceId rendezvous_draw(std::uint64_t address,
                                       std::uint64_t salt,
                                       std::span<const Candidate> candidates);

/// Top-`k` distinct winners, best first.  Equivalent in distribution to k
/// successive weighted draws without replacement (used by the trivial
/// replication baseline).  Writes the winners to `out` (size k); throws
/// std::invalid_argument if fewer than k candidates have positive weight.
void rendezvous_top_k(std::uint64_t address, std::uint64_t salt,
                      std::span<const Candidate> candidates,
                      std::span<DeviceId> out);

/// SingleStrategy adapter: fair weighted placement over a full cluster.
class WeightedRendezvous final : public SingleStrategy {
 public:
  /// `salt` decorrelates multiple independent instances over the same
  /// cluster (e.g. the per-level hash functions of Section 3.3).
  explicit WeightedRendezvous(const ClusterConfig& config,
                              std::uint64_t salt = 0);

  [[nodiscard]] DeviceId place(std::uint64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return candidates_.size();
  }

 private:
  std::vector<Candidate> candidates_;
  std::uint64_t salt_;
};

}  // namespace rds
