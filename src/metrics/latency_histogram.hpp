// Lock-free log-bucketed histogram for latency-like values.
//
// Bucketing is HdrHistogram-style: values below 32 get exact unit buckets;
// above, each power-of-two octave is split into 32 linear sub-buckets, so
// the relative quantile error is bounded by 1/32 (~3%) over the full uint64
// range at a fixed 1920 buckets (~15 KB).  bucket_of() is two bit
// operations -- no std::log on the record path, unlike util/LogHistogram,
// and every slot is a relaxed atomic, so record() is lock-free and safe
// from any thread.
//
// Unit convention: record() takes an integer; time series use nanoseconds
// (suffix the metric name `_ns`), sizes use bytes (`_bytes`).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rds::metrics {

/// One exported bucket: `count` samples with value <= `le` (and greater
/// than the previous bucket's `le`).  Counts are per-bucket, not
/// cumulative.
struct HistogramBucket {
  std::uint64_t le = 0;  ///< inclusive upper bound of the bucket
  std::uint64_t count = 0;
};

/// Point-in-time copy of a histogram (what the registry exports).
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;
  std::vector<HistogramBucket> buckets;  ///< non-empty buckets, ascending le

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Value at quantile q in [0, 1] (bucket upper bound); 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (const HistogramBucket& b : buckets) {
      seen += b.count;
      if (static_cast<double>(seen) >= target) {
        return static_cast<double>(b.le);
      }
    }
    return static_cast<double>(max);
  }
};

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;  ///< 32 sub-buckets per octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBits - 1) * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Peak/floor tracking; the CAS loops exit on the first load except under
    // a genuinely new extreme.  Relaxed on success AND failure (spelled out
    // for rds_lint): extremes are standalone scalars, nothing is published
    // through them, so no ordering stronger than atomicity is needed.
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kEmptyMin ? 0 : m;
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  /// Convenience live quantile (goes through snapshot()).
  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

  /// Copies the non-empty buckets and summary stats.  Concurrent record()
  /// calls may tear count vs buckets by a sample or two -- fine for
  /// monitoring, which is the contract of the whole subsystem.
  [[nodiscard]] HistogramData snapshot() const {
    HistogramData d;
    d.count = count();
    d.sum = sum();
    d.min = min();
    d.max = max();
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
      if (c > 0) d.buckets.push_back({upper_bound(b), c});
    }
    return d;
  }

  /// Zeroes everything.  Like Counter::reset(), not atomic with respect to
  /// concurrent record(); callers quiesce writers first.
  void reset() noexcept {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      buckets_[b].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kEmptyMin, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const unsigned octave = static_cast<unsigned>(std::bit_width(value)) - 1;
    const unsigned shift = octave - kSubBits;
    const std::size_t sub =
        static_cast<std::size_t>(value >> shift) & (kSubBuckets - 1);
    return kSubBuckets + (octave - kSubBits) * kSubBuckets + sub;
  }

  /// Inclusive upper bound of bucket `index` (the exported `le`).
  [[nodiscard]] static std::uint64_t upper_bound(std::size_t index) noexcept {
    if (index < kSubBuckets) return index;
    const std::size_t rel = index - kSubBuckets;
    const unsigned shift = static_cast<unsigned>(rel / kSubBuckets);
    const std::uint64_t sub = rel % kSubBuckets;
    const std::uint64_t lower = (kSubBuckets + sub) << shift;
    return lower + ((std::uint64_t{1} << shift) - 1);
  }

 private:
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};

  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace rds::metrics
