#include "src/metrics/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace rds::metrics {
namespace {

/// Canonical map key for a label set: sorted `k=v` pairs joined by '\x1f'
/// (unit separator -- cannot collide with printable label content the way
/// ',' could).
std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += '\x1f';
  }
  return key;
}

}  // namespace

std::string_view to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const Sample* Snapshot::find(std::string_view name,
                             const Labels& labels) const {
  Labels sorted = labels;
  std::ranges::sort(sorted);
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

Registry& Registry::global() {
  // Intentionally leaked: instruments handed out by the registry must stay
  // valid inside static destructors of any translation unit.
  static Registry* instance = new Registry();
  return *instance;
}

Registry::Instrument& Registry::instrument(std::string_view name,
                                           Labels labels, MetricType type) {
  std::ranges::sort(labels);
  const MutexLock lock(mu_);
  const auto fam = families_.find(name);
  Family* family;
  if (fam == families_.end()) {
    family = &families_[std::string(name)];
    family->type = type;
  } else {
    family = &fam->second;
    if (family->type != type) {
      throw std::invalid_argument("metrics: family '" + std::string(name) +
                                  "' already registered as " +
                                  std::string(to_string(family->type)));
    }
  }
  Instrument& inst = family->children[label_key(labels)];
  if (!inst.counter && !inst.gauge && !inst.histogram) {
    inst.labels = std::move(labels);
    switch (type) {
      case MetricType::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        inst.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  }
  return inst;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return *instrument(name, std::move(labels), MetricType::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return *instrument(name, std::move(labels), MetricType::kGauge).gauge;
}

LatencyHistogram& Registry::histogram(std::string_view name, Labels labels) {
  return *instrument(name, std::move(labels), MetricType::kHistogram)
              .histogram;
}

Snapshot Registry::snapshot() const {
  const MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, inst] : family.children) {
      Sample s;
      s.name = name;
      s.labels = inst.labels;
      s.type = family.type;
      switch (family.type) {
        case MetricType::kCounter:
          s.counter_value = inst.counter->value();
          break;
        case MetricType::kGauge:
          s.gauge_value = inst.gauge->value();
          break;
        case MetricType::kHistogram:
          s.histogram = inst.histogram->snapshot();
          break;
      }
      snap.samples.push_back(std::move(s));
    }
  }
  return snap;
}

void Registry::reset() {
  const MutexLock lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, inst] : family.children) {
      if (inst.counter) inst.counter->reset();
      if (inst.gauge) inst.gauge->reset();
      if (inst.histogram) inst.histogram->reset();
    }
  }
}

}  // namespace rds::metrics
