// Snapshot serialization: the JSON schema consumed by `rds_cli
// --metrics-out` and the human-readable text dump of `rds_cli stats`.
// Schema documented in docs/metrics.md.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/metrics/registry.hpp"

namespace rds::metrics {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_labels(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, k);
    out += "\":\"";
    append_escaped(out, v);
    out += '"';
  }
  out += '}';
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// `name{k="v",...}` -- the text-format metric identity.
std::string text_identity(const Sample& s) {
  std::string id = s.name;
  if (!s.labels.empty()) {
    id += '{';
    bool first = true;
    for (const auto& [k, v] : s.labels) {
      if (!first) id += ',';
      first = false;
      id += k;
      id += "=\"";
      id += v;
      id += '"';
    }
    id += '}';
  }
  return id;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"version\": 1,\n  \"metrics\": [\n";
  bool first = true;
  for (const Sample& s : snapshot.samples) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_escaped(out, s.name);
    out += "\", \"type\": \"";
    out += to_string(s.type);
    out += "\", \"labels\": ";
    append_labels(out, s.labels);
    switch (s.type) {
      case MetricType::kCounter:
        out += ", \"value\": " + std::to_string(s.counter_value);
        break;
      case MetricType::kGauge:
        out += ", \"value\": " + std::to_string(s.gauge_value);
        break;
      case MetricType::kHistogram: {
        const HistogramData& h = s.histogram;
        out += ", \"count\": " + std::to_string(h.count);
        out += ", \"sum\": " + std::to_string(h.sum);
        out += ", \"min\": " + std::to_string(h.min);
        out += ", \"max\": " + std::to_string(h.max);
        out += ", \"p50\": " + format_double(h.quantile(0.50));
        out += ", \"p90\": " + format_double(h.quantile(0.90));
        out += ", \"p99\": " + format_double(h.quantile(0.99));
        out += ", \"buckets\": [";
        bool bfirst = true;
        for (const HistogramBucket& b : h.buckets) {
          if (!bfirst) out += ", ";
          bfirst = false;
          out += "{\"le\": " + std::to_string(b.le) +
                 ", \"count\": " + std::to_string(b.count) + '}';
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string to_text(const Snapshot& snapshot) {
  std::string out;
  for (const Sample& s : snapshot.samples) {
    const std::string id = text_identity(s);
    switch (s.type) {
      case MetricType::kCounter:
        out += id + ' ' + std::to_string(s.counter_value) + '\n';
        break;
      case MetricType::kGauge:
        out += id + ' ' + std::to_string(s.gauge_value) + '\n';
        break;
      case MetricType::kHistogram: {
        const HistogramData& h = s.histogram;
        out += id + " count=" + std::to_string(h.count) +
               " sum=" + std::to_string(h.sum) +
               " min=" + std::to_string(h.min) +
               " mean=" + format_double(h.mean()) +
               " p50=" + format_double(h.quantile(0.50)) +
               " p90=" + format_double(h.quantile(0.90)) +
               " p99=" + format_double(h.quantile(0.99)) +
               " max=" + std::to_string(h.max) + '\n';
        break;
      }
    }
  }
  return out;
}

void write_json_file(const Snapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("metrics: cannot open " + path + " for writing");
  }
  out << to_json(snapshot);
  out.flush();
  if (!out) {
    throw std::runtime_error("metrics: failed writing " + path);
  }
}

}  // namespace rds::metrics
