// RAII latency span: measures a scope on the steady clock and records the
// elapsed nanoseconds into a LatencyHistogram on destruction.
//
//     metrics::ScopedTimer t(placement_latency);
//     strategy.place(address, out);        // timed
//
// Two clock reads per span (~tens of ns); put spans around operations that
// are themselves at least that expensive -- a storage read, a migration
// step -- not around a single atomic increment.  stop() ends the span
// early; a stopped or moved-from timer records nothing.
#pragma once

#include <chrono>
#include <cstdint>

#include "src/metrics/latency_histogram.hpp"

namespace rds::metrics {

class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& histogram) noexcept
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Records the span now (idempotent); returns the elapsed nanoseconds.
  std::uint64_t stop() noexcept {
    if (histogram_ == nullptr) return 0;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    histogram_->record(ns);
    histogram_ = nullptr;
    return ns;
  }

  /// Abandons the span without recording (error paths).
  void cancel() noexcept { histogram_ = nullptr; }

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rds::metrics
