// Lock-free monotonic event counter.
//
// The write path is a single relaxed fetch_add: safe from any thread, no
// fences, no locks -- cheap enough to sit inside RedundantShare::place and
// the storage read/write paths.  Readers (snapshot export, tests) see an
// eventually-consistent value, which is all a metric needs; fetch_add makes
// concurrent increments exact (no lost updates), so totals reconcile.
#pragma once

#include <atomic>
#include <cstdint>

namespace rds::metrics {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Zeroes the counter (tests, bench warm-up).  Not atomic with respect to
  /// concurrent inc(); callers quiesce writers first.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace rds::metrics
