// Lock-free instantaneous-value gauge (signed: levels can go up and down).
//
// Same discipline as Counter: relaxed atomics only, no locks anywhere, so
// set()/add() are safe on hot paths.  set_max() keeps a running peak (queue
// depth high-water marks) via a CAS loop that normally exits on the first
// load.
#pragma once

#include <atomic>
#include <cstdint>

namespace rds::metrics {

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  void sub(std::int64_t n = 1) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if it is currently below (peak tracking).
  void set_max(std::int64_t v) noexcept {
    // Both CAS orders relaxed, spelled out: a peak is a monotonic scalar
    // with no payload published alongside it, so no acquire/release pairing
    // exists to establish -- same discipline as every other op here.  The
    // failure order is named too so the intent (not an accidental seq_cst
    // default) is explicit and machine-checked by rds_lint.
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

}  // namespace rds::metrics
