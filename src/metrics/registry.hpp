// Process-wide metric registry: named, labeled families of counters,
// gauges and latency histograms.
//
// Lookup (counter()/gauge()/histogram()) takes a mutex and is meant for
// construction time: callers resolve their instruments once and keep the
// returned reference, which stays valid for the life of the process (the
// registry never deletes a registered metric, and the global registry is
// intentionally leaked so metrics outlive static destructors).  The
// increment path is whatever the instrument itself costs -- a relaxed
// atomic op, no registry involvement.
//
// Naming conventions (docs/metrics.md): `rds_` prefix, `_total` suffix for
// counters, unit suffix for histograms/byte counters (`_ns`, `_bytes`).
// Labels distinguish instances of one family, e.g.
//   registry.counter("rds_placements_total", {{"strategy", "redundant-share"}})
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/metrics/counter.hpp"
#include "src/metrics/gauge.hpp"
#include "src/metrics/latency_histogram.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace rds::metrics {

/// Label set of one metric instance, e.g. {{"device", "3"}}.  Stored and
/// exported sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType type) noexcept;

/// One exported metric instance.
struct Sample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  std::uint64_t counter_value = 0;  ///< kCounter
  std::int64_t gauge_value = 0;     ///< kGauge
  HistogramData histogram;          ///< kHistogram
};

/// Point-in-time view of the whole registry, ordered by (name, labels).
struct Snapshot {
  std::vector<Sample> samples;

  /// Sample with this exact name and label set, or nullptr.
  [[nodiscard]] const Sample* find(std::string_view name,
                                   const Labels& labels = {}) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrument reports to.
  [[nodiscard]] static Registry& global();

  /// Finds or creates the instrument; throws std::invalid_argument when the
  /// name is already registered with a different metric type.
  [[nodiscard]] Counter& counter(std::string_view name, Labels labels = {})
      RDS_EXCLUDES(mu_);
  [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels = {})
      RDS_EXCLUDES(mu_);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name,
                                            Labels labels = {})
      RDS_EXCLUDES(mu_);

  [[nodiscard]] Snapshot snapshot() const RDS_EXCLUDES(mu_);

  /// Zeroes every registered instrument (tests, bench warm-up).  Metrics
  /// stay registered; references stay valid.
  void reset() RDS_EXCLUDES(mu_);

 private:
  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::map<std::string, Instrument> children;  ///< key: serialized labels
  };

  [[nodiscard]] Instrument& instrument(std::string_view name, Labels labels,
                                       MetricType type) RDS_EXCLUDES(mu_);

  mutable rds::Mutex mu_;
  std::map<std::string, Family, std::less<>> families_ RDS_GUARDED_BY(mu_);
};

/// JSON document for a snapshot (schema in docs/metrics.md).
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Human-readable one-metric-per-line dump (histograms expand to
/// count/sum/min/mean/p50/p90/p99/max lines).
[[nodiscard]] std::string to_text(const Snapshot& snapshot);

/// Writes to_json(snapshot) to `path`; throws std::runtime_error on I/O
/// failure.
void write_json_file(const Snapshot& snapshot, const std::string& path);

}  // namespace rds::metrics
