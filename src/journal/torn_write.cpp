#include "src/journal/torn_write.hpp"

namespace rds::journal {

TornWriteStream::TornWriteStream(std::ostream& inner, Options options)
    : std::ostream(nullptr), buf_(inner, options) {
  rdbuf(&buf_);
}

TornWriteStream::TearBuf::int_type TornWriteStream::TearBuf::overflow(
    int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  put_byte(static_cast<std::uint8_t>(traits_type::to_char_type(ch)));
  return ch;
}

std::streamsize TornWriteStream::TearBuf::xsputn(const char* s,
                                                 std::streamsize n) {
  for (std::streamsize i = 0; i < n; ++i) {
    put_byte(static_cast<std::uint8_t>(s[i]));
  }
  return n;  // the writer believes every byte landed -- that is the fault
}

void TornWriteStream::TearBuf::put_byte(std::uint8_t b) {
  const std::uint64_t at = offset_++;
  if (options_.mode == Mode::kTruncate) {
    if (at >= options_.fail_offset) return;  // lost in the crash
  } else if (at == options_.fail_offset) {
    b ^= static_cast<std::uint8_t>(1u << (options_.bit % 8));
  }
  inner_->put(static_cast<char>(b));
}

}  // namespace rds::journal
