#include "src/journal/journal.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/metrics/scoped_timer.hpp"
#include "src/util/crc32.hpp"

namespace rds::journal {
namespace {

std::array<std::uint8_t, 4> le32(std::uint32_t v) {
  std::array<std::uint8_t, 4> b{};
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return b;
}

std::array<std::uint8_t, 8> le64(std::uint64_t v) {
  std::array<std::uint8_t, 8> b{};
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return b;
}

void write_raw(std::ostream& out, std::span<const std::uint8_t> bytes) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::uint32_t from_le32(std::span<const std::uint8_t, 4> b) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t from_le64(std::span<const std::uint8_t, 8> b) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

/// Reads exactly `out.size()` bytes; returns how many actually arrived.
std::size_t read_raw(std::istream& in, std::span<std::uint8_t> out) {
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<std::size_t>(in.gcount());
}

}  // namespace

// ---- JournalWriter ---------------------------------------------------------

JournalWriter::JournalWriter(std::ostream& out, Options options)
    : out_(&out),
      next_lsn_(options.start_lsn == 0 ? 1 : options.start_lsn),
      sync_hook_(std::move(options.sync_hook)) {
  init_metrics();
  const MutexLock lock(mu_);
  if (options.write_header) write_header_locked();
}

void JournalWriter::init_metrics() {
  metrics::Registry& reg = metrics::Registry::global();
  records_total_ = &reg.counter("rds_journal_records_total");
  bytes_total_ = &reg.counter("rds_journal_bytes_total");
  append_failures_total_ = &reg.counter("rds_journal_append_failures_total");
  append_latency_ns_ = &reg.histogram("rds_journal_append_latency_ns");
}

void JournalWriter::write_header_locked() {
  out_->write(kJournalMagic, 8);
  const auto lsn_bytes = le64(next_lsn_);
  write_raw(*out_, lsn_bytes);
  write_raw(*out_, le32(crc32(lsn_bytes)));
  out_->flush();
  if (!*out_) {
    healthy_ = false;
    throw std::runtime_error("JournalWriter: header write failed");
  }
}

Result<Lsn> JournalWriter::append(const Record& record) {
  metrics::ScopedTimer span(*append_latency_ns_);
  const MutexLock lock(mu_);
  if (!healthy_) {
    span.cancel();
    append_failures_total_->inc();
    return Error{ErrorCode::kIoError,
                 "JournalWriter: journal stream failed earlier; appends "
                 "are disabled until rotate()"};
  }
  Record framed = record;
  framed.lsn = next_lsn_;
  const Bytes payload = encode_record(framed);
  write_raw(*out_, le32(static_cast<std::uint32_t>(payload.size())));
  write_raw(*out_, le32(crc32(payload)));
  write_raw(*out_, payload);
  out_->flush();
  if (!*out_) {
    healthy_ = false;
    span.cancel();
    append_failures_total_->inc();
    return Error{ErrorCode::kIoError,
                 "JournalWriter: stream write failed at lsn " +
                     std::to_string(next_lsn_)};
  }
  if (sync_hook_) sync_hook_();
  records_total_->inc();
  bytes_total_->inc(8 + payload.size());
  return next_lsn_++;
}

Lsn JournalWriter::last_lsn() const {
  const MutexLock lock(mu_);
  return next_lsn_ - 1;
}

bool JournalWriter::healthy() const {
  const MutexLock lock(mu_);
  return healthy_;
}

void JournalWriter::rotate(std::ostream& fresh) {
  const MutexLock lock(mu_);
  out_ = &fresh;
  healthy_ = true;
  write_header_locked();
}

// ---- JournalReader ---------------------------------------------------------

Result<std::optional<Record>> JournalReader::fail(std::string message) {
  failed_ = Error{ErrorCode::kCorruption, std::move(message)};
  return *failed_;
}

Result<std::optional<Record>> JournalReader::next() {
  if (failed_) return *failed_;  // frame boundaries are untrustworthy now
  if (done_) return std::optional<Record>{};

  if (!header_read_) {
    std::array<std::uint8_t, 8> magic{};
    if (read_raw(*in_, magic) != magic.size() ||
        !std::equal(magic.begin(), magic.end(), kJournalMagic)) {
      return fail("journal header: bad magic/version");
    }
    std::array<std::uint8_t, 8> lsn_bytes{};
    std::array<std::uint8_t, 4> crc_bytes{};
    if (read_raw(*in_, lsn_bytes) != lsn_bytes.size() ||
        read_raw(*in_, crc_bytes) != crc_bytes.size()) {
      return fail("journal header: truncated");
    }
    if (from_le32(crc_bytes) != crc32(lsn_bytes)) {
      return fail("journal header: start-LSN checksum mismatch");
    }
    start_lsn_ = from_le64(lsn_bytes);
    expect_ = start_lsn_;
    header_read_ = true;
  }

  const std::string frame = "record lsn=" + std::to_string(expect_);
  std::array<std::uint8_t, 4> len_bytes{};
  const std::size_t got = read_raw(*in_, len_bytes);
  if (got == 0 && in_->eof()) {
    done_ = true;  // clean end: the previous frame was the last one
    return std::optional<Record>{};
  }
  if (got != len_bytes.size()) return fail(frame + ": torn length prefix");
  const std::uint32_t length = from_le32(len_bytes);
  if (length > kMaxRecordBytes) {
    return fail(frame + ": implausible length " + std::to_string(length));
  }
  std::array<std::uint8_t, 4> crc_bytes{};
  if (read_raw(*in_, crc_bytes) != crc_bytes.size()) {
    return fail(frame + ": torn checksum");
  }
  Bytes payload(length);
  if (read_raw(*in_, payload) != payload.size()) {
    return fail(frame + ": torn payload");
  }
  if (crc32(payload) != from_le32(crc_bytes)) {
    return fail(frame + ": payload checksum mismatch");
  }
  Result<Record> record = decode_record(payload);
  if (!record.ok()) {
    return fail(frame + ": " + record.error().message);
  }
  if (record.value().lsn != expect_) {
    return fail(frame + ": LSN discontinuity (frame carries lsn=" +
                std::to_string(record.value().lsn) + ")");
  }
  ++expect_;
  return std::optional<Record>{std::move(record).take()};
}

}  // namespace rds::journal
