// Typed records of the write-ahead journal (docs/persistence.md).
//
// One Record describes one *committed* mutation of a VirtualDisk /
// StoragePool / FileStore: topology administration (add / remove / resize /
// fail / rebuild), per-volume policy changes (strategy swap, scheme swap,
// volume create/drop) and file-store content mutations (put / remove, with
// a content fingerprint so replay can verify the payload it re-applies).
// Records are flat values; encode_record / decode_record define the
// canonical little-endian payload that JournalWriter frames with a length
// prefix and CRC-32 (src/journal/journal.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/cluster/device.hpp"
#include "src/core/result.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/storage/redundancy_scheme.hpp"

namespace rds::journal {

/// Log sequence number: strictly monotonic, assigned by the JournalWriter
/// at append time.  0 means "not yet appended" (and is the watermark of a
/// checkpoint taken before any record was durable).
using Lsn = std::uint64_t;

enum class RecordType : std::uint8_t {
  kAddDevice = 1,     ///< device joined (uid, capacity, name)
  kRemoveDevice = 2,  ///< healthy device drained and removed (uid)
  kResizeDevice = 3,  ///< device capacity changed (uid, new capacity)
  kFailDevice = 4,    ///< device crashed; degraded flag set (uid)
  kRebuild = 5,       ///< failed devices dropped, redundancy restored
  kSetStrategy = 6,   ///< placement strategy swapped (volume, kind name)
  kSetScheme = 7,     ///< redundancy scheme swapped (volume, scheme name)
  kCreateVolume = 8,  ///< pool volume created (volume, scheme, kind)
  kDropVolume = 9,    ///< pool volume dropped (volume)
  kFilePut = 10,      ///< file created/replaced (name, fingerprint, content)
  kFileRemove = 11,   ///< file deleted (name)
};

[[nodiscard]] std::string_view to_string(RecordType type) noexcept;

/// One journal record.  Which fields are meaningful depends on `type`
/// (unused ones stay default-initialized); encode_record serializes exactly
/// the meaningful set, so decode_record can insist the payload is fully
/// consumed.
struct Record {
  RecordType type = RecordType::kRebuild;
  Lsn lsn = 0;  ///< filled in by the writer at append time

  DeviceId device = 0;             ///< device ops
  std::uint64_t capacity = 0;      ///< kAddDevice / kResizeDevice
  std::string device_name;         ///< kAddDevice
  std::string volume;              ///< policy ops; "" = the standalone disk
  std::string detail;              ///< strategy kind or scheme name
  std::string file;                ///< file ops
  std::uint64_t content_hash = 0;  ///< hash_bytes fingerprint of `content`
  Bytes content;                   ///< kFilePut payload

  friend bool operator==(const Record&, const Record&) = default;
};

// Factories, one per record type.  The LSN is assigned by the writer.
[[nodiscard]] Record make_add_device(const Device& device);
[[nodiscard]] Record make_remove_device(DeviceId uid);
[[nodiscard]] Record make_resize_device(DeviceId uid,
                                        std::uint64_t new_capacity);
[[nodiscard]] Record make_fail_device(DeviceId uid);
[[nodiscard]] Record make_rebuild();
[[nodiscard]] Record make_set_strategy(std::string volume, PlacementKind kind);
[[nodiscard]] Record make_set_scheme(std::string volume,
                                     std::string scheme_name);
[[nodiscard]] Record make_create_volume(std::string volume,
                                        std::string scheme_name,
                                        PlacementKind kind);
[[nodiscard]] Record make_drop_volume(std::string volume);
[[nodiscard]] Record make_file_put(std::string file,
                                   std::span<const std::uint8_t> content);
[[nodiscard]] Record make_file_remove(std::string file);

/// Serializes a record (lsn, type, then the type-specific fields) into the
/// journal's little-endian payload form.
[[nodiscard]] Bytes encode_record(const Record& record);

/// Parses a payload produced by encode_record.  kCorruption when the
/// payload is truncated, carries an unknown type tag, or has trailing
/// bytes -- the message says which.
[[nodiscard]] Result<Record> decode_record(
    std::span<const std::uint8_t> payload);

}  // namespace rds::journal
