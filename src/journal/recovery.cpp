#include "src/journal/recovery.hpp"

#include <array>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "src/metrics/registry.hpp"
#include "src/metrics/scoped_timer.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/util/crc32.hpp"
#include "src/util/hash.hpp"

namespace rds::journal {
namespace {

void put_le64(std::ostream& out, std::uint64_t v,
              std::array<std::uint8_t, 8>& bytes) {
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes.data()), 8);
}

void write_checkpoint_header(std::ostream& out, Lsn watermark) {
  out.write(kCheckpointMagic, 8);
  std::array<std::uint8_t, 8> bytes{};
  put_le64(out, watermark, bytes);
  const std::uint32_t crc = crc32(bytes);
  std::array<std::uint8_t, 4> crc_bytes{};
  for (int i = 0; i < 4; ++i) {
    crc_bytes[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(crc_bytes.data()), 4);
  if (!out) throw std::runtime_error("checkpoint: header write failed");
}

/// Runs a throwing mutation, mapping its exception taxonomy onto Result.
template <typename Fn>
Result<void> guarded(Fn&& fn) {
  try {
    fn();
    return {};
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  } catch (const std::out_of_range& e) {
    return Error{ErrorCode::kNotFound, e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kIoError, e.what()};
  }
}

Result<PlacementKind> parse_kind(const std::string& name) {
  const std::optional<PlacementKind> kind = parse_placement_kind(name);
  if (!kind) {
    return Error{ErrorCode::kCorruption,
                 "unknown placement kind '" + name + "'"};
  }
  return *kind;
}

// ---- per-target record application ----------------------------------------

Result<void> apply(VirtualDisk& disk, const Record& rec) {
  switch (rec.type) {
    case RecordType::kAddDevice:
      return disk.try_add_device(
          Device{rec.device, rec.capacity, rec.device_name});
    case RecordType::kRemoveDevice:
      return disk.try_remove_device(rec.device);
    case RecordType::kResizeDevice:
      return disk.try_resize_device(rec.device, rec.capacity);
    case RecordType::kFailDevice:
      return guarded([&] { disk.fail_device(rec.device); });
    case RecordType::kRebuild:
      return guarded([&] { disk.rebuild(); });
    case RecordType::kSetStrategy: {
      if (!rec.volume.empty()) {
        return Error{ErrorCode::kInvalidArgument,
                     "volume-scoped record replayed against a standalone "
                     "disk"};
      }
      Result<PlacementKind> kind = parse_kind(rec.detail);
      if (!kind.ok()) return kind.error();
      return disk.try_set_strategy(kind.value());
    }
    case RecordType::kSetScheme: {
      if (!rec.volume.empty()) {
        return Error{ErrorCode::kInvalidArgument,
                     "volume-scoped record replayed against a standalone "
                     "disk"};
      }
      std::shared_ptr<RedundancyScheme> scheme;
      try {
        scheme = make_scheme_from_name(rec.detail);
      } catch (const std::invalid_argument& e) {
        return Error{ErrorCode::kCorruption, e.what()};
      }
      return disk.try_set_scheme(std::move(scheme));
    }
    case RecordType::kCreateVolume:
    case RecordType::kDropVolume:
      return Error{ErrorCode::kInvalidArgument,
                   "pool record replayed against a standalone disk"};
    case RecordType::kFilePut:
    case RecordType::kFileRemove:
      return Error{ErrorCode::kInvalidArgument,
                   "file-store record replayed against a bare disk"};
  }
  return Error{ErrorCode::kCorruption, "unknown record type"};
}

Result<void> apply(StoragePool& pool, const Record& rec) {
  switch (rec.type) {
    case RecordType::kAddDevice:
      return guarded([&] {
        pool.add_device(Device{rec.device, rec.capacity, rec.device_name});
      });
    case RecordType::kRemoveDevice:
      return guarded([&] { pool.remove_device(rec.device); });
    case RecordType::kResizeDevice:
      return guarded([&] { pool.resize_device(rec.device, rec.capacity); });
    case RecordType::kFailDevice:
      return guarded([&] { pool.fail_device(rec.device); });
    case RecordType::kRebuild:
      return guarded([&] { pool.rebuild(); });
    case RecordType::kSetStrategy: {
      if (rec.volume.empty()) {
        return Error{ErrorCode::kInvalidArgument,
                     "disk-scoped record replayed against a pool"};
      }
      Result<PlacementKind> kind = parse_kind(rec.detail);
      if (!kind.ok()) return kind.error();
      return guarded(
          [&] { pool.set_volume_strategy(rec.volume, kind.value()); });
    }
    case RecordType::kSetScheme: {
      if (rec.volume.empty()) {
        return Error{ErrorCode::kInvalidArgument,
                     "disk-scoped record replayed against a pool"};
      }
      std::shared_ptr<RedundancyScheme> scheme;
      try {
        scheme = make_scheme_from_name(rec.detail);
      } catch (const std::invalid_argument& e) {
        return Error{ErrorCode::kCorruption, e.what()};
      }
      return guarded(
          [&] { pool.set_volume_scheme(rec.volume, std::move(scheme)); });
    }
    case RecordType::kCreateVolume: {
      Result<PlacementKind> kind = parse_kind(rec.device_name);
      if (!kind.ok()) return kind.error();
      std::shared_ptr<RedundancyScheme> scheme;
      try {
        scheme = make_scheme_from_name(rec.detail);
      } catch (const std::invalid_argument& e) {
        return Error{ErrorCode::kCorruption, e.what()};
      }
      return guarded([&] {
        pool.create_volume(rec.volume, std::move(scheme), kind.value());
      });
    }
    case RecordType::kDropVolume:
      return guarded([&] { pool.drop_volume(rec.volume); });
    case RecordType::kFilePut:
    case RecordType::kFileRemove:
      return Error{ErrorCode::kInvalidArgument,
                   "file-store record replayed against a pool"};
  }
  return Error{ErrorCode::kCorruption, "unknown record type"};
}

Result<void> apply(FileStore& store, const Record& rec) {
  switch (rec.type) {
    case RecordType::kFilePut:
      if (hash_bytes(rec.content) != rec.content_hash) {
        return Error{ErrorCode::kCorruption,
                     "content fingerprint mismatch for '" + rec.file + "'"};
      }
      return guarded([&] { store.put(rec.file, rec.content); });
    case RecordType::kFileRemove:
      return guarded([&] { store.remove(rec.file); });
    default:
      // Topology records target the store's underlying disk.
      return apply(store.disk(), rec);
  }
}

bool target_reshaping(VirtualDisk& disk) { return disk.reshaping(); }

bool target_reshaping(StoragePool& pool) {
  for (const std::string& name : pool.volume_names()) {
    if (pool.volume(name).reshaping()) return true;
  }
  return false;
}

bool target_reshaping(FileStore& store) { return store.disk().reshaping(); }

// ---- the replay loop -------------------------------------------------------

template <typename Target>
Result<ReplayReport> replay_impl(Target& target, Lsn watermark,
                                 std::istream& journal_in,
                                 const RecoveryOptions& options) {
  if (target_reshaping(target)) {
    return Error{ErrorCode::kReshapeInProgress,
                 "journal replay: drain the target's reshape before "
                 "replaying"};
  }
  metrics::Registry& reg = metrics::Registry::global();
  metrics::Counter& replayed = reg.counter("rds_journal_replayed_records_total");
  metrics::Counter& corrupt = reg.counter("rds_journal_replay_corrupt_total");
  metrics::ScopedTimer span(reg.histogram("rds_journal_replay_latency_ns"));

  JournalReader reader(journal_in);
  ReplayReport report;
  report.watermark = watermark;
  report.last_applied = watermark;
  for (;;) {
    Result<std::optional<Record>> next = reader.next();
    if (!next.ok()) {
      corrupt.inc();
      if (options.strict) return next.error();
      report.tail_corrupt = true;
      report.tail_error = next.error().message;
      break;
    }
    std::optional<Record> frame = std::move(next).take();
    if (!frame) break;  // clean end of journal
    const Record& rec = *frame;
    if (rec.lsn <= watermark) {
      ++report.records_skipped;
      continue;
    }
    Result<void> applied = apply(target, rec);
    if (!applied.ok()) {
      return Error{applied.code(),
                   "journal replay: record lsn=" + std::to_string(rec.lsn) +
                       " (" + std::string(to_string(rec.type)) +
                       "): " + applied.error().message};
    }
    ++report.records_applied;
    report.last_applied = rec.lsn;
    replayed.inc();
  }
  return report;
}

template <typename Loader>
auto recover_impl(std::istream& checkpoint_in, std::istream* journal_in,
                  const RecoveryOptions& options, Loader&& load)
    -> Result<std::pair<decltype(load(checkpoint_in)), ReplayReport>> {
  using Target = decltype(load(checkpoint_in));
  Result<Lsn> watermark = read_checkpoint_header(checkpoint_in);
  if (!watermark.ok()) return watermark.error();
  std::optional<Target> target;
  try {
    target.emplace(load(checkpoint_in));
  } catch (const std::exception& e) {
    return Error{ErrorCode::kCorruption,
                 std::string("checkpoint: ") + e.what()};
  }
  ReplayReport report;
  report.watermark = watermark.value();
  report.last_applied = watermark.value();
  if (journal_in) {
    Result<ReplayReport> replayed =
        replay_impl(*target, watermark.value(), *journal_in, options);
    if (!replayed.ok()) return replayed.error();
    report = std::move(replayed).take();
  }
  metrics::Registry::global().counter("rds_journal_recoveries_total").inc();
  return std::pair<Target, ReplayReport>{std::move(*target),
                                         std::move(report)};
}

void bump_checkpoint_metric() {
  metrics::Registry::global().counter("rds_journal_checkpoints_total").inc();
}

}  // namespace

void write_checkpoint(const VirtualDisk& disk, Lsn watermark,
                      std::ostream& out) {
  write_checkpoint_header(out, watermark);
  Snapshot::save_disk(disk, out);
  bump_checkpoint_metric();
}

void write_checkpoint(const StoragePool& pool, Lsn watermark,
                      std::ostream& out) {
  write_checkpoint_header(out, watermark);
  Snapshot::save_pool(pool, out);
  bump_checkpoint_metric();
}

void write_checkpoint(const FileStore& store, Lsn watermark,
                      std::ostream& out) {
  write_checkpoint_header(out, watermark);
  Snapshot::save_file_store(store, out);
  bump_checkpoint_metric();
}

Lsn checkpoint(const VirtualDisk& disk, JournalWriter& writer,
               std::ostream& snapshot_out, std::ostream& fresh_journal) {
  const Lsn watermark = writer.last_lsn();
  write_checkpoint(disk, watermark, snapshot_out);
  writer.rotate(fresh_journal);
  return watermark;
}

Lsn checkpoint(const StoragePool& pool, JournalWriter& writer,
               std::ostream& snapshot_out, std::ostream& fresh_journal) {
  const Lsn watermark = writer.last_lsn();
  write_checkpoint(pool, watermark, snapshot_out);
  writer.rotate(fresh_journal);
  return watermark;
}

Lsn checkpoint(const FileStore& store, JournalWriter& writer,
               std::ostream& snapshot_out, std::ostream& fresh_journal) {
  const Lsn watermark = writer.last_lsn();
  write_checkpoint(store, watermark, snapshot_out);
  writer.rotate(fresh_journal);
  return watermark;
}

Result<Lsn> read_checkpoint_header(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), 8);
  if (in.gcount() != 8 ||
      std::string_view(magic.data(), 8) != std::string_view(kCheckpointMagic, 8)) {
    return Error{ErrorCode::kCorruption, "checkpoint header: bad magic/version"};
  }
  std::array<std::uint8_t, 8> lsn_bytes{};
  std::array<std::uint8_t, 4> crc_bytes{};
  in.read(reinterpret_cast<char*>(lsn_bytes.data()), 8);
  if (in.gcount() != 8) {
    return Error{ErrorCode::kCorruption, "checkpoint header: truncated"};
  }
  in.read(reinterpret_cast<char*>(crc_bytes.data()), 4);
  if (in.gcount() != 4) {
    return Error{ErrorCode::kCorruption, "checkpoint header: truncated"};
  }
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(crc_bytes[i]) << (8 * i);
  }
  if (crc != crc32(lsn_bytes)) {
    return Error{ErrorCode::kCorruption,
                 "checkpoint header: watermark checksum mismatch"};
  }
  Lsn watermark = 0;
  for (int i = 0; i < 8; ++i) {
    watermark |= static_cast<Lsn>(lsn_bytes[i]) << (8 * i);
  }
  return watermark;
}

Result<DiskRecovery> Recovery::recover_disk(std::istream& checkpoint_in,
                                            std::istream* journal_in,
                                            const RecoveryOptions& options) {
  auto recovered = recover_impl(
      checkpoint_in, journal_in, options,
      [](std::istream& in) { return Snapshot::load_disk(in); });
  if (!recovered.ok()) return recovered.error();
  auto [disk, report] = std::move(recovered).take();
  return DiskRecovery{std::move(disk), std::move(report)};
}

Result<PoolRecovery> Recovery::recover_pool(std::istream& checkpoint_in,
                                            std::istream* journal_in,
                                            const RecoveryOptions& options) {
  auto recovered = recover_impl(
      checkpoint_in, journal_in, options,
      [](std::istream& in) { return Snapshot::load_pool(in); });
  if (!recovered.ok()) return recovered.error();
  auto [pool, report] = std::move(recovered).take();
  return PoolRecovery{std::move(pool), std::move(report)};
}

Result<FileStoreRecovery> Recovery::recover_file_store(
    std::istream& checkpoint_in, std::istream* journal_in,
    const RecoveryOptions& options) {
  auto recovered = recover_impl(
      checkpoint_in, journal_in, options,
      [](std::istream& in) { return Snapshot::load_file_store(in); });
  if (!recovered.ok()) return recovered.error();
  auto [store, report] = std::move(recovered).take();
  return FileStoreRecovery{std::move(store), std::move(report)};
}

Result<ReplayReport> Recovery::replay(VirtualDisk& disk, Lsn watermark,
                                      std::istream& journal_in,
                                      const RecoveryOptions& options) {
  return replay_impl(disk, watermark, journal_in, options);
}

Result<ReplayReport> Recovery::replay(StoragePool& pool, Lsn watermark,
                                      std::istream& journal_in,
                                      const RecoveryOptions& options) {
  return replay_impl(pool, watermark, journal_in, options);
}

Result<ReplayReport> Recovery::replay(FileStore& store, Lsn watermark,
                                      std::istream& journal_in,
                                      const RecoveryOptions& options) {
  return replay_impl(store, watermark, journal_in, options);
}

}  // namespace rds::journal
