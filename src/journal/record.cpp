#include "src/journal/record.hpp"

#include <utility>

#include "src/util/hash.hpp"

namespace rds::journal {
namespace {

// ---- little-endian payload primitives -------------------------------------

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_string(Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(Bytes& out, const Bytes& b) {
  put_u64(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

/// Bounds-checked reader over a record payload.  Underflow latches
/// `failed()` instead of throwing so decode_record can return a typed
/// Result.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (pos_ >= data_.size()) {
      failed_ = true;
      return 0;
    }
    return data_[pos_++];
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  std::string string() {
    const std::uint32_t size = u32();
    if (failed_ || data_.size() - pos_ < size) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
    pos_ += size;
    return s;
  }

  Bytes bytes() {
    const std::uint64_t size = u64();
    if (failed_ || data_.size() - pos_ < size) {
      failed_ = true;
      return {};
    }
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
    pos_ += static_cast<std::size_t>(size);
    return b;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

std::string_view to_string(RecordType type) noexcept {
  switch (type) {
    case RecordType::kAddDevice: return "add-device";
    case RecordType::kRemoveDevice: return "remove-device";
    case RecordType::kResizeDevice: return "resize-device";
    case RecordType::kFailDevice: return "fail-device";
    case RecordType::kRebuild: return "rebuild";
    case RecordType::kSetStrategy: return "set-strategy";
    case RecordType::kSetScheme: return "set-scheme";
    case RecordType::kCreateVolume: return "create-volume";
    case RecordType::kDropVolume: return "drop-volume";
    case RecordType::kFilePut: return "file-put";
    case RecordType::kFileRemove: return "file-remove";
  }
  return "?";
}

Record make_add_device(const Device& device) {
  Record r;
  r.type = RecordType::kAddDevice;
  r.device = device.uid;
  r.capacity = device.capacity;
  r.device_name = device.name;
  return r;
}

Record make_remove_device(DeviceId uid) {
  Record r;
  r.type = RecordType::kRemoveDevice;
  r.device = uid;
  return r;
}

Record make_resize_device(DeviceId uid, std::uint64_t new_capacity) {
  Record r;
  r.type = RecordType::kResizeDevice;
  r.device = uid;
  r.capacity = new_capacity;
  return r;
}

Record make_fail_device(DeviceId uid) {
  Record r;
  r.type = RecordType::kFailDevice;
  r.device = uid;
  return r;
}

Record make_rebuild() {
  Record r;
  r.type = RecordType::kRebuild;
  return r;
}

Record make_set_strategy(std::string volume, PlacementKind kind) {
  Record r;
  r.type = RecordType::kSetStrategy;
  r.volume = std::move(volume);
  r.detail = std::string(rds::to_string(kind));
  return r;
}

Record make_set_scheme(std::string volume, std::string scheme_name) {
  Record r;
  r.type = RecordType::kSetScheme;
  r.volume = std::move(volume);
  r.detail = std::move(scheme_name);
  return r;
}

Record make_create_volume(std::string volume, std::string scheme_name,
                          PlacementKind kind) {
  Record r;
  r.type = RecordType::kCreateVolume;
  r.volume = std::move(volume);
  r.detail = std::move(scheme_name);
  r.device_name = std::string(rds::to_string(kind));
  return r;
}

Record make_drop_volume(std::string volume) {
  Record r;
  r.type = RecordType::kDropVolume;
  r.volume = std::move(volume);
  return r;
}

Record make_file_put(std::string file, std::span<const std::uint8_t> content) {
  Record r;
  r.type = RecordType::kFilePut;
  r.file = std::move(file);
  r.content.assign(content.begin(), content.end());
  r.content_hash = hash_bytes(content);
  return r;
}

Record make_file_remove(std::string file) {
  Record r;
  r.type = RecordType::kFileRemove;
  r.file = std::move(file);
  return r;
}

Bytes encode_record(const Record& record) {
  Bytes out;
  put_u64(out, record.lsn);
  put_u8(out, static_cast<std::uint8_t>(record.type));
  switch (record.type) {
    case RecordType::kAddDevice:
      put_u64(out, record.device);
      put_u64(out, record.capacity);
      put_string(out, record.device_name);
      break;
    case RecordType::kRemoveDevice:
    case RecordType::kFailDevice:
      put_u64(out, record.device);
      break;
    case RecordType::kResizeDevice:
      put_u64(out, record.device);
      put_u64(out, record.capacity);
      break;
    case RecordType::kRebuild:
      break;
    case RecordType::kSetStrategy:
    case RecordType::kSetScheme:
      put_string(out, record.volume);
      put_string(out, record.detail);
      break;
    case RecordType::kCreateVolume:
      put_string(out, record.volume);
      put_string(out, record.detail);
      put_string(out, record.device_name);  // placement kind name
      break;
    case RecordType::kDropVolume:
      put_string(out, record.volume);
      break;
    case RecordType::kFilePut:
      put_string(out, record.file);
      put_u64(out, record.content_hash);
      put_bytes(out, record.content);
      break;
    case RecordType::kFileRemove:
      put_string(out, record.file);
      break;
  }
  return out;
}

Result<Record> decode_record(std::span<const std::uint8_t> payload) {
  Cursor in(payload);
  Record r;
  r.lsn = in.u64();
  const std::uint8_t tag = in.u8();
  if (in.failed()) {
    return Error{ErrorCode::kCorruption, "record payload truncated"};
  }
  if (tag < static_cast<std::uint8_t>(RecordType::kAddDevice) ||
      tag > static_cast<std::uint8_t>(RecordType::kFileRemove)) {
    return Error{ErrorCode::kCorruption,
                 "unknown record type tag " + std::to_string(tag)};
  }
  r.type = static_cast<RecordType>(tag);
  switch (r.type) {
    case RecordType::kAddDevice:
      r.device = in.u64();
      r.capacity = in.u64();
      r.device_name = in.string();
      break;
    case RecordType::kRemoveDevice:
    case RecordType::kFailDevice:
      r.device = in.u64();
      break;
    case RecordType::kResizeDevice:
      r.device = in.u64();
      r.capacity = in.u64();
      break;
    case RecordType::kRebuild:
      break;
    case RecordType::kSetStrategy:
    case RecordType::kSetScheme:
      r.volume = in.string();
      r.detail = in.string();
      break;
    case RecordType::kCreateVolume:
      r.volume = in.string();
      r.detail = in.string();
      r.device_name = in.string();
      break;
    case RecordType::kDropVolume:
      r.volume = in.string();
      break;
    case RecordType::kFilePut:
      r.file = in.string();
      r.content_hash = in.u64();
      r.content = in.bytes();
      break;
    case RecordType::kFileRemove:
      r.file = in.string();
      break;
  }
  if (in.failed()) {
    return Error{ErrorCode::kCorruption,
                 "record payload truncated (" + std::string(to_string(r.type)) +
                     ")"};
  }
  if (!in.exhausted()) {
    return Error{ErrorCode::kCorruption,
                 "record payload has trailing bytes (" +
                     std::string(to_string(r.type)) + ")"};
  }
  return r;
}

}  // namespace rds::journal
