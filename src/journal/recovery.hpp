// Crash recovery: checkpoint (snapshot + journal truncation) and journal
// replay over a base snapshot (docs/persistence.md).
//
// A checkpoint stream is a small header -- magic "RDSCKPT1", the LSN
// watermark (highest LSN whose effects the snapshot contains), a CRC over
// the watermark -- followed by a regular Snapshot section.  Recovery loads
// the snapshot, then replays every journal record with lsn > watermark;
// records at or below it are skipped (their effects are already in the
// snapshot).
//
// Contract for torn journals: replay applies the valid prefix, stops at
// the first corrupt frame, and *reports* it (ReplayReport::tail_corrupt /
// tail_error) instead of failing -- a crash mid-append legitimately leaves
// a torn last frame.  RecoveryOptions::strict turns that report into a
// typed error for callers that require a fully intact journal.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/core/result.hpp"
#include "src/journal/journal.hpp"
#include "src/journal/record.hpp"
#include "src/storage/file_store.hpp"
#include "src/storage/snapshot.hpp"
#include "src/storage/storage_pool.hpp"
#include "src/storage/virtual_disk.hpp"

namespace rds::journal {

/// Magic + version of a checkpoint stream.
inline constexpr char kCheckpointMagic[] = "RDSCKPT1";

/// What a replay did.  `watermark` is the checkpoint's LSN; `last_applied`
/// is the highest LSN whose record was applied (== watermark when the
/// journal held nothing newer).
struct ReplayReport {
  Lsn watermark = 0;
  Lsn last_applied = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;  ///< at or below the watermark
  bool tail_corrupt = false;          ///< journal ended in a torn/corrupt frame
  std::string tail_error;             ///< which frame, and how it was damaged
};

struct RecoveryOptions {
  /// Treat a corrupt journal tail as an error instead of reporting it.
  bool strict = false;
};

/// Writes a checkpoint: header (magic, watermark, CRC) + snapshot.
/// `watermark` is the highest LSN whose effects the target already
/// contains -- normally JournalWriter::last_lsn() at a quiesced moment.
/// Throws std::runtime_error on stream failure or an in-flight reshape.
void write_checkpoint(const VirtualDisk& disk, Lsn watermark,
                      std::ostream& out);
void write_checkpoint(const StoragePool& pool, Lsn watermark,
                      std::ostream& out);
void write_checkpoint(const FileStore& store, Lsn watermark,
                      std::ostream& out);

/// Full compaction step: checkpoint the target at the journal's current
/// last_lsn(), then rotate the journal onto `fresh_journal` (truncation --
/// the old stream is dead).  The caller must quiesce mutators around this
/// call; records appended between last_lsn() and the snapshot would be
/// replayed twice.  Returns the watermark written.
Lsn checkpoint(const VirtualDisk& disk, JournalWriter& writer,
               std::ostream& snapshot_out, std::ostream& fresh_journal);
Lsn checkpoint(const StoragePool& pool, JournalWriter& writer,
               std::ostream& snapshot_out, std::ostream& fresh_journal);
Lsn checkpoint(const FileStore& store, JournalWriter& writer,
               std::ostream& snapshot_out, std::ostream& fresh_journal);

/// Reads and validates a checkpoint header, returning its watermark.
/// kCorruption on a bad magic, truncation, or CRC mismatch.
[[nodiscard]] Result<Lsn> read_checkpoint_header(std::istream& in);

struct DiskRecovery {
  VirtualDisk disk;
  ReplayReport report;
};
struct PoolRecovery {
  StoragePool pool;
  ReplayReport report;
};
struct FileStoreRecovery {
  FileStore store;
  ReplayReport report;
};

/// Replays a journal over a freshly loaded checkpoint to reconstruct the
/// state at the last durable LSN.  All entry points are static; recovery
/// is single-threaded by construction (the target is not yet shared).
class Recovery {
 public:
  /// Loads a checkpoint written by write_checkpoint(disk, ...) and replays
  /// `journal_in` over it (pass nullptr to restore the bare snapshot).
  /// kCorruption when the checkpoint itself is damaged; apply errors carry
  /// the offending record's LSN and type.
  [[nodiscard]] static Result<DiskRecovery> recover_disk(
      std::istream& checkpoint_in, std::istream* journal_in,
      const RecoveryOptions& options = {});
  [[nodiscard]] static Result<PoolRecovery> recover_pool(
      std::istream& checkpoint_in, std::istream* journal_in,
      const RecoveryOptions& options = {});
  [[nodiscard]] static Result<FileStoreRecovery> recover_file_store(
      std::istream& checkpoint_in, std::istream* journal_in,
      const RecoveryOptions& options = {});

  /// Replays `journal_in` over an existing target, skipping records at or
  /// below `watermark`.  The target must not have a reshape in flight
  /// (kReshapeInProgress).  A record that cannot be applied (e.g. a
  /// file-store record replayed against a bare disk, or a content
  /// fingerprint mismatch) is a typed error naming the record; a corrupt
  /// journal tail is reported per RecoveryOptions.
  [[nodiscard]] static Result<ReplayReport> replay(
      VirtualDisk& disk, Lsn watermark, std::istream& journal_in,
      const RecoveryOptions& options = {});
  [[nodiscard]] static Result<ReplayReport> replay(
      StoragePool& pool, Lsn watermark, std::istream& journal_in,
      const RecoveryOptions& options = {});
  [[nodiscard]] static Result<ReplayReport> replay(
      FileStore& store, Lsn watermark, std::istream& journal_in,
      const RecoveryOptions& options = {});
};

}  // namespace rds::journal
