// Torn-write fault injector for the journal's recovery tests.
//
// A std::ostream that forwards bytes to an inner stream until a configured
// failure point, then tears the write: either every byte from the failure
// offset on is silently discarded (a crash mid-write -- the tail of the
// frame never reached the platter), or exactly one bit of one byte is
// flipped and writing continues (a sector going bad under the journal).
// The stream itself never reports an error -- that is the fault model: the
// writer believes the append committed, and only recovery discovers the
// damage.
#pragma once

#include <cstdint>
#include <ostream>
#include <streambuf>

namespace rds::journal {

class TornWriteStream final : public std::ostream {
 public:
  enum class Mode {
    kTruncate,  ///< bytes [0, fail_offset) land; the rest is lost
    kBitFlip,   ///< the byte at fail_offset lands with one bit flipped
  };

  struct Options {
    std::uint64_t fail_offset = 0;
    Mode mode = Mode::kTruncate;
    unsigned bit = 0;  ///< which bit (0-7) kBitFlip flips
  };

  TornWriteStream(std::ostream& inner, Options options);

  /// Bytes the writer offered (not how many survived the fault).
  [[nodiscard]] std::uint64_t bytes_offered() const noexcept {
    return buf_.offered();
  }

 private:
  class TearBuf final : public std::streambuf {
   public:
    TearBuf(std::ostream& inner, Options options)
        : inner_(&inner), options_(options) {}

    [[nodiscard]] std::uint64_t offered() const noexcept { return offset_; }

   protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;

   private:
    void put_byte(std::uint8_t b);

    std::ostream* inner_;
    Options options_;
    std::uint64_t offset_ = 0;
  };

  TearBuf buf_;
};

}  // namespace rds::journal
