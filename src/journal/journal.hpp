// Append-only write-ahead journal (docs/persistence.md).
//
// Layout of a journal stream:
//
//     +----------+-----------+------------------+
//     | magic 8B | start LSN | CRC-32(start LSN)|   file header
//     +----------+-----------+------------------+
//     | len u32 | CRC-32(payload) u32 | payload |   record frame, repeated
//     +---------+---------------------+---------+
//
// Everything is little-endian.  The payload is encode_record() output
// (src/journal/record.hpp); LSNs are strictly monotonic and contiguous, so
// a reader can detect dropped or replayed frames.  The journal is a COMMIT
// log: storage layers append a record *after* the in-memory mutation
// commits, under the same lock that serialized the mutation, so the journal
// order is exactly the commit order (the sink's own mutex is a leaf below
// the pool -> volume lock order).
//
// Durability is delegated to the caller: JournalWriter flushes the stream
// after every record and then invokes the optional sync hook -- the fsync
// point for file-backed streams.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "src/core/result.hpp"
#include "src/journal/record.hpp"
#include "src/metrics/registry.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace rds::journal {

/// Magic + version of the journal stream format.
inline constexpr char kJournalMagic[] = "RDSWAL01";

/// Upper bound on one record's payload (guards the reader against parsing
/// a corrupt length prefix into a multi-gigabyte allocation).
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 28;

/// Where committed mutations are appended.  Implemented by JournalWriter;
/// storage layers hold a shared_ptr so tests can substitute a failing or
/// recording sink.
class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// Appends one record, assigning the next LSN (returned).  kIoError when
  /// the underlying stream rejects the write; the journal is then dead and
  /// every later append fails too (a half-written frame must not be
  /// followed by more frames).
  [[nodiscard]] virtual Result<Lsn> append(const Record& record) = 0;
};

/// JournalWriter construction knobs.  Namespace-scoped (not nested) so the
/// constructor's `= {}` default argument can see the member initializers --
/// GCC refuses NSDMIs of a nested class used in the enclosing class's own
/// default arguments.
struct JournalWriterOptions {
  Lsn start_lsn = 1;  ///< LSN of the first record (0 is promoted to 1)
  bool write_header = true;
  /// Called after each record is flushed -- the fsync hook point for
  /// file-backed streams (and the crash trigger for fault injection).
  std::function<void()> sync_hook;
};

class JournalWriter final : public JournalSink {
 public:
  using Options = JournalWriterOptions;

  /// Writes the file header (unless options say otherwise).  Throws
  /// std::runtime_error if the stream rejects it.
  explicit JournalWriter(std::ostream& out, Options options = {});

  [[nodiscard]] Result<Lsn> append(const Record& record) override
      RDS_EXCLUDES(mu_);

  /// Highest LSN successfully appended; start_lsn - 1 when none was.
  [[nodiscard]] Lsn last_lsn() const RDS_EXCLUDES(mu_);

  /// False once a stream write failed; appends are refused from then on.
  [[nodiscard]] bool healthy() const RDS_EXCLUDES(mu_);

  /// Journal truncation half of a checkpoint: switches to `fresh` and
  /// writes a new header whose start LSN continues after last_lsn().  The
  /// old stream is no longer touched.  Throws std::runtime_error if the
  /// fresh stream rejects the header.  Quiesce appenders around the
  /// checkpoint (see journal::checkpoint in src/journal/recovery.hpp).
  void rotate(std::ostream& fresh) RDS_EXCLUDES(mu_);

 private:
  void write_header_locked() RDS_REQUIRES(mu_);
  void init_metrics();

  mutable Mutex mu_;
  std::ostream* out_ RDS_GUARDED_BY(mu_);
  Lsn next_lsn_ RDS_GUARDED_BY(mu_);
  bool healthy_ RDS_GUARDED_BY(mu_) = true;
  std::function<void()> sync_hook_;  // immutable after construction

  // Registry-owned instruments (docs/metrics.md); internally thread-safe.
  metrics::Counter* records_total_ = nullptr;
  metrics::Counter* bytes_total_ = nullptr;
  metrics::Counter* append_failures_total_ = nullptr;
  metrics::LatencyHistogram* append_latency_ns_ = nullptr;
};

/// Sequential reader over a journal stream.  Not thread-safe (recovery is
/// single-threaded); corruption is sticky -- once next() reports an error,
/// every later call repeats it, because frame boundaries after a corrupt
/// frame cannot be trusted.
class JournalReader {
 public:
  explicit JournalReader(std::istream& in) : in_(&in) {}

  /// The next record.  ok(nullopt) is the clean end of the journal;
  /// kCorruption names the frame (by expected LSN) that was torn, failed
  /// its CRC, or did not parse.
  [[nodiscard]] Result<std::optional<Record>> next();

  /// The header's start LSN (valid after the first next() call).
  [[nodiscard]] Lsn start_lsn() const noexcept { return start_lsn_; }

 private:
  [[nodiscard]] Result<std::optional<Record>> fail(std::string message);

  std::istream* in_;
  Lsn start_lsn_ = 0;
  Lsn expect_ = 0;  ///< LSN the next frame must carry
  bool header_read_ = false;
  bool done_ = false;
  std::optional<Error> failed_;
};

}  // namespace rds::journal
