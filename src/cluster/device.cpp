#include "src/cluster/device.hpp"

// Device is a plain aggregate; no out-of-line logic needed.
