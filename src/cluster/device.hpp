// Storage device description.
#pragma once

#include <cstdint>
#include <string>

namespace rds {

/// Stable identifier of a storage device.  Uids survive configuration
/// changes; the placement hash experiments key on them, which is what makes
/// placements stable when *other* devices come and go.
using DeviceId = std::uint64_t;

/// Sentinel for "no device".
inline constexpr DeviceId kNoDevice = ~static_cast<DeviceId>(0);

/// A storage device ("bin" in the paper): a stable uid plus a capacity
/// measured in blocks ("balls").
struct Device {
  DeviceId uid = kNoDevice;
  std::uint64_t capacity = 0;  ///< number of block copies this device holds
  std::string name;            ///< human-readable label; optional

  friend bool operator==(const Device&, const Device&) = default;
};

}  // namespace rds
