#include "src/cluster/cluster_config.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "src/util/checked_math.hpp"

namespace rds {

ClusterConfig::ClusterConfig(std::vector<Device> devices)
    : devices_(std::move(devices)) {
  canonicalize();
}

void ClusterConfig::canonicalize() {
  std::ranges::sort(devices_, [](const Device& a, const Device& b) {
    if (a.capacity != b.capacity) return a.capacity > b.capacity;
    return a.uid < b.uid;
  });

  std::unordered_set<DeviceId> seen;
  seen.reserve(devices_.size());
  for (const Device& d : devices_) {
    if (d.capacity == 0) {
      throw std::invalid_argument("ClusterConfig: device with zero capacity");
    }
    if (d.uid == kNoDevice) {
      throw std::invalid_argument("ClusterConfig: reserved device uid");
    }
    if (!seen.insert(d.uid).second) {
      throw std::invalid_argument("ClusterConfig: duplicate device uid");
    }
  }

  suffix_.assign(devices_.size() + 1, 0);
  for (std::size_t i = devices_.size(); i-- > 0;) {
    suffix_[i] =
        checked_add(suffix_[i + 1], devices_[i].capacity).value_or_throw();
  }
  total_capacity_ = suffix_.empty() ? 0 : suffix_[0];
  ++version_;
}

Result<bool> ClusterConfig::try_capacity_efficient(unsigned k) const {
  if (k == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "try_capacity_efficient: k == 0"};
  }
  if (devices_.empty()) return false;
  // devices_ is sorted by descending capacity, so b_max is devices_[0].
  Result<std::uint64_t> demand = checked_mul(devices_[0].capacity, k);
  if (!demand.ok()) return demand.error();
  return demand.value() <= total_capacity_;
}

double ClusterConfig::relative_capacity(std::size_t i) const noexcept {
  if (total_capacity_ == 0) return 0.0;
  return static_cast<double>(devices_[i].capacity) /
         static_cast<double>(total_capacity_);
}

std::optional<std::size_t> ClusterConfig::index_of(DeviceId uid) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].uid == uid) return i;
  }
  return std::nullopt;
}

void ClusterConfig::add_device(const Device& d) {
  if (contains(d.uid)) {
    throw std::invalid_argument("add_device: duplicate uid");
  }
  devices_.push_back(d);
  canonicalize();
}

void ClusterConfig::remove_device(DeviceId uid) {
  const auto idx = index_of(uid);
  if (!idx) throw std::out_of_range("remove_device: unknown uid");
  devices_.erase(devices_.begin() + static_cast<std::ptrdiff_t>(*idx));
  canonicalize();
}

void ClusterConfig::resize_device(DeviceId uid, std::uint64_t new_capacity) {
  const auto idx = index_of(uid);
  if (!idx) throw std::out_of_range("resize_device: unknown uid");
  devices_[*idx].capacity = new_capacity;
  canonicalize();
}

std::vector<double> ClusterConfig::capacities() const {
  std::vector<double> out;
  out.reserve(devices_.size());
  for (const Device& d : devices_) out.push_back(static_cast<double>(d.capacity));
  return out;
}

}  // namespace rds
