// The set of storage devices currently in the system.
//
// A ClusterConfig is a *value*: placement strategies are constructed from a
// snapshot and never observe concurrent mutation.  Devices are kept sorted by
// capacity, descending (ties broken by uid) -- the canonical order the
// Redundant Share algorithms iterate in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/cluster/device.hpp"
#include "src/core/result.hpp"

namespace rds {

class ClusterConfig {
 public:
  ClusterConfig() = default;

  /// Builds a configuration from an arbitrary device list.
  /// Throws std::invalid_argument on duplicate uids or zero capacities.
  explicit ClusterConfig(std::vector<Device> devices);

  /// Devices in canonical order (capacity descending, uid ascending).
  [[nodiscard]] std::span<const Device> devices() const noexcept {
    return devices_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return devices_.empty(); }
  [[nodiscard]] const Device& operator[](std::size_t i) const noexcept {
    return devices_[i];
  }

  /// Sum of all device capacities (the paper's B).
  [[nodiscard]] std::uint64_t total_capacity() const noexcept {
    return total_capacity_;
  }

  /// Suffix capacity sum B_i = sum_{j >= i} b_j; B_n = 0.
  [[nodiscard]] std::uint64_t suffix_capacity(std::size_t i) const noexcept {
    return suffix_[i];
  }

  /// Relative capacity c_i = b_i / B of the device at canonical index i.
  [[nodiscard]] double relative_capacity(std::size_t i) const noexcept;

  /// Lemma 2.1 feasibility on exact byte counts: k copies of every block
  /// can be spread over distinct devices iff k * b_max <= B.  Exact
  /// counterpart of the double-based capacity_efficient() in
  /// src/core/capacity.hpp.  kInvalidArgument if k == 0 or the demand
  /// k * b_max overflows uint64.
  [[nodiscard]] Result<bool> try_capacity_efficient(unsigned k) const;

  /// Canonical index of a device, if present.
  [[nodiscard]] std::optional<std::size_t> index_of(DeviceId uid) const;

  [[nodiscard]] bool contains(DeviceId uid) const { return index_of(uid).has_value(); }

  /// Monotone counter bumped by every mutation; lets cached structures
  /// detect staleness.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Adds a device.  Throws on duplicate uid or zero capacity.
  void add_device(const Device& d);

  /// Removes a device.  Throws std::out_of_range if absent.
  void remove_device(DeviceId uid);

  /// Changes a device's capacity.  Throws if absent or new capacity is zero.
  void resize_device(DeviceId uid, std::uint64_t new_capacity);

  /// Device capacities in canonical order, as doubles (strategy input).
  [[nodiscard]] std::vector<double> capacities() const;

  friend bool operator==(const ClusterConfig& a, const ClusterConfig& b) {
    return a.devices_ == b.devices_;
  }

 private:
  void canonicalize();  // sort, validate, rebuild sums

  std::vector<Device> devices_;
  std::vector<std::uint64_t> suffix_;  // size()+1 entries
  std::uint64_t total_capacity_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace rds
