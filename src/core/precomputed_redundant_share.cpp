#include "src/core/precomputed_redundant_share.hpp"

#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {
namespace {

constexpr std::uint64_t kO1Salt = 0x0001C0DEULL;
constexpr std::size_t kMaxDevices = 4096;

}  // namespace

PrecomputedRedundantShare::PrecomputedRedundantShare(
    const ClusterConfig& config, unsigned k)
    : PrecomputedRedundantShare(config, k, RedundantShare::Options{}) {}

PrecomputedRedundantShare::PrecomputedRedundantShare(
    const ClusterConfig& config, unsigned k, RedundantShare::Options opt)
    : tables_(detail::RsTables::build(config, k, opt.apply_optimal_weights,
                                      opt.apply_adjustment)) {
  const std::size_t n = tables_.size();
  if (n > kMaxDevices) {
    throw std::invalid_argument(
        "PrecomputedRedundantShare: too many devices for O(k n^2) tables; "
        "use FastRedundantShare");
  }
  selector_.resize(k);
  std::vector<double> pmf;
  for (unsigned m = 1; m <= k; ++m) {
    selector_[m - 1].resize(n);
    for (std::size_t s = 0; s + m <= n; ++s) {
      // Conditional law of the next selection position from state (m, s):
      // p(l) = f(m, l) * prod_{j in [s, l)} (1 - f(m, j)), truncated at the
      // first absorbing column.
      pmf.clear();
      double survive = 1.0;
      for (std::size_t l = s; l < n; ++l) {
        const double f = tables_.f(m, l);
        pmf.push_back(survive * f);
        if (f >= 1.0) break;
        survive *= 1.0 - f;
      }
      selector_[m - 1][s] = AliasTable(pmf);
    }
  }
}

void PrecomputedRedundantShare::place(std::uint64_t address,
                                      std::span<DeviceId> out) const {
  check_out_span(out, tables_.k);
  std::size_t start = 0;
  std::size_t pos = 0;
  for (unsigned m = tables_.k; m >= 1; --m) {
    const AliasTable& table = selector_[m - 1][start];
    const double u = to_unit(hash3(address, kO1Salt, m));
    const std::size_t i = start + table.sample(u);
    out[pos++] = tables_.uids[i];
    start = i + 1;
  }
}

std::string PrecomputedRedundantShare::name() const {
  return "precomputed-redundant-share";
}

std::size_t PrecomputedRedundantShare::table_entries() const noexcept {
  std::size_t total = 0;
  for (const auto& level : selector_) {
    for (const AliasTable& t : level) total += t.size();
  }
  return total;
}

}  // namespace rds
