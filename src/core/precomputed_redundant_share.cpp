#include "src/core/precomputed_redundant_share.hpp"

#include <stdexcept>

#include "src/metrics/registry.hpp"
#include "src/util/hash.hpp"

namespace rds {
namespace {

constexpr std::uint64_t kO1Salt = 0x0001C0DEULL;
constexpr std::size_t kMaxDevices = 4096;

}  // namespace

PrecomputedRedundantShare::PrecomputedRedundantShare(
    const ClusterConfig& config, unsigned k)
    : PrecomputedRedundantShare(config, k, RedundantShare::Options{}) {}

PrecomputedRedundantShare::PrecomputedRedundantShare(
    const ClusterConfig& config, unsigned k, RedundantShare::Options opt)
    : tables_(detail::RsTables::build(config, k, opt.apply_optimal_weights,
                                      opt.apply_adjustment)) {
  const std::size_t n = tables_.size();
  if (n > kMaxDevices) {
    throw std::invalid_argument(
        "PrecomputedRedundantShare: too many devices for O(k n^2) tables; "
        "use FastRedundantShare");
  }
  selector_id_.assign(static_cast<std::size_t>(k) * n, AliasArena::kNoTable);
  selectors_.reserve_tables(static_cast<std::size_t>(k) * n);
  std::vector<double> pmf;
  pmf.reserve(n);
  for (unsigned m = 1; m <= k; ++m) {
    for (std::size_t s = 0; s + m <= n; ++s) {
      // Conditional law of the next selection position from state (m, s):
      // p(l) = f(m, l) * prod_{j in [s, l)} (1 - f(m, j)), truncated at the
      // first absorbing column.
      pmf.clear();
      double survive = 1.0;
      for (std::size_t l = s; l < n; ++l) {
        const double f = tables_.f(m, l);
        pmf.push_back(survive * f);
        if (f >= 1.0) break;
        survive *= 1.0 - f;
      }
      selector_id_[(m - 1) * n + s] = selectors_.add(pmf);
    }
  }
  metrics::Registry& reg = metrics::Registry::global();
  const metrics::Labels labels{{"strategy", "precomputed-redundant-share"}};
  placements_total_ = &reg.counter("rds_placements_total", labels);
}

void PrecomputedRedundantShare::place_into(std::uint64_t address,
                                           DeviceId* out) const noexcept {
  const std::size_t n = tables_.size();
  const std::uint32_t* const ids = selector_id_.data();
  const DeviceId* const uids = tables_.uids.data();
  std::size_t start = 0;
  for (unsigned m = tables_.k; m >= 1; --m) {
    const double u = to_unit(hash3(address, kO1Salt, m));
    const std::size_t i =
        start + selectors_.sample(ids[(m - 1) * n + start], u);
    *out++ = uids[i];
    start = i + 1;
  }
}

void PrecomputedRedundantShare::place(std::uint64_t address,
                                      std::span<DeviceId> out) const {
  check_out_span(out, tables_.k);
  place_into(address, out.data());
  placements_total_->inc();
}

void PrecomputedRedundantShare::place_many(
    std::span<const std::uint64_t> addresses, std::span<DeviceId> out) const {
  const unsigned k = tables_.k;
  if (out.size() != addresses.size() * k) {
    throw std::invalid_argument(
        "ReplicationStrategy::place_many: output size != addresses * k");
  }
  DeviceId* o = out.data();
  for (const std::uint64_t address : addresses) {
    place_into(address, o);
    o += k;
  }
  // One metrics flush per batch, not per placement.
  placements_total_->inc(addresses.size());
}

std::string PrecomputedRedundantShare::name() const {
  return "precomputed-redundant-share";
}

std::size_t PrecomputedRedundantShare::table_entries() const noexcept {
  return selectors_.slot_count();
}

}  // namespace rds
