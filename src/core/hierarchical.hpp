// Failure-domain-aware Redundant Share.
//
// Places the k copies of a block on k *distinct failure domains* (racks,
// hosts, power circuits): the outer level runs Redundant Share over the
// domains (weighted by their usable aggregate capacities), the inner level
// draws a device inside each chosen domain with a fair weighted race.
//
// This composition keeps every guarantee of the flat strategy -- exact
// global fairness (a device with x% of the usable capacity gets x% of the
// copies), bounded movement under reconfiguration -- while adding the
// isolation CRUSH is used for.  Unlike the straw/trivial domain selection
// (placement/crush.hpp), the outer Redundant Share does NOT lose capacity
// when domains have heterogeneous sizes: a domain holding half the total
// capacity receives a copy of every block, exactly as Lemma 2.1 demands.
//
// The paper's conclusion asks for strategies beyond plain mirroring; this
// is the natural such extension, built entirely from the paper's own
// machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/redundant_share.hpp"
#include "src/placement/crush.hpp"  // FailureDomain

namespace rds {

class HierarchicalRedundantShare final : public ReplicationStrategy {
 public:
  /// k <= number of domains; device uids must be globally unique.
  HierarchicalRedundantShare(std::vector<FailureDomain> domains, unsigned k,
                             std::uint64_t salt = 0);
  HierarchicalRedundantShare(std::vector<FailureDomain> domains, unsigned k,
                             RedundantShare::Options opt,
                             std::uint64_t salt = 0);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;

  [[nodiscard]] unsigned replication() const override { return k_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override;
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] std::size_t domain_of(DeviceId uid) const;

  /// The outer strategy over the domains (for analysis/tests).
  [[nodiscard]] const RedundantShare& outer() const noexcept {
    return *outer_;
  }

 private:
  std::vector<FailureDomain> domains_;
  std::vector<std::vector<Candidate>> domain_devices_;  // per domain index
  std::unique_ptr<RedundantShare> outer_;  // devices are pseudo "domains"
  unsigned k_;
  std::uint64_t salt_;
};

}  // namespace rds
