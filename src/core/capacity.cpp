#include "src/core/capacity.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace rds {
namespace {

void validate_desc(std::span<const double> caps, unsigned k) {
  if (k == 0) throw std::invalid_argument("capacity: k == 0");
  if (caps.size() < k) {
    throw std::invalid_argument("capacity: fewer bins than k");
  }
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (caps[i] <= 0.0) {
      throw std::invalid_argument("capacity: non-positive capacity");
    }
    if (i > 0 && caps[i] > caps[i - 1]) {
      throw std::invalid_argument("capacity: not sorted descending");
    }
  }
}

}  // namespace

bool capacity_efficient(std::span<const double> capacities, unsigned k) {
  if (k == 0) throw std::invalid_argument("capacity_efficient: k == 0");
  if (capacities.size() < k) return false;
  double total = 0.0;
  double biggest = 0.0;
  for (const double c : capacities) {
    if (c <= 0.0) {
      throw std::invalid_argument("capacity_efficient: non-positive capacity");
    }
    total += c;
    biggest = std::max(biggest, c);
  }
  return static_cast<double>(k) * biggest <= total;
}

std::vector<double> optimal_weights(std::span<const double> capacities_desc,
                                    unsigned k) {
  validate_desc(capacities_desc, k);
  std::vector<double> b(capacities_desc.begin(), capacities_desc.end());
  const std::size_t n = b.size();

  // Suffix sums of the *adjusted* capacities.  We process prefix bins
  // 0..k-2 from the innermost recursion outwards: the recursion
  //   optimalWeights(k, start):
  //     if b[start] violates, optimalWeights(k-1, start+1) first, then clamp
  // touches at most bins start..start+(k-2) (each recursive level consumes
  // one bin and one unit of k), so we can run it iteratively from the
  // deepest level (replication degree 2) back to k.
  //
  // First compute the raw suffix sums; they are correct for the untouched
  // tail bins (index >= k-1) which no recursion level ever clamps.
  std::vector<double> suffix(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] + b[i];

  // Determine how deep the recursion goes: level r handles bin (k - r).
  // The clamp at level r happens iff  (r-1) * b[start] > suffix'(start+1).
  // Process levels r = 2..k in that order (innermost first) so that each
  // clamp sees the already-adjusted suffix.
  for (unsigned r = 2; r <= k; ++r) {
    const std::size_t start = k - r;  // bin this level may clamp
    const double rest = suffix[start + 1];
    if (static_cast<double>(r - 1) * b[start] > rest) {
      b[start] = rest / static_cast<double>(r - 1);
    }
    suffix[start] = suffix[start + 1] + b[start];
  }

  // Clamping can only shrink values, and (see DESIGN.md) preserves the
  // descending order; assert in debug builds.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (b[i] + 1e-9 * std::max(1.0, b[i]) < b[i + 1]) {
      throw std::logic_error("optimal_weights: order violated");
    }
  }
  return b;
}

double max_balls(std::span<const double> capacities_desc, unsigned k) {
  const std::vector<double> adj = optimal_weights(capacities_desc, k);
  double total = 0.0;
  for (const double c : adj) total += c;
  return total / static_cast<double>(k);
}

CapacityAnalysis analyze_capacity(std::span<const double> capacities_desc,
                                  unsigned k) {
  CapacityAnalysis out;
  out.adjusted = optimal_weights(capacities_desc, k);
  for (const double c : capacities_desc) out.raw_capacity += c;
  for (const double c : out.adjusted) out.usable_capacity += c;
  out.max_balls = out.usable_capacity / static_cast<double>(k);
  out.feasible_unadjusted = capacity_efficient(capacities_desc, k);
  return out;
}

std::optional<std::vector<std::uint64_t>> greedy_pack(
    std::span<const std::uint64_t> capacities, unsigned k, std::uint64_t m) {
  if (k == 0) throw std::invalid_argument("greedy_pack: k == 0");
  if (capacities.size() < k) return std::nullopt;

  // Max-heap of (remaining capacity, bin index).
  using Entry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    if (capacities[i] > 0) heap.push({capacities[i], i});
  }

  std::vector<std::uint64_t> placed(capacities.size(), 0);
  std::vector<Entry> group;
  group.reserve(k);
  for (std::uint64_t ball = 0; ball < m; ++ball) {
    if (heap.size() < k) return std::nullopt;  // cannot keep copies distinct
    group.clear();
    for (unsigned j = 0; j < k; ++j) {
      group.push_back(heap.top());
      heap.pop();
    }
    for (Entry& e : group) {
      placed[e.second] += 1;
      if (--e.first > 0) heap.push(e);
    }
  }
  return placed;
}

}  // namespace rds
