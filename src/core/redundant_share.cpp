#include "src/core/redundant_share.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/core/capacity.hpp"
#include "src/metrics/registry.hpp"
#include "src/placement/rendezvous.hpp"
#include "src/util/hash.hpp"

namespace rds {
namespace detail {

RsTables RsTables::build(const ClusterConfig& config, unsigned k,
                         bool apply_optimal_weights, bool apply_adjustment) {
  if (k == 0) throw std::invalid_argument("RedundantShare: k == 0");
  if (config.size() < k) {
    throw std::invalid_argument("RedundantShare: fewer devices than k");
  }
  std::vector<DeviceId> uids;
  uids.reserve(config.size());
  for (const Device& d : config.devices()) uids.push_back(d.uid);

  std::vector<double> caps = config.capacities();  // canonical: descending
  if (apply_optimal_weights) caps = optimal_weights(caps, k);
  return build_from_weights(std::move(uids), std::move(caps), k,
                            apply_adjustment);
}

RsTables RsTables::build_from_weights(std::vector<DeviceId> uids,
                                      std::vector<double> weights_desc,
                                      unsigned k, bool apply_adjustment) {
  if (k == 0) throw std::invalid_argument("RedundantShare: k == 0");
  if (uids.size() != weights_desc.size()) {
    throw std::invalid_argument("RedundantShare: uids/weights size mismatch");
  }
  if (weights_desc.size() < k) {
    throw std::invalid_argument("RedundantShare: fewer devices than k");
  }
  RsTables t;
  t.k = k;
  t.uids = std::move(uids);
  t.caps = std::move(weights_desc);

  const std::size_t n = t.caps.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(t.caps[i]) || t.caps[i] < 0.0) {
      throw std::invalid_argument(
          "RedundantShare: weight at canonical index " + std::to_string(i) +
          " is negative or not finite");
    }
  }
  t.suffix.assign(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) t.suffix[i] = t.suffix[i + 1] + t.caps[i];

  // Defaults: f(m, j) = min(1, m * b_j / B_j).  Every suffix B_j (j < n)
  // must be strictly positive or the division poisons the whole chain with
  // NaN -- a zero-capacity tail can only arrive here through a config whose
  // validation was bypassed (or a future zero-weight device class), so fail
  // loudly instead of placing garbage.
  t.select_prob.assign(k, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    if (!(t.suffix[j] > 0.0)) {
      throw std::invalid_argument(
          "RedundantShare: capacity suffix B_j is zero at canonical index " +
          std::to_string(j) + " (zero-capacity tail device?)");
    }
    for (unsigned m = 1; m <= k; ++m) {
      t.select_prob[m - 1][j] =
          std::min(1.0, static_cast<double>(m) * t.caps[j] / t.suffix[j]);
    }
  }

  // Moment matching: walk the state occupancies pi(m, j) and, wherever the
  // clamp at 1 starves a column of its fair marginal k * b_j / B, raise the
  // selection probabilities of the still-unclamped (lower-m) states of that
  // column.  Highest m first: those are the paths that skipped the most
  // capacity, matching the paper's b-tilde, which compensates via the round
  // that just passed the oversized bin.
  std::vector<double> pi(k + 1, 0.0);  // pi[m] at the current column
  pi[k] = 1.0;
  const double total = t.suffix[0];
  for (std::size_t j = 0; j < n; ++j) {
    const double target = static_cast<double>(k) * t.caps[j] / total;
    if (apply_adjustment) {
      double achieved = 0.0;
      for (unsigned m = 1; m <= k; ++m) {
        achieved += pi[m] * t.select_prob[m - 1][j];
      }
      double deficit = target - achieved;
      for (unsigned m = k; m >= 1 && deficit > 1e-15; --m) {
        const double headroom = pi[m] * (1.0 - t.select_prob[m - 1][j]);
        if (headroom <= 0.0) continue;
        const double take = std::min(deficit, headroom);
        // In exact arithmetic take / pi[m] <= 1 - f, but with a tiny pi[m]
        // the quotient can round past the remaining headroom and push the
        // probability above 1 -- clamp so f stays a probability.
        double& f = t.select_prob[m - 1][j];
        f = std::min(1.0, f + take / pi[m]);
        assert(f >= 0.0 && f <= 1.0);
        deficit -= take;
      }
      if (deficit > 1e-12) {
        // Unreachable after optimal_weights (see tests); recorded so a
        // caller can notice rather than silently trusting fairness.
        t.fairness_residual = std::max(t.fairness_residual, deficit);
      }
    }
    // Advance the occupancies to column j + 1.
    std::vector<double> next(k + 1, 0.0);
    next[0] = pi[0];
    for (unsigned m = 1; m <= k; ++m) {
      const double f = t.select_prob[m - 1][j];
      next[m] += pi[m] * (1.0 - f);
      next[m - 1] += pi[m] * f;
    }
    pi = std::move(next);
  }
  return t;
}

}  // namespace detail

RedundantShare::RedundantShare(const ClusterConfig& config, unsigned k)
    : RedundantShare(config, k, Options{}) {}

RedundantShare::RedundantShare(const ClusterConfig& config, unsigned k,
                               Options opt)
    : tables_(detail::RsTables::build(config, k, opt.apply_optimal_weights,
                                      opt.apply_adjustment)) {
  metrics::Registry& reg = metrics::Registry::global();
  const metrics::Labels labels{{"strategy", "redundant-share"}};
  placements_total_ = &reg.counter("rds_placements_total", labels);
  chain_columns_total_ = &reg.counter("rds_placement_chain_columns_total",
                                      labels);
  last_copy_candidates_total_ =
      &reg.counter("rds_placement_last_copy_candidates_total", labels);
}

void RedundantShare::place(std::uint64_t address,
                           std::span<DeviceId> out) const {
  check_out_span(out, tables_.k);
  const std::size_t n = tables_.size();
  unsigned m = tables_.k;
  std::size_t pos = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (m == 1) {
      // Last copy: the paper's `placeonecopy` -- a single fair weighted
      // draw over the remaining bins, realized as a rendezvous race on the
      // exact conditional distribution of the selection chain.  Same law
      // as walking the chain, but 1-competitive under device changes (one
      // independent experiment per bin instead of a positional cascade).
      // Without clamped columns the weights reduce to the plain adjusted
      // capacities, exactly the paper's placeonecopy input.
      out[pos] = place_last(address, j);
      placements_total_->inc();
      chain_columns_total_->inc(j);
      return;
    }
    const double f = tables_.f(m, j);
    if (f <= 0.0) continue;
    // unit_value < 1 always, so f >= 1 selects unconditionally.
    if (unit_value(address, tables_.uids[j], m) < f) {
      out[pos++] = tables_.uids[j];
      --m;
    }
  }
  // Unreachable: f(m, j) == 1 whenever only m bins remain.
  throw std::logic_error("RedundantShare: selection chain ran off the end");
}

DeviceId RedundantShare::place_last(std::uint64_t address,
                                    std::size_t start) const {
  const std::size_t n = tables_.size();
  // Hot path: reuse one buffer per thread instead of allocating per ball.
  static thread_local std::vector<Candidate> candidates;
  candidates.clear();
  candidates.reserve(n - start);
  double survive = 1.0;
  for (std::size_t l = start; l < n; ++l) {
    const double f = tables_.f(1, l);
    // P(chain selects l | state (1, start)) = f(1, l) * prod (1 - f).
    candidates.push_back({tables_.uids[l], survive * f});
    if (f >= 1.0) break;  // absorbing: no mass beyond
    survive *= 1.0 - f;
  }
  last_copy_candidates_total_->inc(candidates.size());
  const DeviceId uid = rendezvous_draw(address, /*salt=*/1, candidates);
  if (uid == kNoDevice) {
    throw std::logic_error("RedundantShare: empty last-copy suffix");
  }
  return uid;
}

std::string RedundantShare::name() const {
  return tables_.k == 2 ? "redundant-share(LinMirror)" : "redundant-share";
}

}  // namespace rds
