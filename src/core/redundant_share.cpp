#include "src/core/redundant_share.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/core/capacity.hpp"
#include "src/placement/rendezvous.hpp"
#include "src/util/hash.hpp"

namespace rds {
namespace detail {

RsTables RsTables::build(const ClusterConfig& config, unsigned k,
                         bool apply_optimal_weights, bool apply_adjustment) {
  if (k == 0) throw std::invalid_argument("RedundantShare: k == 0");
  if (config.size() < k) {
    throw std::invalid_argument("RedundantShare: fewer devices than k");
  }
  RsTables t;
  t.k = k;
  t.uids.reserve(config.size());
  for (const Device& d : config.devices()) t.uids.push_back(d.uid);

  std::vector<double> caps = config.capacities();  // canonical: descending
  t.caps = apply_optimal_weights ? optimal_weights(caps, k) : std::move(caps);

  const std::size_t n = t.caps.size();
  t.suffix.assign(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) t.suffix[i] = t.suffix[i + 1] + t.caps[i];

  // Defaults: f(m, j) = min(1, m * b_j / B_j).
  t.select_prob.assign(k, std::vector<double>(n, 0.0));
  for (unsigned m = 1; m <= k; ++m) {
    for (std::size_t j = 0; j < n; ++j) {
      t.select_prob[m - 1][j] =
          std::min(1.0, static_cast<double>(m) * t.caps[j] / t.suffix[j]);
    }
  }

  // Moment matching: walk the state occupancies pi(m, j) and, wherever the
  // clamp at 1 starves a column of its fair marginal k * b_j / B, raise the
  // selection probabilities of the still-unclamped (lower-m) states of that
  // column.  Highest m first: those are the paths that skipped the most
  // capacity, matching the paper's b-tilde, which compensates via the round
  // that just passed the oversized bin.
  std::vector<double> pi(k + 1, 0.0);  // pi[m] at the current column
  pi[k] = 1.0;
  const double total = t.suffix[0];
  for (std::size_t j = 0; j < n; ++j) {
    const double target = static_cast<double>(k) * t.caps[j] / total;
    if (apply_adjustment) {
      double achieved = 0.0;
      for (unsigned m = 1; m <= k; ++m) {
        achieved += pi[m] * t.select_prob[m - 1][j];
      }
      double deficit = target - achieved;
      for (unsigned m = k; m >= 1 && deficit > 1e-15; --m) {
        const double headroom = pi[m] * (1.0 - t.select_prob[m - 1][j]);
        if (headroom <= 0.0) continue;
        const double take = std::min(deficit, headroom);
        t.select_prob[m - 1][j] += take / pi[m];
        deficit -= take;
      }
      if (deficit > 1e-12) {
        // Unreachable after optimal_weights (see tests); recorded so a
        // caller can notice rather than silently trusting fairness.
        t.fairness_residual = std::max(t.fairness_residual, deficit);
      }
    }
    // Advance the occupancies to column j + 1.
    std::vector<double> next(k + 1, 0.0);
    next[0] = pi[0];
    for (unsigned m = 1; m <= k; ++m) {
      const double f = t.select_prob[m - 1][j];
      next[m] += pi[m] * (1.0 - f);
      next[m - 1] += pi[m] * f;
    }
    pi = std::move(next);
  }
  return t;
}

}  // namespace detail

RedundantShare::RedundantShare(const ClusterConfig& config, unsigned k)
    : RedundantShare(config, k, Options{}) {}

RedundantShare::RedundantShare(const ClusterConfig& config, unsigned k,
                               Options opt)
    : tables_(detail::RsTables::build(config, k, opt.apply_optimal_weights,
                                      opt.apply_adjustment)) {}

void RedundantShare::place(std::uint64_t address,
                           std::span<DeviceId> out) const {
  check_out_span(out, tables_.k);
  const std::size_t n = tables_.size();
  unsigned m = tables_.k;
  std::size_t pos = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (m == 1) {
      // Last copy: the paper's `placeonecopy` -- a single fair weighted
      // draw over the remaining bins, realized as a rendezvous race on the
      // exact conditional distribution of the selection chain.  Same law
      // as walking the chain, but 1-competitive under device changes (one
      // independent experiment per bin instead of a positional cascade).
      // Without clamped columns the weights reduce to the plain adjusted
      // capacities, exactly the paper's placeonecopy input.
      out[pos] = place_last(address, j);
      return;
    }
    const double f = tables_.f(m, j);
    if (f <= 0.0) continue;
    // unit_value < 1 always, so f >= 1 selects unconditionally.
    if (unit_value(address, tables_.uids[j], m) < f) {
      out[pos++] = tables_.uids[j];
      --m;
    }
  }
  // Unreachable: f(m, j) == 1 whenever only m bins remain.
  throw std::logic_error("RedundantShare: selection chain ran off the end");
}

DeviceId RedundantShare::place_last(std::uint64_t address,
                                    std::size_t start) const {
  const std::size_t n = tables_.size();
  // Hot path: reuse one buffer per thread instead of allocating per ball.
  static thread_local std::vector<Candidate> candidates;
  candidates.clear();
  candidates.reserve(n - start);
  double survive = 1.0;
  for (std::size_t l = start; l < n; ++l) {
    const double f = tables_.f(1, l);
    // P(chain selects l | state (1, start)) = f(1, l) * prod (1 - f).
    candidates.push_back({tables_.uids[l], survive * f});
    if (f >= 1.0) break;  // absorbing: no mass beyond
    survive *= 1.0 - f;
  }
  const DeviceId uid = rendezvous_draw(address, /*salt=*/1, candidates);
  if (uid == kNoDevice) {
    throw std::logic_error("RedundantShare: empty last-copy suffix");
  }
  return uid;
}

std::string RedundantShare::name() const {
  return tables_.k == 2 ? "redundant-share(LinMirror)" : "redundant-share";
}

}  // namespace rds
