// Exact fairness analysis of the Redundant Share selection chain.
//
// place() walks the bins once, selecting bin j in state (m needed, at j)
// with probability f(m, j) from an independent per-(ball, bin, m) uniform.
// Its exact law is therefore the occupancy recursion over states (m, j),
// enumerated here by full branching (select / skip at every state) with the
// probability mass carried along -- the shape of the computation mirrors
// place() step for step, so a bug in either the tables or the walk shows up
// as a deviation from the fair shares in the tests.
#include "src/core/redundant_share.hpp"

namespace rds {

std::vector<double> RedundantShare::exact_expected_copies() const {
  const std::size_t n = tables_.size();
  const unsigned k = tables_.k;
  std::vector<double> expected(n, 0.0);

  // pi[m] = P(m copies still needed when the walk reaches column j).
  std::vector<double> pi(k + 1, 0.0);
  pi[k] = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> next(k + 1, 0.0);
    next[0] = pi[0];
    for (unsigned m = 1; m <= k; ++m) {
      const double f = tables_.f(m, j);
      expected[j] += pi[m] * f;      // the select branch places a copy here
      next[m] += pi[m] * (1.0 - f);  // skip branch
      next[m - 1] += pi[m] * f;      // select branch
    }
    pi = std::move(next);
  }
  return expected;
}

std::vector<std::vector<double>> RedundantShare::exact_copy_index_law() const {
  const std::size_t n = tables_.size();
  const unsigned k = tables_.k;
  // Copy index r is placed by the selection in state (m = k - r, j), so its
  // law is the per-state selection mass of that level.
  std::vector<std::vector<double>> law(k, std::vector<double>(n, 0.0));
  std::vector<double> pi(k + 1, 0.0);
  pi[k] = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> next(k + 1, 0.0);
    next[0] = pi[0];
    for (unsigned m = 1; m <= k; ++m) {
      const double f = tables_.f(m, j);
      law[k - m][j] = pi[m] * f;
      next[m] += pi[m] * (1.0 - f);
      next[m - 1] += pi[m] * f;
    }
    pi = std::move(next);
  }
  return law;
}

}  // namespace rds
