// Redundant Share in O(k log n) per ball (Section 3.3 of the paper).
//
// RedundantShare's walk is a Markov chain over states (m copies needed,
// position j); a run of skips at constant m has the product-form survival
// Q_m(i) = prod_{l < i}(1 - f(m, l)).  We precompute, per level m, the
// monotone log-survival array and invert the conditional CDF of "position
// of the next selection" by binary search: one hash evaluation and one
// O(log n) search per copy instead of the O(n) scan.  The joint law is
// *identical* to RedundantShare's (same Markov kernel); only the coupling
// of the random choices differs, which slightly worsens adaptivity --
// measured in bench/ablation_fast_adaptivity.
//
// Memory is O(k * n); the paper's O(k) lookup at O(k * n * s) memory is the
// same idea with per-state constant-time selectors instead of the binary
// search.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/redundant_share.hpp"

namespace rds {

namespace metrics {
class Counter;
}  // namespace metrics

class FastRedundantShare final : public ReplicationStrategy {
 public:
  FastRedundantShare(const ClusterConfig& config, unsigned k);
  FastRedundantShare(const ClusterConfig& config, unsigned k,
                     RedundantShare::Options opt);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;

  [[nodiscard]] unsigned replication() const override { return tables_.k; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return tables_.size();
  }

  [[nodiscard]] const detail::RsTables& tables() const noexcept {
    return tables_;
  }

 private:
  /// Position of level m's selection, starting the scan at `start`.
  [[nodiscard]] std::size_t sample_selection(unsigned m, std::size_t start,
                                             std::uint64_t address) const;

  detail::RsTables tables_;
  // log_survival_[m-1][i] = sum of log(1 - f(m, l)) over the non-absorbing
  // columns l < i (absorbing: f >= 1); size n+1 per level.
  std::vector<std::vector<double>> log_survival_;
  // next_absorbing_[m-1][i] = first column >= i with f(m, .) >= 1 (n if
  // none; one always exists within reach of any valid state).
  std::vector<std::vector<std::size_t>> next_absorbing_;

  // Registry-owned instruments: placements served and total columns the
  // level samplers consumed (two relaxed increments per place()).
  metrics::Counter* placements_total_ = nullptr;
  metrics::Counter* chain_columns_total_ = nullptr;
};

}  // namespace rds
