#include "src/core/fast_redundant_share.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/metrics/registry.hpp"
#include "src/util/hash.hpp"

namespace rds {
namespace {

constexpr std::uint64_t kLevelSalt = 0xFA57C0DEULL;  // per-level tail sample

}  // namespace

FastRedundantShare::FastRedundantShare(const ClusterConfig& config, unsigned k)
    : FastRedundantShare(config, k, RedundantShare::Options{}) {}

FastRedundantShare::FastRedundantShare(const ClusterConfig& config, unsigned k,
                                       RedundantShare::Options opt)
    : tables_(detail::RsTables::build(config, k, opt.apply_optimal_weights,
                                      opt.apply_adjustment)) {
  const std::size_t n = tables_.size();
  log_survival_.resize(k);
  next_absorbing_.resize(k);
  for (unsigned m = 1; m <= k; ++m) {
    std::vector<double>& ls = log_survival_[m - 1];
    std::vector<std::size_t>& na = next_absorbing_[m - 1];
    ls.assign(n + 1, 0.0);
    na.assign(n + 1, n);
    for (std::size_t j = 0; j < n; ++j) {
      const double f = tables_.f(m, j);
      ls[j + 1] = ls[j] + (f >= 1.0 ? 0.0 : std::log1p(-f));
    }
    for (std::size_t j = n; j-- > 0;) {
      na[j] = tables_.f(m, j) >= 1.0 ? j : na[j + 1];
    }
  }
  metrics::Registry& reg = metrics::Registry::global();
  const metrics::Labels labels{{"strategy", "fast-redundant-share"}};
  placements_total_ = &reg.counter("rds_placements_total", labels);
  chain_columns_total_ = &reg.counter("rds_placement_chain_columns_total",
                                      labels);
}

std::size_t FastRedundantShare::sample_selection(unsigned m, std::size_t start,
                                                 std::uint64_t address) const {
  const std::vector<double>& ls = log_survival_[m - 1];
  const std::size_t a = next_absorbing_[m - 1][start];
  if (a >= tables_.size()) {
    // No absorbing column from `start`: the invariant "f(m, j) == 1 when
    // only m bins remain" was violated upstream.
    throw std::logic_error("FastRedundantShare: no absorbing column");
  }
  if (a == start) return start;  // forced selection

  const double u = to_unit(hash3(address, kLevelSalt, m));
  // Selection at i  iff  survival(start -> i+1) <= 1-u < survival(start->i).
  // In log space over the absorbing-free window (start, a]: the first
  // column l with ls[l] <= ls[start] + log(1-u); if none, the absorbing
  // column takes the selection.
  const double threshold = ls[start] + std::log1p(-u);
  const auto first = ls.begin() + static_cast<std::ptrdiff_t>(start) + 1;
  const auto last = ls.begin() + static_cast<std::ptrdiff_t>(a) + 1;
  const auto it = std::partition_point(
      first, last, [threshold](double v) { return v > threshold; });
  if (it == last) return a;
  return static_cast<std::size_t>(it - ls.begin()) - 1;
}

void FastRedundantShare::place(std::uint64_t address,
                               std::span<DeviceId> out) const {
  check_out_span(out, tables_.k);
  std::size_t start = 0;
  std::size_t pos = 0;
  for (unsigned m = tables_.k; m >= 1; --m) {
    const std::size_t i = sample_selection(m, start, address);
    out[pos++] = tables_.uids[i];
    start = i + 1;
  }
  placements_total_->inc();
  // `start` now equals one past the deepest column any level consumed --
  // the fast variant's analogue of the slow walk's chain depth.
  chain_columns_total_->inc(start);
}

std::string FastRedundantShare::name() const { return "fast-redundant-share"; }

}  // namespace rds
