// Redundant Share with O(k) lookups -- the full memory/time trade-off of
// Section 3.3 ("for every following copy we need O(n) hash functions, one
// for each disk that could be chosen ... memory complexity O(k n s)").
//
// For every state (m copies needed, scan start s) the conditional law of
// the next selection position is a fixed discrete distribution; we
// materialize an alias table per state, so a placement is k alias lookups:
// O(k) time, O(k * n^2) worst-case memory (the paper's "s" is the per-hash
// -function footprint).  The law is identical to RedundantShare's and
// FastRedundantShare's; use this variant when lookups dominate and the
// device count is moderate (construction guards n <= 4096).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/redundant_share.hpp"
#include "src/util/alias_table.hpp"

namespace rds {

class PrecomputedRedundantShare final : public ReplicationStrategy {
 public:
  PrecomputedRedundantShare(const ClusterConfig& config, unsigned k);
  PrecomputedRedundantShare(const ClusterConfig& config, unsigned k,
                            RedundantShare::Options opt);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;

  [[nodiscard]] unsigned replication() const override { return tables_.k; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return tables_.size();
  }

  /// Total alias-table entries (the "O(k n s)" memory, for reports).
  [[nodiscard]] std::size_t table_entries() const noexcept;

  [[nodiscard]] const detail::RsTables& tables() const noexcept {
    return tables_;
  }

 private:
  detail::RsTables tables_;
  // selector_[m-1][s]: alias table over the selection position relative to
  // s, for states with m copies needed at scan position s.  States with
  // s > n - m are unreachable and left empty.
  std::vector<std::vector<AliasTable>> selector_;
};

}  // namespace rds
