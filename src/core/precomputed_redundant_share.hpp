// Redundant Share with O(k) lookups -- the full memory/time trade-off of
// Section 3.3 ("for every following copy we need O(n) hash functions, one
// for each disk that could be chosen ... memory complexity O(k n s)").
//
// For every state (m copies needed, scan start s) the conditional law of
// the next selection position is a fixed discrete distribution; we
// materialize an alias table per state, so a placement is k alias lookups:
// O(k) time, O(k * n^2) worst-case memory (the paper's "s" is the per-hash
// -function footprint).  The law is identical to RedundantShare's and
// FastRedundantShare's; use this variant when lookups dominate and the
// device count is moderate (construction guards n <= 4096).
//
// All per-state tables live in one contiguous AliasArena built once at
// construction -- i.e. once per committed topology when the strategy is
// made by VirtualDisk::apply_config, which then publishes it through the
// RCU placement epoch for lock-free readers.  place_many() is the batch
// fast path: the per-call span check and virtual dispatch are hoisted out
// of the loop, so BatchPlacer chunks run branch-light alias lookups only.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/redundant_share.hpp"
#include "src/util/alias_arena.hpp"

namespace rds {

namespace metrics {
class Counter;
}  // namespace metrics

class PrecomputedRedundantShare final : public ReplicationStrategy {
 public:
  PrecomputedRedundantShare(const ClusterConfig& config, unsigned k);
  PrecomputedRedundantShare(const ClusterConfig& config, unsigned k,
                            RedundantShare::Options opt);

  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;

  /// Batch fast path: identical output to looping place(), with the size
  /// check and dispatch amortized over the whole span.
  void place_many(std::span<const std::uint64_t> addresses,
                  std::span<DeviceId> out) const override;

  [[nodiscard]] unsigned replication() const override { return tables_.k; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return tables_.size();
  }

  /// Total alias-table entries (the "O(k n s)" memory, for reports).
  [[nodiscard]] std::size_t table_entries() const noexcept;

  [[nodiscard]] const detail::RsTables& tables() const noexcept {
    return tables_;
  }

 private:
  /// Shared placement kernel: writes k uids to `out` (unchecked).
  void place_into(std::uint64_t address, DeviceId* out) const noexcept;

  detail::RsTables tables_;
  // State (m copies needed, scan start s) -> arena table over the selection
  // position relative to s.  selector_id_[(m-1)*n + s]; states with
  // s > n - m are unreachable and hold AliasArena::kNoTable.
  AliasArena selectors_;
  std::vector<std::uint32_t> selector_id_;

  // Registry-owned instrument: placements served (one relaxed increment per
  // place(), one batched increment per place_many()).
  metrics::Counter* placements_total_ = nullptr;
};

}  // namespace rds
