// Capacity-efficiency theory of Section 2 of the paper.
//
//  * Lemma 2.1: a system of bins with capacities b_0 >= ... >= b_{n-1} admits
//    a *capacity-efficient* k-replication (every bin filled to its capacity,
//    no two copies of a ball on one bin) iff  k * b_0 <= sum_i b_i.
//  * Algorithm 1 / Lemma 2.2: if the condition fails, the *adjusted*
//    capacities b'_i -- computed by recursively clamping the largest bin to
//    1/(k-1) of the (adjusted) rest -- are the usable capacities, and the
//    maximum number of storable balls is  B_max = sum_i b'_i / k.
//  * The constructive greedy packer from the proof of Lemma 2.1: repeatedly
//    place one ball's k copies on the k bins of largest remaining capacity.
//
// All placement strategies in src/core consume the adjusted capacities, so
// fairness targets are always relative to *usable* capacity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rds {

/// True iff the capacities (any order) admit a capacity-efficient
/// k-replication: k * max_i b_i <= sum_i b_i  (Lemma 2.1).
[[nodiscard]] bool capacity_efficient(std::span<const double> capacities,
                                      unsigned k);

/// Algorithm 1: adjusted capacities b'_i.  Input must be sorted descending;
/// output is sorted descending, b'_i <= b_i, and k * b'_0 <= sum b'_i.
/// Runs in O(k + n) using suffix sums.  Throws on k == 0, k > n, or
/// non-positive / unsorted input.
[[nodiscard]] std::vector<double> optimal_weights(
    std::span<const double> capacities_desc, unsigned k);

/// Lemma 2.2: maximum number of balls storable under k-replication,
/// sum_i b'_i / k (may be fractional; floor it for whole balls).
[[nodiscard]] double max_balls(std::span<const double> capacities_desc,
                               unsigned k);

/// Everything the placement layer needs in one shot.
struct CapacityAnalysis {
  std::vector<double> adjusted;    ///< b'_i, same (descending) order as input
  double usable_capacity = 0.0;    ///< sum of adjusted
  double raw_capacity = 0.0;       ///< sum of input
  double max_balls = 0.0;          ///< usable_capacity / k
  bool feasible_unadjusted = false;  ///< Lemma 2.1 holds without clamping
};

[[nodiscard]] CapacityAnalysis analyze_capacity(
    std::span<const double> capacities_desc, unsigned k);

/// Constructive packer from the proof of Lemma 2.1: for each of `m` balls,
/// place the k copies on the k bins of largest remaining capacity.  Returns
/// the per-bin counts (aligned with the input) if all m balls fit without
/// violating redundancy, std::nullopt otherwise.  O(m log n + n).
[[nodiscard]] std::optional<std::vector<std::uint64_t>> greedy_pack(
    std::span<const std::uint64_t> capacities, unsigned k, std::uint64_t m);

}  // namespace rds
