// Redundant Share (Section 3 of the paper): LinMirror (k = 2) and its
// generalization to k-fold replication in O(n) time per ball.
//
// The algorithm walks the bins in descending capacity order, carrying the
// number m of copies still to place.  In state (m, j) -- m copies needed,
// standing at bin j -- bin j is selected with probability
//
//     f(m, j) = min(1, m * b_j / B_j),        B_j = sum_{l >= j} b_l,
//
// where the b_j are the *adjusted* capacities of Algorithm 1 (optimal
// weights).  Without the min-clamp this is exactly fair: the expected number
// of copies still needed when reaching bin j telescopes to k * B_j / B, so
// bin j receives k * b_j / B of the copies.  The random experiment of bin j
// at state m depends only on (ball address, bin uid, m), which is what
// bounds the data movement when devices come and go (Lemmas 3.2/3.5).
//
// Inhomogeneity adjustment: where the clamp bites (m * b_j > B_j -- bin j is
// too big for its suffix), bin j falls short of its fair share.  The paper
// compensates with the b-tilde weight boost of equations (2)-(5); we
// implement the same compensation in its general form: a per-column
// moment-matching pass that raises the selection probabilities of the
// lower-m states at column j until the column's marginal equals the fair
// share k * b_j / B exactly.  For k = 2 this reproduces the paper's b-tilde
// value; for k >= 3 it also repairs *cascaded* clamps (an infeasible suffix
// inside an infeasible suffix) that a single weight boost cannot reach --
// see DESIGN.md for the worked {3,2,2,2,1} example.  The state probabilities
// pi(m, j) and the fix-up are computed once per configuration in O(k * n).
//
// Copy identification: out[0] is the first selection (the primary), out[i]
// the i-th -- deterministic, as erasure codes require.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cluster/cluster_config.hpp"
#include "src/placement/strategy.hpp"

namespace rds {

namespace metrics {
class Counter;
}  // namespace metrics

namespace detail {

/// Shared precomputed tables for RedundantShare and FastRedundantShare.
/// Bins are in canonical (descending) order; `caps` holds the adjusted
/// capacities and `suffix[i] = sum caps[i..n-1]`.
struct RsTables {
  std::vector<DeviceId> uids;
  std::vector<double> caps;
  std::vector<double> suffix;  // size n+1
  unsigned k = 0;

  /// select_prob[m-1][j] = P(select bin j | m copies still needed at j).
  std::vector<std::vector<double>> select_prob;

  /// Largest column deficit the moment-matching pass could not place (0 for
  /// every configuration we have ever generated; recorded for diagnostics).
  double fairness_residual = 0.0;

  [[nodiscard]] std::size_t size() const noexcept { return uids.size(); }

  [[nodiscard]] double f(unsigned m, std::size_t j) const noexcept {
    return select_prob[m - 1][j];
  }

  /// Builds the tables from a cluster snapshot.  Runs Algorithm 1 on the
  /// capacities unless `apply_optimal_weights` is false; skips the
  /// moment-matching compensation when `apply_adjustment` is false (the
  /// ablation configuration -- fairness then breaks on inhomogeneous
  /// systems exactly as Section 3.1 predicts).
  static RsTables build(const ClusterConfig& config, unsigned k,
                        bool apply_optimal_weights, bool apply_adjustment);

  /// Builds directly from pre-adjusted weights in canonical (descending)
  /// order -- the back half of build(), exposed so callers with their own
  /// weight pipeline (and tests for degenerate inputs that ClusterConfig
  /// validation would reject) share one hardened implementation.  Throws
  /// std::invalid_argument when a weight is non-finite or a capacity
  /// suffix B_j is not strictly positive (a zero-capacity tail would
  /// otherwise turn f(m, j) = m * b_j / B_j into NaN).
  static RsTables build_from_weights(std::vector<DeviceId> uids,
                                     std::vector<double> weights_desc,
                                     unsigned k, bool apply_adjustment);
};

}  // namespace detail

class RedundantShare final : public ReplicationStrategy {
 public:
  struct Options {
    /// Run Algorithm 1 (optimalWeights) on the capacities first.  Disable
    /// only to study what goes wrong without it.
    bool apply_optimal_weights = true;
    /// Apply the inhomogeneity compensation (the paper's b-tilde,
    /// equations (2)-(5), in generalized form).  Disable only for the
    /// ablation benchmark.
    bool apply_adjustment = true;
  };

  /// Strategy over a cluster snapshot with replication degree k >= 1
  /// (k == 2 is the paper's LinMirror).  Throws if k > cluster size.
  RedundantShare(const ClusterConfig& config, unsigned k);
  RedundantShare(const ClusterConfig& config, unsigned k, Options opt);

  /// out[0] is the primary copy, out[i] the i-th copy.  O(n).
  void place(std::uint64_t address, std::span<DeviceId> out) const override;
  using ReplicationStrategy::place;

  [[nodiscard]] unsigned replication() const override { return tables_.k; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t device_count() const override {
    return tables_.size();
  }

  /// Adjusted capacities, canonical order (for tests and reports).
  [[nodiscard]] std::span<const double> adjusted_capacities() const noexcept {
    return tables_.caps;
  }
  /// Device uids in canonical order.
  [[nodiscard]] std::span<const DeviceId> canonical_uids() const noexcept {
    return tables_.uids;
  }

  /// Exact expected number of copies each bin receives per ball (canonical
  /// order), from the state-occupancy recursion of the selection chain --
  /// the exact law of place(), computed in O(k * n).  Perfect fairness
  /// means entry i equals k * b'_i / sum b'.
  [[nodiscard]] std::vector<double> exact_expected_copies() const;

  /// Exact law of each copy index: entry [r][i] = P(copy r lands on bin i).
  /// Rows are probability distributions.  Copy 0 (the primary) concentrates
  /// on the big bins and the last copy on the tail -- relevant when the
  /// fragments are not interchangeable (erasure codes): parity fragments
  /// systematically live on the smaller devices.  O(k * n).
  [[nodiscard]] std::vector<std::vector<double>> exact_copy_index_law() const;

  [[nodiscard]] const detail::RsTables& tables() const noexcept {
    return tables_;
  }

 private:
  /// Last copy via `placeonecopy`: a rendezvous race over the exact
  /// conditional law of the chain from state (1, start).
  [[nodiscard]] DeviceId place_last(std::uint64_t address,
                                    std::size_t start) const;

  detail::RsTables tables_;

  // Registry-owned instruments (see src/metrics/): placements served, chain
  // columns walked, and last-copy rendezvous sizes.  Single relaxed
  // increments per place(); never null after construction.
  metrics::Counter* placements_total_ = nullptr;
  metrics::Counter* chain_columns_total_ = nullptr;
  metrics::Counter* last_copy_candidates_total_ = nullptr;
};

}  // namespace rds
