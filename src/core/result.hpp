// Uniform fallible-operation return type for the storage layer.
//
// The original VirtualDisk API mixed three failure conventions: bool returns
// (trim), exceptions (read/write/topology ops) and out-params.  Result<T>
// replaces them with one shape -- a value or an (ErrorCode, message) pair --
// so callers can branch on the code without string-matching what().  The old
// throwing entry points remain as thin wrappers over the try_* methods;
// value_or_throw() defines the one canonical ErrorCode -> exception mapping
// (documented in docs/api.md) so both worlds agree.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace rds {

/// Why a fallible operation failed.  Codes are coarse categories, not
/// per-call-site enumerations: branch on the code, read the message.
enum class ErrorCode {
  kOk = 0,            ///< no error (never carried by a failed Result)
  kNotFound,          ///< unknown block / device / volume id
  kInvalidArgument,   ///< caller passed something structurally wrong
  kUnrecoverable,     ///< too few fragments survive to decode the block
  kDeviceFailed,      ///< operation needs a device that is crashed
  kReshapeInProgress, ///< topology change rejected while one is in flight
  kCancelled,         ///< cooperative cancellation stopped the operation
  kIoError,           ///< a device store rejected a read/write (full, ...)
  kCorruption,        ///< persisted data failed an integrity check (CRC,
                      ///< magic, content fingerprint) -- see
                      ///< docs/persistence.md
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kUnrecoverable: return "unrecoverable";
    case ErrorCode::kDeviceFailed: return "device-failed";
    case ErrorCode::kReshapeInProgress: return "reshape-in-progress";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kCorruption: return "corruption";
  }
  return "?";
}

struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
};

/// The canonical ErrorCode -> exception mapping, shared by every throwing
/// wrapper so legacy call sites keep catching the exact types the old API
/// threw (docs/api.md, "Error handling conventions").
[[noreturn]] inline void throw_error(const Error& error) {
  switch (error.code) {
    case ErrorCode::kNotFound:
      throw std::out_of_range(error.message);
    case ErrorCode::kInvalidArgument:
      throw std::invalid_argument(error.message);
    case ErrorCode::kOk:
      throw std::logic_error("throw_error: called with ErrorCode::kOk");
    default:
      throw std::runtime_error(error.message);
  }
}

/// A value of T, or an Error.  Construct from either; `ok()` discriminates.
/// Result<void> carries no value.
template <typename T = void>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Error error) : error_(std::move(error)) {
    if (error_.code == ErrorCode::kOk) {
      throw std::logic_error("Result: error constructed with ErrorCode::kOk");
    }
  }
  Result(ErrorCode code, std::string message)
      : Result(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// The value; undefined unless ok().  The unchecked dereference IS the
  /// contract (callers branch on ok() first), hence the NOLINTs.
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  [[nodiscard]] const T& value() const& { return *value_; }
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  [[nodiscard]] T& value() & { return *value_; }
  // NOLINTNEXTLINE(bugprone-unchecked-optional-access)
  [[nodiscard]] T&& take() && { return std::move(*value_); }

  /// The error; undefined when ok().
  [[nodiscard]] const Error& error() const noexcept { return error_; }
  [[nodiscard]] ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : error_.code;
  }

  /// Returns the value or throws per the canonical mapping (the bridge the
  /// legacy throwing wrappers use).
  T value_or_throw() && {
    if (!ok()) throw_error(error_);
    return std::move(*value_);  // NOLINT(bugprone-unchecked-optional-access)
  }

 private:
  std::optional<T> value_;
  Error error_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;  ///< success
  Result(Error error) : error_(std::move(error)) {  // NOLINT
    if (error_.code == ErrorCode::kOk) {
      throw std::logic_error("Result: error constructed with ErrorCode::kOk");
    }
  }
  Result(ErrorCode code, std::string message)
      : Result(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const noexcept {
    return error_.code == ErrorCode::kOk;
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const noexcept { return error_; }
  [[nodiscard]] ErrorCode code() const noexcept { return error_.code; }

  void value_or_throw() const {
    if (!ok()) throw_error(error_);
  }

 private:
  Error error_;
};

}  // namespace rds
