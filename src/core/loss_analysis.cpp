#include "src/core/loss_analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace rds {

std::vector<double> copies_in_set_distribution(
    const RedundantShare& strategy, std::span<const DeviceId> failed) {
  const detail::RsTables& t = strategy.tables();
  const std::size_t n = t.size();
  const unsigned k = t.k;

  std::vector<bool> in_set(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    in_set[i] = std::ranges::find(failed, t.uids[i]) != failed.end();
  }

  // State: (m copies still needed, c copies already inside the failed set).
  // pi[m][c] = probability mass; the per-column transition selects with
  // probability f(m, column) and bumps c when the column is failed.
  std::vector<std::vector<double>> pi(
      k + 1, std::vector<double>(k + 1, 0.0));
  pi[k][0] = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<std::vector<double>> next(
        k + 1, std::vector<double>(k + 1, 0.0));
    for (unsigned m = 0; m <= k; ++m) {
      for (unsigned c = 0; c <= k - m; ++c) {
        const double mass = pi[m][c];
        if (mass <= 0.0) continue;
        if (m == 0) {
          next[0][c] += mass;
          continue;
        }
        const double f = t.f(m, j);
        next[m][c] += mass * (1.0 - f);
        const unsigned c2 = in_set[j] ? c + 1 : c;
        next[m - 1][c2] += mass * f;
      }
    }
    pi = std::move(next);
  }

  std::vector<double> dist(k + 1, 0.0);
  for (unsigned c = 0; c <= k; ++c) dist[c] = pi[0][c];
  return dist;
}

double exact_loss_probability(const RedundantShare& strategy,
                              std::span<const DeviceId> failed,
                              unsigned min_fragments) {
  const unsigned k = strategy.replication();
  if (min_fragments == 0 || min_fragments > k) {
    throw std::invalid_argument("exact_loss_probability: bad min_fragments");
  }
  const std::vector<double> dist =
      copies_in_set_distribution(strategy, failed);
  // Lost iff fewer than min_fragments copies survive, i.e. more than
  // k - min_fragments copies are inside the failed set.
  double loss = 0.0;
  for (unsigned c = k - min_fragments + 1; c <= k; ++c) loss += dist[c];
  return loss;
}

}  // namespace rds
