#include "src/core/hierarchical.hpp"

#include <stdexcept>
#include <unordered_set>

#include "src/placement/rendezvous.hpp"
#include "src/util/hash.hpp"

namespace rds {

HierarchicalRedundantShare::HierarchicalRedundantShare(
    std::vector<FailureDomain> domains, unsigned k, std::uint64_t salt)
    : HierarchicalRedundantShare(std::move(domains), k,
                                 RedundantShare::Options{}, salt) {}

HierarchicalRedundantShare::HierarchicalRedundantShare(
    std::vector<FailureDomain> domains, unsigned k,
    RedundantShare::Options opt, std::uint64_t salt)
    : domains_(std::move(domains)), k_(k), salt_(salt) {
  if (k_ == 0) throw std::invalid_argument("HierarchicalRS: k == 0");
  if (domains_.size() < k_) {
    throw std::invalid_argument("HierarchicalRS: fewer domains than k");
  }
  std::unordered_set<DeviceId> seen;
  std::vector<Device> pseudo;
  domain_devices_.resize(domains_.size());
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    if (domains_[d].devices.empty()) {
      throw std::invalid_argument("HierarchicalRS: empty domain");
    }
    for (const Device& dev : domains_[d].devices) {
      if (dev.capacity == 0) {
        throw std::invalid_argument("HierarchicalRS: zero-capacity device");
      }
      if (!seen.insert(dev.uid).second) {
        throw std::invalid_argument("HierarchicalRS: duplicate device uid");
      }
      domain_devices_[d].push_back(
          {dev.uid, static_cast<double>(dev.capacity)});
    }
    // Pseudo-device per domain: uid = domain index, capacity = aggregate.
    pseudo.push_back({d, domains_[d].total_capacity(), domains_[d].name});
  }
  outer_ = std::make_unique<RedundantShare>(ClusterConfig(std::move(pseudo)),
                                            k_, opt);
}

std::size_t HierarchicalRedundantShare::device_count() const {
  std::size_t n = 0;
  for (const FailureDomain& d : domains_) n += d.devices.size();
  return n;
}

std::size_t HierarchicalRedundantShare::domain_of(DeviceId uid) const {
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    for (const Candidate& c : domain_devices_[d]) {
      if (c.uid == uid) return d;
    }
  }
  return domains_.size();
}

void HierarchicalRedundantShare::place(std::uint64_t address,
                                       std::span<DeviceId> out) const {
  check_out_span(out, k_);
  // Outer: k distinct domains, fair by aggregate usable capacity and
  // copy-identified (copy r's domain is deterministic).
  std::vector<DeviceId> chosen(k_);
  outer_->place(address, chosen);

  // Inner: fair weighted race inside each chosen domain.  Salting with the
  // domain keeps the races independent.
  for (unsigned r = 0; r < k_; ++r) {
    const auto domain = static_cast<std::size_t>(chosen[r]);
    const DeviceId uid = rendezvous_draw(
        address, salt_ ^ (0x41D0ULL + domain), domain_devices_[domain]);
    if (uid == kNoDevice) {
      throw std::logic_error("HierarchicalRS: empty device race");
    }
    out[r] = uid;
  }
}

std::string HierarchicalRedundantShare::name() const {
  return "hierarchical-redundant-share";
}

}  // namespace rds
