// Correlated-failure analysis of a Redundant Share placement.
//
// When a set F of devices fails simultaneously, a mirrored ball is lost iff
// ALL k of its copies sit inside F (an erasure-coded ball with d required
// fragments is lost iff more than k-d of its fragments sit inside F).  Both
// probabilities are exact functionals of the selection chain and computable
// in O(k^2 * n) by running the state recursion with a per-state count of
// copies already placed inside F -- no sampling, no enumeration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/cluster/device.hpp"
#include "src/core/redundant_share.hpp"

namespace rds {

/// Exact distribution of "number of copies a ball has inside `failed`":
/// entry c is P(exactly c of the k copies are on failed devices).
/// `failed` lists device uids; unknown uids are ignored.
[[nodiscard]] std::vector<double> copies_in_set_distribution(
    const RedundantShare& strategy, std::span<const DeviceId> failed);

/// P(a ball is unreadable after `failed` fail), given the ball needs
/// `min_fragments` of the k fragments to survive.  min_fragments == 1 is
/// plain mirroring.
[[nodiscard]] double exact_loss_probability(const RedundantShare& strategy,
                                            std::span<const DeviceId> failed,
                                            unsigned min_fragments = 1);

}  // namespace rds
