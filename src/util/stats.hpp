// Statistics helpers used by tests, benches and fairness reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rds {

/// Streaming mean / variance / min / max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson chi-square statistic for observed counts vs expected counts.
/// Expected entries must be positive.
[[nodiscard]] double chi_square(std::span<const std::uint64_t> observed,
                                std::span<const double> expected);

/// Upper critical value of the chi-square distribution with `dof` degrees of
/// freedom at significance 0.001 (Wilson–Hilferty approximation).  Good to a
/// few percent for dof >= 2, which is all the fairness tests need.
[[nodiscard]] double chi_square_critical_999(std::size_t dof);

/// max_i |observed_i - expected_i| / expected_i.  Expected entries > 0.
[[nodiscard]] double max_relative_deviation(
    std::span<const std::uint64_t> observed, std::span<const double> expected);

/// Root-mean-square of the relative deviations.
[[nodiscard]] double rms_relative_deviation(
    std::span<const std::uint64_t> observed, std::span<const double> expected);

/// Normalize a weight vector to sum to 1.  Returns empty if the sum is 0.
[[nodiscard]] std::vector<double> normalized(std::span<const double> weights);

}  // namespace rds
