// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init/final ~0).
//
// The journal's per-record integrity check (docs/persistence.md).  Unlike
// the 64-bit mixing hashes in util/hash.hpp -- built for placement
// experiments -- this is the standard checksum whose value for "123456789"
// is 0xCBF43926, so journal files stay verifiable by any external CRC tool.
#pragma once

#include <cstdint>
#include <span>

namespace rds {

/// CRC-32 of `data`.  Pass a previous return value as `seed` to continue a
/// running checksum over concatenated buffers.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace rds
