// xoshiro256** pseudo-random generator.
//
// Used only by *workload generation and tests* (drawing ball addresses,
// building random cluster configurations).  Placement decisions themselves
// never consume RNG state -- they are pure functions of hashes (util/hash.hpp).
#pragma once

#include <cstdint>
#include <limits>

#include "src/util/hash.hpp"

namespace rds {

/// xoshiro256** 1.0 (Blackman & Vigna).  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // SplitMix64 seeding as recommended by the authors.
    std::uint64_t x = seed;
    for (auto& w : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      w = mix64(x);
    }
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_unit() noexcept { return to_unit((*this)()); }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace rds
