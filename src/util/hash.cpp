#include "src/util/hash.hpp"

// All hashing primitives are constexpr and header-only; this translation unit
// exists to give the functions a home for debuggers and to keep one symbol
// anchored in the library.
namespace rds {
namespace {
[[maybe_unused]] constexpr std::uint64_t kAnchor = mix64(0);
}  // namespace
}  // namespace rds
