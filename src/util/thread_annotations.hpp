// Clang thread-safety annotation macros (no-ops on every other compiler).
//
// These wrap the attributes behind Clang's `-Wthread-safety` static
// analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
// locking discipline of the concurrent subsystems -- metrics registry,
// batch placer, migration executor, virtual disk, storage pool -- is
// machine-checked at compile time instead of living in comments.  The CI
// lint job builds the tree with Clang and `-Werror=thread-safety`; GCC
// builds see empty macros and identical code.
//
// Use through rds::Mutex / rds::MutexLock (src/util/mutex.hpp), not by
// annotating raw std::mutex members: the analysis only understands types
// that carry the capability attributes themselves.
#pragma once

#if defined(__clang__)
#define RDS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define RDS_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define RDS_CAPABILITY(x) RDS_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock).
#define RDS_SCOPED_CAPABILITY RDS_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define RDS_GUARDED_BY(x) RDS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define RDS_PT_GUARDED_BY(x) RDS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock documentation).
#define RDS_ACQUIRED_BEFORE(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define RDS_ACQUIRED_AFTER(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define RDS_REQUIRES(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define RDS_REQUIRES_SHARED(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define RDS_ACQUIRE(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define RDS_ACQUIRE_SHARED(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define RDS_RELEASE(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RDS_RELEASE_SHARED(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define RDS_TRY_ACQUIRE(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (non-reentrant
/// entry points that acquire it themselves).
#define RDS_EXCLUDES(...) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define RDS_RETURN_CAPABILITY(x) \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Pair with a
/// comment saying why the discipline holds anyway.
#define RDS_NO_THREAD_SAFETY_ANALYSIS \
  RDS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
