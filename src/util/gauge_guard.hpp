// RAII balance for metrics::Gauge: add(n) on construction, sub(n) on every
// exit path -- normal return, early return, or exception unwind.
//
// This is the structural fix for the gauge-leak defect class (an in-flight
// gauge stuck high after a throwing placement or migration step) and the
// shape rds_analyze's metric-balance rule recognizes as balanced
// (docs/static_analysis.md).
#pragma once

#include <cstdint>

#include "src/metrics/gauge.hpp"

namespace rds::metrics {

class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge& gauge, std::int64_t n = 1) noexcept
      : gauge_(&gauge), n_(n) {
    gauge_->add(n_);
  }
  ~GaugeGuard() { gauge_->sub(n_); }

  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;
  GaugeGuard(GaugeGuard&&) = delete;
  GaugeGuard& operator=(GaugeGuard&&) = delete;

 private:
  Gauge* gauge_;
  std::int64_t n_;
};

}  // namespace rds::metrics
