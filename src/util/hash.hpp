// Deterministic 64-bit hashing primitives.
//
// Every randomized placement decision in this library is derived from a
// *stable* hash of (ball address, device uid, copy level [, salt]) rather
// than from mutable RNG state.  This is the property the paper's adaptivity
// proofs rest on: the random experiment for a given (ball, bin) pair must
// not change when unrelated devices enter or leave the system.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace rds {

/// SplitMix64 finalizer (Stafford variant 13).  Full-avalanche bijection on
/// 64-bit values; the workhorse mixer for everything below.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit words into one hash.  Not commutative.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  // Rotate-xor then remix; keeps full entropy from both inputs.
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Hash of a (ball address, device uid) pair.
[[nodiscard]] constexpr std::uint64_t hash2(std::uint64_t address,
                                            std::uint64_t uid) noexcept {
  return hash_combine(mix64(address), mix64(uid ^ 0xa5a5a5a5a5a5a5a5ULL));
}

/// Hash of a (ball address, device uid, copy level) triple.
[[nodiscard]] constexpr std::uint64_t hash3(std::uint64_t address,
                                            std::uint64_t uid,
                                            std::uint64_t level) noexcept {
  return hash_combine(hash2(address, uid), mix64(level + 0x1234567898765431ULL));
}

/// FNV-1a for strings (device names, salts).
[[nodiscard]] constexpr std::uint64_t hash_str(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

/// FNV-1a over a byte buffer, length-mixed and finalized by mix64.  Content
/// fingerprints (journal file-put records); collisions are 2^-64 events.
[[nodiscard]] constexpr std::uint64_t hash_bytes(
    std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return mix64(h ^ data.size());
}

/// Map a 64-bit hash to a double uniform in [0, 1).  Uses the top 53 bits so
/// the result is an exact dyadic rational and never 1.0.
[[nodiscard]] constexpr double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Uniform [0,1) value for a (ball, device) experiment.
[[nodiscard]] constexpr double unit_value(std::uint64_t address,
                                          std::uint64_t uid) noexcept {
  return to_unit(hash2(address, uid));
}

/// Uniform [0,1) value for a (ball, device, level) experiment.
[[nodiscard]] constexpr double unit_value(std::uint64_t address,
                                          std::uint64_t uid,
                                          std::uint64_t level) noexcept {
  return to_unit(hash3(address, uid, level));
}

}  // namespace rds
