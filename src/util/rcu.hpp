// Minimal shared_ptr-RCU cell: readers take an immutable snapshot with one
// atomic load, a writer publishes a replacement with one atomic store, and
// the old snapshot stays alive until its last reader drops it -- classic
// epoch semantics with shared_ptr reference counts standing in for grace
// periods.
//
// load()/store()/exchange() are safe from any thread.  Move construction /
// assignment exist so owning objects (VirtualDisk) stay movable and are NOT
// thread-safe: only move a cell while no other thread touches either side.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace rds {

template <typename T>
class RcuCell {
 public:
  RcuCell() = default;
  explicit RcuCell(std::shared_ptr<const T> initial) noexcept
      : cell_(std::move(initial)) {}

  // Relaxed is enough here: moves are documented single-threaded (no other
  // thread may touch either cell), so there is nothing to order against.
  RcuCell(RcuCell&& other) noexcept
      : cell_(other.cell_.load(std::memory_order_relaxed)) {}
  RcuCell& operator=(RcuCell&& other) noexcept {
    cell_.store(other.cell_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }
  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  /// Current snapshot (may be null before the first store).
  [[nodiscard]] std::shared_ptr<const T> load() const noexcept {
    return cell_.load(std::memory_order_acquire);
  }

  /// Publishes `next`; readers holding the old snapshot keep it alive.
  void store(std::shared_ptr<const T> next) noexcept {
    cell_.store(std::move(next), std::memory_order_release);
  }

  /// Publishes `next` and returns the snapshot it replaced.  Discarding the
  /// return value would silently drop the old snapshot's last reference
  /// while readers may still need it named -- callers must look at it.
  [[nodiscard]] std::shared_ptr<const T> exchange(
      std::shared_ptr<const T> next) noexcept {
    return cell_.exchange(std::move(next), std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::shared_ptr<const T>> cell_;
};

}  // namespace rds
