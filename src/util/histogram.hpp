// Fixed-memory quantile histogram (log-spaced buckets).
//
// Used by the request simulator and benches for latency percentiles without
// retaining every sample.  Log-spaced buckets give a bounded relative error
// (~bucket growth factor) at O(#buckets) memory.
#pragma once

#include <cstdint>
#include <vector>

namespace rds {

class LogHistogram {
 public:
  /// Values in [min_value, max_value] resolve with relative error
  /// ~`growth - 1`; values outside clamp to the edge buckets.
  LogHistogram(double min_value, double max_value, double growth = 1.05);

  void add(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return min_seen_; }
  [[nodiscard]] double max() const noexcept { return max_seen_; }

  /// Quantile q in [0, 1]; returns the representative value of the bucket
  /// containing the q-th sample.  0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double value) const noexcept;
  [[nodiscard]] double bucket_value(std::size_t index) const noexcept;

  double min_value_;
  double log_growth_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace rds
