#include "src/util/crc32.hpp"

#include <array>

namespace rds {
namespace {

constexpr std::array<std::uint32_t, 256> kCrcTable = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed) noexcept {
  std::uint32_t c = ~seed;
  for (const std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace rds
