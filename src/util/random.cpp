#include "src/util/random.hpp"

namespace rds {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method with rejection of the biased zone.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace rds
