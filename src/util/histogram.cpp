#include "src/util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rds {

LogHistogram::LogHistogram(double min_value, double max_value, double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {
  if (min_value <= 0.0 || max_value <= min_value) {
    throw std::invalid_argument("LogHistogram: bad value range");
  }
  if (growth <= 1.0) {
    throw std::invalid_argument("LogHistogram: growth must exceed 1");
  }
  const auto buckets = static_cast<std::size_t>(
      std::ceil(std::log(max_value / min_value) / log_growth_)) + 2;
  buckets_.assign(buckets, 0);
}

std::size_t LogHistogram::bucket_of(double value) const noexcept {
  if (value <= min_value_) return 0;
  const auto raw = static_cast<std::size_t>(
      std::log(value / min_value_) / log_growth_) + 1;
  return std::min(raw, buckets_.size() - 1);
}

double LogHistogram::bucket_value(std::size_t index) const noexcept {
  if (index == 0) return min_value_;
  // Geometric midpoint of the bucket.
  return min_value_ *
         std::exp((static_cast<double>(index) - 0.5) * log_growth_);
}

void LogHistogram::add(double value) noexcept {
  if (count_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      clamped * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return bucket_value(i);
  }
  return bucket_value(buckets_.size() - 1);
}

}  // namespace rds
