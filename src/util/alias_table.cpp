#include "src/util/alias_table.hpp"

#include <stdexcept>

namespace rds {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: no weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: zero total");

  prob_.assign(n, 1.0);
  alias_.assign(n, 0);

  // Scaled weights: mean 1.  Split into under- and over-full slots and pair
  // them (Vose's stable formulation).
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly full (up to rounding): threshold 1.
  for (const std::uint32_t i : small) prob_[i] = 1.0;
  for (const std::uint32_t i : large) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(double u) const noexcept {
  const double scaled = u * static_cast<double>(prob_.size());
  auto slot = static_cast<std::size_t>(scaled);
  if (slot >= prob_.size()) slot = prob_.size() - 1;  // u ~ 1 - eps guard
  const double coin = scaled - static_cast<double>(slot);
  return coin < prob_[slot] ? slot : alias_[slot];
}

}  // namespace rds
