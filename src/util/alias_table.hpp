// Walker/Vose alias method: O(1) sampling from a fixed discrete
// distribution after O(n) construction.  Substrate for the O(k)-lookup
// Redundant Share variant (Section 3.3's "more memory -> constant time").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rds {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights (need not be normalized;
  /// total must be positive).  Throws std::invalid_argument otherwise.
  explicit AliasTable(std::span<const double> weights);

  /// Index sampled according to the weights, driven by one uniform value in
  /// [0, 1).  O(1): the uniform is split into a slot choice and a coin.
  [[nodiscard]] std::size_t sample(double u) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

 private:
  std::vector<double> prob_;        // acceptance threshold per slot
  std::vector<std::uint32_t> alias_;  // fallback index per slot
};

}  // namespace rds
