#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rds {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double chi_square(std::span<const std::uint64_t> observed,
                  std::span<const double> expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("chi_square: size mismatch");
  }
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument("chi_square: non-positive expected count");
    }
    const double d = static_cast<double>(observed[i]) - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

double chi_square_critical_999(std::size_t dof) {
  if (dof == 0) throw std::invalid_argument("chi_square_critical_999: dof=0");
  // Wilson-Hilferty: X^2_p(k) ~= k * (1 - 2/(9k) + z_p * sqrt(2/(9k)))^3,
  // with z_0.999 = 3.0902.
  const double k = static_cast<double>(dof);
  const double z = 3.0902;
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

double max_relative_deviation(std::span<const std::uint64_t> observed,
                              std::span<const double> expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("max_relative_deviation: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument(
          "max_relative_deviation: non-positive expected count");
    }
    worst = std::max(
        worst, std::abs(static_cast<double>(observed[i]) - expected[i]) /
                   expected[i]);
  }
  return worst;
}

double rms_relative_deviation(std::span<const std::uint64_t> observed,
                              std::span<const double> expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("rms_relative_deviation: size mismatch");
  }
  if (observed.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument(
          "rms_relative_deviation: non-positive expected count");
    }
    const double r =
        (static_cast<double>(observed[i]) - expected[i]) / expected[i];
    sum += r * r;
  }
  return std::sqrt(sum / static_cast<double>(observed.size()));
}

std::vector<double> normalized(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return {};
  std::vector<double> out(weights.begin(), weights.end());
  for (double& w : out) w /= total;
  return out;
}

}  // namespace rds
