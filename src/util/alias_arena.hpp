// A pool of Walker/Vose alias tables packed into one contiguous arena.
//
// AliasTable (src/util/alias_table.hpp) owns two heap vectors per table;
// a PrecomputedRedundantShare at n devices materializes O(k * n) tables,
// which as individual AliasTables means thousands of small allocations and
// pointer-chasing in the placement hot loop.  AliasArena stores every
// table's slots back to back in a single buffer (cf. the pool-based
// allocators in the virtual-volume exemplar): construction is one growing
// vector, sampling is two contiguous loads, and the whole structure is
// published atomically with the strategy through the RCU placement epoch.
//
// Sampling is bit-identical to AliasTable::sample for the same weights:
// the Vose construction below is the same algorithm, so existing
// distributional tests transfer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rds {

class AliasArena {
 public:
  using TableId = std::uint32_t;

  /// Sentinel for "no table here" grids kept by callers.
  static constexpr TableId kNoTable = UINT32_MAX;

  AliasArena() = default;

  /// Pre-sizes the slot buffer (optional; add() grows it as needed).
  void reserve_slots(std::size_t slots) { slots_.reserve(slots); }
  void reserve_tables(std::size_t tables) {
    offset_.reserve(tables);
    len_.reserve(tables);
  }

  /// Appends a table over non-negative weights (need not be normalized;
  /// total must be positive -- same contract as AliasTable) and returns its
  /// id.  Ids are dense and sequential from 0.  Throws std::invalid_argument
  /// on an empty span, a negative weight, or a non-positive total.
  TableId add(std::span<const double> weights);

  /// Index in [0, size(table)) sampled according to the table's weights,
  /// driven by one uniform value in [0, 1).  O(1).
  [[nodiscard]] std::size_t sample(TableId table, double u) const noexcept {
    const std::uint32_t off = offset_[table];
    const std::uint32_t n = len_[table];
    const double scaled = u * static_cast<double>(n);
    auto slot = static_cast<std::uint32_t>(scaled);
    if (slot >= n) slot = n - 1;  // u ~ 1 - eps guard
    const double coin = scaled - static_cast<double>(slot);
    const Slot& s = slots_[off + slot];
    return coin < s.prob ? slot : s.alias;
  }

  [[nodiscard]] std::size_t table_count() const noexcept {
    return offset_.size();
  }
  [[nodiscard]] std::size_t table_size(TableId table) const noexcept {
    return len_[table];
  }
  /// Total slots across all tables (the memory footprint, for reports).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

 private:
  struct Slot {
    double prob = 1.0;          ///< acceptance threshold
    std::uint32_t alias = 0;    ///< fallback index, within the same table
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> offset_;  ///< first slot of each table
  std::vector<std::uint32_t> len_;     ///< slot count of each table

  // Construction scratch, reused across add() calls so building k*n tables
  // costs three allocations total instead of three per table.
  std::vector<double> scaled_;
  std::vector<std::uint32_t> small_;
  std::vector<std::uint32_t> large_;
};

}  // namespace rds
