// Annotated mutex wrappers: the lockable types Clang's -Wthread-safety
// analysis reasons about (see src/util/thread_annotations.hpp).
//
// rds::Mutex wraps a heap-backed std::mutex so classes that own one stay
// movable (VirtualDisk and StoragePool are returned by value from
// Snapshot::load_*).  Moving a Mutex while any thread holds or waits on it
// is undefined -- like RcuCell, move only while no other thread touches
// either side; a moved-from Mutex may only be destroyed or assigned to.
//
// rds::MutexLock is the scoped guard the analysis tracks.  It is
// re-lockable (unlock()/lock()) so condition-variable loops keep their
// guarded-member reads inside a scope the analysis can see:
//
//     MutexLock lock(mu_);
//     while (!ready_) cv_.wait(lock);   // ready_ RDS_GUARDED_BY(mu_)
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/util/thread_annotations.hpp"

namespace rds {

class CondVar;
class MutexLock;

class RDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : raw_(std::make_unique<std::mutex>()) {}
  Mutex(Mutex&&) noexcept = default;
  Mutex& operator=(Mutex&&) noexcept = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RDS_ACQUIRE() { raw_->lock(); }
  void unlock() RDS_RELEASE() { raw_->unlock(); }
  [[nodiscard]] bool try_lock() RDS_TRY_ACQUIRE(true) {
    return raw_->try_lock();
  }

 private:
  friend class MutexLock;
  std::unique_ptr<std::mutex> raw_;
};

/// RAII lock the thread-safety analysis understands; re-lockable so
/// wait loops and hand-over-hand sections stay annotated.
class RDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RDS_ACQUIRE(mu) : lock_(*mu.raw_) {}
  ~MutexLock() RDS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (the destructor then does nothing).
  void unlock() RDS_RELEASE() { lock_.unlock(); }
  /// Re-acquires after an unlock().
  void lock() RDS_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable working on MutexLock.  wait() atomically releases and
/// re-acquires the lock; by the time it returns the caller holds the mutex
/// again, so the analysis (which does not model the transient release) stays
/// sound.  Use explicit `while (!predicate) cv.wait(lock);` loops -- a
/// predicate lambda would read guarded members from a scope the analysis
/// cannot connect to the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rds
