#include "src/util/alias_arena.hpp"

#include <limits>
#include <stdexcept>

namespace rds {

AliasArena::TableId AliasArena::add(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasArena: no weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasArena: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasArena: zero total");
  if (offset_.size() >= kNoTable ||
      slots_.size() + n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("AliasArena: arena full");
  }

  const auto off = static_cast<std::uint32_t>(slots_.size());
  slots_.resize(slots_.size() + n);
  Slot* const table = slots_.data() + off;

  // Vose's stable formulation, identical to AliasTable: scale to mean 1,
  // pair under-full slots with over-full ones.
  scaled_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    scaled_[i] = weights[i] * static_cast<double>(n) / total;
  }
  small_.clear();
  large_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    (scaled_[i] < 1.0 ? small_ : large_)
        .push_back(static_cast<std::uint32_t>(i));
  }
  while (!small_.empty() && !large_.empty()) {
    const std::uint32_t s = small_.back();
    small_.pop_back();
    const std::uint32_t l = large_.back();
    table[s].prob = scaled_[s];
    table[s].alias = l;
    scaled_[l] -= 1.0 - scaled_[s];
    if (scaled_[l] < 1.0) {
      large_.pop_back();
      small_.push_back(l);
    }
  }
  // Leftovers are exactly full (up to rounding): threshold 1.
  for (const std::uint32_t i : small_) table[i] = {1.0, i};
  for (const std::uint32_t i : large_) table[i] = {1.0, i};

  offset_.push_back(off);
  len_.push_back(static_cast<std::uint32_t>(n));
  return static_cast<TableId>(offset_.size() - 1);
}

}  // namespace rds
