// Overflow-checked unsigned arithmetic for capacity sums.
//
// Capacity math in the placement layer works on raw uint64 byte counts:
// B = sum of b_i (ClusterConfig::canonicalize, FailureDomain), and the
// Lemma 2.1 feasibility test k * b_max <= B.  A cluster description with
// adversarial capacities can overflow both silently; every such sum or
// product goes through these helpers, which return kInvalidArgument
// instead of wrapping.  rds_analyze's capacity-arith rule flags raw
// capacity arithmetic outside this header (docs/static_analysis.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/core/result.hpp"

namespace rds {

/// a + b, or kInvalidArgument if the sum does not fit in 64 bits.
[[nodiscard]] inline Result<std::uint64_t> checked_add(std::uint64_t a,
                                                       std::uint64_t b) {
  std::uint64_t sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    return Error{ErrorCode::kInvalidArgument,
                 "checked_add: " + std::to_string(a) + " + " +
                     std::to_string(b) + " overflows uint64"};
  }
  return sum;
}

/// a * b, or kInvalidArgument if the product does not fit in 64 bits.
[[nodiscard]] inline Result<std::uint64_t> checked_mul(std::uint64_t a,
                                                       std::uint64_t b) {
  std::uint64_t product = 0;
  if (__builtin_mul_overflow(a, b, &product)) {
    return Error{ErrorCode::kInvalidArgument,
                 "checked_mul: " + std::to_string(a) + " * " +
                     std::to_string(b) + " overflows uint64"};
  }
  return product;
}

/// Sum of `values`, or kInvalidArgument on the first overflowing step.
[[nodiscard]] inline Result<std::uint64_t> checked_sum(
    std::span<const std::uint64_t> values) {
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) {
    Result<std::uint64_t> step = checked_add(total, v);
    if (!step.ok()) return step;
    total = step.value();
  }
  return total;
}

}  // namespace rds
