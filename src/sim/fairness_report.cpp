#include "src/sim/fairness_report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "src/core/fast_redundant_share.hpp"
#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/storage/virtual_disk.hpp"

namespace rds {

FairnessReport fairness_report(const VirtualDisk& disk,
                               std::uint64_t ball_count) {
  // One epoch read pins strategy and config together; everything below is
  // derived from that pair, never from the live (swappable) disk state.
  const std::shared_ptr<const PlacementEpoch> epoch =
      disk.placement_snapshot();
  const BlockMap map(*epoch->strategy, ball_count);
  return fairness_report(epoch->config,
                         usable_capacities(*epoch->strategy, epoch->config),
                         map);
}

std::vector<double> usable_capacities(const ReplicationStrategy& strategy,
                                      const ClusterConfig& config) {
  if (const auto* rs = dynamic_cast<const RedundantShare*>(&strategy)) {
    const std::span<const double> a = rs->adjusted_capacities();
    return {a.begin(), a.end()};
  }
  if (const auto* fast =
          dynamic_cast<const FastRedundantShare*>(&strategy)) {
    return fast->tables().caps;
  }
  if (const auto* pre =
          dynamic_cast<const PrecomputedRedundantShare*>(&strategy)) {
    return pre->tables().caps;
  }
  std::vector<double> caps;
  caps.reserve(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    caps.push_back(static_cast<double>(config[i].capacity));
  }
  return caps;
}

FairnessReport fairness_report(const ClusterConfig& config,
                               std::span<const double> adjusted,
                               const BlockMap& map) {
  if (adjusted.size() != config.size()) {
    throw std::invalid_argument("fairness_report: adjusted size mismatch");
  }
  double usable_total = 0.0;
  for (const double a : adjusted) usable_total += a;
  if (usable_total <= 0.0) {
    throw std::invalid_argument("fairness_report: zero usable capacity");
  }

  const auto counts = map.device_counts();
  const double total_copies = static_cast<double>(map.total_copies());

  FairnessReport report;
  double sq_sum = 0.0;
  for (std::size_t i = 0; i < config.size(); ++i) {
    DeviceUsage u;
    u.uid = config[i].uid;
    u.capacity = config[i].capacity;
    u.usable_capacity = adjusted[i];
    const auto it = counts.find(u.uid);
    u.copies = it == counts.end() ? 0 : it->second;
    u.fill_percent = 100.0 * static_cast<double>(u.copies) /
                     static_cast<double>(u.capacity);
    u.fair_copies = total_copies * adjusted[i] / usable_total;
    u.deviation = u.fair_copies > 0.0
                      ? (static_cast<double>(u.copies) - u.fair_copies) /
                            u.fair_copies
                      : 0.0;
    report.max_abs_deviation =
        std::max(report.max_abs_deviation, std::abs(u.deviation));
    sq_sum += u.deviation * u.deviation;
    report.devices.push_back(u);
  }
  report.rms_deviation =
      std::sqrt(sq_sum / static_cast<double>(config.size()));
  return report;
}

void FairnessReport::print(std::ostream& os, const std::string& title) const {
  os << title << '\n';
  os << "  " << std::setw(8) << "device" << std::setw(12) << "capacity"
     << std::setw(12) << "usable" << std::setw(12) << "copies"
     << std::setw(10) << "fill%" << std::setw(12) << "fair"
     << std::setw(10) << "dev%" << '\n';
  const auto old_flags = os.flags();
  os << std::fixed;
  for (const DeviceUsage& u : devices) {
    os << "  " << std::setw(8) << u.uid << std::setw(12) << u.capacity
       << std::setw(12) << std::setprecision(0) << u.usable_capacity
       << std::setw(12) << u.copies << std::setw(10) << std::setprecision(2)
       << u.fill_percent << std::setw(12) << std::setprecision(0)
       << u.fair_copies << std::setw(10) << std::setprecision(3)
       << 100.0 * u.deviation << '\n';
  }
  os << "  max |deviation| = " << std::setprecision(4)
     << 100.0 * max_abs_deviation << "%, rms = " << 100.0 * rms_deviation
     << "%\n";
  os.flags(old_flags);
}

}  // namespace rds
