// Replica selection: which of a ball's k copies serves a read.
//
// The paper's copy-identification property gives every address k known
// replica locations (VirtualDisk::copy_locations); capacity fairness says
// the *data* is spread in proportion to device size, but under skewed
// request traffic the *load* can still pile onto whichever copy clients
// happen to pick.  A ReplicaSelector is that client-side pick, pluggable so
// the load simulator and benchmarks can compare policies.  Selectors are
// constructed through make_replica_selector()/try_make_replica_selector()
// from a name ("p2c", "least-loaded", ...) exactly like placement
// strategies and workloads -- unknown names are rejected with an error that
// enumerates every accepted spelling.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/result.hpp"
#include "src/util/random.hpp"

namespace rds {

/// Read-only view of the per-device queue state a selector may consult.
/// Devices are canonical config indices; the simulator owns the state and
/// exposes it through this interface so selectors stay decoupled from the
/// queueing model (and tests can hand selectors adversarial states).
class QueueView {
 public:
  virtual ~QueueView() = default;

  /// Outstanding work at device `dev`: microseconds of service still queued
  /// ahead of a request arriving now (0 for an idle device).
  [[nodiscard]] virtual double backlog_us(std::size_t dev) const = 0;

  /// Expected service time of one request at `dev` (the device-speed
  /// signal; heterogeneous pools differ here).
  [[nodiscard]] virtual double mean_service_us(std::size_t dev) const = 0;

  [[nodiscard]] virtual std::size_t device_count() const = 0;
};

/// Picks which copy serves a read.  `replicas` holds the canonical device
/// indices of copies 0..k-1 (never empty, pairwise distinct); the return
/// value is a POSITION in `replicas`, not a device index.  Selectors may
/// keep internal state (round-robin cursor, water-filling levels), so one
/// instance models one client and calls are not thread-safe.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  [[nodiscard]] virtual std::size_t select(
      std::span<const std::size_t> replicas, const QueueView& queues,
      Xoshiro256& rng) = 0;

  /// Canonical policy name (for reports and error messages).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Copy (cursor++ mod k): oblivious to queue state, perfectly even over
/// copy indices -- the baseline that ignores device speed.
class RoundRobinSelector final : public ReplicaSelector {
 public:
  [[nodiscard]] std::size_t select(std::span<const std::size_t> replicas,
                                   const QueueView& queues,
                                   Xoshiro256& rng) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }

 private:
  std::size_t cursor_ = 0;
};

/// A uniformly random copy: stateless, the classical baseline P2C is
/// measured against.
class RandomSelector final : public ReplicaSelector {
 public:
  [[nodiscard]] std::size_t select(std::span<const std::size_t> replicas,
                                   const QueueView& queues,
                                   Xoshiro256& rng) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "random";
  }
};

/// The copy whose device has the smallest backlog (full queue information;
/// ties break toward the lowest copy index).  The omniscient upper bound a
/// real client can only approximate.
class LeastLoadedSelector final : public ReplicaSelector {
 public:
  [[nodiscard]] std::size_t select(std::span<const std::size_t> replicas,
                                   const QueueView& queues,
                                   Xoshiro256& rng) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "least-loaded";
  }
};

/// Power of two choices (Mitzenmacher): probe two distinct random copies,
/// take the one with the smaller backlog.  Two probes instead of k buy an
/// exponential improvement over random in the max queue length.
class PowerOfTwoSelector final : public ReplicaSelector {
 public:
  [[nodiscard]] std::size_t select(std::span<const std::size_t> replicas,
                                   const QueueView& queues,
                                   Xoshiro256& rng) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "power-of-two";
  }
};

/// Water-filling over expected work: tracks the cumulative service time it
/// has assigned to every device and sends each request where
/// assigned + mean_service is smallest.  Unlike least-loaded it never reads
/// the actual queues -- it balances on its own bookkeeping plus the device
/// speeds, the information a client-side dispatcher really has.
class WaterFillingSelector final : public ReplicaSelector {
 public:
  [[nodiscard]] std::size_t select(std::span<const std::size_t> replicas,
                                   const QueueView& queues,
                                   Xoshiro256& rng) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "water-filling";
  }

  /// Work (us) this selector has routed to device `dev` so far.
  [[nodiscard]] double assigned_us(std::size_t dev) const noexcept {
    return dev < assigned_us_.size() ? assigned_us_[dev] : 0.0;
  }

 private:
  std::vector<double> assigned_us_;  // indexed by canonical device index
};

// ---------- The selector factory ----------

/// Which replica-selection policy a simulation / CLI run uses.
enum class SelectorKind {
  kRoundRobin,    ///< cursor++ mod k
  kRandom,        ///< uniformly random copy
  kLeastLoaded,   ///< argmin backlog (full information)
  kPowerOfTwo,    ///< best of two random probes
  kWaterFilling,  ///< argmin of self-assigned work + mean service
};

/// Every kind, in declaration order -- the one list consumers (tests, CLI
/// usage text, error messages) iterate so a new policy cannot be forgotten.
[[nodiscard]] std::span<const SelectorKind> all_selector_kinds() noexcept;

/// Comma-separated list of every accepted spelling, canonical names first
/// with aliases in parentheses, for usage text and unknown-name errors.
[[nodiscard]] std::string replica_selector_names();

/// Canonical spelling of `kind`.
[[nodiscard]] std::string_view to_string(SelectorKind kind) noexcept;

/// Builds a fresh selector from a policy name: "round-robin" (alias "rr"),
/// "random", "least-loaded" ("ll"), "power-of-two" ("p2c"),
/// "water-filling" ("wf").  kInvalidArgument for unknown names; the message
/// enumerates every accepted spelling, like the strategy factory.
[[nodiscard]] Result<std::unique_ptr<ReplicaSelector>>
try_make_replica_selector(std::string_view name);

/// Throwing wrapper over try_make_replica_selector (std::invalid_argument).
[[nodiscard]] std::unique_ptr<ReplicaSelector> make_replica_selector(
    std::string_view name);

/// The selector for an enum kind (always succeeds; used by sweep loops).
[[nodiscard]] std::unique_ptr<ReplicaSelector> make_replica_selector(
    SelectorKind kind);

}  // namespace rds
