#include "src/sim/disk_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "src/metrics/registry.hpp"
#include "src/sim/workload.hpp"
#include "src/util/histogram.hpp"

namespace rds {

double SimulationResult::max_utilization() const {
  double worst = 0.0;
  for (const DeviceLoad& d : devices) worst = std::max(worst, d.utilization);
  return worst;
}

std::vector<Request> make_trace(const BlockMap& map, std::uint64_t count,
                                double rate_per_us, double skew,
                                Xoshiro256& rng) {
  if (rate_per_us <= 0.0) {
    throw std::invalid_argument("make_trace: non-positive rate");
  }
  const ZipfGenerator zipf(map.ball_count(), skew);
  std::vector<Request> trace;
  trace.reserve(count);
  double t = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    // Exponential interarrival via inverse transform.
    t += -std::log1p(-rng.next_unit()) / rate_per_us;
    trace.push_back({t, zipf.sample(rng)});
  }
  return trace;
}

SimulationResult simulate_requests(const ClusterConfig& config,
                                   const BlockMap& map,
                                   std::span<const Request> trace,
                                   std::span<const DiskPerf> perf,
                                   ReplicaPolicy policy) {
  if (perf.empty()) {
    throw std::invalid_argument("simulate_requests: no perf model");
  }
  if (perf.size() != 1 && perf.size() != config.size()) {
    throw std::invalid_argument("simulate_requests: perf size mismatch");
  }

  std::unordered_map<DeviceId, std::size_t> index_of;
  for (std::size_t i = 0; i < config.size(); ++i) {
    index_of.emplace(config[i].uid, i);
  }

  std::vector<double> free_at(config.size(), 0.0);
  SimulationResult result;
  result.devices.resize(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    result.devices[i].uid = config[i].uid;
  }

  const unsigned k = map.replication();
  // Log-bucketed latency histogram: 2% relative quantile error, O(1) memory
  // in the trace length.
  LogHistogram responses(0.1, 1e9, 1.02);
  // Registry instruments so live scenario runs surface the simulated
  // device behavior next to the storage/placement metrics.
  metrics::Registry& reg = metrics::Registry::global();
  metrics::Counter& requests_total = reg.counter("rds_sim_requests_total");
  metrics::LatencyHistogram& service_ns =
      reg.histogram("rds_sim_service_latency_ns");
  metrics::LatencyHistogram& queue_wait_ns =
      reg.histogram("rds_sim_queue_wait_ns");
  metrics::Gauge& queue_depth_peak = reg.gauge("rds_sim_queue_depth_peak");
  double last_arrival = 0.0;
  std::uint64_t seq = 0;
  for (const Request& r : trace) {
    if (r.arrival_us < last_arrival) {
      throw std::invalid_argument("simulate_requests: trace not sorted");
    }
    last_arrival = r.arrival_us;
    const auto copies = map.copies(r.ball);

    // Pick the replica per policy.
    std::size_t chosen = 0;
    switch (policy) {
      case ReplicaPolicy::kPrimaryOnly:
        chosen = 0;
        break;
      case ReplicaPolicy::kRoundRobin:
        chosen = static_cast<std::size_t>(seq % k);
        break;
      case ReplicaPolicy::kLeastLoaded: {
        double best = free_at[index_of.at(copies[0])];
        for (unsigned c = 1; c < k; ++c) {
          const double f = free_at[index_of.at(copies[c])];
          if (f < best) {
            best = f;
            chosen = c;
          }
        }
        break;
      }
    }
    ++seq;

    const std::size_t dev = index_of.at(copies[chosen]);
    const DiskPerf& model = perf.size() == 1 ? perf[0] : perf[dev];
    const double start = std::max(r.arrival_us, free_at[dev]);
    const double finish = start + model.service_us();
    free_at[dev] = finish;

    result.devices[dev].requests += 1;
    result.devices[dev].busy_us += model.service_us();
    responses.add(finish - r.arrival_us);
    result.makespan_us = std::max(result.makespan_us, finish);

    requests_total.inc();
    service_ns.record(
        static_cast<std::uint64_t>((finish - r.arrival_us) * 1000.0));
    const double wait_us = start - r.arrival_us;
    queue_wait_ns.record(static_cast<std::uint64_t>(wait_us * 1000.0));
    // FCFS backlog expressed in requests: how many full service times fit
    // into the wait this arrival experienced.
    queue_depth_peak.set_max(
        static_cast<std::int64_t>(std::ceil(wait_us / model.service_us())));
  }

  if (responses.count() > 0) {
    result.mean_response_us = responses.mean();
    result.p99_response_us = responses.quantile(0.99);
    result.max_response_us = responses.max();
  }
  if (result.makespan_us > 0.0) {
    for (DeviceLoad& d : result.devices) {
      d.utilization = d.busy_us / result.makespan_us;
    }
  }
  return result;
}

}  // namespace rds
